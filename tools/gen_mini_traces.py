#!/usr/bin/env python
"""Regenerate the committed mini-traces under ``tests/traces/``.

Run from the repository root::

    PYTHONPATH=src python tools/gen_mini_traces.py [--out tests/traces]

Each mini-trace is produced by walking a synthetic control-flow graph whose
branches carry explicit outcome processes, so the traces are *consistent*
(every ``(pc, direction)`` pair always leads to the same next branch — the
property a trace captured from real control flow has) and regenerable
bit-for-bit (own xorshift RNG, gzip mtime pinned by the writer).

The graphs are tuned to reproduce the H2P statistics documented in "Branch
Prediction Is Not a Solved Problem" (PAPERS.md): almost every static branch
is well-predicted (biased, periodic, or loop-exit processes), while a small
set of hard Bernoulli branches sits on the hottest loop paths and therefore
owns the overwhelming majority of TAGE mispredictions.  The tier-1 suite
asserts the resulting top-32 concentration (tests/test_trace_workload.py).
"""

from __future__ import annotations

import argparse
import gzip
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.workloads.trace import (  # noqa: E402 (path bootstrap above)
    BranchRecord,
    TraceMeta,
    recommended_acb_scale,
    summarize,
    write_trace,
)

_MASK = (1 << 64) - 1


class _Rng:
    """xorshift64* — deterministic across platforms and Python versions."""

    def __init__(self, seed: int):
        self._s = (seed ^ 0x9E3779B97F4A7C15) & _MASK or 1

    def next(self) -> int:
        s = self._s
        s ^= (s >> 12) & _MASK
        s ^= (s << 25) & _MASK
        s ^= (s >> 27) & _MASK
        self._s = s & _MASK
        return (s * 2685821657736338717) & _MASK

    def rand01(self) -> float:
        return self.next() / float(1 << 64)

    def randint(self, lo: int, hi: int) -> int:
        return lo + self.next() % (hi - lo + 1)

    def choice(self, seq):
        return seq[self.next() % len(seq)]


# ----------------------------------------------------------------------
# outcome processes
# ----------------------------------------------------------------------
@dataclass
class _Branch:
    """One static branch of the synthetic CFG."""

    pc: int
    taken_succ: int      # node index when taken
    nt_succ: int         # node index when not taken
    kind: str            # "biased" | "h2p" | "periodic" | "loop" | "phased"
    p: float = 0.0
    pattern: Tuple[bool, ...] = ()
    trips: int = 0
    jitter: int = 0
    phase_len: int = 0
    p2: float = 0.0
    # mutable process state
    idx: int = 0
    count: int = 0
    cur_trips: int = 0
    phase_pos: int = 0

    def outcome(self, rng: _Rng) -> bool:
        if self.kind == "biased" or self.kind == "h2p":
            return rng.rand01() < self.p
        if self.kind == "periodic":
            taken = self.pattern[self.idx]
            self.idx = (self.idx + 1) % len(self.pattern)
            return taken
        if self.kind == "loop":
            if self.cur_trips == 0:
                lo = max(1, self.trips - self.jitter)
                self.cur_trips = lo + (rng.randint(0, 2 * self.jitter)
                                       if self.jitter else 0)
            self.count += 1
            if self.count >= self.cur_trips:
                self.count = 0
                self.cur_trips = 0
                return False
            return True
        # phased: probability alternates between p and p2 every phase_len
        p = self.p if (self.phase_pos // self.phase_len) % 2 == 0 else self.p2
        self.phase_pos += 1
        return rng.rand01() < p


def _walk(
    nodes: List[_Branch], events: int, rng: _Rng, entry: int = 0
) -> List[BranchRecord]:
    """Walk the CFG for *events* branch events, then continue to the next
    return to *entry*.

    Ending exactly where the walk began makes the trace a *closed loop*:
    the replay's last-event → first-event wrap edge is then a true CFG
    edge, so the reconstructed workload loops the recorded interleaving
    indefinitely with zero inconsistent edges.
    """
    records: List[BranchRecord] = []
    node = entry
    limit = 3 * events + 100_000
    while len(records) < events or node != entry:
        branch = nodes[node]
        taken = branch.outcome(rng)
        records.append(
            BranchRecord(branch.pc, taken, nodes[branch.taken_succ].pc)
        )
        node = branch.taken_succ if taken else branch.nt_succ
        if len(records) > limit:
            raise RuntimeError("walk never returned to the entry node")
    return records


# ----------------------------------------------------------------------
# graph builders
# ----------------------------------------------------------------------
def _chain_pcs(rng: _Rng, count: int, base: int) -> List[int]:
    """Plausible-looking, strictly increasing branch addresses."""
    pcs = []
    pc = base
    for _ in range(count):
        pc += 4 * rng.randint(1, 9)
        pcs.append(pc)
    return pcs


def _predictable(
    rng: _Rng, pc: int, i: int, taken_succ: int, nt_succ: int, hot: bool = True
) -> _Branch:
    """A well-predicted branch.

    Hot (frequently executed) branches may carry short periodic patterns —
    TAGE learns those outright.  Cold branches stay strongly biased: at a
    few dozen executions a pattern never trains the tables and would smear
    mispredictions across the static footprint, which is not how rarely
    executed real code behaves.
    """
    if hot and rng.rand01() >= 0.6:
        pattern = rng.choice(
            ((True, False), (True, True, False), (False, False, True),
             (True, False, False, False), (True,) * 5 + (False,))
        )
        return _Branch(pc, taken_succ, nt_succ, "periodic", pattern=pattern)
    return _Branch(pc, taken_succ, nt_succ, "biased",
                   p=rng.choice((0.01, 0.02, 0.97, 0.99)))


def h2p_loop_graph(rng: _Rng) -> Tuple[List[_Branch], int]:
    """A lammps-like kernel: one hot loop, two hard branches inside it."""
    pcs = _chain_pcs(rng, 12, 0x401000)
    nodes: List[_Branch] = []
    # nodes 0..3: outer prologue, chained NT; biased
    for i in range(4):
        nodes.append(_predictable(rng, pcs[i], i, taken_succ=i + 1, nt_succ=i + 1))
    # nodes 4..8: the loop body — two H2P hammock branches, two biased,
    # closed by a loop branch back to node 4
    nodes.append(_Branch(pcs[4], 5, 5, "h2p", p=0.44))
    nodes.append(_predictable(rng, pcs[5], 5, 6, 6))
    nodes.append(_Branch(pcs[6], 7, 7, "h2p", p=0.37))
    nodes.append(_predictable(rng, pcs[7], 7, 8, 8))
    nodes.append(_Branch(pcs[8], 4, 9, "loop", trips=24, jitter=5))
    # nodes 9..11: epilogue returning to the prologue
    nodes.append(_predictable(rng, pcs[9], 9, 10, 10))
    nodes.append(_Branch(pcs[10], 11, 11, "biased", p=0.03))
    nodes.append(_Branch(pcs[11], 0, 0, "biased", p=0.97))
    return nodes, 0


def _module_graph(
    rng: _Rng,
    modules: int,
    branches_per: Tuple[int, int],
    h2p_hot: int,
    base: int,
    phased: bool = False,
) -> Tuple[List[_Branch], int]:
    """Several straight-line 'functions' strung on a hot dispatch loop.

    Each module is a chain of mostly-predictable branches; ``h2p_hot``
    hard branches are injected into the modules guarded by the hottest
    loop (the first one, which iterates many times per dispatch).
    """
    nodes: List[_Branch] = []
    module_entries: List[int] = []
    for m in range(modules):
        count = rng.randint(*branches_per)
        pcs = _chain_pcs(rng, count, base + (m << 16))
        start = len(nodes)
        module_entries.append(start)
        hot = m == 0
        for i in range(count):
            here = start + i
            nxt = here + 1  # patched for the last node below
            if rng.rand01() < 0.25 and i + 2 < count:
                # forward skip: taken jumps over the next branch
                nodes.append(
                    _Branch(pcs[i], here + 2, nxt, "biased",
                            p=rng.choice((0.02, 0.98)))
                )
            else:
                nodes.append(_predictable(rng, pcs[i], i, nxt, nxt, hot=hot))
        # close the module with a loop branch: the first module is the hot
        # inner loop; cold modules run straight through (single trip, i.e.
        # an always-not-taken close — what cold code looks like to TAGE)
        if hot:
            trips, jitter = rng.randint(45, 60), 6
        else:
            trips, jitter = 1, 0
        nodes.append(
            _Branch(base + (m << 16) + 0xFFF0, start,
                    len(nodes) + 1, "loop", trips=trips, jitter=jitter)
        )
    # dispatch: the final node of the last module wraps to module 0; other
    # module exits chain onward
    for m in range(modules):
        exit_idx = (module_entries[m + 1] - 1) if m + 1 < modules else len(nodes) - 1
        nodes[exit_idx].nt_succ = module_entries[m + 1] if m + 1 < modules else 0
    # inject the H2P set into the hot module's chain
    hot_start = module_entries[0]
    hot_end = module_entries[1] - 1 if modules > 1 else len(nodes) - 1
    hot_span = max(1, hot_end - hot_start - 1)
    for k in range(h2p_hot):
        idx = hot_start + 1 + (k * hot_span) // max(1, h2p_hot)
        node = nodes[idx]
        if phased and k % 3 == 2:
            nodes[idx] = _Branch(node.pc, node.taken_succ, node.nt_succ, "phased",
                                 p=0.45, p2=0.05, phase_len=rng.randint(300, 700))
        else:
            nodes[idx] = _Branch(node.pc, node.taken_succ, node.nt_succ, "h2p",
                                 p=0.30 + 0.02 * k)
    return nodes, 0


# ----------------------------------------------------------------------
def _native(path: str, name: str, records: List[BranchRecord], notes: str) -> None:
    meta = TraceMeta(
        name=name,
        records=len(records),
        source=f"tools/gen_mini_traces.py:{name}",
        source_records=len(records),
        acb_scale=recommended_acb_scale(len(records)),
        notes=notes,
    )
    write_trace(path, records, meta)


def _cbp_text(path: str, records: List[BranchRecord]) -> None:
    with open(path, "wb") as raw:
        with gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0) as gz:
            gz.write(b"# CBP-style text dump: pc outcome target\n")
            for pc, taken, target in records:
                line = f"0x{pc:x} {'T' if taken else 'N'} 0x{target:x}\n"
                gz.write(line.encode())


TRACES = ("h2p_loop", "gcc_like", "server_like", "mixed_small")


def generate(out_dir: str, only: Optional[List[str]] = None) -> Dict[str, str]:
    os.makedirs(out_dir, exist_ok=True)
    selected = set(only or TRACES)
    written: Dict[str, str] = {}

    if "h2p_loop" in selected:
        rng = _Rng(0x51CB)
        nodes, entry = h2p_loop_graph(rng)
        records = _walk(nodes, 6000, rng, entry)
        path = os.path.join(out_dir, "h2p_loop.rbt.gz")
        _native(path, "h2p_loop", records,
                "one hot loop, two hard hammock branches (lammps-like)")
        written["h2p_loop"] = path

    if "gcc_like" in selected:
        rng = _Rng(0x6CC1)
        nodes, entry = _module_graph(
            rng, modules=14, branches_per=(10, 22), h2p_hot=8, base=0x400000
        )
        records = _walk(nodes, 9000, rng, entry)
        path = os.path.join(out_dir, "gcc_like.rbt.gz")
        _native(path, "gcc_like", records,
                "many static branches, H2P set on the hot inner module")
        written["gcc_like"] = path

    if "server_like" in selected:
        rng = _Rng(0x5E12)
        nodes, entry = _module_graph(
            rng, modules=22, branches_per=(12, 24), h2p_hot=12,
            base=0x7F0000000000, phased=True,
        )
        records = _walk(nodes, 16000, rng, entry)
        path = os.path.join(out_dir, "server_like.rbt.gz")
        _native(path, "server_like", records,
                "wide static footprint, phased H2P branches (server-like)")
        written["server_like"] = path

    if "mixed_small" in selected:
        rng = _Rng(0x3141)
        nodes, entry = _module_graph(
            rng, modules=6, branches_per=(8, 14), h2p_hot=5, base=0x10000
        )
        records = _walk(nodes, 4000, rng, entry)
        path = os.path.join(out_dir, "mixed_small.cbp.gz")
        _cbp_text(path, records)
        written["mixed_small"] = path

    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join("tests", "traces"),
                        help="output directory (default: tests/traces)")
    parser.add_argument("--only", nargs="*", choices=TRACES,
                        help="subset of traces to regenerate")
    args = parser.parse_args(argv)
    written = generate(args.out, args.only)
    for name, path in written.items():
        if path.endswith(".rbt.gz"):
            from repro.workloads.trace import read_trace

            _, records = read_trace(path)
        else:
            from repro.workloads.trace import read_cbp_text

            records = read_cbp_text(path)
        summary = summarize(records)
        size = os.path.getsize(path)
        print(f"{path} ({size} bytes)")
        print("  " + summary.format().replace("\n", "\n  "))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
