#!/usr/bin/env python
"""Documentation checker: links resolve, documented code actually runs.

Run from the repository root (CI's ``docs`` job does)::

    python tools/check_docs.py

Three passes over ``README.md`` and ``docs/*.md``:

1. **Links.**  Every relative markdown link target (``[text](path)``,
   ``#anchor`` stripped) must exist on disk.  ``http(s)``/``mailto``
   targets are not fetched.
2. **Python snippets.**  Every fenced ``python`` block must compile; it
   is then executed in a scratch directory with ``src/`` importable.
   Blocks may use an undefined ``workload`` variable — the checker
   pre-seeds one small suite workload, so illustrative fragments stay
   short.  A ``<!-- doccheck: skip -->`` comment on the line directly
   above a fence downgrades that block to compile-only (for fragments
   that are illustrative by design or too slow for CI).
3. **Shell snippets.**  Fenced ``bash`` blocks are statically validated
   line by line: ``python -m repro <cmd>`` must name a real CLI
   subcommand, and path-like arguments to ``python``/``pytest`` must
   exist.  Nothing is executed — these blocks include full-matrix runs.
4. **HTTP surface.**  The service docs are checked against the real
   route table (``repro.service.app.ROUTES``): every documented
   ``METHOD /api/v1/...`` heading must name a live route, every ``curl``
   line in a bash block must target one, and every route must appear in
   ``docs/service.md`` (the ``/api/v1/workers/*`` routes additionally in
   ``docs/distributed.md``) — the docs and the dispatcher cannot drift
   apart.
   Python snippets that read ``REPRO_SERVICE_URL`` run against a real
   service booted once on an ephemeral port in a scratch directory.

Exit status 0 when everything passes; 1 with a per-finding report
otherwise.
"""

from __future__ import annotations

import contextlib
import os
import re
import subprocess
import sys
import tempfile
from typing import Iterator, List, NamedTuple, Optional

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_MARKER = "<!-- doccheck: skip -->"
SERVICE_DOC = os.path.join(REPO, "docs", "service.md")
DIST_DOC = os.path.join(REPO, "docs", "distributed.md")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")


class Snippet(NamedTuple):
    path: str
    line: int
    lang: str
    text: str
    skipped: bool


def doc_files() -> List[str]:
    files = [os.path.join(REPO, "README.md")]
    docs_dir = os.path.join(REPO, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            files.append(os.path.join(docs_dir, name))
    return files


# ----------------------------------------------------------------------
# pass 1: links
# ----------------------------------------------------------------------
def check_links(path: str) -> Iterator[str]:
    base = os.path.dirname(path)
    root = REPO if os.path.abspath(path).startswith(REPO) else base
    for lineno, line in enumerate(open(path), start=1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure in-page anchor
            resolved = os.path.normpath(os.path.join(base, target))
            if not resolved.startswith(root):
                continue  # GitHub-relative URL (e.g. the CI badge)
            if not os.path.exists(resolved):
                yield (f"{os.path.relpath(path, REPO)}:{lineno}: "
                       f"broken link -> {target}")


# ----------------------------------------------------------------------
# pass 2 + 3: fenced code blocks
# ----------------------------------------------------------------------
def snippets(path: str) -> Iterator[Snippet]:
    lines = open(path).read().splitlines()
    i = 0
    skip_next = False
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped == SKIP_MARKER:
            skip_next = True
            i += 1
            continue
        match = FENCE_RE.match(stripped)
        if match:
            lang = match.group(1).lower()
            start = i + 1
            i = start
            while i < len(lines) and not lines[i].strip().startswith("```"):
                i += 1
            yield Snippet(path, start + 1, lang,
                          "\n".join(lines[start:i]), skip_next)
            skip_next = False
        elif stripped:
            skip_next = False
        i += 1


_PY_PRELUDE = """\
import sys
sys.path.insert(0, {src!r})
from repro.workloads import load_suite as _ds_load_suite
workload = _ds_load_suite(["lammps"])[0]
del _ds_load_suite
"""


def check_python(snippet: Snippet, extra_env: Optional[dict] = None) -> Iterator[str]:
    where = f"{os.path.relpath(snippet.path, REPO)}:{snippet.line}"
    try:
        compile(snippet.text, where, "exec")
    except SyntaxError as exc:
        yield f"{where}: python snippet does not compile: {exc}"
        return
    if snippet.skipped:
        return
    src = os.path.join(REPO, "src")
    prelude = _PY_PRELUDE.format(src=src)
    with tempfile.TemporaryDirectory() as scratch:
        env = dict(os.environ, REPRO_CACHE="0", **(extra_env or {}))
        proc = subprocess.run(
            [sys.executable, "-c", prelude + snippet.text],
            cwd=scratch, env=env, capture_output=True, text=True,
            timeout=300,
        )
    if proc.returncode != 0:
        tail = proc.stderr.strip().splitlines()[-1] if proc.stderr else "?"
        yield f"{where}: python snippet failed when executed: {tail}"


def _cli_subcommands() -> set:
    """Parse the subcommand names out of ``python -m repro --help``.

    The usage line holds several ``{a,b,...}`` choice groups (global
    options like ``--backend`` have them too); the subcommand list is
    by far the largest one.
    """
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        cwd=REPO, capture_output=True, text=True,
        env=dict(os.environ, PYTHONPATH=os.path.join(REPO, "src")),
    )
    groups = re.findall(r"\{([a-z,-]+)\}", proc.stdout)
    if not groups:
        return set()
    return set(max(groups, key=lambda g: g.count(",")).split(","))


def _join_continuations(text: str) -> List[str]:
    """Merge backslash-continued lines so multi-line commands check whole."""
    merged: List[str] = []
    for raw in text.splitlines():
        if merged and merged[-1].rstrip().endswith("\\"):
            merged[-1] = merged[-1].rstrip()[:-1] + " " + raw.strip()
        else:
            merged.append(raw)
    return merged


def check_bash(snippet: Snippet, subcommands: set, routes: list) -> Iterator[str]:
    where = f"{os.path.relpath(snippet.path, REPO)}:{snippet.line}"
    for raw in _join_continuations(snippet.text):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("$ "):
            line = line[2:]
        line = line.split(" #", 1)[0]  # inline comments
        # drop leading VAR=value environment assignments
        words = line.split()
        while words and re.fullmatch(r"[A-Z_]+=\S*", words[0]):
            words.pop(0)
        if not words:
            continue
        cmd = words[0]
        if cmd in ("pip", "cd", "export"):
            continue
        if cmd == "curl":
            yield from check_curl(where, line, routes)
            continue
        if cmd == "python" and words[1:3] == ["-m", "repro"]:
            # global options that take a value before the subcommand
            value_flags = {"--jobs", "--lanes", "--backend",
                           "--cache-dir", "--store"}
            sub = None
            for prev, word in zip(words[2:], words[3:]):
                if not word.startswith("-") and prev not in value_flags:
                    sub = word
                    break
            if sub is not None and sub not in subcommands:
                yield (f"{where}: `python -m repro {sub}` — no such "
                       f"subcommand (have: {sorted(subcommands)})")
            continue
        if cmd in ("python", "pytest"):
            for arg in words[1:]:
                if arg.startswith("-") or "=" in arg:
                    continue
                if "/" in arg or arg.endswith((".py", ".json", ".md")):
                    if not os.path.exists(os.path.join(REPO, arg)):
                        yield f"{where}: references missing path {arg}"


# ----------------------------------------------------------------------
# pass 4: the documented HTTP surface vs the real route table
# ----------------------------------------------------------------------
def service_routes() -> List[tuple]:
    """``(method, pattern)`` pairs from the live dispatcher table."""
    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.service.app import ROUTES
    return [(route.method, route.pattern) for route in ROUTES]


def _path_matches(pattern: str, path: str) -> bool:
    want = pattern.strip("/").split("/")
    got = path.strip("/").split("/")
    if len(want) != len(got):
        return False
    for expected, actual in zip(want, got):
        if expected.startswith("<") and expected.endswith(">"):
            if not actual:
                return False  # a parameter slot needs *some* segment
        elif expected != actual:
            return False
    return True


_CURL_PATH_RE = re.compile(r"/api/v1[^\s'\"?]*")
_CURL_METHOD_RE = re.compile(r"(?:-X|--request)[ =]([A-Z]+)")


def check_curl(where: str, line: str, routes: List[tuple]) -> Iterator[str]:
    """A documented ``curl`` line must target a route that exists."""
    paths = _CURL_PATH_RE.findall(line)
    if not paths:
        yield f"{where}: curl line does not target an /api/v1 path"
        return
    match = _CURL_METHOD_RE.search(line)
    if match:
        method = match.group(1)
    elif " -d " in line or " --data" in line or " --json" in line:
        method = "POST"  # curl switches to POST when a body is given
    else:
        method = "GET"
    for path in paths:
        if not any(m == method and _path_matches(p, path)
                   for m, p in routes):
            yield (f"{where}: `curl` targets {method} {path} — not in the "
                   f"service route table")


def check_route_coverage(routes: List[tuple]) -> Iterator[str]:
    """Every route must be documented verbatim in docs/service.md, and
    the distributed-worker routes additionally in docs/distributed.md."""
    if not os.path.exists(SERVICE_DOC):
        yield "docs/service.md missing — the service API reference is required"
        return
    text = open(SERVICE_DOC).read()
    for method, pattern in routes:
        if f"{method} {pattern}" not in text:
            yield (f"docs/service.md: route `{method} {pattern}` is "
                   f"undocumented (add a literal 'METHOD /path' heading)")
    worker_routes = [(m, p) for m, p in routes
                     if p.startswith("/api/v1/workers")]
    if not os.path.exists(DIST_DOC):
        yield ("docs/distributed.md missing — the worker protocol "
               "reference is required")
        return
    dist_text = open(DIST_DOC).read()
    for method, pattern in worker_routes:
        if f"{method} {pattern}" not in dist_text:
            yield (f"docs/distributed.md: worker route `{method} {pattern}` "
                   f"is undocumented (add a literal 'METHOD /path' heading)")


def main() -> int:
    findings: List[str] = []
    checked = [0, 0, 0, 0]  # files, python snippets, bash snippets, curl lines
    subcommands = _cli_subcommands()
    if not subcommands:
        findings.append("could not determine CLI subcommands from --help")
    routes = service_routes()
    findings.extend(check_route_coverage(routes))

    files = doc_files()
    per_file = {path: list(snippets(path)) for path in files}
    needs_service = any(
        s.lang == "python" and not s.skipped and "REPRO_SERVICE_URL" in s.text
        for chunk in per_file.values() for s in chunk
    )
    with contextlib.ExitStack() as stack:
        extra_env = {}
        if needs_service:
            from repro.service.app import background_server
            scratch = stack.enter_context(tempfile.TemporaryDirectory())
            extra_env["REPRO_SERVICE_URL"] = stack.enter_context(
                background_server(db_path=os.path.join(scratch, "docs.sqlite"),
                                  jobs=1)
            )
        for path in files:
            findings.extend(check_links(path))
            checked[0] += 1
            for snippet in per_file[path]:
                if snippet.lang == "python":
                    checked[1] += 1
                    findings.extend(check_python(snippet, extra_env))
                elif snippet.lang == "bash":
                    checked[2] += 1
                    checked[3] += sum(
                        1 for ln in _join_continuations(snippet.text)
                        if ln.strip().startswith(("curl", "$ curl"))
                    )
                    findings.extend(check_bash(snippet, subcommands, routes))
    for finding in findings:
        print(f"FAIL {finding}")
    print(
        f"check_docs: {checked[0]} files, {checked[1]} python snippets "
        f"executed, {checked[2]} bash snippets validated "
        f"({checked[3]} curl lines), {len(routes)} routes cross-checked — "
        f"{len(findings)} finding(s)"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
