"""Distributed matrix dispatch: leases, workers, requeue, bit-identity.

The load-bearing guarantees (docs/distributed.md):

* **determinism** — a matrix drained by pull-based workers produces
  SimStats bit-identical to serial ``run_matrix``, whether the workers
  run in-process or as real subprocesses against an embedded service;
* **fault tolerance** — a worker that leases a cell and dies never loses
  it: the lease expires and the cell is re-leased to a live worker, and
  the final stats are unchanged;
* **exact accounting** — a zombie's late ack is rejected (410) instead
  of double-counting the cell.
"""

from __future__ import annotations

import time

import pytest

from repro.harness.distributed import (
    resolve_dist_workers,
    run_worker,
    worker_command,
)
from repro.harness.parallel import (
    BACKENDS,
    RunRequest,
    last_manifest,
    resolve_backend,
    run_matrix,
)
from repro.harness.runner import clear_memo, normalized_run_key
from repro.service.app import background_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.store import (
    STORE_SCHEMA_VERSION,
    ExperimentStore,
    run_id_for,
)

# Distinct windows so this module controls its own memo/cache hits.
WARMUP, MEASURE = 1100, 1300


def _request_fields(workload, config):
    return {"workload": workload, "config": config,
            "warmup": WARMUP, "measure": MEASURE}


def _cells(pairs):
    out = []
    for index, (workload, config) in enumerate(pairs):
        key = normalized_run_key(workload, config, 1, None, WARMUP, MEASURE)
        out.append({"index": index, "run_id": run_id_for(key),
                    "request": _request_fields(workload, config)})
    return out


# ----------------------------------------------------------------------
# store-level lease lifecycle (no server)
# ----------------------------------------------------------------------
def test_lease_lifecycle(tmp_path):
    store = ExperimentStore(str(tmp_path / "exp.sqlite"))
    cells = _cells([("mcf", "baseline"), ("mcf", "acb")])
    assert store.enqueue_cells("job-1", cells) == 2
    assert store.enqueue_cells("job-1", cells) == 0  # idempotent

    lease = store.lease_next("w0", ttl=30.0)
    assert lease["job_id"] == "job-1"
    assert lease["index"] == 0
    assert lease["attempts"] == 1
    assert lease["request"]["workload"] == "mcf"
    counts = store.lease_counts()
    assert counts == {"pending": 1, "leased": 1, "done": 0}

    deadline = store.heartbeat_lease(lease["lease_id"], ttl=60.0)
    assert deadline is not None

    acked = store.ack_lease(lease["lease_id"], wall_time=0.5)
    assert acked["cell_index"] == 0
    assert acked["run_id"] == lease["run_id"]
    assert store.ack_lease(lease["lease_id"]) is None  # second ack: stale
    assert store.lease_counts()["done"] == 1


def test_expired_lease_requeues_and_stale_ack_rejected(tmp_path):
    store = ExperimentStore(str(tmp_path / "exp.sqlite"))
    store.enqueue_cells("job-1", _cells([("mcf", "acb")]))

    now = time.time()
    dying = store.lease_next("dying", ttl=0.01, now=now)
    # nothing to requeue before the deadline
    assert store.requeue_expired(now=now) == []
    requeued = store.requeue_expired(now=now + 1.0)
    assert [r["worker"] for r in requeued] == ["dying"]

    survivor = store.lease_next("live", ttl=30.0)
    assert survivor["index"] == dying["index"]
    assert survivor["attempts"] == 2
    # the dead worker's late heartbeat and ack are both rejected
    assert store.heartbeat_lease(dying["lease_id"], ttl=30.0) is None
    assert store.ack_lease(dying["lease_id"]) is None
    assert store.ack_lease(survivor["lease_id"]) is not None


def test_v1_store_migrates_to_v2_in_place(tmp_path):
    import sqlite3

    path = str(tmp_path / "exp.sqlite")
    ExperimentStore(path).schema_info()  # create fresh at current version
    with sqlite3.connect(path) as conn:
        conn.execute("DROP TABLE leases")
        conn.execute("UPDATE meta SET value = '1' "
                     "WHERE key = 'schema_version'")

    migrated = ExperimentStore(path)
    assert migrated.schema_info()["schema_version"] == STORE_SCHEMA_VERSION
    migrated.enqueue_cells("job-1", _cells([("mcf", "acb")]))
    assert migrated.lease_next("w0") is not None


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def test_resolve_backend(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend(None) == ""
    for name in BACKENDS:
        assert resolve_backend(name) == name
    monkeypatch.setenv("REPRO_BACKEND", "distributed")
    assert resolve_backend(None) == "distributed"
    assert resolve_backend("serial") == "serial"  # argument wins
    with pytest.raises(ValueError):
        resolve_backend("carrier-pigeon")


def test_resolve_dist_workers(monkeypatch):
    monkeypatch.delenv("REPRO_DIST_WORKERS", raising=False)
    assert resolve_dist_workers() == 2
    assert resolve_dist_workers(5) == 5
    monkeypatch.setenv("REPRO_DIST_WORKERS", "3")
    assert resolve_dist_workers() == 3
    monkeypatch.setenv("REPRO_DIST_WORKERS", "many")
    with pytest.raises(ValueError):
        resolve_dist_workers()


def test_worker_command_local_and_ssh():
    local = worker_command("base-url", worker_id="w7", ttl=9.0, max_idle=4.0)
    assert local[1:4] == ["-m", "repro", "worker"]
    assert "--id" in local and local[local.index("--id") + 1] == "w7"
    remote = worker_command("base-url", ssh_host="sim-host-2")
    assert remote[:2] == ["ssh", "sim-host-2"]
    assert remote[2] == "python3"


# ----------------------------------------------------------------------
# service-level: in-process worker drains a distributed job
# ----------------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    db = tmp_path / "exp.sqlite"
    with background_server(db_path=str(db), jobs=1) as url:
        yield ServiceClient(url)


def _matrix_cells():
    return [{"workload": w, "config": c, "warmup": WARMUP, "measure": MEASURE}
            for w in ("mcf", "gcc") for c in ("baseline", "acb")]


def _serial_stats():
    """Honest serial reference: no memo, no cache, no store attached.

    Computed *before* the distributed job runs, so neither side can be
    answered from the other's stored rows — the comparison is between
    two independent simulations.
    """
    from repro.harness.cache import set_active_cache, set_active_store

    previous_store = set_active_store(None)
    previous_cache = set_active_cache(None)
    clear_memo()
    try:
        results = run_matrix(
            [RunRequest(c["workload"], c["config"], warmup=WARMUP,
                        measure=MEASURE) for c in _matrix_cells()],
            backend="serial",
        )
    finally:
        clear_memo()
        set_active_cache(previous_cache)
        set_active_store(previous_store)
    return [r.stats.to_dict() for r in results]


def test_distributed_job_drained_by_worker_matches_serial(service):
    expected = _serial_stats()
    job = service.submit(cells=_matrix_cells(), backend="distributed")
    assert job["backend"] == "distributed"
    status = service.job(job["job_id"])
    assert status["status"] == "running"  # queued for workers, none yet

    done = run_worker(service.url, worker_id="t-w0", max_idle=0)
    assert done == len(_matrix_cells())

    status = service.wait(job["job_id"], timeout=30.0)
    assert status["simulated"] == len(_matrix_cells())
    manifest = service.manifest(job["job_id"])
    assert manifest["backend"] == "distributed"
    assert all(cell["worker"] == "t-w0" for cell in manifest["cells"])

    over_wire = [r["stats"] for r in service.results(job["job_id"])]
    assert over_wire == expected
    assert service.workers()["cells"]["done"] == len(_matrix_cells())


def test_dead_worker_cell_is_requeued_and_stats_unchanged(service):
    expected = _serial_stats()
    job = service.submit(cells=_matrix_cells(), backend="distributed")

    # a worker leases one cell with a tiny ttl and dies without acking
    dying = service.lease("t-dying", ttl=0.05)
    assert dying["cell"] is not None
    assert dying["attempts"] == 1
    time.sleep(0.1)  # let the lease expire

    # a live worker drains the whole job, including the orphaned cell
    done = run_worker(service.url, worker_id="t-live", max_idle=0)
    assert done == len(_matrix_cells())
    service.wait(job["job_id"], timeout=30.0)

    # the orphaned cell went around twice; the zombie's ack is rejected
    assert service.workers()["cells"]["leased"] == 0
    events = service.events(job["job_id"])["events"]
    assert any(e["event"] == "requeue" for e in events)
    with pytest.raises(ServiceError) as exc:
        service.ack(dying["lease_id"], "t-dying", stats={})
    assert exc.value.status == 410

    over_wire = [r["stats"] for r in service.results(job["job_id"])]
    assert over_wire == expected


def test_lease_validation_errors(service):
    with pytest.raises(ServiceError) as exc:
        service.lease("")
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:
        service.heartbeat("no-such-lease")
    assert exc.value.status == 410
    with pytest.raises(ServiceError) as exc:
        service.request("POST", "/api/v1/workers/ack",
                        body={"lease_id": "x", "stats": "not-a-dict"})
    assert exc.value.status == 400


# ----------------------------------------------------------------------
# run_matrix(backend="distributed"): embedded service + subprocesses
# ----------------------------------------------------------------------
def test_run_matrix_distributed_backend_bit_identical():
    requests = [
        RunRequest(w, c, warmup=WARMUP, measure=MEASURE)
        for w in ("mcf",) for c in ("baseline", "acb")
    ]
    clear_memo()
    distributed = run_matrix(requests, backend="distributed")
    manifest = last_manifest()
    assert manifest.backend == "distributed"
    assert all(c.source == "run" and c.worker for c in manifest.cells)

    clear_memo()
    serial = run_matrix(requests, backend="serial")
    assert [r.stats.to_dict() for r in distributed] == \
        [r.stats.to_dict() for r in serial]
