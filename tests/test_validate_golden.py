"""Unit tests of the golden in-order model on hand-built programs.

Each program is small enough that its retirement trace and final
architectural image (register → last-writer-pc, address → last-store-pc)
can be computed by hand from the branch behaviours.
"""

from repro.isa import FLAGS
from repro.program import ProgramBuilder
from repro.validate import (
    ArchState,
    GoldenExecutor,
    RetireEvent,
    diff_traces,
    golden_state,
    golden_trace,
)
from repro.workloads import Periodic, Strided, Workload


def hammock_workload(pattern=(True, False), seed=5):
    """pc0 alu r1 / pc1 cmp / pc2 br->skip / pc3 alu r2 / pc4 alu r3 / pc5 jmp."""
    b = ProgramBuilder("golden-hammock")
    b.label("top")
    b.alu(dst=1, srcs=(1,))                    # pc 0
    b.compare(srcs=(1,))                       # pc 1 (writes FLAGS)
    b.cond_branch("skip", behavior="br")       # pc 2
    b.alu(dst=2, srcs=(1,))                    # pc 3 (skipped when taken)
    b.label("skip")
    b.alu(dst=3, srcs=(1,))                    # pc 4
    b.jump("top")                              # pc 5
    return Workload(
        "golden-hammock", "test", b.build(),
        {"br": Periodic("br", pattern)}, seed=seed,
    )


def store_workload(seed=9):
    """Both arms store, to distinct stride-0 streams: the branch pattern
    decides which pc owns each address in the final memory image."""
    b = ProgramBuilder("golden-store")
    b.label("top")
    b.alu(dst=1, srcs=(1,))                    # pc 0
    b.compare(srcs=(1,))                       # pc 1
    b.cond_branch("tblk", behavior="br")       # pc 2
    b.store(srcs=(1,), behavior="nt_st")       # pc 3: NT arm store
    b.jump("join")                             # pc 4
    b.label("tblk")
    b.store(srcs=(1,), behavior="t_st")        # pc 5: taken arm store
    b.label("join")
    b.alu(dst=4, srcs=(1,))                    # pc 6
    b.jump("top")                              # pc 7
    return Workload(
        "golden-store", "test", b.build(),
        {
            "br": Periodic("br", (True, False)),
            "nt_st": Strided("nt_st", base=0x1000, stride=0, span=64),
            "t_st": Strided("t_st", base=0x2000, stride=0, span=64),
        },
        seed=seed,
    )


class TestGoldenHammock:
    def test_trace_follows_branch_pattern(self):
        """Periodic (True, False): iterations alternate skipping pc 3."""
        w = hammock_workload(pattern=(True, False))
        trace = golden_trace(w, 11)
        taken_iter = [0, 1, 2, 4, 5]       # body skipped
        nt_iter = [0, 1, 2, 3, 4, 5]       # body executed
        assert [e.pc for e in trace] == taken_iter + nt_iter
        branches = [e for e in trace if e.pc == 2]
        assert [e.taken for e in branches] == [True, False]

    def test_always_taken_never_retires_body(self):
        w = hammock_workload(pattern=(True,))
        trace = golden_trace(w, 40)
        assert all(e.pc != 3 for e in trace)
        state = golden_state(w, 40)
        assert 2 not in state.regs          # r2 never architecturally written

    def test_final_register_image(self):
        """After any whole number of iterations, each register maps to the
        pc of its unique writer."""
        w = hammock_workload(pattern=(True, False))
        state = golden_state(w, 22)         # 2 full (5+6)-instruction cycles
        assert state.regs == {1: 0, FLAGS: 1, 2: 3, 3: 4}
        assert state.mem == {}
        assert state.retired == 22

    def test_deterministic_replay(self):
        w = hammock_workload()
        assert golden_trace(w, 60) == golden_trace(hammock_workload(), 60)


class TestGoldenStores:
    def test_store_events_carry_addresses(self):
        w = store_workload()
        trace = golden_trace(w, 14)         # one taken + one NT iteration
        stores = [e for e in trace if e.store]
        assert [(e.pc, e.addr) for e in stores] == [(5, 0x2000), (3, 0x1000)]
        assert all(e.dst is None for e in stores)

    def test_final_memory_image(self):
        """Stride-0 streams: each arm's store keeps overwriting one line."""
        w = store_workload()
        state = golden_state(w, 14 * 3)
        assert state.mem == {0x2000: 5, 0x1000: 3}


class TestArchState:
    def test_apply_tracks_last_writer(self):
        state = ArchState().apply_all([
            RetireEvent(pc=0, dst=1),
            RetireEvent(pc=1, dst=1),
            RetireEvent(pc=2, dst=2),
            RetireEvent(pc=3, addr=0x40, store=True),
            RetireEvent(pc=4, addr=0x40, store=True),
            RetireEvent(pc=5, addr=0x80, store=False),   # load: no image change
        ])
        assert state.regs == {1: 1, 2: 2}
        assert state.mem == {0x40: 4}
        assert state.retired == 6

    def test_equal_traces_equal_images(self):
        w = store_workload()
        trace = golden_trace(w, 50)
        assert ArchState().apply_all(trace) == ArchState().apply_all(list(trace))


class TestDiffTraces:
    def test_agreement(self):
        w = hammock_workload()
        assert diff_traces(golden_trace(w, 30),
                           golden_trace(hammock_workload(), 30)) is None

    def test_first_divergence_reported(self):
        left = [RetireEvent(pc=i) for i in range(10)]
        right = list(left)
        right[6] = RetireEvent(pc=6, dst=3)
        mismatch = diff_traces(left, right, "golden", "acb")
        assert mismatch is not None and mismatch.index == 6
        assert mismatch.left == left[6] and mismatch.right == right[6]
        assert "golden" in mismatch.describe() and "acb" in mismatch.describe()
        assert ">> [6]" in mismatch.context

    def test_length_difference_is_divergence(self):
        left = [RetireEvent(pc=i) for i in range(5)]
        mismatch = diff_traces(left, left[:3])
        assert mismatch is not None and mismatch.index == 3
        assert mismatch.right is None
        assert "<end of trace>" in mismatch.describe()

    def test_prefix_truncation_agrees(self):
        left = [RetireEvent(pc=i) for i in range(5)]
        assert diff_traces(left[:3], left[:3]) is None


class TestGoldenEngineContract:
    def test_seed_offset_changes_outcomes(self):
        """Different seed offsets re-seed the behaviours (warmup replay)."""
        from repro.workloads import Bernoulli

        b = ProgramBuilder("seeded")
        b.label("top")
        b.alu(dst=1, srcs=(1,))
        b.compare(srcs=(1,))
        b.cond_branch("top", behavior="br")
        b.jump("top")
        w = Workload("seeded", "test", b.build(),
                     {"br": Bernoulli("br", 0.5)}, seed=3)
        base = [e.taken for e in golden_trace(w, 200) if e.taken is not None]
        off = [
            e.taken
            for e in GoldenExecutor(w, seed_offset=1).run(200)
            if e.taken is not None
        ]
        assert base != off

    def test_incremental_run_extends_trace(self):
        gold = GoldenExecutor(hammock_workload())
        gold.run(10)
        first = list(gold.trace)
        gold.run(10)
        assert gold.trace[:10] == first
        assert gold.retired == 20
