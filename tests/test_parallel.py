"""Tests for the parallel experiment-matrix layer (harness/parallel.py)."""

import pytest

from repro.harness.parallel import (
    RunRequest,
    default_jobs,
    last_manifest,
    run_matrix,
    shutdown_pool,
)
from repro.harness.runner import clear_memo, compare_configs
from repro.workloads import Workload
from tests.conftest import h2p_hammock_workload

FAST = dict(warmup=800, measure=1200)
MATRIX_NAMES = ["lammps", "gcc"]
MATRIX_CONFIGS = ["baseline", "acb", "oracle-bp"]


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()
    shutdown_pool()


def _matrix_requests():
    return [
        RunRequest(workload=name, config=config, **FAST)
        for name in MATRIX_NAMES
        for config in MATRIX_CONFIGS
    ]


class TestRunMatrix:
    def test_parallel_matches_serial_bit_identical(self):
        serial = run_matrix(_matrix_requests(), jobs=1)
        clear_memo()
        parallel = run_matrix(_matrix_requests(), jobs=2)
        assert len(serial) == len(parallel) == 6
        for s, p in zip(serial, parallel):
            assert s.workload == p.workload and s.config == p.config
            assert s.stats == p.stats  # full dataclass equality, incl. per-branch

    def test_results_in_request_order(self):
        requests = _matrix_requests()
        results = run_matrix(requests, jobs=2)
        for request, result in zip(requests, results):
            assert result.workload == request.workload
            assert result.config == request.config

    def test_manifest_counts_runs_then_hits(self):
        run_matrix(_matrix_requests(), jobs=2)
        first = last_manifest()
        assert first.total == 6
        assert first.simulated == 6 and first.cache_hits == 0
        assert all(c.wall_time > 0 for c in first.cells if c.source == "run")

        run_matrix(_matrix_requests(), jobs=2)
        second = last_manifest()
        assert second.simulated == 0
        assert second.cache_hits == 6
        assert second.hit_rate == 1.0

    def test_duplicate_cells_simulated_once(self):
        requests = [
            RunRequest(workload="lammps", **FAST),
            RunRequest(workload="lammps", **FAST),
            # oracle-bp and an explicit oracle baseline normalize to one cell
            RunRequest(workload="lammps", config="oracle-bp", **FAST),
            RunRequest(workload="lammps", config="baseline", predictor="oracle", **FAST),
        ]
        results = run_matrix(requests, jobs=1)
        manifest = last_manifest()
        assert manifest.simulated == 2
        assert sum(1 for c in manifest.cells if c.source == "dedup") == 2
        assert results[0].stats == results[1].stats
        assert results[2].stats == results[3].stats
        assert results[2].config == "oracle-bp"
        assert results[3].config == "baseline"

    def test_worker_error_surfaces_clearly(self):
        requests = [
            RunRequest(workload="lammps", **FAST),
            RunRequest(workload="gcc", config="no-such-config", **FAST),
        ]
        with pytest.raises(RuntimeError, match="gcc.*no-such-config"):
            run_matrix(requests, jobs=2)

    def test_serial_error_surfaces_clearly(self):
        with pytest.raises(RuntimeError, match="lammps.*bogus"):
            run_matrix([RunRequest(workload="lammps", config="bogus", **FAST)], jobs=1)

    def test_non_picklable_workload_falls_back_to_serial(self):
        workload = h2p_hammock_workload()
        workload.__class__ = type("LocalWorkload", (Workload,), {})
        requests = [
            RunRequest(workload=workload, **FAST),
            RunRequest(workload="lammps", **FAST),
        ]
        results = run_matrix(requests, jobs=2)
        assert results[0].workload == "h2p"
        assert results[1].workload == "lammps"
        assert all(c.source == "run" for c in last_manifest().cells)

    def test_custom_workload_serial_reference(self):
        """Ad-hoc Workload objects run uncached and match run_workload."""
        from repro.harness.runner import run_workload

        direct = run_workload(h2p_hammock_workload(), "acb", **FAST)
        (via_matrix,) = run_matrix(
            [RunRequest(workload=h2p_hammock_workload(), config="acb", **FAST)],
            jobs=1,
        )
        assert direct.stats == via_matrix.stats


class TestLanesDispatch:
    def test_lanes_dispatch_bit_identical(self):
        scalar = run_matrix(_matrix_requests(), jobs=1, lanes=0)
        clear_memo()
        laned = run_matrix(_matrix_requests(), jobs=1, lanes=4)
        for s, l in zip(scalar, laned):
            assert s.workload == l.workload and s.config == l.config
            assert s.stats == l.stats

    def test_manifest_records_lane_widths(self):
        run_matrix(_matrix_requests(), jobs=1, lanes=4)
        manifest = last_manifest()
        assert manifest.lanes == 4
        # 3 configs per workload → each pack holds 3 lanes
        assert all(c.source == "run" and c.lanes == 3 for c in manifest.cells)

    def test_env_width_drives_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "2")
        run_matrix(_matrix_requests(), jobs=1)
        manifest = last_manifest()
        assert manifest.lanes == 2
        # 3 configs per workload split into packs of 2 + 1
        assert all(0 < c.lanes <= 2
                   for c in manifest.cells if c.source == "run")

    def test_cache_hits_bypass_lanes(self):
        run_matrix(_matrix_requests(), jobs=1, lanes=4)
        run_matrix(_matrix_requests(), jobs=1, lanes=4)
        manifest = last_manifest()
        assert manifest.simulated == 0 and manifest.cache_hits == 6
        # nothing was simulated, so no cell carries a pack width
        assert all(c.lanes == 0 for c in manifest.cells)

    def test_duplicate_cells_dedup_inside_lane_matrix(self):
        requests = [
            RunRequest(workload="lammps", **FAST),
            RunRequest(workload="lammps", **FAST),
            RunRequest(workload="lammps", config="acb", **FAST),
        ]
        results = run_matrix(requests, jobs=1, lanes=4)
        manifest = last_manifest()
        assert manifest.simulated == 2
        assert sum(1 for c in manifest.cells if c.source == "dedup") == 1
        assert results[0].stats == results[1].stats

    def test_lane_packs_fan_out_over_pool(self):
        serial = run_matrix(_matrix_requests(), jobs=1, lanes=4)
        clear_memo()
        pooled = run_matrix(_matrix_requests(), jobs=2, lanes=4)
        manifest = last_manifest()
        assert manifest.lanes == 4 and manifest.simulated == 6
        for s, p in zip(serial, pooled):
            assert s.stats == p.stats

    def test_non_picklable_pack_falls_back_to_serial(self):
        workload = h2p_hammock_workload()
        workload.__class__ = type("LocalWorkload", (Workload,), {})
        requests = [
            RunRequest(workload=workload, **FAST),
            RunRequest(workload=workload, config="acb", **FAST),
            RunRequest(workload="lammps", **FAST),
            RunRequest(workload="lammps", config="acb", **FAST),
        ]
        results = run_matrix(requests, jobs=2, lanes=4)
        assert [r.workload for r in results] == ["h2p", "h2p", "lammps", "lammps"]
        assert all(c.source == "run" and c.lanes == 2
                   for c in last_manifest().cells)

    def test_lane_error_names_failing_cell(self):
        requests = [
            RunRequest(workload="lammps", **FAST),
            RunRequest(workload="lammps", config="no-such-config", **FAST),
        ]
        with pytest.raises(RuntimeError, match="lammps.*no-such-config"):
            run_matrix(requests, jobs=1, lanes=4)


class TestPoolLifecycle:
    def test_shutdown_pool_reaps_workers(self):
        import repro.harness.parallel as parallel

        run_matrix(_matrix_requests(), jobs=2)
        pool = parallel._POOL
        assert pool is not None
        workers = list(pool._processes.values())
        assert workers
        shutdown_pool()
        assert parallel._POOL is None and parallel._POOL_JOBS == 0
        for proc in workers:
            proc.join(timeout=10)
            assert not proc.is_alive()

    def test_shutdown_pool_idempotent(self):
        shutdown_pool()
        shutdown_pool()

    def test_atexit_hook_registered(self):
        import repro.harness.parallel as parallel

        # the module registers shutdown_pool with atexit exactly once at
        # import time, so a process never exits with live pool workers
        assert parallel._ATEXIT_REGISTERED is True


class TestCompareConfigs:
    def test_compare_configs_identical_across_job_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = compare_configs(MATRIX_NAMES, MATRIX_CONFIGS, **FAST)
        clear_memo()
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = compare_configs(MATRIX_NAMES, MATRIX_CONFIGS, **FAST)
        for name in MATRIX_NAMES:
            for config in MATRIX_CONFIGS:
                assert serial[name][config].stats == parallel[name][config].stats

    def test_compare_configs_shape_preserved(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        out = compare_configs(["lammps"], ["baseline", "acb"], **FAST)
        assert set(out) == {"lammps"}
        assert set(out["lammps"]) == {"baseline", "acb"}


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() >= 1
