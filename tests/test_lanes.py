"""Tests for the batched structure-of-arrays lane engine (core/lanes.py).

The lane engine's whole contract is *bit-identical SimStats*: a cell run
inside a lane pack — over the shared :class:`FuncTrace` replay columns,
sliced into round-robin quanta — must produce exactly the stats the scalar
driver produces.  This suite pins that three ways:

* :class:`LaneFunc` replay vs. a live :class:`FunctionalExecutor`, step by
  step and through snapshot/restore rewinds;
* a full ``Core`` run over an injected ``LaneFunc`` against the committed
  ``tests/golden/simstats_fuzz.json`` goldens, every scheme configuration;
* ``run_matrix(..., lanes=W)`` for W in {1, 4, 16} against the scalar
  dispatch on fuzz workloads, and against the committed
  ``tests/golden/simstats_traces.json`` goldens on the four mini-traces.
"""

from __future__ import annotations

import json

import pytest

from repro.core import SKYLAKE_LIKE, Core
from repro.core.lanes import (
    DEFAULT_LANES,
    FuncTrace,
    LaneFunc,
    pack_key,
    plan_packs,
    resolve_lanes,
    run_pack,
)
from repro.harness.parallel import RunRequest, last_manifest, run_matrix, shutdown_pool
from repro.harness.runner import clear_memo
from repro.validate.fuzz import random_spec
from repro.workloads.generator import build_workload
from repro.workloads.workload import FunctionalExecutor
from tests.test_engine_golden_stats import (
    CONFIGS as FUZZ_CONFIGS,
    GOLDEN_PATH as FUZZ_GOLDEN_PATH,
    INSTRUCTIONS as FUZZ_INSTRUCTIONS,
    SEEDS as FUZZ_SEEDS,
)
from tests.test_trace_golden import (
    CONFIGS as TRACE_CONFIGS,
    GOLDEN_PATH as TRACE_GOLDEN_PATH,
    MEASURE as TRACE_MEASURE,
    MINI_TRACES,
    WARMUP as TRACE_WARMUP,
)

#: the ISSUE's lane-count sweep: degenerate single-lane packs, the common
#: case, and packs wider than most config sweeps (stragglers + early retire).
WIDTHS = (1, 4, 16)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()
    shutdown_pool()


# ----------------------------------------------------------------------
# resolve_lanes / REPRO_LANES
# ----------------------------------------------------------------------
class TestResolveLanes:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "6")
        assert resolve_lanes(3) == 3
        assert resolve_lanes(0) == 0

    def test_negative_clamps_to_scalar(self):
        assert resolve_lanes(-4) == 0

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "12")
        assert resolve_lanes() == 12

    @pytest.mark.parametrize("spelling", ["on", "true", "YES"])
    def test_env_on_means_default_width(self, monkeypatch, spelling):
        monkeypatch.setenv("REPRO_LANES", spelling)
        assert resolve_lanes() == DEFAULT_LANES

    @pytest.mark.parametrize("spelling", ["", "0", "off", "False", "no"])
    def test_env_off_spellings(self, monkeypatch, spelling):
        monkeypatch.setenv("REPRO_LANES", spelling)
        assert resolve_lanes() == 0

    def test_env_unset_is_scalar(self, monkeypatch):
        monkeypatch.delenv("REPRO_LANES", raising=False)
        assert resolve_lanes() == 0

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "many")
        with pytest.raises(ValueError, match="REPRO_LANES"):
            resolve_lanes()


# ----------------------------------------------------------------------
# FuncTrace / LaneFunc replay fidelity
# ----------------------------------------------------------------------
def _fuzz_workload(seed: int = 0):
    return build_workload(random_spec(seed))


class TestFuncTrace:
    def test_columns_match_live_executor(self):
        workload = _fuzz_workload(3)
        trace = FuncTrace(workload)
        trace.extend_to(500)
        live = FunctionalExecutor(workload)
        for i in range(500):
            pc = live.next_pc
            taken, nxt, addr = live.step_fast(pc)
            assert trace.pcs[i] == pc
            assert trace.next_pcs[i] == nxt
            assert trace.mem_addrs[i] == addr
            want = -1 if taken is None else (1 if taken else 0)
            assert trace.taken[i] == want

    def test_extend_is_incremental(self):
        trace = FuncTrace(_fuzz_workload(1))
        trace.extend_to(10)
        assert trace.length == 10
        trace.extend_to(5)          # no shrink, no rework
        assert trace.length == 10
        trace.extend_to(40)
        assert trace.length == 40
        assert len(trace.pcs) == len(trace.taken) == len(trace.next_pcs) == 40
        assert len(trace.mem_addrs) == 40


class TestLaneFunc:
    def test_step_fast_matches_live_executor_exactly(self):
        workload = _fuzz_workload(5)
        lane = LaneFunc(FuncTrace(workload))
        live = FunctionalExecutor(workload)
        for _ in range(800):
            pc = live.next_pc
            assert lane.next_pc == pc
            got = lane.step_fast(pc)
            want = live.step_fast(pc)
            # exact tuple equality including the None/False/True tri-state
            assert got == want
            assert [type(g) for g in got] == [type(w) for w in want]
        assert lane.instr_count == live.instr_count == 800

    def test_snapshot_restore_replays_identically(self):
        lane = LaneFunc(FuncTrace(_fuzz_workload(2)))
        for _ in range(100):
            lane.step_fast(lane.next_pc)
        snap = lane.snapshot()
        first = [lane.step_fast(lane.next_pc) for _ in range(50)]
        lane.restore(snap)
        assert lane.instr_count == 100
        replay = [lane.step_fast(lane.next_pc) for _ in range(50)]
        assert first == replay

    def test_out_of_sync_pc_raises(self):
        lane = LaneFunc(FuncTrace(_fuzz_workload(0)))
        good_pc = lane.next_pc
        with pytest.raises(RuntimeError, match="out of sync"):
            lane.step_fast(good_pc + 1)
        # the failed call must not have advanced the cursor
        assert lane.next_pc == good_pc

    def test_lanes_share_one_trace(self):
        trace = FuncTrace(_fuzz_workload(4))
        a, b = LaneFunc(trace), LaneFunc(trace)
        for _ in range(300):
            a.step_fast(a.next_pc)
        # b replays the columns a forced the leader to materialize
        live = FunctionalExecutor(trace.workload)
        for _ in range(300):
            pc = live.next_pc
            assert b.step_fast(pc) == live.step_fast(pc)
        assert trace.leader.instr_count == trace.length
        assert trace.length >= 300


# ----------------------------------------------------------------------
# engine-level bit-identity: Core over LaneFunc vs. committed goldens
# ----------------------------------------------------------------------
def lane_simulate(seed: int, config: str) -> dict:
    """`test_engine_golden_stats.simulate`, but over an injected LaneFunc."""
    from repro.harness.runner import SCHEME_FACTORIES, split_config

    workload = _fuzz_workload(seed)
    scheme_name, predictor = split_config(config)
    scheme = SCHEME_FACTORIES[scheme_name]()
    if scheme_name == "oracle-bp":
        predictor = "oracle"
    core = Core(workload, SKYLAKE_LIKE, scheme=scheme, predictor=predictor,
                func=LaneFunc(FuncTrace(workload)))
    stats = core.run(FUZZ_INSTRUCTIONS)
    return json.loads(json.dumps(stats.to_dict()))


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_lanefunc_core_matches_fuzz_goldens(seed):
    with open(FUZZ_GOLDEN_PATH) as handle:
        golden = json.load(handle)
    for config in FUZZ_CONFIGS:
        got = lane_simulate(seed, config)
        assert got == golden[str(seed)][config], (
            f"LaneFunc replay drifted from the scalar golden for "
            f"seed={seed} config={config!r}"
        )


# ----------------------------------------------------------------------
# pack planning
# ----------------------------------------------------------------------
class TestPackPlanning:
    def test_pack_key_groups_by_workload_name(self):
        a = RunRequest(workload="lammps", config="baseline")
        b = RunRequest(workload="lammps", config="acb")
        c = RunRequest(workload="gcc", config="baseline")
        assert pack_key(a) == pack_key(b)
        assert pack_key(a) != pack_key(c)

    def test_pack_key_adhoc_objects_by_identity(self):
        w1, w2 = _fuzz_workload(0), _fuzz_workload(0)
        assert pack_key(RunRequest(workload=w1)) == pack_key(RunRequest(workload=w1))
        # equal-looking objects may carry distinct behaviour registries
        assert pack_key(RunRequest(workload=w1)) != pack_key(RunRequest(workload=w2))

    def test_plan_packs_splits_at_width(self):
        requests = [RunRequest(workload="lammps", config=f"c{i}") for i in range(5)]
        requests += [RunRequest(workload="gcc", config="baseline")]
        packs = plan_packs(range(6), requests, width=2)
        assert sorted(len(p) for p in packs) == [1, 1, 2, 2]
        for pack in packs:
            keys = {pack_key(requests[i]) for i in pack}
            assert len(keys) == 1
        assert sorted(i for p in packs for i in p) == list(range(6))

    def test_plan_packs_width_floor_is_one(self):
        requests = [RunRequest(workload="lammps"), RunRequest(workload="lammps")]
        packs = plan_packs(range(2), requests, width=0)
        assert sorted(len(p) for p in packs) == [1, 1]


# ----------------------------------------------------------------------
# pack execution parity: run_matrix lanes=W vs. scalar, W in {1, 4, 16}
# ----------------------------------------------------------------------
FAST = dict(warmup=800, measure=1200)
PACK_CONFIGS = ("baseline", "acb", "acb-dmp-reconv", "acb@bullseye",
                "oracle-bp", "dmp")


@pytest.mark.parametrize("width", WIDTHS)
def test_fuzz_matrix_parity_across_widths(width):
    """Lane packs over ad-hoc fuzz workloads match the scalar dispatch."""
    def matrix():
        # fresh objects per dispatch: ad-hoc workloads are stateful
        w0, w1 = _fuzz_workload(0), _fuzz_workload(8)
        return [
            RunRequest(workload=w, config=config, **FAST)
            for w in (w0, w1)
            for config in PACK_CONFIGS
        ]

    scalar = run_matrix(matrix(), jobs=1, lanes=0)
    laned = run_matrix(matrix(), jobs=1, lanes=width)
    manifest = last_manifest()
    assert manifest.lanes == width
    assert all(c.source == "run" for c in manifest.cells)
    assert all(0 < c.lanes <= width for c in manifest.cells)
    for s, l in zip(scalar, laned):
        assert s.workload == l.workload and s.config == l.config
        assert s.stats == l.stats, (
            f"lanes={width} drifted from scalar for "
            f"{s.workload} × {s.config}"
        )


@pytest.mark.parametrize("width", WIDTHS)
def test_trace_matrix_matches_goldens(width):
    """Mini-trace cells run through lane packs match the committed goldens."""
    with open(TRACE_GOLDEN_PATH) as handle:
        golden = json.load(handle)
    requests = [
        RunRequest(workload=f"trace:{name}", config=config,
                   warmup=TRACE_WARMUP, measure=TRACE_MEASURE)
        for name in MINI_TRACES
        for config in TRACE_CONFIGS
    ]
    results = run_matrix(requests, jobs=1, lanes=width)
    for request, result in zip(requests, results):
        name = request.workload.split(":", 1)[1]
        got = json.loads(json.dumps(result.stats.to_dict()))
        assert got == golden[name][request.config], (
            f"lanes={width} drifted from the trace golden for "
            f"{name} × {request.config}"
        )


def test_run_pack_straggler_retires_early():
    """Lanes with different windows finish independently and stay exact."""
    workload = "lammps"
    requests = [
        RunRequest(workload=workload, config="baseline", warmup=200, measure=400),
        RunRequest(workload=workload, config="acb", warmup=800, measure=2400),
    ]
    outcomes = run_pack(requests, slice_size=256)
    assert len(outcomes) == 2
    clear_memo()
    scalar = run_matrix(requests, jobs=1, lanes=0)
    for (result, wall), ref in zip(outcomes, scalar):
        assert wall >= 0
        assert result.stats == ref.stats


def test_single_lane_pack_matches_scalar():
    """lanes=1 (pure SoA accessors, no sharing) is still bit-identical."""
    request = RunRequest(workload="gcc", config="acb", **FAST)
    ((result, _),) = run_pack([request])
    clear_memo()
    (scalar,) = run_matrix([request], jobs=1, lanes=0)
    assert result.stats == scalar.stats
