"""Unit tests for the instruction model."""

import pytest

from repro.isa import (
    ALL_REGS,
    FLAGS,
    NUM_GPR,
    NUM_LOGICAL,
    Instruction,
    UopClass,
    latency_of,
    port_group_of,
    reg_name,
    registers,
)
from repro.isa.dyninst import ROLE_BRANCH, ST_SQUASHED, DynInst


class TestRegisters:
    def test_layout(self):
        assert NUM_LOGICAL == NUM_GPR + 1
        assert FLAGS == NUM_GPR
        assert len(ALL_REGS) == NUM_LOGICAL

    def test_names(self):
        assert reg_name(0) == "R0"
        assert reg_name(FLAGS) == "FLAGS"

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            reg_name(NUM_LOGICAL)

    def test_is_valid(self):
        assert registers.is_valid(0)
        assert registers.is_valid(FLAGS)
        assert not registers.is_valid(-1)
        assert not registers.is_valid(NUM_LOGICAL)


class TestOpcodes:
    def test_every_class_has_latency_and_port(self):
        for uop in UopClass:
            assert latency_of(uop) >= 1
            assert port_group_of(uop) in ("alu", "load", "store")

    def test_load_store_ports(self):
        assert port_group_of(UopClass.LOAD) == "load"
        assert port_group_of(UopClass.STORE) == "store"

    def test_div_slowest_integer_op(self):
        assert (latency_of(UopClass.DIV) > latency_of(UopClass.MUL)
                > latency_of(UopClass.ALU))


class TestInstruction:
    def test_plain_alu(self):
        instr = Instruction(pc=0, uop=UopClass.ALU, dst=1, srcs=(2, 3))
        assert instr.writes_register
        assert not instr.is_branch
        assert instr.successors() == (1,)

    def test_cond_branch_successors(self):
        instr = Instruction(pc=5, uop=UopClass.BRANCH, target=9, cond=True)
        assert instr.is_cond_branch
        assert set(instr.successors()) == {6, 9}

    def test_uncond_branch_successors(self):
        instr = Instruction(pc=5, uop=UopClass.BRANCH, target=2)
        assert instr.successors() == (2,)
        assert not instr.is_cond_branch

    def test_forward_backward(self):
        fwd = Instruction(pc=1, uop=UopClass.BRANCH, target=8, cond=True)
        bwd = Instruction(pc=8, uop=UopClass.BRANCH, target=1, cond=True)
        assert fwd.is_forward_branch
        assert not bwd.is_forward_branch

    def test_branch_needs_target(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, uop=UopClass.BRANCH, cond=True)

    def test_non_branch_cannot_be_conditional(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, uop=UopClass.ALU, dst=1, cond=True)

    def test_non_branch_cannot_have_target(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, uop=UopClass.ALU, dst=1, target=4)

    def test_invalid_registers_rejected(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, uop=UopClass.ALU, dst=99)
        with pytest.raises(ValueError):
            Instruction(pc=0, uop=UopClass.ALU, dst=1, srcs=(99,))

    def test_negative_pc_rejected(self):
        with pytest.raises(ValueError):
            Instruction(pc=-1, uop=UopClass.NOP)

    def test_store_does_not_write_register(self):
        store = Instruction(pc=0, uop=UopClass.STORE, srcs=(1, 2))
        assert not store.writes_register
        assert store.is_mem and store.is_store and not store.is_load


class TestDynInst:
    def _branch(self):
        return Instruction(pc=3, uop=UopClass.BRANCH, target=7, cond=True)

    def test_initial_state(self):
        dyn = DynInst(0, self._branch())
        assert not dyn.is_predicated
        assert not dyn.mispredicted
        assert not dyn.squashed

    def test_mispredicted_requires_real_prediction(self):
        dyn = DynInst(0, self._branch())
        dyn.taken = True
        dyn.pred_taken = False
        assert not dyn.mispredicted  # predicted flag not set
        dyn.predicted = True
        assert dyn.mispredicted

    def test_predicated_instances_never_mispredict(self):
        dyn = DynInst(0, self._branch())
        dyn.acb_id = 0
        dyn.acb_role = ROLE_BRANCH
        dyn.taken = True
        dyn.pred_taken = False
        assert dyn.is_predicated
        assert not dyn.mispredicted

    def test_squashed_flag(self):
        dyn = DynInst(0, self._branch())
        dyn.state = ST_SQUASHED
        assert dyn.squashed
