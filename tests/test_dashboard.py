"""The self-contained dashboard: structure, self-containment, CLI.

The contract under test (docs/dashboard.md):

* **self-containment** — the emitted HTML contains no external URL at
  all (the literal substring ``"htt" + "p"`` never appears), so the file
  works from ``file://`` on an air-gapped machine;
* **fidelity** — every stored run's ``run_id`` appears in the document,
  the speedup table compares configs only against their same-window
  baseline, and timeline artifacts round-trip through the parser;
* **robustness** — an empty store still renders a valid document.
"""

from __future__ import annotations

import json

import pytest

from repro.dashboard import collect, generate, parse_timeline, render_dashboard
from repro.dashboard.data import DashboardData, geomean
from repro.harness.cache import set_active_store
from repro.harness.parallel import RunRequest, run_matrix
from repro.harness.runner import clear_memo
from repro.service.store import ExperimentStore

# Distinct windows so this module controls its own memo/cache hits.
WARMUP, MEASURE = 1500, 1700


@pytest.fixture
def populated_store(tmp_path):
    """A store holding a small real matrix, plus two bench reports."""
    db = tmp_path / "exp.sqlite"
    store = ExperimentStore(str(db))
    previous = set_active_store(store)
    clear_memo()
    try:
        run_matrix([
            RunRequest(w, c, warmup=WARMUP, measure=MEASURE)
            for w in ("mcf", "gcc") for c in ("baseline", "acb")
        ], backend="serial")
    finally:
        clear_memo()
        set_active_store(previous)
    for tag, factor in (("old", 1.0), ("new", 1.25)):
        report = {
            "schema": "repro-bench", "schema_version": 1, "tag": tag,
            "created": f"2026-08-0{1 if tag == 'old' else 2}T00:00:00Z",
            "runs": [
                {"group": "fig6", "cycles_per_s": 50000.0 * factor},
                {"group": "micro", "cycles_per_s": 90000.0 * factor},
            ],
        }
        with open(tmp_path / f"BENCH_{tag}.json", "w") as handle:
            json.dump(report, handle)
    return store, tmp_path


def test_collect_speedups_and_branches(populated_store):
    store, tmp_path = populated_store
    data = collect(db_path=str(store.path), bench_dir=str(tmp_path))
    assert len(data.runs) == 4
    assert [s["config"] for s in data.speedups] == ["acb"]
    assert data.speedups[0]["count"] == 2  # mcf and gcc both have baselines
    acb = data.speedups[0]
    assert acb["geomean"] == pytest.approx(
        geomean([r["speedup"] for r in acb["per_workload"]])
    )
    assert data.branches  # per_branch stats surfaced
    assert data.bench_reports == 2
    assert [p["tag"] for p in data.bench["fig6"]] == ["old", "new"]


def test_dashboard_html_structure(populated_store, tmp_path):
    store, bench_dir = populated_store
    out = tmp_path / "dash.html"
    report = generate(db_path=str(store.path), out_path=str(out),
                      bench_dir=str(bench_dir))
    assert report.runs == 4 and report.bench_reports == 2

    document = out.read_text(encoding="utf-8")
    # self-containment: no external URL anywhere, ever
    assert ("htt" + "p") not in document
    assert "<script src" not in document and "@import" not in document
    # every stored run is on the page, identified by its run_id
    for run in store.query_runs(limit=100):
        assert run["run_id"] in document
    assert document.count("<table") >= 3  # speedups, branches, runs
    assert "Speedup vs baseline" in document
    assert "<svg" in document  # inline charts, not <img> references
    assert "prefers-color-scheme" in document  # dark mode ships by default


def test_dashboard_empty_store_renders(tmp_path):
    out = tmp_path / "empty.html"
    report = generate(db_path=str(tmp_path / "none.sqlite"),
                      out_path=str(out), bench_dir=str(tmp_path))
    assert report.runs == 0
    document = out.read_text(encoding="utf-8")
    assert ("htt" + "p") not in document
    assert "store is" in document  # the empty-state message


def test_render_is_pure_function_of_data():
    data = DashboardData(title="t <&> title")
    first = render_dashboard(data)
    assert first == render_dashboard(data)
    assert "t &lt;&amp;&gt; title" in first  # escaping


def test_parse_timeline_roundtrip():
    text = "\n".join([
        "# per-branch timeline — window summary",
        "",
        "branch pc=64: 3 occurrences in window (1 mispredicted, "
        "1 predicated)",
        "  cycle       12  seq=4      pred=T  actual=NT MISPREDICT",
        "  cycle       40  seq=9      pred=T  actual=T  correct",
        "  cycle       77  seq=13     pred=NT actual=T  "
        "predicated (saved flush)",
        "branch pc=96: 1 occurrences in window (0 mispredicted, "
        "0 predicated)",
        "  ... 4 older occurrences omitted ...",
        "  cycle       90  seq=21     pred=T  actual=T  correct",
    ])
    branches = parse_timeline(text)
    assert [b["pc"] for b in branches] == [64, 96]
    first = branches[0]
    assert first["mispredicted"] == 1
    assert [o["cycle"] for o in first["occurrences"]] == [12, 40, 77]
    assert first["occurrences"][0]["outcome"] == "MISPREDICT"
    assert first["occurrences"][2]["outcome"] == "predicated (saved flush)"


def test_timeline_artifact_reaches_the_page(populated_store, tmp_path):
    store, bench_dir = populated_store
    timeline = tmp_path / "timeline.txt"
    timeline.write_text("\n".join([
        "# per-branch timeline — window summary",
        "branch pc=640: 2 occurrences in window (1 mispredicted, "
        "0 predicated)",
        "  cycle       15  seq=2      pred=T  actual=NT MISPREDICT",
        "  cycle       55  seq=8      pred=T  actual=T  correct",
    ]), encoding="utf-8")
    store.record_job("job-tl", "trace", {"workload": "mcf"})
    store.add_artifact("job-tl", "mcf-acb.timeline", "timeline",
                       str(timeline))

    data = collect(db_path=str(store.path), bench_dir=str(bench_dir))
    assert [t["job_id"] for t in data.timelines] == ["job-tl"]
    assert data.timelines[0]["branches"][0]["pc"] == 640
    document = render_dashboard(data)
    assert "Per-branch timelines" in document
    assert "mcf-acb.timeline" in document


def test_dashboard_cli(populated_store, tmp_path, capsys):
    from repro.__main__ import main

    store, bench_dir = populated_store
    out = tmp_path / "cli.html"
    code = main(["dashboard", "--db", str(store.path), "--out", str(out),
                 "--bench-dir", str(bench_dir)])
    assert code == 0
    assert out.exists()
    captured = capsys.readouterr()
    assert "self-contained" in captured.out
