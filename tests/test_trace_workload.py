"""Trace replay: reconstruction fidelity, registry, H2P gate, CLI, cache.

The claim behind ``repro.workloads.trace.replay`` is strong: a consistent
branch trace (every ``(pc, direction)`` always followed by the same next
branch) replays through the reconstructed program with *exactly* the
recorded interleaving.  These tests assert that claim on the committed
mini-traces, plus everything around it — the ``trace:`` registry, the
H2P concentration acceptance gate, deterministic repeat runs under ACB
predication, the converter CLI, and content-addressed cache keys.
"""

from __future__ import annotations

import os

import pytest

from repro import __main__ as cli
from repro.harness.runner import (
    normalized_run_key,
    resolve_workload,
    run_workload,
    scheme_for,
)
from repro.workloads.trace import (
    H2P_MIN_SHARE,
    TRACE_PREFIX,
    BranchRecord,
    TraceMeta,
    TraceReplayWorkload,
    build_trace_workload,
    is_trace_name,
    load_branch_trace,
    load_trace_workload,
    registered_traces,
    resolve_trace_path,
    summarize,
    trace_content_digest,
    trace_workload_names,
    write_trace,
)
from repro.workloads.workload import FunctionalExecutor

MINI_TRACES = ("h2p_loop", "gcc_like", "server_like", "mixed_small")

#: fast simulation windows for replay runs in unit-test time
FAST = dict(warmup=2500, measure=2500)


def replay_events(workload: TraceReplayWorkload, n: int) -> list:
    """First *n* ``(recorded_pc, taken)`` events of the replayed stream."""
    executor = FunctionalExecutor(workload)
    events = []
    pc = 0
    while len(events) < n:
        taken, next_pc, _mem = executor.step_fast(pc)
        if taken is not None and pc in workload.pc_map:
            events.append((workload.pc_map[pc], taken))
        pc = next_pc
    return events


class TestRegistry:
    def test_mini_traces_registered(self):
        registered = registered_traces()
        for name in MINI_TRACES:
            assert name in registered, f"{name} missing from tests/traces/"
            assert os.path.exists(registered[name])
        assert set(trace_workload_names()) >= {
            TRACE_PREFIX + name for name in MINI_TRACES
        }

    def test_is_trace_name(self):
        assert is_trace_name("trace:h2p_loop")
        assert not is_trace_name("lammps")
        assert not is_trace_name(123)

    def test_resolve_by_name_and_path(self, tmp_path):
        by_name = resolve_trace_path("trace:h2p_loop")
        assert by_name.endswith("h2p_loop.rbt.gz")
        path = str(tmp_path / "copy.rbt.gz")
        with open(path, "wb") as out:
            out.write(open(by_name, "rb").read())
        assert resolve_trace_path(f"trace:{path}") == path

    def test_unknown_reference_lists_known(self):
        with pytest.raises(KeyError, match="h2p_loop"):
            resolve_trace_path("trace:no_such_trace")

    def test_env_override(self, tmp_path, monkeypatch):
        src = resolve_trace_path("trace:h2p_loop")
        with open(tmp_path / "only_one.rbt.gz", "wb") as out:
            out.write(open(src, "rb").read())
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        assert set(registered_traces()) == {"only_one"}


class TestReconstruction:
    @pytest.mark.parametrize("name", MINI_TRACES)
    def test_exact_interleaving(self, name):
        """The replayed stream reproduces the recorded event sequence."""
        _, records = load_branch_trace(resolve_trace_path(TRACE_PREFIX + name))
        workload = load_trace_workload(TRACE_PREFIX + name)
        n = min(len(records), 3000)
        assert replay_events(workload, n) == [
            (rec.pc, rec.taken) for rec in records[:n]
        ]
        assert workload.inconsistent_edges == 0

    def test_replay_wraps_to_start(self):
        _, records = load_branch_trace(resolve_trace_path("trace:h2p_loop"))
        workload = load_trace_workload("trace:h2p_loop")
        total = len(records)
        events = replay_events(workload, total + 100)
        assert events[total:] == [(r.pc, r.taken) for r in records[:100]]

    def test_workload_shape(self):
        workload = load_trace_workload("trace:gcc_like")
        assert workload.category == "TRACE"
        assert workload.paper_tag == "trace"
        assert workload.name == "trace:gcc_like"
        assert workload.meta is not None and workload.meta.acb_scale >= 1
        assert workload.acb_scale == workload.meta.acb_scale
        assert len(workload.recorded_pcs) == len(workload.pc_map)
        assert len(workload.program) > len(workload.pc_map)

    def test_max_static_cap_drops_cold_pcs(self):
        records = [
            BranchRecord(0x100 + 8 * (i % 40), (i % 5) != 0, 0)
            for i in range(2000)
        ]
        meta = TraceMeta(name="capped", records=len(records))
        workload = build_trace_workload(meta, records, max_static=16)
        assert workload.dropped_static == 24
        assert len(workload.recorded_pcs) == 16

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            build_trace_workload(TraceMeta(name="none", records=0), [])


class TestH2PProfile:
    @pytest.mark.parametrize("name", MINI_TRACES)
    def test_mini_trace_concentration(self, name):
        """Top-32 static branches own >=80% of TAGE mispredictions."""
        _, records = load_branch_trace(resolve_trace_path(TRACE_PREFIX + name))
        summary = summarize(records)
        assert summary.h2p_profile_ok, (
            f"{name}: top-{summary.top_k} share {summary.top_k_share:.1%} "
            f"is below the H2P acceptance profile ({H2P_MIN_SHARE:.0%})"
        )
        assert summary.tage_mispredicts > 0
        assert 0.2 < summary.taken_rate < 0.8

    def test_format_mentions_verdict(self):
        _, records = load_branch_trace(resolve_trace_path("trace:h2p_loop"))
        text = summarize(records).format()
        assert "H2P profile ok" in text


class TestDeterminism:
    @pytest.mark.parametrize("config", ("baseline", "acb"))
    def test_two_runs_identical(self, config):
        """Fresh load + fresh run, twice, bit-identical SimStats."""
        outs = []
        for _ in range(2):
            workload = load_trace_workload("trace:mixed_small")
            result = run_workload(workload, config, **FAST)
            outs.append(result.stats.to_dict())
        assert outs[0] == outs[1]

    def test_acb_predicates_trace_hammocks(self):
        workload = load_trace_workload("trace:h2p_loop")
        result = run_workload(workload, "acb", **FAST)
        assert result.stats.predicated_instances > 0

    def test_trace_scheme_uses_proportional_scale(self):
        workload = load_trace_workload("trace:h2p_loop")
        scheme = scheme_for(workload, "acb")
        from repro.harness.runner import reduced_acb_config

        expected_window = (
            reduced_acb_config().criticality_window
            * 10 // workload.acb_scale
        )
        assert scheme.config.criticality_window == expected_window


class TestCacheKeys:
    def test_key_carries_content_digest(self):
        key = normalized_run_key("trace:h2p_loop", "acb", warmup=100, measure=100)
        digest = trace_content_digest(resolve_trace_path("trace:h2p_loop"))
        assert key[0] == f"trace:h2p_loop@{digest}"

    def test_editing_trace_changes_key(self, tmp_path):
        path = str(tmp_path / "mut.rbt.gz")
        meta = TraceMeta(name="mut", records=0)
        write_trace(path, [BranchRecord(0x10, True, 0x20)], meta)
        key_a = normalized_run_key(f"trace:{path}", "acb", warmup=1, measure=1)
        write_trace(path, [BranchRecord(0x10, False, 0x20)], meta)
        key_b = normalized_run_key(f"trace:{path}", "acb", warmup=1, measure=1)
        assert key_a != key_b

    def test_suite_names_unaffected(self):
        key = normalized_run_key("lammps", "acb", warmup=100, measure=100)
        assert key[0] == "lammps"

    def test_resolve_workload_dispatches(self):
        assert isinstance(resolve_workload("trace:h2p_loop"), TraceReplayWorkload)
        assert not isinstance(resolve_workload("lammps"), TraceReplayWorkload)


class TestConverterCli:
    def _text_trace(self, tmp_path, lines: int = 900) -> str:
        path = str(tmp_path / "input.cbp")
        with open(path, "w") as out:
            for i in range(lines):
                out.write(f"0x{0x1000 + 8 * (i % 7):x} {'T' if i % 3 else 'N'}\n")
        return path

    def test_convert_writes_runnable_trace(self, tmp_path, capsys):
        src = self._text_trace(tmp_path)
        out = str(tmp_path / "converted.rbt.gz")
        rc = cli.main(["--no-cache", "convert-trace", src, "--out", out,
                       "--window", "500", "--offset", "100"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "records          500" in printed
        assert "top-32 share" in printed
        meta, records = load_branch_trace(out)
        assert meta.records == len(records) == 500
        assert meta.window_offset == 100
        assert meta.source_records == 900
        workload = load_trace_workload(f"trace:{out}")
        assert replay_events(workload, 50) == [
            (r.pc, r.taken) for r in records[:50]
        ]

    def test_stats_only_writes_nothing(self, tmp_path, capsys, monkeypatch):
        src = self._text_trace(tmp_path)
        monkeypatch.chdir(tmp_path)
        rc = cli.main(["--no-cache", "convert-trace", src, "--stats-only"])
        assert rc == 0
        assert "static branches" in capsys.readouterr().out
        assert not (tmp_path / ".repro_traces").exists()

    def test_bad_input_is_a_clean_error(self, tmp_path, capsys):
        bad = str(tmp_path / "bad.rbt.gz")
        with open(bad, "wb") as out:
            out.write(b"\x1f\x8b not actually gzip")
        rc = cli.main(["--no-cache", "convert-trace", bad])
        assert rc == 2
        assert "convert-trace:" in capsys.readouterr().err

    def test_offset_past_end_is_a_clean_error(self, tmp_path, capsys):
        src = self._text_trace(tmp_path, lines=10)
        rc = cli.main(["--no-cache", "convert-trace", src, "--offset", "50"])
        assert rc == 2
        assert "past the end" in capsys.readouterr().err

    def test_run_command_accepts_trace_ref(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "1500")
        monkeypatch.setenv("REPRO_MEASURE", "1500")
        rc = cli.main(["--no-cache", "run", "trace:h2p_loop",
                       "--config", "baseline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:h2p_loop [TRACE] under baseline:" in out

    def test_run_command_rejects_unknown_trace(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["run", "trace:definitely_missing"])
        assert "not a registered mini-trace" in capsys.readouterr().err
