"""Tests for the experiment harness (runner, reporting, drivers)."""

import os

import pytest

from repro.harness import (
    compare_configs,
    format_table,
    geomean,
    pct,
    per_category,
    run_workload,
)
from repro.harness.experiments import (
    eq1_profitability,
    experiment_workloads,
    table1_storage,
    table2_core_params,
    table3_workloads,
)
from repro.harness.runner import SCHEME_FACTORIES
from tests.conftest import h2p_hammock_workload


FAST = dict(warmup=1000, measure=2500)


class TestReporting:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([1.0]) == 1.0

    def test_geomean_bounded(self):
        vals = [0.5, 1.3, 2.0]
        g = geomean(vals)
        assert min(vals) <= g <= max(vals)

    def test_pct(self):
        assert pct(1.08) == "+8.0%"
        assert pct(0.95) == "-5.0%"

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "33" in lines[3]

    def test_per_category(self):
        out = per_category({"x": 2.0, "y": 8.0, "z": 3.0},
                           {"x": "A", "y": "A", "z": "B"})
        assert out["A"] == pytest.approx(4.0)
        assert out["B"] == pytest.approx(3.0)


class TestRunner:
    def test_all_configs_run(self):
        workload = h2p_hammock_workload()
        for config in SCHEME_FACTORIES:
            result = run_workload(h2p_hammock_workload(), config, **FAST)
            assert result.stats.instructions >= FAST["measure"], config

    def test_unknown_config_raises(self):
        with pytest.raises(ValueError):
            run_workload(h2p_hammock_workload(), "magic", **FAST)

    def test_oracle_bp_has_no_flushes(self):
        result = run_workload(h2p_hammock_workload(), "oracle-bp", **FAST)
        assert result.stats.flushes == 0

    def test_acb_beats_baseline_on_h2p(self):
        base = run_workload(h2p_hammock_workload(), "baseline", warmup=4000, measure=4000)
        acb = run_workload(h2p_hammock_workload(), "acb", warmup=4000, measure=4000)
        assert acb.stats.cycles < base.stats.cycles

    def test_core_scale(self):
        narrow = run_workload(h2p_hammock_workload(ilp=10), "baseline", **FAST)
        wide = run_workload(h2p_hammock_workload(ilp=10), "baseline", core_scale=2, **FAST)
        assert wide.stats.cycles < narrow.stats.cycles

    def test_compare_configs_shape(self):
        out = compare_configs(["lammps"], ["baseline", "acb"], warmup=1500, measure=2000)
        assert set(out) == {"lammps"}
        assert set(out["lammps"]) == {"baseline", "acb"}

    def test_run_by_suite_name(self):
        result = run_workload("lammps", "baseline", **FAST)
        assert result.category == "Server"


class TestExperimentSelection:
    def test_default_is_representative(self):
        os.environ.pop("REPRO_SUITE", None)
        names = experiment_workloads()
        assert len(names) < 20

    def test_full_suite_env(self):
        os.environ["REPRO_SUITE"] = "full"
        try:
            assert len(experiment_workloads()) == 70
        finally:
            del os.environ["REPRO_SUITE"]

    def test_explicit_subset_passthrough(self):
        assert experiment_workloads(["a", "b"]) == ["a", "b"]


class TestStaticExperiments:
    def test_eq1_worked_examples(self):
        """The paper's worked example: body 16 needs ~10%, body 32 ~20%."""
        model = eq1_profitability()
        assert model["example_body16_rate"] == pytest.approx(0.10)
        assert model["example_body32_rate"] == pytest.approx(0.20)

    def test_table1_total(self):
        report = table1_storage()
        assert report["total_bytes"] == report["paper_total_bytes"] == 386

    def test_table2_parameters(self):
        table = table2_core_params()
        assert "Branch predictor" in table

    def test_table3_seventy_workloads(self):
        cats = table3_workloads()
        assert sum(len(v) for v in cats.values()) == 70
