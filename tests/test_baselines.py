"""Tests for the DMP / DMP-PBH / DHP baselines and the compiler pass."""

from repro.baselines import (
    DhpConfig,
    DhpScheme,
    DmpConfig,
    DmpPbhScheme,
    DmpScheme,
    profile_workload,
)
from repro.core import SKYLAKE_LIKE, Core
from repro.workloads import HammockSpec, WorkloadSpec, build_workload
from tests.conftest import h2p_hammock_workload, predictable_workload


def shape_workload(shape, train_shift=0.0, **kw):
    spec = WorkloadSpec(
        name=f"bl_{shape}",
        category="test",
        hammocks=(HammockSpec(shape=shape, taken_len=4, nt_len=4, p=0.4, **kw),),
        ilp=2,
        chain=1,
        memory="strided",
        train_shift=train_shift,
    )
    return build_workload(spec)


class TestProfiler:
    def test_rates_reflect_behavior(self):
        workload = shape_workload("if")
        profiles = profile_workload(workload, instructions=15_000)
        pc = workload.program.cond_branch_pcs()[0]
        assert pc in profiles
        assert 0.25 < profiles[pc].mispred_rate < 0.60

    def test_convergence_facts_attached(self):
        workload = shape_workload("if_else")
        profiles = profile_workload(workload, instructions=10_000)
        pc = workload.program.cond_branch_pcs()[0]
        prof = profiles[pc]
        assert prof.conv_type == 2
        assert prof.reconv_pc is not None
        assert prof.body_size > 0

    def test_profiles_training_input(self):
        """With a train shift, profiled rates differ from the test input's."""
        shifted = shape_workload("if", train_shift=-0.35)
        profiles = profile_workload(shifted, instructions=15_000)
        pc = shifted.program.cond_branch_pcs()[0]
        # training input has p≈0.05: far more predictable than the test input
        assert profiles[pc].mispred_rate < 0.15


class TestDmpSelection:
    def test_selects_h2p_convergent_branches(self):
        workload = h2p_hammock_workload()
        core = Core(workload, SKYLAKE_LIKE, scheme=DmpScheme())
        pc = workload.program.cond_branch_pcs()[0]
        assert pc in core.scheme.candidates

    def test_ignores_predictable_branches(self):
        workload = predictable_workload()
        core = Core(workload, SKYLAKE_LIKE, scheme=DmpScheme())
        assert not core.scheme.candidates

    def test_profile_mismatch_misses_targets(self):
        """Train/test input mismatch (Section II-B): a branch that is easy on
        the training input never becomes a DMP candidate, so the test-input
        mispredictions go unaddressed."""
        workload = shape_workload("if", train_shift=-0.38)  # p_train ≈ 0.02
        core = Core(workload, SKYLAKE_LIKE, scheme=DmpScheme())
        pc = workload.program.cond_branch_pcs()[0]
        assert pc not in core.scheme.candidates
        stats = core.run(6_000)
        assert stats.predicated_instances == 0
        assert stats.mispredicts > 100


class TestDmpRuntime:
    def test_predicates_and_saves_flushes(self):
        base = Core(h2p_hammock_workload(), SKYLAKE_LIKE).run(8_000)
        core = Core(h2p_hammock_workload(), SKYLAKE_LIKE, scheme=DmpScheme())
        stats = core.run(8_000)
        assert stats.predicated_instances > 100
        assert stats.flushes < base.flushes

    def test_confidence_gate_spares_confident_instances(self):
        """A moderately biased branch alternates between confident (normal
        speculation) and unconfident (predicated) instances."""
        workload = shape_workload("if")
        spec_p = 0.15
        workload = build_workload(WorkloadSpec(
            name="gate", category="test",
            hammocks=(HammockSpec(shape="if", nt_len=4, p=spec_p),),
            ilp=2, chain=1, memory="none",
        ))
        core = Core(workload, SKYLAKE_LIKE, scheme=DmpScheme())
        stats = core.run(10_000)
        pc = workload.program.cond_branch_pcs()[0]
        pcs = stats.per_branch[pc]
        assert pcs.predicated > 0
        assert pcs.predicated < pcs.executed  # some instances speculated

    def test_select_uops_injected(self):
        workload = h2p_hammock_workload()
        core = Core(workload, SKYLAKE_LIKE, scheme=DmpScheme())
        stats = core.run(8_000)
        assert stats.retired_uops > stats.instructions  # selects + false path

    def test_pbh_updates_history(self):
        assert DmpPbhScheme.updates_history_on_predication
        assert not DmpScheme.updates_history_on_predication

    def test_storage_is_confidence_table_only(self):
        scheme = DmpScheme()
        assert scheme.storage_bytes() == DmpConfig().confidence_size * 4 / 8


class TestDhp:
    def test_accepts_simple_short_hammock(self):
        workload = h2p_hammock_workload(body=3)
        core = Core(workload, SKYLAKE_LIKE, scheme=DhpScheme())
        pc = workload.program.cond_branch_pcs()[0]
        assert pc in core.scheme.candidates

    def test_rejects_store_in_body(self):
        workload = shape_workload("if", store_in_body=True)
        core = Core(workload, SKYLAKE_LIKE, scheme=DhpScheme())
        pc = workload.program.cond_branch_pcs()[0]
        assert pc not in core.scheme.candidates

    def test_rejects_long_bodies(self):
        workload = build_workload(WorkloadSpec(
            name="long", category="test",
            hammocks=(HammockSpec(shape="if", nt_len=20, p=0.4),),
            ilp=1, chain=1, memory="none",
        ))
        core = Core(workload, SKYLAKE_LIKE, scheme=DhpScheme())
        pc = workload.program.cond_branch_pcs()[0]
        assert pc not in core.scheme.candidates

    def test_rejects_type3(self):
        workload = shape_workload("type3")
        core = Core(workload, SKYLAKE_LIKE, scheme=DhpScheme())
        pc = workload.program.cond_branch_pcs()[0]
        assert pc not in core.scheme.candidates

    def test_config_tightens_body_limit(self):
        assert DhpConfig().max_body_size < DmpConfig().max_body_size

    def test_coverage_below_dmp(self):
        """DHP's restriction translates into lower coverage on a kernel with
        one simple and one complex hammock."""
        spec = WorkloadSpec(
            name="cover", category="test",
            hammocks=(
                HammockSpec(shape="if", nt_len=3, p=0.4),
                HammockSpec(shape="type3", taken_len=5, nt_len=5, p=0.4),
            ),
            ilp=2, chain=1, memory="none",
        )
        dmp = Core(build_workload(spec), SKYLAKE_LIKE, scheme=DmpScheme())
        dhp = Core(build_workload(spec), SKYLAKE_LIKE, scheme=DhpScheme())
        assert len(dhp.scheme.candidates) < len(dmp.scheme.candidates)
