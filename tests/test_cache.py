"""Tests for the persistent result cache (harness/cache.py)."""

import json

import pytest

import repro.harness.cache as cache_mod
from repro.core.stats import BranchPCStats, SimStats
from repro.harness.cache import ResultCache, set_active_cache
from repro.harness.runner import (
    clear_memo,
    normalized_run_key,
    run_workload,
)

FAST = dict(warmup=800, measure=1200)


@pytest.fixture
def cache(tmp_path):
    """A fresh enabled cache installed as the process-wide active cache."""
    cache = ResultCache(tmp_path / "cache")
    previous = set_active_cache(cache)
    clear_memo()
    yield cache
    set_active_cache(previous)
    clear_memo()


def _key(config="baseline", **kwargs):
    return normalized_run_key("lammps", config, warmup=800, measure=1200, **kwargs)


class TestStatsRoundTrip:
    def test_simstats_roundtrip(self):
        stats = run_workload("lammps", "acb", **FAST).stats
        assert stats.per_branch, "expected per-branch profiles"
        clone = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone == stats
        assert clone.per_branch == stats.per_branch

    def test_branch_pc_stats_roundtrip(self):
        stats = BranchPCStats(executed=10, mispredicted=3, predicated=1)
        assert BranchPCStats.from_dict(stats.to_dict()) == stats

    def test_unknown_fields_ignored(self):
        data = SimStats(cycles=10, instructions=5).to_dict()
        data["counter_from_the_future"] = 1
        assert SimStats.from_dict(data).cycles == 10


class TestHitMiss:
    def test_miss_then_hit(self, cache):
        first = run_workload("lammps", "baseline", **FAST)
        assert cache.counters.stores == 1
        clear_memo()  # fresh process: only the disk copy remains
        second = run_workload("lammps", "baseline", **FAST)
        assert cache.counters.hits == 1
        assert second.stats == first.stats

    def test_distinct_windows_are_distinct_cells(self, cache):
        run_workload("lammps", "baseline", warmup=800, measure=1200)
        run_workload("lammps", "baseline", warmup=800, measure=1300)
        assert cache.counters.stores == 2

    def test_oracle_bp_and_explicit_oracle_share_one_cell(self, cache):
        assert _key("oracle-bp") == _key("baseline", predictor="oracle")
        oracle_bp = run_workload("lammps", "oracle-bp", **FAST)
        clear_memo()
        explicit = run_workload("lammps", "baseline", predictor="oracle", **FAST)
        assert cache.counters.stores == 1, "second spelling must not re-simulate"
        assert cache.counters.hits == 1
        assert explicit.stats == oracle_bp.stats
        # each caller still sees its own configuration label
        assert oracle_bp.config == "oracle-bp"
        assert explicit.config == "baseline"

    def test_ad_hoc_configs_bypass_cache(self, cache):
        from repro.harness.runner import reduced_acb_config

        run_workload("lammps", "acb", acb_config=reduced_acb_config(), **FAST)
        assert cache.counters.stores == 0


class TestInvalidation:
    def test_schema_version_invalidates(self, cache, monkeypatch):
        run_workload("lammps", "baseline", **FAST)
        clear_memo()
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", 999_999)
        assert cache.get(_key()) is None
        run_workload("lammps", "baseline", **FAST)
        assert cache.counters.stores == 2, "stale schema must re-simulate"

    def test_stale_schema_in_payload_is_a_miss(self, cache):
        run_workload("lammps", "baseline", **FAST)
        path = cache.path_for(_key())
        payload = json.loads(path.read_text())
        payload["schema"] = -1
        path.write_text(json.dumps(payload))
        clear_memo()
        assert cache.get(_key()) is None

    def test_corrupted_file_warns_and_reruns(self, cache):
        run_workload("lammps", "baseline", **FAST)
        cache.path_for(_key()).write_text("{not json")
        clear_memo()
        with pytest.warns(RuntimeWarning, match="corrupted cache file"):
            result = run_workload("lammps", "baseline", **FAST)
        assert result.stats.cycles > 0
        assert cache.counters.errors == 1

    def test_truncated_payload_warns(self, cache):
        run_workload("lammps", "baseline", **FAST)
        path = cache.path_for(_key())
        path.write_text(json.dumps({"schema": cache_mod.CACHE_SCHEMA_VERSION}))
        with pytest.warns(RuntimeWarning, match="corrupted cache file"):
            assert cache.get(_key()) is None


class TestBypass:
    def test_disabled_cache_touches_no_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", enabled=False)
        previous = set_active_cache(cache)
        try:
            clear_memo()
            run_workload("lammps", "baseline", **FAST)
        finally:
            set_active_cache(previous)
            clear_memo()
        assert not (tmp_path / "cache").exists()
        assert cache.counters.stores == 0

    def test_from_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not ResultCache.from_env().enabled
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not ResultCache.from_env().enabled
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert ResultCache.from_env().enabled

    def test_from_env_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ResultCache.from_env().cache_dir == tmp_path / "elsewhere"


class TestCli:
    def test_no_cache_flag_bypasses(self, monkeypatch, tmp_path):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_WARMUP", "800")
        monkeypatch.setenv("REPRO_MEASURE", "1200")
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        clear_memo()
        assert main(["--no-cache", "run", "lammps", "--config", "baseline"]) == 0
        assert not (tmp_path / ".repro_cache").exists()

    def test_cache_dir_flag(self, monkeypatch, tmp_path):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_WARMUP", "800")
        monkeypatch.setenv("REPRO_MEASURE", "1200")
        clear_memo()
        cache_dir = tmp_path / "cli-cache"
        assert main(
            ["--cache-dir", str(cache_dir), "run", "lammps", "--config", "baseline"]
        ) == 0
        assert list(cache_dir.glob("*.json"))
