"""Property-based end-to-end invariants: random workload specs through the
generator and the core, under every scheme, must preserve the simulator's
global invariants (forward progress, consistent accounting)."""

from hypothesis import given, settings, strategies as st

from repro.acb import AcbScheme
from repro.baselines import DhpScheme, DmpScheme
from repro.core import Core, SKYLAKE_LIKE
from repro.harness.runner import reduced_acb_config
from repro.workloads import HammockSpec, WorkloadSpec, build_workload

hammock_strategy = st.builds(
    HammockSpec,
    shape=st.sampled_from(["if", "if_else", "type3", "nested", "multi_exit"]),
    taken_len=st.integers(1, 8),
    nt_len=st.integers(1, 8),
    p=st.floats(0.05, 0.5),
    store_in_body=st.booleans(),
    followers=st.integers(0, 1),
    slow_source=st.booleans(),
    join_feeds_chain=st.booleans(),
    live_outs=st.integers(1, 4),
)

spec_strategy = st.builds(
    WorkloadSpec,
    name=st.just("fuzz"),
    category=st.just("test"),
    seed=st.integers(1, 1 << 40),
    hammocks=st.lists(hammock_strategy, min_size=1, max_size=2).map(tuple),
    ilp=st.integers(0, 6),
    chain=st.integers(1, 3),
    memory=st.sampled_from(["none", "strided", "random"]),
    mem_span_kb=st.sampled_from([64, 1024]),
)


def check_invariants(stats, budget):
    assert stats.instructions >= budget
    assert stats.cycles > 0
    assert stats.retired_uops >= stats.instructions
    assert stats.allocated >= stats.retired_uops
    # select micro-ops are injected at rename rather than fetched
    assert stats.fetched + stats.select_uops >= stats.allocated
    assert stats.mispredicts <= stats.branches
    assert stats.flushes == stats.mispredicts + stats.divergence_flushes


class TestRandomWorkloads:
    @given(spec=spec_strategy)
    @settings(max_examples=12, deadline=None)
    def test_baseline_invariants(self, spec):
        stats = Core(build_workload(spec), SKYLAKE_LIKE).run(1500)
        check_invariants(stats, 1500)

    @given(spec=spec_strategy)
    @settings(max_examples=12, deadline=None)
    def test_acb_invariants(self, spec):
        core = Core(
            build_workload(spec), SKYLAKE_LIKE, scheme=AcbScheme(reduced_acb_config())
        )
        stats = core.run(2500)
        check_invariants(stats, 2500)
        assert stats.predicated_instances >= stats.divergence_flushes

    @given(spec=spec_strategy)
    @settings(max_examples=8, deadline=None)
    def test_dmp_invariants(self, spec):
        core = Core(build_workload(spec), SKYLAKE_LIKE, scheme=DmpScheme())
        stats = core.run(2000)
        check_invariants(stats, 2000)

    @given(spec=spec_strategy)
    @settings(max_examples=6, deadline=None)
    def test_dhp_invariants(self, spec):
        core = Core(build_workload(spec), SKYLAKE_LIKE, scheme=DhpScheme())
        stats = core.run(2000)
        check_invariants(stats, 2000)

    @given(spec=spec_strategy)
    @settings(max_examples=8, deadline=None)
    def test_architectural_stream_independent_of_scheme(self, spec):
        """Timing schemes must not change the program's functional work."""
        base = Core(build_workload(spec), SKYLAKE_LIKE).run(1500)
        acb = Core(
            build_workload(spec), SKYLAKE_LIKE, scheme=AcbScheme(reduced_acb_config())
        ).run(1500)
        assert abs(base.instructions - acb.instructions) <= SKYLAKE_LIKE.retire_width
