"""Property-based end-to-end invariants: random workload specs through the
generator and the core, under every scheme, must preserve the simulator's
global invariants (forward progress, consistent accounting).

The second half runs the same machinery with ``CoreConfig.debug_checks``
armed: the in-pipeline :class:`repro.validate.checker.InvariantChecker`
audits the ROB/RAT/queues every cycle and raises on the first violation,
so a green test means *zero* violations across the whole run."""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.acb import AcbScheme
from repro.baselines import DhpScheme, DmpScheme
from repro.core import SKYLAKE_LIKE, Core
from repro.harness.runner import reduced_acb_config
from repro.workloads import HammockSpec, WorkloadSpec, build_workload

from tests.conftest import chase_workload, h2p_hammock_workload

hammock_strategy = st.builds(
    HammockSpec,
    shape=st.sampled_from(["if", "if_else", "type3", "nested", "multi_exit"]),
    taken_len=st.integers(1, 8),
    nt_len=st.integers(1, 8),
    p=st.floats(0.05, 0.5),
    store_in_body=st.booleans(),
    followers=st.integers(0, 1),
    slow_source=st.booleans(),
    join_feeds_chain=st.booleans(),
    live_outs=st.integers(1, 4),
)

spec_strategy = st.builds(
    WorkloadSpec,
    name=st.just("fuzz"),
    category=st.just("test"),
    seed=st.integers(1, 1 << 40),
    hammocks=st.lists(hammock_strategy, min_size=1, max_size=2).map(tuple),
    ilp=st.integers(0, 6),
    chain=st.integers(1, 3),
    memory=st.sampled_from(["none", "strided", "random"]),
    mem_span_kb=st.sampled_from([64, 1024]),
)


def check_invariants(stats, budget):
    assert stats.instructions >= budget
    assert stats.cycles > 0
    assert stats.retired_uops >= stats.instructions
    assert stats.allocated >= stats.retired_uops
    # select micro-ops are injected at rename rather than fetched
    assert stats.fetched + stats.select_uops >= stats.allocated
    assert stats.mispredicts <= stats.branches
    assert stats.flushes == stats.mispredicts + stats.divergence_flushes


class TestRandomWorkloads:
    @given(spec=spec_strategy)
    @settings(max_examples=12, deadline=None)
    def test_baseline_invariants(self, spec):
        stats = Core(build_workload(spec), SKYLAKE_LIKE).run(1500)
        check_invariants(stats, 1500)

    @given(spec=spec_strategy)
    @settings(max_examples=12, deadline=None)
    def test_acb_invariants(self, spec):
        core = Core(
            build_workload(spec), SKYLAKE_LIKE, scheme=AcbScheme(reduced_acb_config())
        )
        stats = core.run(2500)
        check_invariants(stats, 2500)
        assert stats.predicated_instances >= stats.divergence_flushes

    @given(spec=spec_strategy)
    @settings(max_examples=8, deadline=None)
    def test_dmp_invariants(self, spec):
        core = Core(build_workload(spec), SKYLAKE_LIKE, scheme=DmpScheme())
        stats = core.run(2000)
        check_invariants(stats, 2000)

    @given(spec=spec_strategy)
    @settings(max_examples=6, deadline=None)
    def test_dhp_invariants(self, spec):
        core = Core(build_workload(spec), SKYLAKE_LIKE, scheme=DhpScheme())
        stats = core.run(2000)
        check_invariants(stats, 2000)

    @given(spec=spec_strategy)
    @settings(max_examples=8, deadline=None)
    def test_architectural_stream_independent_of_scheme(self, spec):
        """Timing schemes must not change the program's functional work."""
        base = Core(build_workload(spec), SKYLAKE_LIKE).run(1500)
        acb = Core(
            build_workload(spec), SKYLAKE_LIKE, scheme=AcbScheme(reduced_acb_config())
        ).run(1500)
        assert abs(base.instructions - acb.instructions) <= SKYLAKE_LIKE.retire_width


DEBUG_CONFIG = replace(SKYLAKE_LIKE, debug_checks=True)


def run_checked(workload, scheme=None, budget=4000):
    """Run with the per-cycle invariant checker armed; any violation raises
    InvariantViolation, so returning at all means the run was clean."""
    core = Core(workload, DEBUG_CONFIG, scheme=scheme)
    stats = core.run(budget)
    core.checker.final_check()
    assert core.checker.checks > 0
    return core, stats


class TestDebugChecksClean:
    """Micro and corner kernels under ``debug_checks=True``: the checker
    audits every cycle and must find nothing, in exactly the scenarios the
    engine's recovery logic is most delicate — mispredict flushes, forced
    predication, divergence rewind, memory-heavy streams."""

    def test_baseline_h2p_flush_storm(self):
        """Bernoulli branch ⇒ constant mispredict flushes: every flush must
        leave the RAT/ROB/queues consistent."""
        core, stats = run_checked(h2p_hammock_workload())
        assert stats.mispredicts > 50

    def test_acb_predicated_regions(self):
        core, stats = run_checked(
            h2p_hammock_workload(), scheme=AcbScheme(reduced_acb_config())
        )
        assert stats.instructions >= 4000
        assert core.checker.regions_opened == stats.predicated_instances

    def test_acb_with_selects_and_memory(self):
        cfg = replace(reduced_acb_config(), select_uops=True)
        core, stats = run_checked(chase_workload(), scheme=AcbScheme(cfg))
        assert stats.instructions >= 4000

    def test_dmp_eager_regions(self):
        core, stats = run_checked(h2p_hammock_workload(), scheme=DmpScheme())
        assert stats.instructions >= 4000

    def test_store_heavy_predicated_arms(self):
        """Stores inside both predicated arms: false-path invalidation and
        store-queue ordering under region churn."""
        spec = WorkloadSpec(
            name="dbg_stores", category="test", seed=17,
            hammocks=(
                HammockSpec(shape="if_else", taken_len=3, nt_len=4, p=0.5,
                            store_in_body=True, shared_store=True,
                            carry_in_body=True),
            ),
            memory="strided",
        )
        run_checked(build_workload(spec), scheme=AcbScheme(reduced_acb_config()))

    def test_irregular_nested_regions(self):
        """nested_else + multi_exit hammocks: inner branches mispredict and
        tear open regions; recovery must stay consistent."""
        spec = WorkloadSpec(
            name="dbg_nested", category="test", seed=29,
            hammocks=(
                HammockSpec(shape="nested_else", taken_len=2, nt_len=6, p=0.4),
                HammockSpec(shape="multi_exit", nt_len=5, p=0.35,
                            escape_p=0.3),
            ),
            memory="random",
        )
        run_checked(build_workload(spec), scheme=AcbScheme(reduced_acb_config()))

    def test_checker_accounting_is_exposed(self):
        core, stats = run_checked(h2p_hammock_workload(), budget=1500)
        summary = core.checker.summary()
        # ≥1 audit per simulated step (fast-forwarded idle cycles are not
        # stepped) plus one per retirement
        assert summary["checks"] > stats.instructions
        assert summary["regions_opened"] == 0    # baseline never predicates
        assert summary["retired_pred_false"] == 0
