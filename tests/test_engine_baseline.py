"""Integration tests of the OOO core without predication."""

import pytest

from repro.core import SKYLAKE_LIKE, Core, DeadlockError, scaled
from tests.conftest import chase_workload, h2p_hammock_workload, predictable_workload


class TestBasicExecution:
    def test_runs_to_instruction_budget(self):
        core = Core(h2p_hammock_workload(), SKYLAKE_LIKE)
        stats = core.run(3000)
        assert stats.instructions >= 3000
        assert stats.cycles > 0
        assert 0.05 < stats.ipc < 6.0

    def test_retired_uops_match_architectural_count_without_predication(self):
        core = Core(h2p_hammock_workload(), SKYLAKE_LIKE)
        stats = core.run(3000)
        assert stats.retired_uops == stats.instructions

    def test_deterministic(self):
        a = Core(h2p_hammock_workload(seed=5), SKYLAKE_LIKE).run(3000)
        b = Core(h2p_hammock_workload(seed=5), SKYLAKE_LIKE).run(3000)
        assert a.cycles == b.cycles
        assert a.flushes == b.flushes

    def test_seed_changes_execution(self):
        a = Core(h2p_hammock_workload(seed=5), SKYLAKE_LIKE).run(3000)
        b = Core(h2p_hammock_workload(seed=6), SKYLAKE_LIKE).run(3000)
        assert a.cycles != b.cycles


class TestBranchHandling:
    def test_h2p_branch_flushes(self):
        stats = Core(h2p_hammock_workload(p=0.4), SKYLAKE_LIKE).run(4000)
        assert stats.mispredicts > 50
        assert stats.flushes == stats.mispredicts

    def test_predictable_branch_rarely_flushes(self):
        stats = Core(predictable_workload(), SKYLAKE_LIKE).run(4000)
        assert stats.mispredicts < 20

    def test_oracle_predictor_never_flushes(self):
        core = Core(h2p_hammock_workload(), SKYLAKE_LIKE, predictor="oracle")
        stats = core.run(4000)
        assert stats.mispredicts == 0
        assert stats.wrong_path_allocated == 0

    def test_oracle_faster_than_tage_on_h2p(self):
        tage = Core(h2p_hammock_workload(), SKYLAKE_LIKE).run(4000)
        oracle = Core(h2p_hammock_workload(), SKYLAKE_LIKE, predictor="oracle").run(4000)
        assert oracle.cycles < tage.cycles

    def test_wrong_path_work_is_modeled(self):
        stats = Core(h2p_hammock_workload(p=0.5), SKYLAKE_LIKE).run(4000)
        assert stats.wrong_path_allocated > 0
        assert stats.allocated > stats.retired_uops

    def test_per_branch_stats_accumulate(self):
        workload = h2p_hammock_workload(p=0.4)
        stats = Core(workload, SKYLAKE_LIKE).run(4000)
        branch_pc = workload.program.cond_branch_pcs()[0]
        pcs = stats.per_branch[branch_pc]
        assert pcs.executed > 100
        assert 0.2 < pcs.mispred_rate < 0.6


class TestMemorySystem:
    def test_chase_workload_is_memory_bound(self):
        stats = Core(chase_workload(), SKYLAKE_LIKE).run(2000)
        assert stats.avg_load_latency > 100
        assert stats.ipc < 0.3

    def test_cached_workload_has_low_load_latency(self):
        # strided streams settle into the caches; wrong-path loads and the
        # cold-start misses keep the average above the pure L1 latency.
        stats = Core(h2p_hammock_workload(), SKYLAKE_LIKE).run(4000)
        assert stats.avg_load_latency < 80

    def test_loads_and_stores_counted(self):
        stats = Core(h2p_hammock_workload(), SKYLAKE_LIKE).run(3000)
        assert stats.loads > 0
        assert stats.stores > 0


class TestScaledCore:
    def test_wider_core_is_faster_on_ilp(self):
        narrow = Core(h2p_hammock_workload(ilp=8), SKYLAKE_LIKE).run(4000)
        wide = Core(h2p_hammock_workload(ilp=8), scaled(2)).run(4000)
        assert wide.cycles < narrow.cycles

    def test_oracle_gain_grows_with_scale(self):
        """The Figure 1 trend at micro scale: on an ILP-rich branchy kernel,
        scaling the machine makes it increasingly speculation-bound."""
        def gain(scale):
            cfg = scaled(scale)
            base = Core(h2p_hammock_workload(ilp=16, with_mem=False), cfg).run(4000)
            oracle = Core(
                h2p_hammock_workload(ilp=16, with_mem=False), cfg, predictor="oracle"
            ).run(4000)
            return base.cycles / oracle.cycles

        assert gain(3) > gain(1) > 1.0


class TestWindows:
    def test_run_window_measures_fresh_stats(self):
        core = Core(h2p_hammock_workload(), SKYLAKE_LIKE)
        stats = core.run_window(warmup=1000, measure=2000)
        assert stats.instructions >= 2000
        assert stats.cycles < core.cycle  # window excludes warm-up cycles

    def test_reset_stats_clears_counters(self):
        core = Core(h2p_hammock_workload(), SKYLAKE_LIKE)
        core.run(1000)
        fresh = core.reset_stats()
        assert fresh.instructions == 0
        assert core.stats is fresh


class TestDeadlockDetection:
    def test_cycle_cap_raises(self):
        core = Core(chase_workload(), SKYLAKE_LIKE)
        with pytest.raises(DeadlockError):
            core.run(2000, max_cycles=10)
