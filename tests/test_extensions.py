"""Unit tests for the extension features: stall throttling, multiple
reconvergence points, and the perceptron predictor."""

from dataclasses import replace

import pytest

from repro.acb import BAD, GOOD, AcbConfig, AcbScheme, AcbTable
from repro.acb.throttle import StallThrottle
from repro.branch import PerceptronPredictor, make_predictor
from repro.core import SKYLAKE_LIKE, Core
from repro.harness.runner import reduced_acb_config
from repro.workloads import Bernoulli, HammockSpec, Periodic, WorkloadSpec, \
    WorkloadState, build_workload
from tests.conftest import h2p_hammock_workload


class TestStallThrottle:
    def _make(self, threshold=10.0, epoch=100):
        cfg = replace(AcbConfig(), epoch_length=epoch, dynamo_reset_interval=0)
        table = AcbTable(cfg)
        return StallThrottle(cfg, table, threshold), table

    def test_disables_high_stall_branch(self):
        throttle, table = self._make()
        entry = table.allocate(7, 1, 12, 4)
        throttle.note_instance(entry)
        throttle.note_body_stall(7, 500)
        for i in range(100):
            throttle.on_retire(i)
        assert entry.fsm == BAD
        assert not throttle.enabled(entry)

    def test_keeps_low_stall_branch(self):
        throttle, table = self._make()
        entry = table.allocate(7, 1, 12, 4)
        throttle.note_instance(entry)
        throttle.note_body_stall(7, 3)
        for i in range(100):
            throttle.on_retire(i)
        assert entry.fsm == GOOD

    def test_epoch_counters_reset(self):
        throttle, table = self._make()
        entry = table.allocate(7, 1, 12, 4)
        throttle.note_instance(entry)
        throttle.note_body_stall(7, 500)
        for i in range(100):
            throttle.on_retire(i)
        assert not throttle._stalls and not throttle._instances

    def test_scheme_selects_throttle_kind(self):
        dynamo_scheme = AcbScheme(reduced_acb_config())
        assert dynamo_scheme.dynamo is dynamo_scheme.monitor
        stall_scheme = AcbScheme(replace(reduced_acb_config(), throttle="stalls"))
        assert stall_scheme.dynamo is None
        assert isinstance(stall_scheme.monitor, StallThrottle)

    def test_invalid_throttle_name(self):
        with pytest.raises(ValueError):
            replace(AcbConfig(), throttle="vibes")

    def test_stall_throttle_kills_profitable_predication(self):
        """The Section V-B failure mode, end to end: a profitable hammock on
        a serial chain stalls by design, so the local heuristic disables it
        while Dynamo keeps it."""
        def run(throttle):
            cfg = replace(reduced_acb_config(), throttle=throttle,
                          stall_threshold=10.0)
            core = Core(h2p_hammock_workload(ilp=0, with_mem=False),
                        SKYLAKE_LIKE, scheme=AcbScheme(cfg))
            return core.run_window(10_000, 8_000)

        dynamo = run("dynamo")
        stalls = run("stalls")
        assert dynamo.predicated_instances > stalls.predicated_instances
        assert dynamo.cycles < stalls.cycles


class TestMultiReconv:
    def _b1_workload(self):
        return build_workload(WorkloadSpec(
            name="b1x", category="test", seed=5,
            hammocks=(HammockSpec(shape="multi_exit", nt_len=8, p=0.4,
                                  escape_p=0.25),),
            ilp=2, chain=1, memory="none",
        ))

    def test_far_point_adopted_after_divergence(self):
        cfg = replace(reduced_acb_config(), multi_reconv=True)
        core = Core(self._b1_workload(), SKYLAKE_LIKE, scheme=AcbScheme(cfg))
        core.run(20_000)
        scheme = core.scheme
        assert scheme.far_relearned >= 1
        pc = core.program.cond_branch_pcs()[0]
        entry = scheme.table.lookup(pc)
        assert entry is not None
        assert entry.reconv_pc > core.program[pc].target

    def test_divergences_drop_with_far_point(self):
        base_cfg = replace(reduced_acb_config(), dynamo_enabled=False)
        multi_cfg = replace(base_cfg, multi_reconv=True)
        plain = Core(self._b1_workload(), SKYLAKE_LIKE,
                     scheme=AcbScheme(base_cfg)).run(20_000)
        multi = Core(self._b1_workload(), SKYLAKE_LIKE,
                     scheme=AcbScheme(multi_cfg)).run(20_000)
        assert multi.divergence_flushes < plain.divergence_flushes
        assert multi.predicated_instances >= plain.predicated_instances

    def test_disabled_by_default(self):
        assert not AcbConfig().multi_reconv


class TestPerceptron:
    def test_registered(self):
        assert isinstance(make_predictor("perceptron"), PerceptronPredictor)

    def test_learns_bias(self):
        bp = PerceptronPredictor()
        st = WorkloadState(3)
        beh = Bernoulli("b", 0.9)
        wrong = 0
        for _ in range(2000):
            taken = beh.resolve(st)
            pred = bp.predict(100)
            bp.spec_push(100, taken)
            wrong += pred.taken != taken
            bp.update(100, taken, pred.meta, pred.taken != taken)
        assert wrong / 2000 < 0.2

    def test_learns_history_pattern(self):
        bp = PerceptronPredictor()
        st = WorkloadState(3)
        beh = Periodic("p", (True, True, False))
        wrong = 0
        for i in range(4000):
            taken = beh.resolve(st)
            pred = bp.predict(100)
            bp.spec_push(100, taken)
            if i > 500:
                wrong += pred.taken != taken
            bp.update(100, taken, pred.meta, pred.taken != taken)
        assert wrong / 3500 < 0.05

    def test_checkpoint_restore(self):
        bp = PerceptronPredictor()
        bp.spec_push(0, True)
        cp = bp.checkpoint()
        bp.spec_push(0, False)
        bp.restore(cp, 0, True)
        assert bp.hist.recent(2) == 0b11

    def test_weights_saturate(self):
        bp = PerceptronPredictor(weight_bits=8)
        for _ in range(2000):
            pred = bp.predict(5)
            bp.update(5, True, pred.meta, mispredicted=True)
        w = bp.weights[bp._index(5)]
        assert all(bp.wmin <= wi <= bp.wmax for wi in w)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(entries=100)

    def test_runs_in_core(self):
        stats = Core(h2p_hammock_workload(), SKYLAKE_LIKE,
                     predictor="perceptron").run(3000)
        assert stats.instructions >= 3000
        assert stats.mispredicts > 0
