"""Tests for the simulator bench subsystem (``python -m repro bench``).

The quick micro group (four tiny kernels, small windows) keeps every CLI
invocation here under a second while still exercising the full path:
target matrix → timed runs → schema-valid report → baseline comparison
with threshold exit codes.
"""

import json

import pytest

from repro.__main__ import main
from repro.bench import (
    bench_targets,
    compare_reports,
    run_bench,
    validate_report,
)
from repro.bench.compare import format_compare, lanes_speedup
from repro.bench.schema import SCHEMA_NAME, SCHEMA_VERSION


@pytest.fixture(scope="module")
def micro_report():
    """One real quick-mode bench run over the micro kernels."""
    return run_bench(quick=True, tag="test", groups=["micro"])


class TestTargets:
    def test_matrix_names_are_stable_across_modes(self):
        quick = {t.name for t in bench_targets(quick=True)}
        full = {t.name for t in bench_targets(quick=False)}
        assert quick <= full  # quick is a subset by name, never a rename
        assert any(name.startswith("fig6:") for name in quick)
        assert any(name.startswith("scheme:") for name in quick)
        assert any(name.startswith("micro:") for name in quick)

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError, match="unknown bench group"):
            run_bench(quick=True, groups=["nonesuch"])


class TestSchema:
    def test_real_report_is_schema_valid(self, micro_report):
        assert validate_report(micro_report) == []
        assert micro_report["schema"] == SCHEMA_NAME
        assert micro_report["schema_version"] == SCHEMA_VERSION
        assert micro_report["quick"] is True
        assert len(micro_report["runs"]) == 4

    def test_report_round_trips_through_json(self, micro_report):
        clone = json.loads(json.dumps(micro_report))
        assert validate_report(clone) == []

    def test_violations_are_reported(self, micro_report):
        broken = json.loads(json.dumps(micro_report))
        del broken["runs"][0]["cycles"]
        broken["runs"][1]["name"] = broken["runs"][2]["name"]
        problems = validate_report(broken)
        assert any("cycles" in p for p in problems)
        assert any("duplicate" in p for p in problems)

    def test_newer_schema_version_rejected(self, micro_report):
        future = json.loads(json.dumps(micro_report))
        future["schema_version"] = SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_report(future))

    def test_simulation_outputs_are_deterministic(self, micro_report):
        """cycles/uops/instructions/ipc must be machine-independent: a
        second run of the same tree reproduces them exactly (the
        bit-identity invariant); only wall_s may differ."""
        again = run_bench(quick=True, tag="again", groups=["micro"])
        for first, second in zip(micro_report["runs"], again["runs"]):
            assert first["name"] == second["name"]
            for key in ("cycles", "uops", "instructions", "ipc"):
                assert first[key] == second[key], f"{first['name']}:{key}"


class TestMatrixGroup:
    @pytest.fixture(scope="class")
    def matrix_report(self):
        """One real quick-mode run of the scalar/lanes matrix pair."""
        return run_bench(quick=True, tag="test", groups=["matrix"])

    def test_matrix_targets_pinned(self):
        for quick in (True, False):
            names = {t.name: t for t in bench_targets(quick=quick)
                     if t.group == "matrix"}
            assert set(names) == {"matrix:fig6:scalar", "matrix:fig6:lanes"}
            assert names["matrix:fig6:scalar"].lanes == 0
            assert names["matrix:fig6:lanes"].lanes > 0
            for t in names.values():
                assert t.matrix_workloads and t.matrix_configs

    def test_matrix_report_is_schema_valid(self, matrix_report):
        assert validate_report(matrix_report) == []
        runs = {r["name"]: r for r in matrix_report["runs"]}
        assert set(runs) == {"matrix:fig6:scalar", "matrix:fig6:lanes"}
        for run in runs.values():
            assert run["cells"] == 8  # 4 quick fig6 workloads × 2 configs
            assert run["cells_per_s"] > 0
        assert runs["matrix:fig6:scalar"]["lanes"] == 0
        assert runs["matrix:fig6:lanes"]["lanes"] > 0

    def test_scalar_and_lanes_simulate_identical_work(self, matrix_report):
        """The bit-identity invariant, visible in the report itself: both
        dispatch modes sum the exact same cycles/uops/instructions."""
        runs = {r["name"]: r for r in matrix_report["runs"]}
        scalar, lanes = runs["matrix:fig6:scalar"], runs["matrix:fig6:lanes"]
        for key in ("cycles", "uops", "instructions", "ipc"):
            assert scalar[key] == lanes[key], key

    def test_lanes_speedup_pairs_within_report(self, matrix_report):
        ratios = lanes_speedup(matrix_report)
        assert set(ratios) == {"matrix:fig6"}
        assert ratios["matrix:fig6"] > 0

    def test_lanes_speedup_ignores_unpaired_runs(self, matrix_report):
        clone = json.loads(json.dumps(matrix_report))
        clone["runs"] = [r for r in clone["runs"]
                         if r["name"] != "matrix:fig6:scalar"]
        assert lanes_speedup(clone) == {}

    def test_v1_baseline_still_accepted(self, micro_report):
        """A pre-lanes (schema v1) baseline — no cells/cells_per_s/lanes
        keys — must stay both schema-valid and comparable, so bumping the
        schema does not orphan committed baselines."""
        v1 = json.loads(json.dumps(micro_report))
        v1["schema_version"] = 1
        for run in v1["runs"]:
            for key in ("cells", "cells_per_s", "lanes"):
                run.pop(key, None)
        assert validate_report(v1) == []
        result = compare_reports(v1, micro_report)
        assert result.overall == pytest.approx(1.0)

    def test_optional_matrix_keys_are_validated(self, matrix_report):
        broken = json.loads(json.dumps(matrix_report))
        broken["runs"][0]["cells"] = "eight"
        broken["runs"][1]["cells_per_s"] = None
        problems = validate_report(broken)
        assert any("cells" in p for p in problems)
        assert any("cells_per_s" in p for p in problems)


class TestCompare:
    def _scaled(self, report, factor):
        clone = json.loads(json.dumps(report))
        for run in clone["runs"]:
            run["cycles_per_s"] = run["cycles_per_s"] * factor
        return clone

    def test_self_compare_is_unity(self, micro_report):
        result = compare_reports(micro_report, micro_report)
        assert len(result.rows) == len(micro_report["runs"])
        assert result.overall == pytest.approx(1.0)
        assert not result.regressed(threshold=1.5)

    def test_regression_detected_past_threshold(self, micro_report):
        # baseline claims 2x the throughput → new tree looks 2x slower
        fast_baseline = self._scaled(micro_report, 2.0)
        result = compare_reports(fast_baseline, micro_report)
        assert result.overall == pytest.approx(0.5, rel=1e-6)
        assert result.regressed(threshold=1.5)
        assert not result.regressed(threshold=2.5)

    def test_unmatched_and_mismatched_runs_flagged(self, micro_report):
        baseline = json.loads(json.dumps(micro_report))
        baseline["runs"][0]["name"] = "micro:retired-kernel"
        baseline["runs"][1]["measure"] += 1
        result = compare_reports(baseline, micro_report)
        assert result.only_in_baseline == ["micro:retired-kernel"]
        assert len(result.only_in_new) == 1
        assert len(result.window_mismatch) == 1
        text = format_compare(result)
        assert "windows differ" in text
        assert "micro:retired-kernel" in text


class TestCli:
    def test_bench_writes_schema_valid_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        assert main(["bench", "--quick", "--groups", "micro",
                     "--tag", "test", "--out", str(out)]) == 0
        assert "4 runs" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert validate_report(report) == []
        assert report["tag"] == "test"

    def test_compare_pass_path(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        assert main(["bench", "--quick", "--groups", "micro",
                     "--out", str(baseline)]) == 0
        assert main(["bench", "--quick", "--groups", "micro",
                     "--out", str(tmp_path / "new.json"),
                     "--compare", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "geomean [micro]" in out
        assert "geomean [overall" in out

    def test_compare_fail_path(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        assert main(["bench", "--quick", "--groups", "micro",
                     "--out", str(baseline)]) == 0
        # rewrite the baseline to claim 100x throughput: the fresh run
        # must trip the regression gate at any sane threshold
        report = json.loads(baseline.read_text())
        for run in report["runs"]:
            run["cycles_per_s"] = run["cycles_per_s"] * 100.0
        baseline.write_text(json.dumps(report))
        code = main(["bench", "--quick", "--groups", "micro",
                     "--out", str(tmp_path / "new.json"),
                     "--compare", str(baseline), "--threshold", "1.5"])
        assert code == 1
        capsys.readouterr()

    def test_invalid_baseline_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"something-else\"}")
        assert main(["bench", "--quick", "--groups", "micro",
                     "--out", str(tmp_path / "new.json"),
                     "--compare", str(bad)]) == 2
        assert "not a valid bench report" in capsys.readouterr().err

    def test_missing_baseline_rejected(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--groups", "micro",
                     "--out", str(tmp_path / "new.json"),
                     "--compare", str(tmp_path / "nope.json")]) == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_committed_ci_baseline_is_valid(self):
        """The baseline CI compares against must stay schema-valid and
        quick-mode (so its windows match the bench-smoke invocation)."""
        import os

        path = os.path.join(os.path.dirname(__file__), "..",
                            "BENCH_baseline.json")
        report = json.loads(open(path).read())
        assert validate_report(report) == []
        assert report["quick"] is True
