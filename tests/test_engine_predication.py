"""Integration tests of the predication mechanics in the core.

Uses a minimal always-predicate test scheme so the mechanics (dual-path
fetch, jumper override, stall-until-resolve, transparency, divergence) are
exercised independently of ACB's learning policy.
"""

from typing import Optional

import pytest

from repro.core import SKYLAKE_LIKE, Core
from repro.core.predication import PredicationPlan, PredicationScheme
from repro.program import find_reconvergence
from repro.workloads import HammockSpec, WorkloadSpec, build_workload


class AlwaysPredicate(PredicationScheme):
    """Predicate every instance of one branch with fixed plan parameters."""

    name = "test-always"

    def __init__(self, branch_pc, reconv_pc, conv_type, first_taken=False,
                 eager=False, select_uops=False, max_fetch=96):
        self.branch_pc = branch_pc
        self.reconv_pc = reconv_pc
        self.conv_type = conv_type
        self.first_taken = first_taken
        self.eager = eager
        self.select_uops = select_uops
        self.max_fetch = max_fetch
        self.closed = 0
        self.diverged = 0

    def consider(self, dyn, prediction) -> Optional[PredicationPlan]:
        if dyn.pc != self.branch_pc:
            return None
        return PredicationPlan(
            branch_pc=self.branch_pc,
            reconv_pc=self.reconv_pc,
            conv_type=self.conv_type,
            first_taken=self.first_taken,
            eager=self.eager,
            select_uops=self.select_uops,
            max_fetch=self.max_fetch,
        )

    def on_region_closed(self, region, diverged):
        self.closed += 1
        self.diverged += diverged


def shape_workload(shape, seed=7, **kw):
    spec = WorkloadSpec(
        name=f"pred_{shape}",
        category="test",
        seed=seed,
        hammocks=(HammockSpec(shape=shape, taken_len=4, nt_len=4, p=0.4, **kw),),
        ilp=2,
        chain=1,
        memory="strided",
    )
    return build_workload(spec)


def scheme_for(workload, **kw):
    program = workload.program
    pc = program.cond_branch_pcs()[0]
    reconv = find_reconvergence(program, pc)
    target = program[pc].target
    if reconv == target:
        conv_type = 1
    elif reconv > target:
        conv_type = 2
    else:
        conv_type = 3
    return AlwaysPredicate(pc, reconv, conv_type, first_taken=conv_type == 3, **kw)


class TestPredicationMechanics:
    @pytest.mark.parametrize("shape", ["if", "if_else", "type3", "nested"])
    def test_predication_eliminates_branch_flushes(self, shape):
        workload = shape_workload(shape)
        scheme = scheme_for(workload)
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme)
        stats = core.run(4000)
        branch_stats = stats.per_branch[scheme.branch_pc]
        assert branch_stats.predicated > 50
        assert branch_stats.mispredicted == 0
        assert stats.divergence_flushes == 0

    @pytest.mark.parametrize("shape", ["if", "if_else", "type3"])
    def test_architectural_work_unchanged(self, shape):
        """Predication must not change the functional instruction stream."""
        base = Core(shape_workload(shape), SKYLAKE_LIKE).run(4000)
        workload = shape_workload(shape)
        pred = Core(workload, SKYLAKE_LIKE, scheme=scheme_for(workload)).run(4000)
        # the run loop stops within one retire group of the budget
        assert abs(pred.instructions - base.instructions) <= SKYLAKE_LIKE.retire_width

    def test_false_path_uops_retire_but_do_not_count(self):
        workload = shape_workload("if_else")
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme_for(workload))
        stats = core.run(4000)
        assert stats.retired_uops > stats.instructions

    def test_saved_flushes_accounted(self):
        workload = shape_workload("if")
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme_for(workload))
        stats = core.run(4000)
        assert stats.predicated_saved_flushes > 20

    def test_select_uops_cost_allocation(self):
        wl_plain = shape_workload("if_else")
        plain = Core(wl_plain, SKYLAKE_LIKE, scheme=scheme_for(wl_plain)).run(4000)
        wl_sel = shape_workload("if_else")
        sel = Core(
            wl_sel, SKYLAKE_LIKE, scheme=scheme_for(wl_sel, eager=True, select_uops=True)
        ).run(4000)
        assert sel.allocated > plain.allocated

    def test_history_exclusion_of_predicated_instances(self):
        """Predicated branch instances must not enter the global history."""
        workload = shape_workload("if")
        scheme = scheme_for(workload)
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme)
        pushes = []
        orig = core.bp.spec_push
        core.bp.spec_push = lambda pc, taken: (pushes.append(pc), orig(pc, taken))
        core.run(2000)
        assert scheme.branch_pc not in pushes


class TestDivergence:
    def test_wrong_reconvergence_point_diverges_and_recovers(self):
        workload = shape_workload("if")
        pc = workload.program.cond_branch_pcs()[0]
        bogus_reconv = len(workload.program) - 1  # never fetched inside region
        scheme = AlwaysPredicate(pc, bogus_reconv, conv_type=1, max_fetch=30)
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme)
        stats = core.run(4000)
        assert stats.divergence_flushes > 10
        assert stats.instructions >= 4000  # forward progress despite divergence
        assert scheme.diverged > 0

    def test_divergence_counts_separately_from_mispredicts(self):
        workload = shape_workload("if")
        pc = workload.program.cond_branch_pcs()[0]
        scheme = AlwaysPredicate(pc, len(workload.program) - 1, conv_type=1, max_fetch=30)
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme)
        stats = core.run(3000)
        assert stats.flushes == stats.mispredicts + stats.divergence_flushes


class TestMultiExitDivergence:
    def test_escaping_body_paths_diverge_at_the_near_join(self):
        """B1 pattern: predicating with the near join sometimes diverges."""
        workload = shape_workload("multi_exit", escape_p=0.3)
        program = workload.program
        pc = program.cond_branch_pcs()[0]
        near_join = program[pc].target
        scheme = AlwaysPredicate(pc, near_join, conv_type=1, max_fetch=40)
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme)
        stats = core.run(4000)
        assert stats.divergence_flushes > 10        # escape instances
        assert stats.predicated_instances > stats.divergence_flushes
