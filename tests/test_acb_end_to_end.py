"""End-to-end tests of the full ACB scheme on a live core."""

from dataclasses import replace

from repro.acb import BAD, GOOD, PAPER_TOTAL_BYTES, AcbScheme, storage_report
from repro.core import SKYLAKE_LIKE, Core
from repro.harness.runner import reduced_acb_config
from repro.workloads import HammockSpec, WorkloadSpec, build_workload
from tests.conftest import h2p_hammock_workload, predictable_workload


def acb_core(workload, **cfg_overrides):
    cfg = replace(reduced_acb_config(), **cfg_overrides)
    return Core(workload, SKYLAKE_LIKE, scheme=AcbScheme(cfg))


class TestLearningPipeline:
    def test_learns_and_applies_on_h2p_hammock(self):
        core = acb_core(h2p_hammock_workload())
        stats = core.run(12_000)
        scheme = core.scheme
        assert scheme.learned >= 1
        entries = scheme.table.entries()
        assert entries
        workload_pc = core.program.cond_branch_pcs()[0]
        learned = scheme.table.lookup(workload_pc)
        assert learned is not None
        assert learned.conv_type == 1
        assert learned.reconv_pc == core.program[workload_pc].target
        assert stats.predicated_instances > 100

    def test_flush_reduction_and_speedup(self):
        base = Core(h2p_hammock_workload(), SKYLAKE_LIKE).run(12_000)
        acb = acb_core(h2p_hammock_workload()).run(12_000)
        assert acb.flushes < base.flushes * 0.6
        assert acb.cycles < base.cycles

    def test_ignores_predictable_branches(self):
        core = acb_core(predictable_workload())
        stats = core.run(10_000)
        assert stats.predicated_instances == 0
        assert core.scheme.learned == 0

    def test_learns_type2_and_type3(self):
        for shape, expected_type in (("if_else", 2), ("type3", 3)):
            spec = WorkloadSpec(
                name=f"e2e_{shape}",
                category="test",
                hammocks=(HammockSpec(shape=shape, taken_len=4, nt_len=4, p=0.4),),
                ilp=2,
                chain=1,
                memory="none",
            )
            workload = build_workload(spec)
            core = acb_core(workload)
            core.run(12_000)
            pc = workload.program.cond_branch_pcs()[0]
            entry = core.scheme.table.lookup(pc)
            assert entry is not None, shape
            assert entry.conv_type == expected_type, shape

    def test_backward_branches_not_applied(self):
        spec = WorkloadSpec(
            name="loops",
            category="test",
            hammocks=(HammockSpec(shape="if", nt_len=2, kind="periodic",
                                  pattern=(True, False)),),
            ilp=1,
            chain=1,
            memory="none",
            inner_loop=(6, 4),  # jittery exit: mispredicting backward branch
        )
        workload = build_workload(spec)
        core = acb_core(workload)
        stats = core.run(12_000)
        # the backward loop branch mispredicts (jittery exit) but is never
        # predicated; forward branches in the same kernel may be.
        loop_pc = next(
            pc for pc in workload.program.cond_branch_pcs()
            if not workload.program[pc].is_forward_branch
        )
        loop_stats = stats.per_branch[loop_pc]
        assert loop_stats.mispredicted > 50
        assert loop_stats.predicated == 0


class TestDivergenceHandling:
    def test_multi_exit_divergence_resets_confidence(self):
        spec = WorkloadSpec(
            name="b1",
            category="test",
            hammocks=(HammockSpec(shape="multi_exit", nt_len=8, p=0.4,
                                  escape_p=0.25),),
            ilp=2,
            chain=1,
            memory="none",
        )
        core = acb_core(build_workload(spec), dynamo_enabled=False)
        stats = core.run(16_000)
        assert stats.divergence_flushes > 0
        assert core.scheme.divergences > 0
        # divergences forced retraining, so coverage stayed partial
        assert stats.predicated_instances < stats.branches


class TestDynamoIntegration:
    def test_good_state_on_friendly_workload(self):
        core = acb_core(h2p_hammock_workload())
        core.run(14_000)
        states = [e.fsm for e in core.scheme.table.entries()]
        assert GOOD in states

    def test_bad_state_on_hostile_workload(self):
        spec = WorkloadSpec(
            name="hostile",
            category="test",
            hammocks=(HammockSpec(shape="if", nt_len=6, p=0.3, slow_source=True,
                                  join_feeds_chain=True),),
            ilp=2,
            chain=1,
            memory="none",
        )
        core = acb_core(build_workload(spec))
        core.run(16_000)
        states = [e.fsm for e in core.scheme.table.entries()]
        assert BAD in states

    def test_dynamo_beats_no_dynamo_on_hostile_workload(self):
        spec = WorkloadSpec(
            name="hostile2",
            category="test",
            hammocks=(HammockSpec(shape="if", nt_len=6, p=0.3, slow_source=True,
                                  join_feeds_chain=True),),
            ilp=2,
            chain=1,
            memory="none",
        )
        with_dynamo = acb_core(build_workload(spec)).run(16_000)
        without = acb_core(build_workload(spec), dynamo_enabled=False).run(16_000)
        assert with_dynamo.cycles < without.cycles


class TestStorage:
    def test_total_matches_paper(self):
        scheme = AcbScheme(reduced_acb_config())
        report = storage_report(scheme)
        assert report["total_bytes"] == PAPER_TOTAL_BYTES

    def test_component_budgets(self):
        report = storage_report(AcbScheme(reduced_acb_config()))
        assert report["critical_table_bytes"] == 136
        assert report["learning_table_bytes"] == 20
        assert report["acb_table_bytes"] == 200


class TestSelectUopVariant:
    def test_select_variant_runs_and_costs_allocation(self):
        plain = acb_core(h2p_hammock_workload()).run(10_000)
        select = acb_core(h2p_hammock_workload(), select_uops=True).run(10_000)
        assert select.allocated >= plain.allocated
