"""Smoke tests for the figure/table experiment drivers.

The benches run these at full windows and assert the paper's shapes; here
each driver runs at tiny windows on minimal subsets so its plumbing
(structure, keys, math) is covered inside the fast test suite.
"""

import pytest

from repro.harness import experiments
from repro.harness.runner import clear_memo


@pytest.fixture(autouse=True)
def tiny_windows(monkeypatch):
    monkeypatch.setenv("REPRO_WARMUP", "1200")
    monkeypatch.setenv("REPRO_MEASURE", "1500")
    clear_memo()
    yield
    clear_memo()


NAMES = ["lammps", "bzip2"]


class TestDrivers:
    def test_fig1(self):
        result = experiments.fig1_scaling_potential(NAMES, scales=(1, 2))
        assert set(result["series"]) == {1, 2}
        assert result["series"][1]["geomean"] > 0

    def test_sec2(self):
        result = experiments.sec2_characterization(NAMES)
        assert abs(sum(result["share"].values()) - 1.0) < 1e-9

    def test_fig6(self):
        result = experiments.fig6_acb_summary(NAMES)
        assert set(result["per_workload"]) == set(NAMES)
        assert 0 <= result["flush_reduction"] <= 1

    def test_fig7(self):
        rows = experiments.fig7_correlation(NAMES)["rows"]
        assert len(rows) == len(NAMES)
        perf = [r["perf_ratio"] for r in rows]
        assert perf == sorted(perf)

    def test_fig8(self):
        result = experiments.fig8_vs_dmp(NAMES)
        assert set(result["geomean"]) == {
            "acb", "acb-nodynamo", "acb-dmp-reconv", "dmp"
        }
        assert len(result["rows"]) == len(NAMES)

    def test_fig8_frontier(self):
        result = experiments.fig8_frontier(["frontier_far_merge", "lammps"])
        assert set(result["geomean"]) == {
            "acb", "acb-dmp-reconv", "baseline@bullseye", "acb@bullseye"
        }
        assert len(result["rows"]) == 2
        for row in result["rows"]:
            assert row["acb"] > 0 and row["acb_bullseye"] > 0
        # dmp_only_regions only lists workloads where the static learner
        # opened nothing while the merge-point learner opened something —
        # at these tiny windows it may legitimately be empty, but it must
        # always be a subset of the requested names.
        assert set(result["dmp_only_regions"]) <= {"frontier_far_merge", "lammps"}

    def test_fig9(self):
        result = experiments.fig9_dmp_pbh(["omnetpp"])
        (row,) = result["rows"]
        for key in ("dmp_perf", "dmp_misspec", "pbh_perf", "acb_perf"):
            assert row[key] > 0

    def test_fig10(self):
        result = experiments.fig10_alloc_stalls(["gcc"])
        (row,) = result["rows"]
        assert 0 <= row["base_stalls"] <= 1.5

    def test_fig11(self):
        result = experiments.fig11_vs_dhp(NAMES)
        assert result["geomean"]["acb"] > 0
        assert result["geomean"]["acb_bullseye"] > 0
        assert result["geomean"]["bullseye"] > 0
        assert result["dhp_insensitive"] >= 0

    def test_sec5d(self):
        result = experiments.sec5d_core_scaling(["lammps"], scales=(1,))
        assert 1 in result["gain_by_scale"]

    def test_sec5e(self):
        result = experiments.sec5e_power_proxies(NAMES)
        assert -1 <= result["allocation_reduction"] <= 1

    def test_related_work(self):
        result = experiments.related_work_ordering(["lammps"])
        assert set(result["geomean"]) == {"acb", "dmp", "dhp", "wish"}

    def test_predictor_sensitivity(self):
        result = experiments.predictor_sensitivity(["lammps"],
                                                   predictors=("bimodal",))
        assert result["bimodal"]["acb_gain"] > 0

    def test_extension_multi_reconv(self):
        result = experiments.extension_multi_reconv(["gobmk"])
        assert "gobmk" in result["rows"]

    def test_ablation_throttle(self):
        result = experiments.ablation_throttle(["lammps"])
        assert result["rows"]["lammps"]["dynamo"] > 0
