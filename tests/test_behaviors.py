"""Tests for the stochastic behaviour processes."""

import pytest

from repro.workloads import (
    Bernoulli,
    Correlated,
    LoopTrip,
    Periodic,
    Phased,
    Strided,
    UniformRandom,
    WorkloadState,
)
from repro.workloads.behaviors import make_default_mem, resolve_branch


class TestWorkloadState:
    def test_deterministic_given_seed(self):
        a, b = WorkloadState(42), WorkloadState(42)
        assert [a.rand_u64() for _ in range(20)] == [b.rand_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        assert WorkloadState(1).rand_u64() != WorkloadState(2).rand_u64()

    def test_rand01_in_unit_interval(self):
        st = WorkloadState(7)
        for _ in range(1000):
            assert 0.0 <= st.rand01() < 1.0

    def test_randint_range(self):
        st = WorkloadState(7)
        for _ in range(1000):
            assert 0 <= st.randint(13) < 13

    def test_snapshot_restore_replays_stream(self):
        st = WorkloadState(9)
        st.rand_u64()
        snap = st.snapshot()
        first = [st.rand_u64() for _ in range(10)]
        st.restore(snap)
        assert [st.rand_u64() for _ in range(10)] == first

    def test_snapshot_isolates_dicts(self):
        st = WorkloadState(9)
        st.last["x"] = True
        st.vars["y"] = (1,)
        snap = st.snapshot()
        st.last["x"] = False
        st.vars["y"] = (2,)
        st.restore(snap)
        assert st.last["x"] is True
        assert st.vars["y"] == (1,)


class TestBernoulli:
    def test_rate_close_to_p(self):
        st = WorkloadState(3)
        beh = Bernoulli("b", 0.3)
        taken = sum(beh.resolve(st) for _ in range(20_000))
        assert 0.27 < taken / 20_000 < 0.33

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Bernoulli("b", 1.5)

    def test_records_last_outcome(self):
        st = WorkloadState(3)
        beh = Bernoulli("b", 0.5)
        outcome = beh.resolve(st)
        assert st.last["b"] == outcome


class TestCorrelated:
    def test_perfect_agreement(self):
        st = WorkloadState(5)
        lead = Bernoulli("lead", 0.5)
        follow = Correlated("follow", "lead")
        for _ in range(200):
            expected = lead.resolve(st)
            assert follow.resolve(st) == expected

    def test_inverted(self):
        st = WorkloadState(5)
        lead = Bernoulli("lead", 0.5)
        follow = Correlated("follow", "lead", invert=True)
        for _ in range(200):
            expected = lead.resolve(st)
            assert follow.resolve(st) == (not expected)

    def test_partial_agreement(self):
        st = WorkloadState(5)
        lead = Bernoulli("lead", 0.5)
        follow = Correlated("follow", "lead", agree=0.8)
        agreements = 0
        for _ in range(10_000):
            expected = lead.resolve(st)
            agreements += follow.resolve(st) == expected
        assert 0.77 < agreements / 10_000 < 0.83

    def test_default_before_source_seen(self):
        st = WorkloadState(5)
        assert Correlated("f", "missing").resolve(st) is False


class TestPeriodic:
    def test_cycles_pattern(self):
        st = WorkloadState(1)
        beh = Periodic("p", (True, False, False))
        out = [beh.resolve(st) for _ in range(9)]
        assert out == [True, False, False] * 3

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            Periodic("p", ())


class TestLoopTrip:
    def test_fixed_trip_count(self):
        st = WorkloadState(1)
        beh = LoopTrip("l", trips=4)
        out = [beh.resolve(st) for _ in range(8)]
        assert out == [True, True, True, False] * 2

    def test_jitter_varies_trips(self):
        st = WorkloadState(1)
        beh = LoopTrip("l", trips=6, jitter=3)
        lengths = []
        count = 0
        for _ in range(4000):
            if beh.resolve(st):
                count += 1
            else:
                lengths.append(count + 1)
                count = 0
        assert min(lengths) < 6 < max(lengths) + 1
        assert len(set(lengths)) > 1

    def test_invalid_trips(self):
        with pytest.raises(ValueError):
            LoopTrip("l", trips=0)


class TestPhased:
    def test_rate_shifts_between_phases(self):
        st = WorkloadState(1)
        beh = Phased("p", ((1000, 0.9), (1000, 0.1)))
        first = sum(beh.resolve(st) for _ in range(1000)) / 1000
        second = sum(beh.resolve(st) for _ in range(1000)) / 1000
        assert first > 0.8 and second < 0.2

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            Phased("p", ())


class TestMemBehaviors:
    def test_strided_advances(self):
        st = WorkloadState(1)
        beh = Strided("m", base=0, stride=64, span=256)
        addrs = [beh.address(st) for _ in range(6)]
        assert addrs == [0, 64, 128, 192, 0, 64]

    def test_uniform_random_in_span(self):
        st = WorkloadState(1)
        beh = UniformRandom("m", base=1 << 20, span=4096)
        for _ in range(100):
            addr = beh.address(st)
            assert 1 << 20 <= addr < (1 << 20) + 4096 + 64

    def test_default_mem_unique_per_pc(self):
        a, b = make_default_mem(3), make_default_mem(4)
        st = WorkloadState(1)
        assert a.address(st) != b.address(st)


class TestResolveBranch:
    def test_missing_behavior_raises(self):
        with pytest.raises(KeyError):
            resolve_branch({}, "nope", WorkloadState(1))

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError):
            resolve_branch({"m": Strided("m", 0)}, "m", WorkloadState(1))
