"""Property tests for the dynamic merge-point table (``repro.acb.reconv``).

Three families, per the ISSUE acceptance list:

* **Dynamic post-dominance** — whatever merge point the table converges on,
  for *every* generated CFG shape (including the asymmetric ``nested_else``
  and the Type-3+ frontier shapes), must actually post-dominate the branch
  in the retired stream it was learned from: between consecutive retired
  instances of the branch, the merge PC appears, regardless of direction.
  The feed is the golden in-order executor, so the property is checked
  against architectural truth, not timing-engine behavior.
* **Confidence discipline** — an entry never converges before ``confidence``
  consecutive verifying frames, and a single miss restarts learning.
* **Bounded hardware** — the table never exceeds its entry budget, evicting
  insertion-order-oldest, and the recording-frame stack never exceeds
  ``stack_depth``.
"""

from __future__ import annotations

import pytest

from repro.acb.reconv import MergePointTable
from repro.validate.golden import GoldenExecutor
from repro.workloads import HammockSpec, WorkloadSpec, build_workload

#: every forward-hammock shape the generator can emit, with enough knobs to
#: give each a distinct join structure.
SHAPE_SPECS = {
    "if": HammockSpec(shape="if", nt_len=4, p=0.5),
    "if_else": HammockSpec(shape="if_else", taken_len=3, nt_len=4, p=0.5),
    "type3": HammockSpec(shape="type3", taken_len=3, nt_len=4, p=0.5),
    "nested": HammockSpec(shape="nested", nt_len=5, p=0.5),
    "nested_else": HammockSpec(shape="nested_else", taken_len=3, nt_len=5, p=0.5),
    "multi_exit": HammockSpec(shape="multi_exit", nt_len=5, p=0.5, escape_p=0.2),
    "loop_body": HammockSpec(shape="loop_body", nt_len=4, p=0.5, arm_trips=6),
    "multi_exit_far": HammockSpec(shape="multi_exit_far", nt_len=4, p=0.5,
                                  far_gap=24),
}


def shape_workload(shape: str):
    return build_workload(WorkloadSpec(
        name=f"mp_{shape}", category="test", seed=77,
        hammocks=(SHAPE_SPECS[shape],),
        ilp=2, chain=1, memory="none",
    ))


def retired_stream(workload, n: int):
    """``(pc, is_cond_branch, taken)`` tuples from the golden executor."""
    program = workload.program
    trace = GoldenExecutor(workload).run(n)
    return [
        (ev.pc, program[ev.pc].is_cond_branch, bool(ev.taken))
        for ev in trace
    ]


def learn_from_stream(stream, branch_pc, target, **table_kw):
    """Feed *stream* to a fresh table tracking one branch; return results."""
    results = []
    table = MergePointTable(
        on_converged=results.append, **table_kw
    )
    table.load(branch_pc, target)
    for pc, is_br, taken in stream:
        table.observe_retire(pc, is_br, taken)
        if table.table.get(branch_pc) is None and not results:
            break  # evicted as unlearnable
        # keep tracking across re-learns: convergence deletes the entry
        if results:
            break
    return table, results


class TestDynamicPostDominance:
    """The converged merge point must appear between every pair of retired
    instances of its branch — the dynamic post-dominance property."""

    @pytest.mark.parametrize("shape", sorted(SHAPE_SPECS))
    def test_converged_point_post_dominates(self, shape):
        workload = shape_workload(shape)
        program = workload.program
        branch_pc = program.cond_branch_pcs()[0]
        target = program[branch_pc].target
        stream = retired_stream(workload, 4000)
        table, results = learn_from_stream(
            stream, branch_pc, target, path_limit=96,
        )
        if not results:
            pytest.skip(f"{shape}: no convergence within the window")
        (res,) = results
        assert res.branch_pc == branch_pc
        assert res.reconv_pc > branch_pc  # forward merge only
        # every inter-instance segment of the retired stream must contain
        # the merge point (bounded by the recording path limit, the same
        # horizon the hardware would see)
        instances = [
            i for i, (pc, is_br, _t) in enumerate(stream)
            if is_br and pc == branch_pc
        ]
        assert len(instances) >= 8
        missing = total = 0
        for a, b in zip(instances, instances[1:]):
            segment = [pc for pc, _b, _t in stream[a + 1: b + 1]]
            if len(segment) <= 96:
                total += 1
                missing += res.reconv_pc not in segment
        if shape == "multi_exit":
            # the NT body escapes past the local join with probability
            # escape_p: the learned merge is only a *statistical*
            # post-dominator, which is exactly why the engine backs the
            # table with runtime divergence detection.  Require the merge
            # on the non-escaping majority.
            assert missing / total <= 2 * SHAPE_SPECS[shape].escape_p
        else:
            assert missing == 0, (
                f"{shape}: learned merge {res.reconv_pc:#x} missing from "
                f"{missing}/{total} retired inter-instance segments — "
                f"not a post-dominator"
            )

    @pytest.mark.parametrize("shape", ["loop_body", "multi_exit_far"])
    def test_frontier_shapes_converge(self, shape):
        """The two Type-3+ shapes exist *because* the dynamic learner can
        accept them: the table must converge on both."""
        workload = shape_workload(shape)
        program = workload.program
        branch_pc = program.cond_branch_pcs()[0]
        stream = retired_stream(workload, 4000)
        _table, results = learn_from_stream(
            stream, branch_pc, program[branch_pc].target, path_limit=96,
        )
        assert results, f"{shape}: dynamic learner failed to converge"

    def test_backward_branch_rejected_immediately(self):
        failed = []
        table = MergePointTable(on_failed=failed.append)
        table.load(200, 100)  # target <= pc: a loop branch
        assert failed == [200]
        assert not table.table


class TestConfidenceDiscipline:
    BRANCH, TARGET, MERGE = 100, 110, 120

    def _frame(self, table, taken, path):
        """Retire one branch instance plus its recorded path, then the next
        instance so the frame finalizes."""
        table.observe_retire(self.BRANCH, True, taken)
        for pc in path:
            table.observe_retire(pc, False, False)

    def _taken(self):
        return [self.TARGET, 115, self.MERGE, 125]

    def _nt(self):
        return [101, 102, self.MERGE, 125]

    def make_table(self, confidence):
        results = []
        table = MergePointTable(confidence=confidence, max_fails=16,
                                on_converged=results.append)
        table.load(self.BRANCH, self.TARGET)
        return table, results

    @pytest.mark.parametrize("confidence", [1, 2, 4, 7])
    def test_never_promotes_below_threshold(self, confidence):
        table, results = self.make_table(confidence)
        # learning: one frame per direction selects the candidate
        self._frame(table, True, self._taken())
        self._frame(table, False, self._nt())
        # now exactly confidence-1 verifying frames: must NOT converge
        for i in range(confidence - 1):
            self._frame(table, bool(i % 2), self._taken() if i % 2 else self._nt())
            assert not results, (
                f"promoted after {i + 1} verifications with "
                f"confidence={confidence}"
            )
        # the threshold-th verification converges
        self._frame(table, True, self._taken())
        table.observe_retire(self.BRANCH, True, True)  # finalize last frame
        assert len(results) == 1
        assert results[0].reconv_pc == self.MERGE

    def test_miss_resets_confidence(self):
        table, results = self.make_table(confidence=2)
        self._frame(table, True, self._taken())
        self._frame(table, False, self._nt())
        self._frame(table, True, self._taken())          # conf -> 1
        self._frame(table, True, [self.TARGET, 115])     # miss: no merge PC
        # entry is back in LEARN with paths cleared; one more verifying
        # frame must not converge (it is a learning frame again)
        self._frame(table, True, self._taken())
        table.observe_retire(self.BRANCH, True, True)
        assert not results
        entry = table.table[self.BRANCH]
        assert entry.fails == 1

    def test_max_fails_evicts_as_unlearnable(self):
        failed = []
        table = MergePointTable(confidence=2, max_fails=2,
                                on_failed=failed.append)
        table.load(self.BRANCH, self.TARGET)
        for _ in range(2):
            self._frame(table, True, [self.TARGET, 115])   # disjoint paths:
            self._frame(table, False, [101, 102])          # no common PC
        table.observe_retire(self.BRANCH, True, True)
        assert failed == [self.BRANCH]
        assert self.BRANCH not in table.table


class TestBoundedHardware:
    def test_entry_capacity_and_fifo_eviction(self):
        table = MergePointTable(entries=4)
        for i in range(10):
            pc = 100 + 10 * i
            table.load(pc, pc + 5)
            assert len(table.table) <= 4
        assert table.evictions == 6
        # insertion-order-oldest evicted: the survivors are the last four
        assert sorted(table.table) == [160, 170, 180, 190]

    def test_eviction_drops_orphan_frames(self):
        table = MergePointTable(entries=1)
        table.load(100, 110)
        table.observe_retire(100, True, True)   # opens a frame for 100
        assert len(table.frames) == 1
        table.load(200, 210)                    # evicts 100
        assert 100 not in table.table
        assert not table.frames                 # its frame went with it

    def test_frame_stack_depth_bounded(self):
        table = MergePointTable(stack_depth=3, path_limit=1000)
        table.load(100, 110)
        for _ in range(20):
            table.observe_retire(100, True, True)
            table.observe_retire(101, False, False)
        assert len(table.frames) <= 3

    def test_path_limit_bounds_recording(self):
        table = MergePointTable(path_limit=8)
        table.load(100, 110)
        table.observe_retire(100, True, True)
        for pc in range(200, 240):
            table.observe_retire(pc, False, False)
        # the frame finalized at the limit instead of growing unboundedly
        assert not table.frames
        entry = table.table[100]
        assert entry.taken_path is not None
        assert len(entry.taken_path) == 8

    def test_storage_bits_scale_with_knobs(self):
        small = MergePointTable(entries=4, path_limit=16, stack_depth=2)
        big = MergePointTable(entries=16, path_limit=96, stack_depth=8)
        assert 0 < small.storage_bits() < big.storage_bits()
