"""Tests for the cache hierarchy."""

import pytest

from repro.memory import Cache, MemoryConfig, MemoryHierarchy


class TestCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, ways=3, line_bytes=64)
        with pytest.raises(ValueError):
            Cache(size_bytes=4096, ways=1, line_bytes=60)

    def test_miss_then_hit_after_fill(self):
        cache = Cache(4096, 4)
        assert not cache.access(0x1000)
        cache.fill(0x1000)
        assert cache.access(0x1000)

    def test_same_line_hits(self):
        cache = Cache(4096, 4)
        cache.fill(0x1000)
        assert cache.access(0x1001)
        assert cache.access(0x103F)

    def test_lru_eviction(self):
        cache = Cache(2 * 64, 2, line_bytes=64)  # 1 set, 2 ways
        cache.fill(0)
        cache.fill(64 * 1)
        cache.access(0)          # 0 most recent
        cache.fill(64 * 2)       # evicts line 1
        assert cache.probe(0)
        assert not cache.probe(64)

    def test_stats(self):
        cache = Cache(4096, 4)
        cache.access(0)
        cache.fill(0)
        cache.access(0)
        assert cache.hits == 1 and cache.misses == 1
        cache.reset_stats()
        assert cache.hits == 0


class TestHierarchy:
    def test_first_access_is_dram(self):
        mem = MemoryHierarchy()
        assert mem.load(0x5000) == mem.config.dram_latency
        assert mem.dram_accesses == 1

    def test_second_access_is_l1(self):
        mem = MemoryHierarchy()
        mem.load(0x5000)
        assert mem.load(0x5000) == mem.config.l1_latency

    def test_l1_eviction_falls_to_l2(self):
        config = MemoryConfig()
        mem = MemoryHierarchy(config)
        mem.load(0x5000)
        # walk a set-conflicting stream large enough to evict from L1 but
        # not from L2
        stride = config.l1_size  # same L1 set, same L2 presence differs
        for i in range(1, config.l1_ways + 2):
            mem.load(0x5000 + i * stride)
        latency = mem.load(0x5000)
        assert latency in (config.l2_latency, config.llc_latency)

    def test_store_write_allocates(self):
        mem = MemoryHierarchy()
        mem.store(0x9000)
        assert mem.load(0x9000) == mem.config.l1_latency

    def test_is_llc_miss_probe_nondestructive(self):
        mem = MemoryHierarchy()
        assert mem.is_llc_miss(0x7000)
        assert mem.is_llc_miss(0x7000)  # probing did not fill
        mem.load(0x7000)
        assert not mem.is_llc_miss(0x7000)

    def test_latencies_ordered(self):
        c = MemoryConfig()
        assert c.l1_latency < c.l2_latency < c.llc_latency < c.dram_latency
