"""Bit-identical SimStats regression gate for engine optimizations.

The hot-loop work in ``repro.core.engine`` (heap event queue, idle-skip,
hoisted locals, precomputed decode flags, predictor index caching) is
*purely* an execution-speed concern: the paper's numbers must not move.
This suite pins the complete :class:`~repro.core.stats.SimStats` output —
every counter, including the per-branch profiles — for every scheme
configuration over a corpus of differential-fuzz seeds, against golden JSON
generated before the optimizations landed.

Any change to these numbers is an architectural change, not an
optimization, and must regenerate the goldens *deliberately*::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_engine_golden_stats.py

The fuzz corpus seeds exercise every generator shape (nested/multi-exit
hammocks, stores in predicated arms, loop-carried dependences, slow
sources), so together with the scheme sweep this covers each engine path
the optimizations touched.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import SKYLAKE_LIKE, Core
from repro.harness.runner import SCHEME_FACTORIES, split_config
from repro.validate.fuzz import random_spec
from repro.workloads.generator import build_workload

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "simstats_fuzz.json"
)

#: ≥10 fuzz-corpus seeds (ISSUE 5 acceptance floor).
SEEDS = tuple(range(10))
#: every scheme configuration the harness can run, not just the paper's 7 —
#: plus the ``@predictor`` cross-products that pin the Bullseye backend.
CONFIGS = tuple(sorted(SCHEME_FACTORIES)) + (
    "acb@bullseye", "baseline@bullseye",
)
#: architectural instructions per run — small enough that the full
#: seeds × configs matrix stays in unit-test time, large enough to reach
#: steady predication/flush activity.
INSTRUCTIONS = 400


def simulate(seed: int, config: str) -> dict:
    """One deterministic run; returns the JSON-normalized stats dict."""
    workload = build_workload(random_spec(seed))
    scheme_name, predictor = split_config(config)
    scheme = SCHEME_FACTORIES[scheme_name]()
    if scheme_name == "oracle-bp":
        predictor = "oracle"
    core = Core(workload, SKYLAKE_LIKE, scheme=scheme, predictor=predictor)
    stats = core.run(INSTRUCTIONS)
    # round-trip through JSON so the comparison matches what the golden
    # file stores (string keys, no tuples)
    return json.loads(json.dumps(stats.to_dict()))


def _regen_requested() -> bool:
    return bool(os.environ.get("REPRO_REGEN_GOLDEN"))


@pytest.fixture(scope="module")
def golden() -> dict:
    if _regen_requested():
        data = {
            str(seed): {config: simulate(seed, config) for config in CONFIGS}
            for seed in SEEDS
        }
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(data, handle, indent=1, sort_keys=True)
            handle.write("\n")
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_golden_covers_corpus(golden):
    assert set(golden) == {str(s) for s in SEEDS}
    for seed in SEEDS:
        assert set(golden[str(seed)]) == set(CONFIGS)


@pytest.mark.parametrize("seed", SEEDS)
def test_simstats_bit_identical(golden, seed):
    for config in CONFIGS:
        got = simulate(seed, config)
        want = golden[str(seed)][config]
        assert got == want, (
            f"SimStats drifted for seed={seed} config={config!r}: an engine "
            f"'optimization' changed architectural numbers (or goldens need "
            f"a deliberate REPRO_REGEN_GOLDEN=1 regeneration)"
        )
