"""Tests for the Learning Table's convergence detection (Section III-B).

The learner consumes the fetch stream; these tests synthesize streams
directly so every FSM path (Type-1/2/3, the backward transform, failures)
is exercised deterministically.
"""

import pytest

from repro.acb import ConvergenceResult, LearningTable
from repro.acb.learning import effective_taken
from repro.isa import Instruction, UopClass
from repro.isa.dyninst import DynInst


def dyn_at(pc, uop=UopClass.ALU, dst=1, target=None, cond=False, pred_taken=None):
    instr = Instruction(
        pc=pc,
        uop=uop,
        dst=None if uop is UopClass.BRANCH else dst,
        target=target,
        cond=cond,
    )
    dyn = DynInst(0, instr)
    if pred_taken is not None:
        dyn.predicted = True
        dyn.pred_taken = pred_taken
    return dyn


def branch_at(pc, target, pred_taken):
    return dyn_at(pc, uop=UopClass.BRANCH, target=target, cond=True, pred_taken=pred_taken)


def jump_at(pc, target):
    return dyn_at(pc, uop=UopClass.BRANCH, target=target, cond=False)


class Recorder:
    def __init__(self):
        self.results = []
        self.failures = []

    def converged(self, result: ConvergenceResult):
        self.results.append(result)

    def failed(self, pc: int):
        self.failures.append(pc)


def make_learner(limit=40):
    rec = Recorder()
    table = LearningTable(limit=limit, on_converged=rec.converged, on_failed=rec.failed)
    return table, rec


class TestEffectiveTaken:
    def test_unconditional_always_taken(self):
        assert effective_taken(jump_at(0, 5))

    def test_conditional_uses_prediction(self):
        assert effective_taken(branch_at(0, 5, pred_taken=True))
        assert not effective_taken(branch_at(0, 5, pred_taken=False))

    def test_non_branch_is_not_taken(self):
        assert not effective_taken(dyn_at(0))


class TestType1:
    def test_if_hammock_confirms_type1(self):
        table, rec = make_learner()
        table.load(branch_pc=10, target=14)
        table.observe(branch_at(10, 14, pred_taken=False))  # NT instance
        for pc in (11, 12, 13):
            table.observe(dyn_at(pc))
        table.observe(dyn_at(14))  # reached the target
        assert len(rec.results) == 1
        result = rec.results[0]
        assert result.conv_type == 1
        assert result.reconv_pc == 14
        assert result.body_size == 3
        assert not table.busy

    def test_taken_instances_ignored_while_waiting(self):
        table, rec = make_learner()
        table.load(10, 14)
        table.observe(branch_at(10, 14, pred_taken=True))  # wrong direction
        table.observe(dyn_at(14))
        assert not rec.results
        assert table.busy


class TestType2:
    def _learn_if_else(self, table):
        # layout: 10: branch ->14 | 11,12 NT body | 13: jmp 17 | 14-16 taken | 17 join
        table.load(10, 14)
        table.observe(branch_at(10, 14, pred_taken=False))
        table.observe(dyn_at(11))
        table.observe(dyn_at(12))
        table.observe(jump_at(13, 17))  # jumper: target 17 > branch target 14
        # validate on a taken instance
        table.observe(branch_at(10, 14, pred_taken=True))
        for pc in (14, 15, 16):
            table.observe(dyn_at(pc))
        table.observe(dyn_at(17))

    def test_if_else_confirms_type2(self):
        table, rec = make_learner()
        self._learn_if_else(table)
        assert len(rec.results) == 1
        result = rec.results[0]
        assert result.conv_type == 2
        assert result.reconv_pc == 17
        assert result.body_size > 0


class TestType3:
    def test_back_jumper_confirms_type3(self):
        # layout: 10: branch ->20 | 11,12 NT body | 13 join | ... | 20,21 taken | 22: jmp 13
        table, rec = make_learner(limit=10)
        table.load(10, 20)
        # T12 stage fails on the NT path (no target hit, no forward jumper)
        table.observe(branch_at(10, 20, pred_taken=False))
        for pc in range(11, 22):
            table.observe(dyn_at(pc if pc < 20 else pc - 5))
        # now in stage T3: scan a taken instance
        table.observe(branch_at(10, 20, pred_taken=True))
        table.observe(dyn_at(20))
        table.observe(dyn_at(21))
        table.observe(jump_at(22, 13))  # back-jumper: 10 < 13 < 20
        # validate on a not-taken instance
        table.observe(branch_at(10, 20, pred_taken=False))
        table.observe(dyn_at(11))
        table.observe(dyn_at(12))
        table.observe(dyn_at(13))
        assert len(rec.results) == 1
        assert rec.results[0].conv_type == 3
        assert rec.results[0].reconv_pc == 13


class TestBackwardTransform:
    def test_loop_branch_learned_via_figure4_transform(self):
        """A backward branch at 20 targeting 15 is viewed as a forward
        branch at 15 targeting 20 with inverted direction sense."""
        table, rec = make_learner()
        table.load(branch_pc=20, target=15)
        assert table.backward
        assert table.vpc == 15 and table.vtarget == 20
        # real taken (loop continues) == virtual not-taken: scan the body
        table.observe(branch_at(20, 15, pred_taken=True))
        for pc in range(15, 20):
            table.observe(dyn_at(pc))
        # arriving back at the branch itself is the virtual-target arrival
        table.observe(branch_at(20, 15, pred_taken=True))
        assert rec.results and rec.results[0].conv_type == 1
        assert rec.results[0].backward
        assert rec.results[0].reconv_pc == 20
        assert rec.results[0].body_size == 5


class TestFailure:
    def test_non_convergent_fails_after_both_stages(self):
        table, rec = make_learner(limit=5)
        table.load(10, 14)
        # NT scan exhausts the limit without hitting the target
        table.observe(branch_at(10, 14, pred_taken=False))
        for pc in range(30, 36):
            table.observe(dyn_at(pc))
        assert table.busy  # moved to stage T3
        # taken scan also exhausts the limit
        table.observe(branch_at(10, 14, pred_taken=True))
        for pc in range(40, 46):
            table.observe(dyn_at(pc))
        assert rec.failures == [10]
        assert not table.busy

    def test_single_entry_occupancy(self):
        table, _ = make_learner()
        table.load(10, 14)
        with pytest.raises(RuntimeError):
            table.load(20, 24)

    def test_idle_observe_is_noop(self):
        table, rec = make_learner()
        table.observe(dyn_at(5))
        assert not rec.results and not rec.failures

    def test_storage_is_20_bytes(self):
        assert LearningTable.storage_bits() == 160
