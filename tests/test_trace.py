"""Tests for the cycle-level trace subsystem (repro.trace).

Covers the collector's ring-buffer semantics, golden-file stability of the
Konata and Chrome exporters, format validity of both outputs, the ACB
decision log, and the guard the whole subsystem rests on: enabling tracing
must not change simulated timing.

Regenerate the golden files after an intentional format change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_trace.py
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest

from repro.__main__ import main
from repro.acb.scheme import AcbScheme
from repro.core.config import SKYLAKE_LIKE
from repro.core.engine import Core
from repro.isa.dyninst import DynInst
from repro.isa.instruction import Instruction
from repro.isa.opcodes import UopClass
from repro.trace import (
    AcbTraceEvent,
    TraceCollector,
    TraceConfig,
    export_chrome,
    export_konata,
    format_acb_log,
    format_branch_timeline,
)
from repro.workloads import load_suite

from tests.conftest import h2p_hammock_workload

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _traced_core(workload, scheme=None, config=None):
    cfg = replace(config or SKYLAKE_LIKE, trace=TraceConfig())
    return Core(workload, cfg, scheme=scheme)


def _dyn(seq, pc=0):
    instr = Instruction(pc=pc, uop=UopClass.ALU, dst=1, srcs=(1,))
    return DynInst(seq, instr)


class TestTraceConfig:
    def test_defaults_valid(self):
        TraceConfig().validate()

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            TraceConfig(uop_capacity=0).validate()
        with pytest.raises(ValueError):
            TraceConfig(acb_capacity=-1).validate()

    def test_core_config_validates_embedded_trace(self):
        cfg = replace(SKYLAKE_LIKE, trace=TraceConfig(uop_capacity=0))
        with pytest.raises(ValueError):
            cfg.validate()


class TestCollector:
    def test_records_uops_by_reference(self):
        coll = TraceCollector(TraceConfig())
        dyn = _dyn(0)
        coll.on_fetch(dyn)
        assert coll.uop_records()[0] is dyn
        assert coll.uops_seen == 1

    def test_uop_ring_truncates_oldest(self):
        coll = TraceCollector(TraceConfig(uop_capacity=4))
        for seq in range(10):
            coll.on_fetch(_dyn(seq))
        kept = [d.seq for d in coll.uop_records()]
        assert kept == [6, 7, 8, 9]
        assert coll.uops_seen == 10
        assert coll.truncated_uops == 6

    def test_acb_ring_truncates_oldest(self):
        coll = TraceCollector(TraceConfig(acb_capacity=2))
        for cycle in range(5):
            coll.acb(cycle, "region_open", pc=6, seq=cycle)
        events = coll.acb_events()
        assert [e.cycle for e in events] == [3, 4]
        assert coll.acb_seen == 5
        assert coll.truncated_acb == 3

    def test_acb_event_kind_filter(self):
        coll = TraceCollector(TraceConfig())
        coll.acb(1, "region_open", pc=6)
        coll.acb(2, "dynamo_epoch", epoch=1)
        coll.acb(3, "region_close", pc=6)
        kinds = [e.kind for e in coll.acb_events(kinds=("region_open",))]
        assert kinds == ["region_open"]

    def test_uops_disabled_by_config(self):
        coll = TraceCollector(TraceConfig(uops=False))
        coll.on_fetch(_dyn(0))
        assert coll.uop_records() == []
        assert coll.uops_seen == 0

    def test_acb_disabled_by_config(self):
        coll = TraceCollector(TraceConfig(acb=False))
        coll.acb(1, "region_open", pc=6)
        assert coll.acb_events() == []

    def test_finish_pins_cycle_range(self):
        coll = TraceCollector(TraceConfig())
        coll.finish(1234)
        assert coll.end_cycle == 1234
        assert "1234" in coll.summary()

    def test_event_to_dict_merges_payload(self):
        ev = AcbTraceEvent(7, "region_open", pc=6, seq=11)
        assert ev.to_dict() == {"cycle": 7, "kind": "region_open",
                                "pc": 6, "seq": 11}


def _golden_case(tmp_path):
    """Pinned micro run shared by the golden-file tests."""
    core = _traced_core(h2p_hammock_workload(seed=7), scheme=AcbScheme())
    core.run(150)
    core.trace.finish(core.cycle)
    return core


class TestGoldenExports:
    """Exporters are locked to golden files: any format change is explicit."""

    def _check(self, name, produce, tmp_path):
        out = tmp_path / name
        produce(str(out))
        golden = os.path.join(GOLDEN_DIR, name)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(golden, "w") as handle:
                handle.write(out.read_text())
            pytest.skip(f"regenerated {golden}")
        with open(golden) as handle:
            assert out.read_text() == handle.read(), (
                f"{name} drifted from golden; if intentional, regenerate via "
                f"REPRO_REGEN_GOLDEN=1"
            )

    def test_konata_golden(self, tmp_path):
        core = _golden_case(tmp_path)
        self._check("h2p_trace.konata",
                    lambda p: export_konata(core.trace, p), tmp_path)

    def test_chrome_golden(self, tmp_path):
        core = _golden_case(tmp_path)
        self._check("h2p_trace.json",
                    lambda p: export_chrome(core.trace, p), tmp_path)


class TestKonataFormat:
    def test_header_and_line_grammar(self, tmp_path):
        core = _golden_case(tmp_path)
        path = tmp_path / "t.konata"
        count = export_konata(core.trace, str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == "Kanata\t0004"
        assert lines[1].startswith("C=\t")
        starts = retires = flushes = 0
        for line in lines[2:]:
            head = line.split("\t", 1)[0]
            assert head in {"#", "C", "I", "L", "S", "E", "R"}, line
            if head == "I":
                starts += 1
            elif head == "R":
                retires += 1
                if line.split("\t")[3] == "1":
                    flushes += 1
        assert starts == count == core.trace.uops_seen
        assert retires == starts      # every uop ends (retire or flush)
        assert 0 < flushes < retires  # wrong path exists but is not everything

    def test_stage_intervals_cover_lifetime(self, tmp_path):
        core = _golden_case(tmp_path)
        path = tmp_path / "t.konata"
        export_konata(core.trace, str(path))
        # pick one retired uop and check F/A/X/C all appear for it
        retired = next(d for d in core.trace.uop_records()
                       if d.retire_cycle >= 0 and d.issue_cycle >= 0)
        stages = set()
        for line in path.read_text().splitlines():
            parts = line.split("\t")
            if parts[0] == "S" and parts[1] == str(retired.seq):
                stages.add(parts[3])
        assert stages == {"F", "A", "X", "C"}


class TestChromeFormat:
    def test_loads_as_trace_event_json(self, tmp_path):
        core = _golden_case(tmp_path)
        path = tmp_path / "t.json"
        export_chrome(core.trace, str(path))
        with open(path) as handle:
            doc = json.load(handle)
        assert set(doc) >= {"traceEvents", "otherData", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events, "no events exported"
        for event in events:
            assert event["ph"] in {"X", "i", "M"}
            if event["ph"] == "X":
                assert event["dur"] >= 1
                assert event["ts"] >= 0
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["pid"], e["name"]) for e in meta}
        assert (1, "process_name") in names and (2, "process_name") in names
        assert doc["otherData"]["uops_truncated"] == 0

    def test_region_slices_carry_outcome(self, lammps_trace, tmp_path):
        path = tmp_path / "t.json"
        export_chrome(lammps_trace, str(path))
        with open(path) as handle:
            doc = json.load(handle)
        regions = [e for e in doc["traceEvents"]
                   if e["ph"] == "X" and e["pid"] == 2]
        assert regions
        outcomes = {e["args"]["outcome"] for e in regions}
        assert "reconverged" in outcomes
        assert outcomes <= {"reconverged", "diverged", "cancelled",
                            "open-at-end"}


@pytest.fixture(scope="module")
def lammps_trace():
    """Micro workload long enough for regions AND a Dynamo pair decision."""
    (workload,) = load_suite(["lammps"])
    core = _traced_core(workload, scheme=AcbScheme())
    core.run_window(warmup=3000, measure=2000)
    core.trace.finish(core.cycle)
    return core.trace


class TestDecisionLog:
    """Acceptance: a micro workload yields region lifecycles and a Dynamo
    decision, all visible in the exported log."""

    def test_region_lifecycle_present(self, lammps_trace):
        kinds = {e.kind for e in lammps_trace.acb_events()}
        assert "region_open" in kinds and "region_close" in kinds
        opens = lammps_trace.acb_events(kinds=("region_open",))
        closes = lammps_trace.acb_events(kinds=("region_close",))
        assert len(opens) >= 1 and len(closes) >= 1

    def test_dynamo_decision_present(self, lammps_trace):
        kinds = {e.kind for e in lammps_trace.acb_events()}
        assert "dynamo_epoch" in kinds
        assert "dynamo_pair" in kinds

    def test_log_renders_every_event(self, lammps_trace):
        log = format_acb_log(lammps_trace)
        # one "[cycle ...]" line per event; FSM transitions indent under
        # their dynamo_pair line
        lines = [ln for ln in log.splitlines() if ln.startswith("[cycle")]
        assert len(lines) == len(lammps_trace.acb_events())
        assert any("dynamo_pair" in ln for ln in lines)
        assert any("region_open" in ln for ln in lines)

    def test_timeline_reports_branch(self, lammps_trace):
        text = format_branch_timeline(lammps_trace)
        assert "branch pc=" in text
        assert "predicated" in text


class TestOverheadGuard:
    """Tracing must be observation-only: timing identical on vs off."""

    def test_simstats_identical_with_tracing(self):
        def run(trace_cfg):
            core = Core(
                h2p_hammock_workload(seed=7),
                replace(SKYLAKE_LIKE, trace=trace_cfg),
                scheme=AcbScheme(),
            )
            return core.run(2000).to_dict()

        assert run(None) == run(TraceConfig())

    def test_disabled_path_allocates_no_collector(self):
        core = Core(h2p_hammock_workload(seed=7), SKYLAKE_LIKE)
        assert core.trace is None


class TestTraceCli:
    def test_trace_subcommand_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main([
            "trace", "lammps", "--config", "acb",
            "--warmup", "3000", "--measure", "2000",
            "--out", str(out),
        ]) == 0
        for name in ("trace.konata", "trace.json", "acb_log.txt",
                     "timeline.txt"):
            assert (out / name).exists(), name
        # Konata output opens with the expected magic
        assert (out / "trace.konata").read_text().startswith("Kanata\t0004")
        # Chrome output parses and carries ACB events
        doc = json.loads((out / "trace.json").read_text())
        assert any(e.get("pid") == 2 for e in doc["traceEvents"])
        log = (out / "acb_log.txt").read_text()
        assert "region_open" in log and "dynamo" in log
        captured = capsys.readouterr()
        assert "artifacts:" in captured.err

    def test_formats_subset(self, tmp_path, capsys):
        out = tmp_path / "subset"
        assert main([
            "trace", "lammps", "--warmup", "600", "--measure", "600",
            "--out", str(out), "--formats", "log",
        ]) == 0
        assert (out / "acb_log.txt").exists()
        assert not (out / "trace.konata").exists()

    def test_unknown_format_rejected(self, tmp_path, capsys):
        assert main([
            "trace", "lammps", "--out", str(tmp_path),
            "--formats", "protobuf",
        ]) == 2
