"""Golden SimStats gate for the committed mini-traces.

Convert + replay must be deterministic end to end: the same committed
trace bytes must produce bit-identical :class:`~repro.core.stats.SimStats`
under every run — across processes, platforms, and refactors of the
reconstruction pipeline.  This pins every counter for each mini-trace
under ``baseline``, ``acb``, the dynamic merge-point backend
(``acb-dmp-reconv``) and ACB over the Bullseye predictor
(``acb@bullseye``); the CI ``trace-ingest`` job replays the same matrix
from a fresh checkout and diffs against these files.

A legitimate change to the reconstruction (block layout, filler shape,
scale policy) must regenerate deliberately::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_trace_golden.py
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.runner import run_workload
from repro.workloads.trace import load_trace_workload

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "simstats_traces.json"
)

MINI_TRACES = ("h2p_loop", "gcc_like", "server_like", "mixed_small")
CONFIGS = ("baseline", "acb", "acb-dmp-reconv", "acb@bullseye")

#: windows long enough for ACB to predicate on every mini-trace, short
#: enough that the 4x2 matrix stays in unit-test time
WARMUP = 4000
MEASURE = 4000


def simulate(name: str, config: str) -> dict:
    """One deterministic replay run; JSON-normalized stats dict."""
    workload = load_trace_workload(f"trace:{name}")
    result = run_workload(workload, config, warmup=WARMUP, measure=MEASURE)
    return json.loads(json.dumps(result.stats.to_dict()))


def _regen_requested() -> bool:
    return bool(os.environ.get("REPRO_REGEN_GOLDEN"))


@pytest.fixture(scope="module")
def golden() -> dict:
    if _regen_requested():
        data = {
            name: {config: simulate(name, config) for config in CONFIGS}
            for name in MINI_TRACES
        }
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(data, handle, indent=1, sort_keys=True)
            handle.write("\n")
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_golden_covers_matrix(golden):
    assert set(golden) == set(MINI_TRACES)
    for name in MINI_TRACES:
        assert set(golden[name]) == set(CONFIGS)


@pytest.mark.parametrize("name", MINI_TRACES)
def test_trace_simstats_bit_identical(golden, name):
    for config in CONFIGS:
        got = simulate(name, config)
        want = golden[name][config]
        assert got == want, (
            f"SimStats drifted for trace={name} config={config!r}: either a "
            f"trace file changed without regenerating (tools/gen_mini_traces.py "
            f"+ REPRO_REGEN_GOLDEN=1) or the reconstruction pipeline changed "
            f"architectural behavior"
        )


def test_acb_predicates_at_least_one_trace(golden):
    assert any(
        golden[name]["acb"]["predicated_instances"] > 0 for name in MINI_TRACES
    )
