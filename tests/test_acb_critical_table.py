"""Tests for the Critical Table (Section III-A)."""

from repro.acb import CriticalTable


class TestCriticalTable:
    def test_saturation_after_threshold(self):
        table = CriticalTable(entries=64, counter_bits=4)
        saturated = False
        for i in range(20):
            saturated = table.record_mispredict(0x123)
            if saturated:
                assert i >= 14  # 4-bit counter: needs 15 increments
                break
        assert saturated

    def test_lookup(self):
        table = CriticalTable()
        assert table.lookup(0x55) is None
        table.record_mispredict(0x55)
        assert table.lookup(0x55) == 1

    def test_conflict_managed_by_utility(self):
        table = CriticalTable(entries=64)
        a, b = 0x40, 0x80  # same index (pc & 63 == 0), different tags
        table.record_mispredict(a)
        # incumbent has utility 1; one conflicting event evicts it
        table.record_mispredict(b)
        assert table.lookup(a) is None or table.lookup(b) is None
        # a heavily used incumbent survives several conflicts
        for _ in range(5):
            table.record_mispredict(a)
        table.record_mispredict(b)
        assert table.lookup(a) is not None

    def test_vacate(self):
        table = CriticalTable()
        table.record_mispredict(7)
        table.vacate(7)
        assert table.lookup(7) is None

    def test_penalize_zeroes_counter(self):
        table = CriticalTable()
        for _ in range(5):
            table.record_mispredict(7)
        table.penalize(7)
        assert table.lookup(7) == 0

    def test_window_decay_halves(self):
        table = CriticalTable()
        for _ in range(8):
            table.record_mispredict(7)
        table.decay_window()
        assert table.lookup(7) == 4

    def test_storage_is_136_bytes(self):
        # 64 x (11 tag + 2 utility + 4 critical) bits = 1088 bits
        assert CriticalTable().storage_bits() == 64 * 17

    def test_occupancy(self):
        table = CriticalTable()
        table.record_mispredict(1)
        table.record_mispredict(2)
        assert table.occupancy() == 2
