"""Seed-robustness: the headline results must not be artifacts of one
random stream.  Each key claim is checked across several functional seeds
(`seed_offset` shifts the entire behaviour stream)."""

import pytest

from repro.acb import AcbScheme
from repro.core import SKYLAKE_LIKE, Core
from repro.harness.runner import reduced_acb_config
from repro.workloads import load_suite
from tests.conftest import h2p_hammock_workload

SEEDS = (0, 101, 909)


def speedup(name: str, offset: int, n: int = 10_000) -> float:
    (w1,) = load_suite([name])
    base = Core(w1, SKYLAKE_LIKE, seed_offset=offset).run_window(8_000, n)
    (w2,) = load_suite([name])
    acb = Core(w2, SKYLAKE_LIKE, scheme=AcbScheme(reduced_acb_config()),
               seed_offset=offset).run_window(8_000, n)
    return base.cycles / acb.cycles


class TestSeedRobustness:
    @pytest.mark.parametrize("offset", SEEDS)
    def test_lammps_big_win_across_seeds(self, offset):
        assert speedup("lammps", offset) > 2.0

    @pytest.mark.parametrize("offset", SEEDS)
    def test_soplex_flat_across_seeds(self, offset):
        assert 0.9 < speedup("soplex", offset) < 1.15

    @pytest.mark.parametrize("offset", SEEDS)
    def test_acb_learning_is_seed_independent(self, offset):
        """What ACB learns (type, reconvergence point) is a property of the
        program, not of the random stream."""
        workload = h2p_hammock_workload()
        core = Core(workload, SKYLAKE_LIKE, scheme=AcbScheme(reduced_acb_config()),
                    seed_offset=offset)
        core.run(10_000)
        pc = workload.program.cond_branch_pcs()[0]
        entry = core.scheme.table.lookup(pc)
        assert entry is not None
        assert entry.conv_type == 1
        assert entry.reconv_pc == workload.program[pc].target
