"""Tests for the static program container and builder DSL."""

import pytest

from repro.isa import Instruction, UopClass
from repro.program import Program, ProgramBuilder


def tiny_loop() -> Program:
    b = ProgramBuilder("tiny")
    b.label("top")
    b.alu(dst=1, srcs=(1,))
    b.compare(srcs=(1,))
    b.cond_branch("skip", behavior="br")
    b.alu(dst=2, srcs=(1,))
    b.label("skip")
    b.jump("top")
    return b.build()


class TestProgram:
    def test_dense_pcs_enforced(self):
        bad = [
            Instruction(pc=0, uop=UopClass.NOP),
            Instruction(pc=2, uop=UopClass.BRANCH, target=0),
        ]
        with pytest.raises(ValueError):
            Program(bad)

    def test_must_end_with_unconditional_branch(self):
        with pytest.raises(ValueError):
            Program([Instruction(pc=0, uop=UopClass.NOP)])

    def test_branch_target_in_range(self):
        bad = [
            Instruction(pc=0, uop=UopClass.BRANCH, target=5),
        ]
        with pytest.raises(ValueError):
            Program(bad)

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program([])

    def test_iteration_and_indexing(self):
        program = tiny_loop()
        assert len(program) == 5
        assert program[2].is_cond_branch
        assert [i.pc for i in program] == list(range(5))

    def test_cond_branch_pcs(self):
        assert tiny_loop().cond_branch_pcs() == [2]

    def test_basic_blocks_cover_program(self):
        program = tiny_loop()
        blocks = program.basic_blocks()
        covered = sorted(pc for start, end in blocks.values() for pc in range(start, end))
        assert covered == list(range(len(program)))

    def test_disassemble_mentions_labels(self):
        assert "cond" in tiny_loop().disassemble()


class TestProgramBuilder:
    def test_forward_label_patched(self):
        program = tiny_loop()
        assert program[2].target == 4  # "skip"
        assert program[4].target == 0  # "top"

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.cond_branch("nowhere", behavior="x")
        b.jump("nowhere2")
        with pytest.raises(ValueError):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("a")
        with pytest.raises(ValueError):
            b.label("a")

    def test_next_pc_tracks_emission(self):
        b = ProgramBuilder()
        assert b.next_pc == 0
        b.alu(dst=1)
        assert b.next_pc == 1

    def test_compare_writes_flags(self):
        b = ProgramBuilder()
        b.compare(srcs=(1,))
        b.jump_pc = b.label("end")
        b.jump("end")
        program = b.build()
        from repro.isa import FLAGS

        assert program[0].dst == FLAGS

    def test_all_emitters(self):
        b = ProgramBuilder()
        b.label("top")
        b.alu(dst=1)
        b.mul(dst=2, srcs=(1,))
        b.div(dst=3, srcs=(2,))
        b.fp(dst=4, srcs=(3,))
        b.nop()
        b.load(dst=5, srcs=(4,))
        b.store(srcs=(5,))
        b.jump("top")
        program = b.build()
        kinds = [i.uop for i in program]
        assert UopClass.MUL in kinds and UopClass.DIV in kinds
        assert UopClass.LOAD in kinds and UopClass.STORE in kinds
