"""Tests for the Wish Branches baseline and the Markov branch behaviour."""

from repro.baselines import DmpScheme, WishConfig, WishScheme
from repro.core import SKYLAKE_LIKE, Core
from repro.workloads import (
    HammockSpec,
    Markov,
    WorkloadSpec,
    WorkloadState,
    build_workload,
)
from tests.conftest import h2p_hammock_workload


class TestMarkovBehavior:
    def test_bursty_runs(self):
        st = WorkloadState(5)
        beh = Markov("m", p_stay=0.95)
        outcomes = [beh.resolve(st) for _ in range(5000)]
        transitions = sum(a != b for a, b in zip(outcomes, outcomes[1:]))
        # ~5% transition rate expected
        assert transitions < 5000 * 0.10
        assert transitions > 5000 * 0.01

    def test_invalid_p_stay(self):
        import pytest

        with pytest.raises(ValueError):
            Markov("m", p_stay=1.0)

    def test_spec_integration(self):
        spec = WorkloadSpec(
            name="bursty", category="test",
            hammocks=(HammockSpec(shape="if", nt_len=4, kind="markov",
                                  p_stay=0.85),),
            ilp=2, chain=1, memory="none",
        )
        stats = Core(build_workload(spec), SKYLAKE_LIKE).run(5000)
        # bursts are learnable inside a run but every transition mispredicts
        pc = build_workload(spec).program.cond_branch_pcs()[0]
        branch = stats.per_branch[pc]
        assert 0.02 < branch.mispred_rate < 0.45


class TestWishBranches:
    def test_predicates_without_h2p_selection(self):
        """Even a fairly predictable convergent branch becomes a candidate
        (Wish Branches has no profiling gate)."""
        spec = WorkloadSpec(
            name="easy", category="test",
            hammocks=(HammockSpec(shape="if", nt_len=4, p=0.10),),
            ilp=2, chain=1, memory="none",
        )
        workload = build_workload(spec)
        wish = Core(build_workload(spec), SKYLAKE_LIKE, scheme=WishScheme())
        dmp = Core(build_workload(spec), SKYLAKE_LIKE, scheme=DmpScheme())
        pc = workload.program.cond_branch_pcs()[0]
        assert pc in wish.scheme.candidates
        # DMP's compiler may or may not select it; Wish always does
        assert len(wish.scheme.candidates) >= len(dmp.scheme.candidates)

    def test_plans_are_not_eager(self):
        workload = h2p_hammock_workload()
        core = Core(workload, SKYLAKE_LIKE, scheme=WishScheme())
        stats = core.run(6000)
        assert stats.predicated_instances > 50
        assert stats.select_uops == 0  # predicated code, not select merging

    def test_saves_flushes_on_h2p(self):
        base = Core(h2p_hammock_workload(), SKYLAKE_LIKE).run(6000)
        wish = Core(h2p_hammock_workload(), SKYLAKE_LIKE,
                    scheme=WishScheme()).run(6000)
        assert wish.flushes < base.flushes

    def test_config_defaults(self):
        assert WishConfig().min_mispred_rate == 0.0
