"""Tests for core configuration (Table II) and scaling."""

from dataclasses import replace

import pytest

from repro.core import SKYLAKE_LIKE, scaled


class TestCoreConfig:
    def test_default_is_valid(self):
        SKYLAKE_LIKE.validate()

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            replace(SKYLAKE_LIKE, alloc_width=0).validate()

    def test_empty_ports_rejected(self):
        with pytest.raises(ValueError):
            replace(SKYLAKE_LIKE, ports={}).validate()

    def test_table_mentions_key_parameters(self):
        table = SKYLAKE_LIKE.table()
        assert "TAGE" in table["Branch predictor"]
        assert "224" in table["ROB / IQ"]
        assert any("GHz" in v for v in table.values())


class TestScaling:
    def test_identity_scale(self):
        assert scaled(1) is SKYLAKE_LIKE

    def test_scale_two_doubles_widths(self):
        cfg = scaled(2)
        assert cfg.alloc_width == SKYLAKE_LIKE.alloc_width * 2
        assert cfg.fetch_width == SKYLAKE_LIKE.fetch_width * 2
        assert cfg.rob_size == SKYLAKE_LIKE.rob_size * 2
        assert cfg.ports["alu"] == SKYLAKE_LIKE.ports["alu"] * 2
        cfg.validate()

    def test_section_5d_machine_is_8_wide(self):
        # "8-wide with twice the execution/fetch resources"
        assert scaled(2).alloc_width == 8

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled(0)
