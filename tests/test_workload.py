"""Tests for the Workload container and the functional executor."""

import pytest

from repro.program import ProgramBuilder
from repro.workloads import Bernoulli, FunctionalExecutor, Workload


def make_workload(p=0.5, seed=1):
    b = ProgramBuilder("w")
    b.label("top")
    b.alu(dst=1, srcs=(1,))
    b.compare(srcs=(1,))
    b.cond_branch("skip", behavior="br")
    b.load(dst=2, srcs=(1,))
    b.label("skip")
    b.store(srcs=(1,))
    b.jump("top")
    return Workload("w", "test", b.build(), {"br": Bernoulli("br", p)}, seed=seed)


class TestFunctionalExecutor:
    def test_follows_control_flow(self):
        ex = FunctionalExecutor(make_workload(p=1.0))
        assert ex.step(0).next_pc == 1
        assert ex.step(1).next_pc == 2
        result = ex.step(2)
        assert result.taken is True
        assert result.next_pc == 4  # always-taken branch skips the load

    def test_not_taken_falls_through(self):
        ex = FunctionalExecutor(make_workload(p=0.0))
        ex.step(0), ex.step(1)
        result = ex.step(2)
        assert result.taken is False
        assert result.next_pc == 3

    def test_out_of_sync_step_raises(self):
        ex = FunctionalExecutor(make_workload())
        ex.step(0)
        with pytest.raises(RuntimeError):
            ex.step(5)

    def test_mem_addresses_only_on_mem_ops(self):
        ex = FunctionalExecutor(make_workload(p=0.0))
        assert ex.step(0).mem_addr is None
        ex.step(1), ex.step(2)
        assert ex.step(3).mem_addr is not None  # the load
        assert ex.step(4).mem_addr is not None  # the store

    def test_instr_count_advances(self):
        ex = FunctionalExecutor(make_workload())
        for _ in range(10):
            ex.step(ex.next_pc)
        assert ex.instr_count == 10

    def test_snapshot_restore_replays(self):
        ex = FunctionalExecutor(make_workload(p=0.5))
        for _ in range(5):
            ex.step(ex.next_pc)
        snap = ex.snapshot()
        trace = [(ex.next_pc, ex.step(ex.next_pc).taken) for _ in range(30)]
        ex.restore(snap)
        replay = [(ex.next_pc, ex.step(ex.next_pc).taken) for _ in range(30)]
        assert trace == replay

    def test_seed_offset_changes_stream(self):
        a = FunctionalExecutor(make_workload(), seed_offset=0)
        b = FunctionalExecutor(make_workload(), seed_offset=1)
        taken_a, taken_b = [], []
        for _ in range(200):
            ra = a.step(a.next_pc)
            rb = b.step(b.next_pc)
            if ra.taken is not None:
                taken_a.append(ra.taken)
            if rb.taken is not None:
                taken_b.append(rb.taken)
        assert taken_a != taken_b


class TestWorkload:
    def test_mem_behavior_default_created_once(self):
        workload = make_workload()
        assert workload.mem_behavior(3) is workload.mem_behavior(3)

    def test_branch_behavior_lookup(self):
        workload = make_workload()
        assert workload.branch_behavior(2).name == "br"

    def test_branch_behavior_missing(self):
        workload = make_workload()
        with pytest.raises(KeyError):
            workload.branch_behavior(0)
