"""The idle-cycle fast-forward must be invisible in the results.

Every statistic the experiments consume — cycle counts, flushes, stall
counters, per-branch profiles — must be bit-identical with and without the
optimization, across plain, memory-bound, and predicated runs.
"""

from dataclasses import replace

from repro.acb import AcbScheme
from repro.core import SKYLAKE_LIKE, Core
from repro.harness.runner import reduced_acb_config
from tests.conftest import chase_workload, h2p_hammock_workload, predictable_workload


def _stats_fingerprint(stats):
    return (
        stats.cycles,
        stats.instructions,
        stats.retired_uops,
        stats.fetched,
        stats.allocated,
        stats.mispredicts,
        stats.divergence_flushes,
        stats.predicated_instances,
        stats.alloc_stall_cycles,
        stats.fetch_stall_cycles,
        stats.loads,
        stats.load_latency_total,
        tuple(sorted((pc, s.executed, s.mispredicted, s.predicated)
                     for pc, s in stats.per_branch.items())),
    )


def _run_both(workload_factory, scheme_factory=None, n=3000):
    results = []
    for fast in (True, False):
        cfg = replace(SKYLAKE_LIKE, fast_forward=fast)
        scheme = scheme_factory() if scheme_factory else None
        core = Core(workload_factory(), cfg, scheme=scheme)
        results.append(_stats_fingerprint(core.run(n)))
    return results


class TestFastForwardEquivalence:
    def test_compute_bound_workload(self):
        fast, slow = _run_both(h2p_hammock_workload)
        assert fast == slow

    def test_memory_bound_workload(self):
        fast, slow = _run_both(chase_workload, n=1500)
        assert fast == slow

    def test_predictable_workload(self):
        fast, slow = _run_both(predictable_workload)
        assert fast == slow

    def test_acb_predicated_workload(self):
        fast, slow = _run_both(
            h2p_hammock_workload, lambda: AcbScheme(reduced_acb_config()), n=6000
        )
        assert fast == slow

    def test_fast_forward_actually_helps_memory_bound(self):
        """The optimization must do real work on DRAM-bound kernels: the
        step loop should execute far fewer iterations than cycles."""
        core = Core(chase_workload(), SKYLAKE_LIKE)
        steps = 0
        orig = core.step

        def counting_step():
            nonlocal steps
            steps += 1
            orig()

        core.step = counting_step
        stats = core.run(1500)
        assert steps < stats.cycles * 0.6
