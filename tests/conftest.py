"""Shared fixtures and workload factories for the test suite."""

from __future__ import annotations

import os

import pytest

# Keep the unit suite hermetic: no persistent result cache unless a test
# opts in explicitly (the CLI honours REPRO_CACHE via ResultCache.from_env).
os.environ.setdefault("REPRO_CACHE", "0")

from repro.program import ProgramBuilder
from repro.workloads import Bernoulli, Periodic, UniformRandom, Workload


def h2p_hammock_workload(
    p: float = 0.4,
    body: int = 3,
    seed: int = 7,
    ilp: int = 2,
    with_mem: bool = True,
) -> Workload:
    """Small IF-hammock kernel with a hard-to-predict branch."""
    b = ProgramBuilder("h2p")
    b.label("top")
    b.alu(dst=1, srcs=(1,))
    b.compare(srcs=(1,))
    b.cond_branch("skip", behavior="h2p")
    b.alu(dst=2, srcs=(1,), note="body.0")
    for i in range(1, body):
        b.alu(dst=2, srcs=(2,), note=f"body.{i}")
    b.label("skip")
    b.alu(dst=3, srcs=(2,), note="join")
    for i in range(ilp):
        reg = 8 + i % 4
        b.alu(dst=reg, srcs=(reg,))
    if with_mem:
        b.load(dst=4, srcs=(3,))
        b.store(srcs=(4,))
    b.jump("top")
    return Workload(
        "h2p", "test", b.build(), {"h2p": Bernoulli("h2p", p)}, seed=seed
    )


def predictable_workload(seed: int = 7) -> Workload:
    """Kernel whose only branch follows a short period: near-zero flushes."""
    b = ProgramBuilder("predictable")
    b.label("top")
    b.alu(dst=1, srcs=(1,))
    b.compare(srcs=(1,))
    b.cond_branch("skip", behavior="pat")
    b.alu(dst=2, srcs=(1,))
    b.label("skip")
    b.alu(dst=3, srcs=(2,))
    b.jump("top")
    return Workload(
        "predictable", "test", b.build(),
        {"pat": Periodic("pat", (True, False, False))}, seed=seed,
    )


def chase_workload(seed: int = 7, span_mb: int = 64) -> Workload:
    """Serialized DRAM pointer chase plus an H2P branch off the chain."""
    b = ProgramBuilder("chase")
    b.label("top")
    b.load(dst=14, srcs=(14,), behavior="chase")
    b.alu(dst=1, srcs=(1, 14))
    b.compare(srcs=(2,))
    b.cond_branch("skip", behavior="h2p")
    b.alu(dst=2, srcs=(2,))
    b.alu(dst=2, srcs=(2,))
    b.label("skip")
    b.alu(dst=3, srcs=(2,))
    b.jump("top")
    return Workload(
        "chase", "test", b.build(),
        {
            "chase": UniformRandom("chase", base=1 << 28, span=span_mb << 20),
            "h2p": Bernoulli("h2p", 0.4),
        },
        seed=seed,
    )


@pytest.fixture
def h2p_workload() -> Workload:
    return h2p_hammock_workload()
