"""Micro-behaviour tests of individual pipeline mechanisms.

Each test builds a minimal kernel that isolates one mechanism — fetch
grouping, port contention, store→load forwarding, memory disambiguation,
flush recovery timing — and checks its cycle-level consequence.
"""

from dataclasses import replace

from repro.core import SKYLAKE_LIKE, Core
from repro.program import ProgramBuilder
from repro.workloads import Bernoulli, Periodic, Strided, Workload


def loop_workload(emit, behaviors=None, name="micro", seed=3):
    b = ProgramBuilder(name)
    b.label("top")
    emit(b)
    b.jump("top")
    return Workload(name, "test", b.build(), behaviors or {}, seed=seed)


class TestFetchAndIssueWidth:
    def test_ilp_kernel_approaches_alloc_width(self):
        """Independent ALUs should sustain close to the alloc width."""
        def emit(b):
            for i in range(12):
                reg = 1 + i % 12
                b.alu(dst=reg, srcs=(reg,))

        stats = Core(loop_workload(emit), SKYLAKE_LIKE).run(8000)
        assert stats.ipc > SKYLAKE_LIKE.alloc_width * 0.75

    def test_serial_chain_is_one_ipc_bound(self):
        def emit(b):
            for _ in range(8):
                b.alu(dst=1, srcs=(1,))

        stats = Core(loop_workload(emit), SKYLAKE_LIKE).run(6000)
        assert 0.8 < stats.ipc < 1.3

    def test_port_contention_limits_div_throughput(self):
        """DIVs share the ALU group; their latency dominates a div chain."""
        def emit(b):
            b.div(dst=1, srcs=(1,))
            b.alu(dst=2, srcs=(2,))

        stats = Core(loop_workload(emit), SKYLAKE_LIKE).run(3000)
        # one 18-cycle div per 2 instructions on the serial chain
        assert stats.ipc < 0.4


class TestMemorySystemMicro:
    def test_store_load_forwarding_beats_cache(self):
        """A load reading a just-stored line forwards from the store queue."""
        behaviors = {
            "addr": Strided("addr", base=1 << 22, stride=0, span=64),
            "addr2": Strided("addr2", base=1 << 22, stride=0, span=64),
        }

        def emit(b):
            b.alu(dst=1, srcs=(1,))
            b.store(srcs=(1,), behavior="addr")
            b.load(dst=2, srcs=(1,), behavior="addr2")

        stats = Core(loop_workload(emit, behaviors), SKYLAKE_LIKE).run(4000)
        # after warm-up, every load forwards at the forwarding latency
        assert stats.avg_load_latency < SKYLAKE_LIKE.store_forward_latency + 3

    def test_disambiguation_stalls_loads_behind_unresolved_stores(self):
        """A load cannot issue while an older store's address is unknown."""
        behaviors = {
            "st": Strided("st", base=1 << 22, stride=64, span=1 << 12),
            "ld": Strided("ld", base=1 << 24, stride=64, span=1 << 12),
        }

        def emit_dependent(b):
            b.div(dst=1, srcs=(1,))          # slow producer for the store
            b.store(srcs=(1,), behavior="st")
            b.load(dst=2, srcs=(3,), behavior="ld")
            b.alu(dst=4, srcs=(2,))

        stats = Core(loop_workload(emit_dependent, behaviors), SKYLAKE_LIKE).run(2000)
        # the load waits for the div+store each iteration: low throughput
        assert stats.ipc < 0.5


class TestFlushTiming:
    def test_flush_latency_scales_cost(self):
        """Doubling the redirect latency must slow a flush-bound kernel."""
        def make():
            def emit(b):
                b.alu(dst=1, srcs=(1,))
                b.compare(srcs=(1,))
                b.cond_branch("skip", behavior="h2p")
                b.alu(dst=2, srcs=(1,))
                b.label("skip")
                b.alu(dst=3, srcs=(2,))

            # need the label inside emit: rebuild via ProgramBuilder directly
            b = ProgramBuilder("flush")
            b.label("top")
            emit(b)
            b.jump("top")
            return Workload("flush", "test", b.build(),
                            {"h2p": Bernoulli("h2p", 0.5)}, seed=9)

        fast_cfg = replace(SKYLAKE_LIKE, flush_latency=8)
        slow_cfg = replace(SKYLAKE_LIKE, flush_latency=30)
        fast = Core(make(), fast_cfg).run(4000)
        slow = Core(make(), slow_cfg).run(4000)
        assert slow.cycles > fast.cycles * 1.2

    def test_btb_warmup_bubbles(self):
        """Taken branches insert a fetch bubble until the BTB warms up."""
        core = Core(loop_workload(lambda b: b.alu(dst=1, srcs=(2,))), SKYLAKE_LIKE)
        core.run(2000)
        assert core.btb.hits > 0
        assert core.btb.misses >= 1  # the first encounter of the loop jump

    def test_predicated_region_uops_tagged(self):
        """Region bookkeeping: body micro-ops carry the branch's id."""
        from repro.core.predication import PredicationPlan, PredicationScheme

        class Tagger(PredicationScheme):
            def __init__(self):
                self.seen_roles = set()

            def consider(self, dyn, prediction):
                if dyn.instr.is_cond_branch and dyn.pc == 2:
                    return PredicationPlan(
                        branch_pc=2, reconv_pc=4, conv_type=1, first_taken=False
                    )
                return None

            def observe_fetch(self, dyn):
                if dyn.acb_id >= 0:
                    self.seen_roles.add(dyn.acb_role)

        b = ProgramBuilder("tagged")
        b.label("top")
        b.alu(dst=1, srcs=(1,))
        b.compare(srcs=(1,))
        b.cond_branch("skip", behavior="h2p")
        b.alu(dst=2, srcs=(1,))
        b.label("skip")
        b.alu(dst=3, srcs=(2,))
        b.jump("top")
        workload = Workload("tagged", "test", b.build(),
                            {"h2p": Bernoulli("h2p", 0.5)}, seed=4)
        scheme = Tagger()
        Core(workload, SKYLAKE_LIKE, scheme=scheme).run(1000)
        from repro.isa.dyninst import ROLE_BODY, ROLE_BRANCH

        assert ROLE_BRANCH in scheme.seen_roles
        assert ROLE_BODY in scheme.seen_roles


class TestWrongPathEffects:
    def test_wrong_path_pollutes_caches(self):
        """Wrong-path loads fill cache lines the correct path never touches."""
        def emit(b):
            b.alu(dst=1, srcs=(1,))
            b.compare(srcs=(1,))
            b.cond_branch("skip", behavior="h2p")
            b.load(dst=2, srcs=(1,))
            b.label("skip")
            b.alu(dst=3, srcs=(1,))

        core = Core(
            loop_workload(emit, {"h2p": Bernoulli("h2p", 0.5)}), SKYLAKE_LIKE
        )
        core.run(4000)
        # synthesized wrong-path addresses live in a dedicated region
        wrong_path_lines = [
            line
            for cset in core.mem.l1._sets
            for line in cset
            if (line << 6) >= (1 << 32)
        ]
        assert wrong_path_lines

    def test_predictable_kernel_fetches_little_wrong_path(self):
        def emit(b):
            b.alu(dst=1, srcs=(1,))
            b.compare(srcs=(1,))
            b.cond_branch("skip", behavior="pat")
            b.alu(dst=2, srcs=(1,))
            b.label("skip")
            b.alu(dst=3, srcs=(2,))

        stats = Core(
            loop_workload(emit, {"pat": Periodic("pat", (True, False))}),
            SKYLAKE_LIKE,
        ).run(4000)
        assert stats.wrong_path_allocated < stats.allocated * 0.05
