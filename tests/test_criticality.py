"""Tests for the Fields-style criticality analysis (Section II-A)."""

import networkx as nx

from repro.core import SKYLAKE_LIKE, Core
from repro.criticality import (
    build_ddg,
    classify_mispredictions,
    critical_seqs,
    longest_path,
)
from tests.conftest import chase_workload, h2p_hammock_workload


def retired_log(workload, n=4000, cap=6000):
    core = Core(workload, SKYLAKE_LIKE)
    log = core.enable_retire_log(cap)
    core.run(n)
    return core, log


class TestDdg:
    def test_graph_is_a_dag(self):
        core, log = retired_log(h2p_hammock_workload(), 1500, 2000)
        build = build_ddg(log[:500], core.config.flush_latency)
        assert nx.is_directed_acyclic_graph(build.graph)

    def test_nodes_per_instruction(self):
        core, log = retired_log(h2p_hammock_workload(), 1000, 1500)
        window = log[:200]
        build = build_ddg(window, core.config.flush_latency)
        assert build.graph.number_of_nodes() == 3 * len(window)

    def test_longest_path_spans_window(self):
        core, log = retired_log(h2p_hammock_workload(), 1500, 2000)
        build = build_ddg(log[:500], core.config.flush_latency)
        path = longest_path(build)
        assert len(path) > 10
        seqs = critical_seqs(build)
        assert seqs

    def test_control_edges_present_for_mispredicts(self):
        core, log = retired_log(h2p_hammock_workload(p=0.5), 2000, 3000)
        build = build_ddg(log, core.config.flush_latency)
        kinds = {d["kind"] for _, _, d in build.graph.edges(data=True)}
        assert "control" in kinds
        assert "data" in kinds


class TestMispredictionCriticality:
    def test_empty_log(self):
        report = classify_mispredictions([], 14)
        assert report.mispredicts_total == 0
        assert report.critical_fraction == 0.0

    def test_branch_bound_kernel_has_critical_mispredicts(self):
        """lammps-style: flushes gate the loop, so they are critical."""
        core, log = retired_log(h2p_hammock_workload(p=0.45, ilp=0, with_mem=False), 4000)
        report = classify_mispredictions(log, core.config.flush_latency)
        assert report.mispredicts_total > 100
        assert report.critical_fraction > 0.3

    def test_memory_bound_kernel_shadows_mispredicts(self):
        """soplex-style: the pointer chase dominates; most mispredictions
        resolve in its shadow (Section V-A)."""
        core, log = retired_log(chase_workload(), 2500, 4000)
        report = classify_mispredictions(log, core.config.flush_latency)
        assert report.mispredicts_total > 50
        assert report.critical_fraction < 0.2
        assert report.edge_kinds["data"] > 0

    def test_shadowing_contrast(self):
        """The same H2P branch is critical without the chase and shadowed
        with it."""
        core_a, log_a = retired_log(
            h2p_hammock_workload(p=0.4, ilp=0, with_mem=False), 3000
        )
        hot = classify_mispredictions(log_a, core_a.config.flush_latency)
        core_b, log_b = retired_log(chase_workload(), 2500, 4000)
        cold = classify_mispredictions(log_b, core_b.config.flush_latency)
        assert hot.critical_fraction > cold.critical_fraction
