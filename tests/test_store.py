"""The SQLite experiment store: schema versioning, robustness, parity.

The store is the durable L2 behind ``.repro_cache/`` — these tests pin
the properties the service relies on: bit-exact round-trips, cache-key
parity with :mod:`repro.harness.cache`, refusal of newer schemas,
tolerance of corrupt/locked databases in non-strict mode, idempotent
concurrent writers, and the memo → cache → store lookup chain.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.harness import cache as result_cache
from repro.harness.cache import ResultCache, key_digest
from repro.harness.runner import clear_memo, normalized_run_key, run_workload
from repro.service import store as store_module
from repro.service.store import (
    STORE_SCHEMA_VERSION,
    ExperimentStore,
    StoreSchemaError,
    run_id_for,
)


def small_key(config: str = "baseline", warmup: int = 400, measure: int = 600):
    return normalized_run_key("lammps", config, 1, None, warmup, measure)


def small_result(config: str = "baseline", warmup: int = 400, measure: int = 600):
    return run_workload("lammps", config, warmup=warmup, measure=measure)


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(str(tmp_path / "exp.sqlite"))


# ----------------------------------------------------------------------
# round-trip + identity
# ----------------------------------------------------------------------
def test_round_trip_bit_identical(store):
    key = small_key()
    result = small_result()
    store.put(key, result)
    loaded = store.get(key)
    assert loaded is not None
    assert loaded.workload == result.workload
    assert loaded.config == result.config
    assert loaded.category == result.category
    assert loaded.paper_tag == result.paper_tag
    assert loaded.stats.to_dict() == result.stats.to_dict()


def test_cache_key_parity(tmp_path):
    """run_id == key_digest == the L1 cache's file stem, per construction."""
    key = small_key()
    assert run_id_for(key) == key_digest(key)
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.path_for(key).stem == run_id_for(key)


def test_put_is_idempotent(store):
    key = small_key()
    result = small_result()
    store.put(key, result)
    store.put(key, result)
    assert store.count_runs() == 1
    assert store.counters.stores == 1


def test_query_and_get_run(store):
    store.put(small_key(), small_result())
    store.put(small_key("acb"), small_result("acb"))
    rows = store.query_runs(workload="lammps")
    assert {row["config"] for row in rows} == {"baseline", "acb"}
    assert all(row["ipc"] > 0 for row in rows)
    assert store.query_runs(config="acb")[0]["config"] == "acb"
    full = store.get_run(run_id_for(small_key("acb")))
    assert full["run_key"] == list(small_key("acb"))
    assert full["stats"]["cycles"] > 0
    assert store.get_run("no-such-run") is None


# ----------------------------------------------------------------------
# schema versioning
# ----------------------------------------------------------------------
def _set_version(path, version: int) -> None:
    with sqlite3.connect(str(path)) as conn:
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(version),),
        )


def test_schema_info(store):
    info = store.schema_info()
    assert info["schema_version"] == STORE_SCHEMA_VERSION
    assert info["schema"] == "repro-store"


def test_newer_schema_refused(store):
    store.schema_info()  # create
    _set_version(store.path, STORE_SCHEMA_VERSION + 1)
    reopened = ExperimentStore(str(store.path), strict=True)
    with pytest.raises(StoreSchemaError, match="newer"):
        reopened.schema_info()


def test_older_schema_without_migration_refused(store):
    store.schema_info()
    _set_version(store.path, 0)
    reopened = ExperimentStore(str(store.path), strict=True)
    with pytest.raises(StoreSchemaError, match="no.*migration"):
        reopened.schema_info()


def test_migration_applied_in_place(store):
    store.put(small_key(), small_result())
    _set_version(store.path, 0)
    applied = []
    store_module._MIGRATIONS[0] = lambda conn: applied.append(True)
    try:
        reopened = ExperimentStore(str(store.path), strict=True)
        assert reopened.schema_info()["schema_version"] == STORE_SCHEMA_VERSION
        assert applied == [True]
        assert reopened.get(small_key()) is not None
    finally:
        del store_module._MIGRATIONS[0]


# ----------------------------------------------------------------------
# robustness: corrupt / locked databases
# ----------------------------------------------------------------------
def test_corrupt_db_strict_raises(tmp_path):
    path = tmp_path / "broken.sqlite"
    path.write_bytes(b"this is not a sqlite database, sorry")
    with pytest.raises(StoreSchemaError):
        ExperimentStore(str(path), strict=True).schema_info()


def test_corrupt_db_tolerant_degrades(tmp_path):
    path = tmp_path / "broken.sqlite"
    path.write_bytes(b"this is not a sqlite database, sorry")
    store = ExperimentStore(str(path), strict=False)
    with pytest.warns(RuntimeWarning, match="unusable"):
        assert store.get(small_key()) is None
    # subsequent operations are silent no-ops, not repeated warnings
    store.put(small_key(), small_result())
    assert store.count_runs() == 0
    assert store.counters.errors >= 1


def test_corrupt_row_tolerated(store):
    key = small_key()
    store.put(key, small_result())
    with sqlite3.connect(str(store.path)) as conn:
        conn.execute("UPDATE runs SET stats = '{not json'")
    with pytest.warns(RuntimeWarning, match="corrupt"):
        assert store.get(key) is None


def test_locked_db_tolerant(store):
    store.schema_info()  # initialize before locking
    holder = sqlite3.connect(str(store.path))
    holder.execute("BEGIN EXCLUSIVE")
    try:
        fast = ExperimentStore(str(store.path), strict=False, timeout=0.05)
        with pytest.warns(RuntimeWarning, match="locked"):
            fast.put(small_key(), small_result())
        assert fast.counters.errors >= 1
    finally:
        holder.rollback()
        holder.close()


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
def test_concurrent_writers(store):
    results = {c: small_result(c) for c in ("baseline", "acb")}
    errors = []

    def hammer(config):
        try:
            for _ in range(10):
                store.put(small_key(config), results[config])
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(config,))
        for config in results for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert store.count_runs() == 2
    for config, result in results.items():
        assert store.get(small_key(config)).stats == result.stats


# ----------------------------------------------------------------------
# the lookup chain: memo → cache → store
# ----------------------------------------------------------------------
def test_store_backs_the_lookup_chain(tmp_path, store):
    from repro.harness.parallel import RunRequest, last_manifest, run_matrix

    previous = result_cache.set_active_store(store)
    clear_memo()  # other tests may have memoized this very cell
    try:
        request = RunRequest("lammps", "baseline", warmup=400, measure=600)
        first = run_matrix([request], jobs=1)[0]
        assert last_manifest().cells[0].source == "run"
        assert store.get(request.memo_key()) is not None  # wrote through

        clear_memo()  # kill the memo so only the store can answer
        again = run_matrix([request], jobs=1)[0]
        assert last_manifest().cells[0].source == "store"
        assert again.stats == first.stats
    finally:
        result_cache.set_active_store(previous)
        clear_memo()
