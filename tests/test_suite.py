"""Tests for the 70-workload suite (Table III)."""

import pytest

from repro.workloads import (
    REPRESENTATIVE,
    build_workload,
    categories,
    load_suite,
    suite_names,
    suite_specs,
)
from repro.workloads.suite import _special_specs


class TestSuiteComposition:
    def test_seventy_workloads(self):
        assert len(suite_names()) == 70

    def test_paper_categories_present(self):
        cats = categories()
        assert set(cats) == {"ISPEC", "FSPEC", "SPEC17", "SYSmark", "Client", "Server"}
        assert len(cats["ISPEC"]) == 12
        assert len(cats["SYSmark"]) == 4

    def test_unique_names(self):
        names = suite_names()
        assert len(names) == len(set(names))

    def test_representative_subset_is_valid(self):
        assert set(REPRESENTATIVE) <= set(suite_names())
        assert len(REPRESENTATIVE) >= 10

    def test_named_outliers_have_tags(self):
        specs = suite_specs()
        assert specs["omnetpp"].paper_tag == "D"
        assert specs["eembc"].paper_tag == "C"
        assert specs["gobmk"].paper_tag == "B1"
        assert specs["povray"].paper_tag == "B2"
        assert specs["gcc"].paper_tag == "E"
        assert specs["lammps"].paper_tag == "A"

    def test_every_fig9_category_has_workloads(self):
        tags = {spec.paper_tag for spec in suite_specs().values()}
        for needed in ("A", "B1", "B2", "C", "D", "E"):
            assert needed in tags


class TestSuiteConstruction:
    def test_all_programs_build(self):
        workloads = load_suite()
        assert len(workloads) == 70
        for workload in workloads:
            assert len(workload.program) >= 5
            assert workload.behaviors

    def test_deterministic_rebuild(self):
        (a,) = load_suite(["bzip2"])
        (b,) = load_suite(["bzip2"])
        assert a.program.instructions == b.program.instructions
        assert a.seed == b.seed

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_suite(["quake"])

    def test_training_input_attached(self):
        (workload,) = load_suite(["omnetpp"])
        assert workload.train is not None
        assert workload.train.seed != workload.seed
        # the training program has the same code layout (PCs transfer)
        assert len(workload.train.program) == len(workload.program)

    def test_train_shift_changes_probabilities(self):
        spec = suite_specs()["omnetpp"]
        assert spec.train_shift != 0.0
        workload = build_workload(spec)
        test_beh = workload.behaviors["h0"]
        train_beh = workload.train.behaviors["h0"]
        assert test_beh.p != train_beh.p

    def test_special_specs_subset_of_suite(self):
        names = set(suite_names())
        for name in _special_specs():
            assert name in names
