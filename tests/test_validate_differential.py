"""Differential cross-check tests: golden vs. timing engine, and proof the
validator actually catches bugs.

Two halves:

* a fixed-seed fuzz corpus (20 seeds through the full random-program
  generator) must cross-check clean for the default config sweep —
  baseline, ACB, ACB over the dynamic merge-point learner, and ACB over
  the Bullseye predictor — and the seed → spec expansion must be
  deterministic and JSON round-trippable;
* deliberately-broken engine variants (predication resolving the *wrong*
  side; flush recovery skipping the RAT checkpoint restore) must be caught —
  the first by the trace diff, the second by the invariant checker.
"""

import json
from dataclasses import replace
from pathlib import Path
from typing import Optional

import pytest

from repro.core import SKYLAKE_LIKE, Core
from repro.core.predication import PredicationPlan, PredicationScheme
from repro.validate import GoldenExecutor, diff_traces
from repro.validate.differential import check_workload, run_config_trace
from repro.validate.fuzz import (
    _spec_size,
    random_spec,
    replay_file,
    run_fuzz,
    shrink_failure,
    spec_from_dict,
    spec_to_dict,
)
from repro.workloads import HammockSpec, WorkloadSpec, build_workload

from tests.conftest import h2p_hammock_workload

N_SEEDS = 20
FUZZ_INSTRUCTIONS = 700


class PredicateAt(PredicationScheme):
    """Predicate every instance of one PC with a fixed plan (test scheme)."""

    def __init__(self, branch_pc, reconv_pc):
        self.kw = dict(branch_pc=branch_pc, reconv_pc=reconv_pc,
                       conv_type=1, first_taken=False,
                       max_cycles=400, max_fetch=96)

    def consider(self, dyn, prediction) -> Optional[PredicationPlan]:
        if dyn.pc != self.kw["branch_pc"]:
            return None
        return PredicationPlan(**self.kw)


def engine_trace(workload, scheme=None, n=1500):
    """Run with the checker armed and the architectural trace captured."""
    core = Core(workload, replace(SKYLAKE_LIKE, debug_checks=True), scheme=scheme)
    trace = core.enable_arch_trace()
    core.run(n)
    core.checker.final_check()
    return core, trace


class TestFixedSeedCorpus:
    def test_twenty_seeds_cross_check_clean(self, tmp_path):
        """The canonical corpus: golden == baseline == ACB on 20 random
        programs spanning every generator shape and knob."""
        report = run_fuzz(
            seeds=N_SEEDS,
            instructions=FUZZ_INSTRUCTIONS,
            repro_dir=str(tmp_path / "failures"),
        )
        details = "\n".join(f.failure.describe() for f in report.failures)
        assert report.completed == N_SEEDS
        assert report.ok, f"fuzz corpus regressed:\n{details}"
        assert not (tmp_path / "failures").exists()

    def test_corpus_covers_irregular_shapes(self):
        """The 20-seed corpus must actually exercise the irregular-CFG
        vocabulary the fuzzer exists to stress."""
        shapes = set()
        knobs = set()
        for seed in range(N_SEEDS):
            for h in random_spec(seed).hammocks:
                shapes.add(h.shape)
                knobs.update(
                    k for k in ("store_in_body", "shared_store", "carry_in_body")
                    if getattr(h, k)
                )
        assert {"if_else", "nested_else"} <= shapes or len(shapes) >= 4
        assert knobs == {"store_in_body", "shared_store", "carry_in_body"}

    def test_seed_expansion_deterministic(self):
        for seed in (0, 7, 19):
            assert random_spec(seed) == random_spec(seed)
        assert random_spec(3) != random_spec(4)

    def test_spec_json_round_trip(self):
        for seed in range(8):
            spec = random_spec(seed)
            wire = json.dumps(spec_to_dict(spec))
            assert spec_from_dict(json.loads(wire)) == spec


class TestDirectedShapes:
    @pytest.mark.parametrize("shape", ["nested_else", "multi_exit", "type3"])
    def test_store_heavy_irregular_shape(self, shape):
        spec = WorkloadSpec(
            name=f"dv_{shape}", category="test", seed=23,
            hammocks=(HammockSpec(shape=shape, taken_len=3, nt_len=5, p=0.5,
                                  store_in_body=True, shared_store=True,
                                  carry_in_body=True),),
            memory="strided",
        )
        assert check_workload(build_workload(spec), instructions=800) is None

    def test_predicated_h2p_hammock_matches_golden(self):
        """Forced predication on every instance still retires the golden
        stream (transparency + false-path invalidation are invisible)."""
        workload = h2p_hammock_workload()
        pc = workload.program.cond_branch_pcs()[0]
        core, trace = engine_trace(
            workload, scheme=PredicateAt(pc, workload.program[pc].target)
        )
        assert core.stats.predicated_instances > 50
        golden = GoldenExecutor(workload).run(len(trace))
        assert diff_traces(golden[: len(trace)], trace, "golden", "engine") is None


REPRO_DIR = Path(__file__).parent / "repros"


class TestCommittedRepros:
    """Replay every committed fuzz spec: corpus fixtures must stay clean,
    and any future shrunk failure reproducer committed after a bug fix must
    stay fixed."""

    @pytest.mark.parametrize(
        "path", sorted(REPRO_DIR.glob("*.json")), ids=lambda p: p.stem
    )
    def test_replay_is_clean(self, path):
        failure = replay_file(str(path))
        assert failure is None, failure.describe()

    def test_fixtures_match_their_seeds(self):
        """The committed specs pin the exact programs: they must equal what
        their recorded seed expands to today."""
        for path in sorted(REPRO_DIR.glob("fuzz_seed*.json")):
            payload = json.loads(path.read_text())
            assert spec_from_dict(payload["spec"]) == random_spec(payload["seed"])


class TestBrokenEngineIsCaught:
    """Inject real bugs and require the subsystem to flag them."""

    def _flip_resolve(self, monkeypatch):
        orig = Core._resolve_region

        def flipped(self, region):
            region.branch.taken = not region.branch.taken
            try:
                orig(self, region)
            finally:
                region.branch.taken = not region.branch.taken

        monkeypatch.setattr(Core, "_resolve_region", flipped)

    def test_wrong_side_predication_caught_by_trace(self, monkeypatch):
        """Resolving regions with the branch direction flipped marks the
        *executed* side predicated-false: the retirement stream drops real
        instructions and keeps phantom ones.  The trace diff must see it."""
        workload = h2p_hammock_workload()
        pc = workload.program.cond_branch_pcs()[0]
        scheme = PredicateAt(pc, workload.program[pc].target)

        self._flip_resolve(monkeypatch)
        core, trace = engine_trace(workload, scheme=scheme)
        assert core.stats.predicated_instances > 0
        golden = GoldenExecutor(workload).run(len(trace))
        mismatch = diff_traces(golden[: len(trace)], trace, "golden", "engine")
        assert mismatch is not None

    def test_wrong_side_predication_caught_end_to_end(self, monkeypatch):
        """Same bug through the public check_workload driver with the real
        ACB scheme: the returned failure pinpoints config and divergence."""
        self._flip_resolve(monkeypatch)
        run = run_config_trace(h2p_hammock_workload(), "acb", instructions=2500)
        assert run.failure is None  # the checker alone cannot see this bug
        assert run.predicated_instances > 0
        failure = check_workload(
            h2p_hammock_workload(), instructions=2500, configs=("acb",)
        )
        assert failure is not None
        assert failure.kind == "mismatch" and failure.config == "acb"
        assert "diverge at index" in failure.detail

    def test_skipped_rat_restore_caught_by_checker(self, monkeypatch):
        """Dropping the RAT checkpoint restore on flush leaves squashed
        wrong-path producers in the rename table: an invariant violation,
        caught at the flush itself — no trace comparison needed."""
        orig = Core._flush

        def no_restore(self, branch, push_history):
            branch.rat_checkpoint = None
            orig(self, branch, push_history)

        monkeypatch.setattr(Core, "_flush", no_restore)
        failure = check_workload(
            h2p_hammock_workload(), instructions=1500, configs=("baseline",)
        )
        assert failure is not None
        assert failure.kind == "invariant" and failure.config == "baseline"
        assert "RAT" in failure.detail or "rat" in failure.detail

    def test_shrinker_reduces_failing_spec(self, monkeypatch):
        """With the flush bug injected, any mispredicting spec fails; the
        shrinker must hand back a strictly smaller spec that still fails."""
        orig = Core._flush

        def no_restore(self, branch, push_history):
            branch.rat_checkpoint = None
            orig(self, branch, push_history)

        monkeypatch.setattr(Core, "_flush", no_restore)
        spec = WorkloadSpec(
            name="shrink_me", category="test", seed=31,
            hammocks=(
                HammockSpec(shape="if_else", taken_len=4, nt_len=4, p=0.5,
                            store_in_body=True, shared_store=True,
                            followers=1, carry_in_body=True),
                HammockSpec(shape="nested", nt_len=6, p=0.3, slow_source=True),
            ),
            ilp=4, chain=2, memory="strided", inner_loop=(3, 1),
        )
        failure = check_workload(
            build_workload(spec), instructions=400, configs=("baseline",)
        )
        assert failure is not None
        shrunk, shrunk_failure = shrink_failure(
            spec, failure, configs=("baseline",), instructions=400,
            max_checks=25,
        )
        assert shrunk_failure is not None
        assert _spec_size(shrunk) < _spec_size(spec)
        # the shrunk spec must be a genuine reproducer on its own
        assert check_workload(
            build_workload(shrunk), instructions=400, configs=("baseline",)
        ) is not None
