"""Tests for the ACB Table, criticality confidence, and tracking."""

import pytest

from repro.acb import AcbConfig, AcbTable, TrackingTable
from repro.isa import Instruction, UopClass
from repro.isa.dyninst import DynInst


class TestAcbConfig:
    def test_body_size_classes(self):
        cfg = AcbConfig()
        assert cfg.body_size_class(4) == 0
        assert cfg.body_size_class(16) == 1
        assert cfg.body_size_class(100) == len(cfg.body_size_classes) - 1

    def test_required_rate_monotonic_in_body_size(self):
        cfg = AcbConfig()
        rates = [cfg.required_mispred_rate(s) for s in (4, 12, 20, 36, 80)]
        assert rates == sorted(rates)

    def test_reduced_scales_windows_only(self):
        base, red = AcbConfig(), AcbConfig().reduced(10)
        assert red.criticality_window < base.criticality_window
        assert red.epoch_length < base.epoch_length
        assert red.acb_sets == base.acb_sets
        assert red.learning_limit == base.learning_limit

    def test_reduced_invalid_scale(self):
        with pytest.raises(ValueError):
            AcbConfig().reduced(0)


class TestAcbTable:
    def test_allocate_and_lookup(self):
        table = AcbTable()
        entry = table.allocate(pc=100, conv_type=1, reconv_pc=110, body_size=6)
        assert table.lookup(100) is entry
        assert entry.body_class == 0
        assert entry.required_m == pytest.approx(0.06)

    def test_lookup_missing(self):
        assert AcbTable().lookup(12345) is None

    def test_first_direction_by_type(self):
        table = AcbTable()
        t1 = table.allocate(1, conv_type=1, reconv_pc=5, body_size=4)
        t3 = table.allocate(2, conv_type=3, reconv_pc=6, body_size=4)
        assert not t1.first_taken
        assert t3.first_taken

    def test_eviction_prefers_weakest_confidence(self):
        cfg = AcbConfig()
        table = AcbTable(cfg)
        # fill one set (2 ways): PCs with the same index bits
        a = table.allocate(0x10, 1, 0x20, 4)
        b = table.allocate(0x10 + cfg.acb_sets, 1, 0x20, 4)
        a.conf = 50
        b.conf = 5
        table.allocate(0x10 + 2 * cfg.acb_sets, 1, 0x20, 4)
        assert table.lookup(0x10) is not None          # strong entry kept
        assert table.lookup(0x10 + cfg.acb_sets) is None  # weak entry evicted

    def test_train_increments_on_mispredict(self):
        table = AcbTable()
        entry = table.allocate(7, 1, 12, 6)
        for _ in range(10):
            table.train(7, mispredicted=True)
        assert entry.conf == 10

    def test_train_decrements_probabilistically(self):
        table = AcbTable()
        entry = table.allocate(7, 1, 12, 40)  # large body: high required m
        entry.conf = 60
        for _ in range(2000):
            table.train(7, mispredicted=False)
        assert entry.conf < 60  # decrements happened

    def test_confidence_tracks_mispred_rate_vs_required(self):
        """The Equation 1 discipline: confidence drifts up only when the
        observed rate exceeds the body-size class requirement."""
        cfg = AcbConfig()
        table = AcbTable(cfg, seed=99)
        hot = table.allocate(1, 1, 5, body_size=6)    # requires 6%
        cold = table.allocate(2, 1, 5, body_size=6)
        rng_state = 12345
        for i in range(4000):
            rng_state = (rng_state * 1103515245 + 12345) & 0x7FFFFFFF
            toss = (rng_state >> 8) / float(1 << 23)
            table.train(1, mispredicted=toss < 0.25)   # 25% rate: hot
            table.train(2, mispredicted=toss < 0.02)   # 2% rate: below m
        assert table.confident(hot)
        assert not table.confident(cold)

    def test_reset_confidence(self):
        table = AcbTable()
        entry = table.allocate(7, 1, 12, 6)
        entry.conf = 40
        entry.reset_confidence()
        assert entry.conf == 0

    def test_storage_is_200_bytes(self):
        assert AcbTable().storage_bits() == 32 * 50


class TestTrackingTable:
    def _dyn(self, pc):
        return DynInst(0, Instruction(pc=pc, uop=UopClass.ALU, dst=1))

    def test_validation_within_limit(self):
        diverged = []
        tracker = TrackingTable(limit=10, on_diverged=diverged.append)
        tracker.arm(5, reconv_pc=9)
        for pc in (6, 7, 8, 9):
            tracker.observe(self._dyn(pc))
        assert tracker.validations == 1
        assert not diverged
        assert not tracker.busy

    def test_divergence_callback(self):
        diverged = []
        tracker = TrackingTable(limit=3, on_diverged=diverged.append)
        tracker.arm(5, reconv_pc=99)
        for pc in range(6, 12):
            tracker.observe(self._dyn(pc))
        assert diverged == [5]
        assert tracker.divergences == 1

    def test_single_entry(self):
        tracker = TrackingTable(limit=10)
        tracker.arm(5, 9)
        tracker.arm(6, 11)  # ignored: busy
        assert tracker.branch_pc == 5
