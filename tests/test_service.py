"""The HTTP service end to end: parity, durability, errors, client CLI.

The load-bearing guarantees:

* **parity** — SimStats fetched over HTTP are bit-identical to a direct
  ``run_matrix`` call for the same matrix;
* **durability** — with the memo cleared (as after a server restart),
  resubmitting a matrix is answered entirely by the experiment database
  (``source == "store"``, zero simulations);
* **validation** — malformed matrices are rejected up front with a 400
  and a complete ``problems`` list.

The server under test is real (``ThreadingHTTPServer`` on an ephemeral
port); only its lifetime is managed in-process.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import urllib.request

import pytest

from repro.harness.parallel import RunRequest, run_matrix
from repro.harness.runner import clear_memo
from repro.service.app import ROUTES, BadRequest, background_server, parse_matrix
from repro.service.client import ServiceClient, ServiceError

# Small but non-trivial windows; distinct from other tests' cells so this
# module controls its own memo hits.
WARMUP, MEASURE = 700, 900


@pytest.fixture
def service(tmp_path):
    db = tmp_path / "exp.sqlite"
    with background_server(db_path=str(db), jobs=1) as url:
        yield ServiceClient(url)


# ----------------------------------------------------------------------
# request validation (no server needed)
# ----------------------------------------------------------------------
def test_parse_matrix_product_and_cells():
    product = parse_matrix({
        "workloads": ["lammps", "gcc"], "configs": ["baseline", "acb"],
        "warmup": WARMUP, "measure": MEASURE,
    })
    assert len(product) == 4
    assert all(r.warmup == WARMUP and r.measure == MEASURE for r in product)
    explicit = parse_matrix({
        "cells": [{"workload": "lammps", "config": "acb", "measure": 500}],
        "measure": MEASURE,
    })
    assert explicit[0].measure == 500  # cell overrides the default


def test_parse_matrix_collects_every_problem():
    with pytest.raises(BadRequest) as exc:
        parse_matrix({
            "workloads": ["lammps", "no-such-workload"],
            "configs": ["baseline", "no-such-config"],
            "warmup": -3,
        })
    problems = exc.value.problems
    assert any("no-such-workload" in p for p in problems)
    assert any("no-such-config" in p for p in problems)
    assert any("warmup" in p for p in problems)


# ----------------------------------------------------------------------
# the HTTP surface
# ----------------------------------------------------------------------
def test_health(service):
    health = service.health()
    assert health["status"] == "ok"
    assert health["schema"] == "repro-store"


def test_submit_results_match_run_matrix_bit_for_bit(service):
    matrix = {"workloads": ["lammps"], "configs": ["baseline", "acb"],
              "warmup": WARMUP, "measure": MEASURE}
    job = service.submit(**matrix)
    assert job["status"] == "queued" or job["status"] == "running"
    assert len(job["cells"]) == 2
    service.wait(job["job_id"], timeout=300)

    direct = run_matrix(
        [RunRequest("lammps", c, warmup=WARMUP, measure=MEASURE)
         for c in ("baseline", "acb")],
        jobs=1,
    )
    fetched = service.results(job["job_id"])
    assert [r["config"] for r in fetched] == ["baseline", "acb"]
    for http_row, local in zip(fetched, direct):
        assert http_row["stats"] == local.stats.to_dict()

    # the manifest accounts for every cell
    manifest = service.manifest(job["job_id"])
    assert len(manifest["cells"]) == 2
    assert all("source" in cell for cell in manifest["cells"])


def test_resubmission_served_from_experiment_store(service):
    matrix = {"workloads": ["lammps"], "configs": ["baseline"],
              "warmup": WARMUP + 1, "measure": MEASURE}
    first = service.submit(**matrix)
    service.wait(first["job_id"], timeout=300)
    baseline = service.results(first["job_id"])[0]["stats"]

    # a server restart would clear the in-process memo; simulate exactly
    # that, so the only possible source below is the SQLite store
    clear_memo()
    again = service.submit(**matrix)
    done = service.wait(again["job_id"], timeout=300)
    assert done["simulated"] == 0
    assert done["cache_hits"] == 1
    rows = service.results(again["job_id"])
    assert rows[0]["source"] == "store"
    assert rows[0]["stats"] == baseline  # durable and bit-identical


def test_event_feed_cursor(service):
    job = service.submit(workloads=["lammps"], configs=["baseline"],
                         warmup=WARMUP, measure=MEASURE)
    service.wait(job["job_id"], timeout=300)
    feed = service.events(job["job_id"], since=0)
    kinds = [e["event"] for e in feed["events"]]
    assert kinds[0] == "queued"
    assert kinds[-1] == "done"
    assert "cell" in kinds
    seqs = [e["seq"] for e in feed["events"]]
    assert seqs == sorted(seqs)
    # the cursor excludes everything at or before `since`
    rest = service.events(job["job_id"], since=seqs[-2])
    assert [e["seq"] for e in rest["events"]] == [seqs[-1]]


def test_run_query_and_detail(service):
    job = service.submit(workloads=["lammps"], configs=["acb"],
                         warmup=WARMUP, measure=MEASURE)
    service.wait(job["job_id"], timeout=300)
    rows = service.runs(workload="lammps", config="acb")
    assert rows and rows[0]["run_id"] == job["cells"][0]["run_id"]
    detail = service.run(rows[0]["run_id"])
    assert detail["stats"]["cycles"] > 0
    assert detail["run_key"][0] == "lammps"


def test_error_statuses(service):
    # 400: invalid matrix, every problem reported
    with pytest.raises(ServiceError) as exc:
        service.submit(workloads=["nope"], configs=["baseline"])
    assert exc.value.status == 400
    assert any("nope" in p for p in exc.value.payload["problems"])
    # 404: unknown job, unknown run, unknown route
    for call in (lambda: service.job("feedfacecafe"),
                 lambda: service.run("feedfacecafe"),
                 lambda: service.request("GET", "/api/v1/nonsense")):
        with pytest.raises(ServiceError) as exc:
            call()
        assert exc.value.status == 404
    # 405: wrong method on a real route
    with pytest.raises(ServiceError) as exc:
        service.request("POST", "/api/v1/health", body={})
    assert exc.value.status == 405


def test_results_conflict_while_running(service):
    # a fresh window nothing else has cached, so the job takes real time
    job = service.submit(workloads=["lammps"], configs=["baseline"],
                         warmup=16_000, measure=12_000)
    try:
        with pytest.raises(ServiceError) as exc:
            service.results(job["job_id"])
        assert exc.value.status == 409
    finally:
        service.wait(job["job_id"], timeout=300)


def test_trace_job_and_artifact_download(service, tmp_path):
    traced = service.trace("lammps", "acb", warmup=500, measure=400,
                           formats=["timeline", "log"])
    assert traced["stats"]["cycles"] > 0
    artifacts = {a["format"]: a for a in traced["artifacts"]}
    assert set(artifacts) == {"timeline", "log"}
    body = service.artifact(artifacts["timeline"]["artifact_id"])
    assert len(body) == artifacts["timeline"]["bytes"]
    # artifact listing via the job route agrees
    listed = service.artifacts(traced["job_id"])
    assert {a["artifact_id"] for a in listed} == {
        a["artifact_id"] for a in traced["artifacts"]
    }
    with pytest.raises(ServiceError) as exc:
        service.artifact(999_999)
    assert exc.value.status == 404


def test_follow_streams_ndjson(service):
    job = service.submit(workloads=["lammps"], configs=["baseline"],
                         warmup=WARMUP, measure=MEASURE)
    url = f"{service.url}/api/v1/jobs/{job['job_id']}/events?follow=1&timeout=60"
    with urllib.request.urlopen(url, timeout=90) as resp:
        lines = [json.loads(line) for line in resp.read().splitlines()]
    assert lines[0]["event"] == "queued"
    assert lines[-1]["event"] in ("done", "failed")


def test_route_table_is_complete():
    """Every handler named in ROUTES exists on the handler class."""
    from repro.service.app import ServiceHandler

    for route in ROUTES:
        assert callable(getattr(ServiceHandler, route.handler))


# ----------------------------------------------------------------------
# the client CLI, end to end
# ----------------------------------------------------------------------
def test_cli_submit_and_runs(service):
    env = dict(
        os.environ,
        PYTHONPATH=os.path.join(os.path.dirname(__file__), "..", "src"),
        REPRO_CACHE="0",
    )
    submit = subprocess.run(
        [sys.executable, "-m", "repro", "submit", "lammps",
         "--configs", "baseline", "--warmup", str(WARMUP),
         "--measure", str(MEASURE), "--url", service.url],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert submit.returncode == 0, submit.stderr
    assert "lammps" in submit.stdout and "baseline" in submit.stdout

    runs = subprocess.run(
        [sys.executable, "-m", "repro", "runs", "--url", service.url,
         "--workload", "lammps", "--json"],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert runs.returncode == 0, runs.stderr
    rows = json.loads(runs.stdout)
    assert any(row["workload"] == "lammps" for row in rows)
