"""Tests for the branch-prediction substrate."""

import pytest

from repro.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    ConfidenceEstimator,
    GlobalHistory,
    GSharePredictor,
    OraclePredictor,
    TagePredictor,
    make_predictor,
)
from repro.workloads import Bernoulli, Correlated, Periodic, WorkloadState


def train_inorder(bp, behaviors, n, seed=3):
    """Run behaviours through a predictor with in-order resolution."""
    st = WorkloadState(seed)
    wrong = {b.name: 0 for b in behaviors}
    total = {b.name: 0 for b in behaviors}
    for _ in range(n):
        for i, beh in enumerate(behaviors):
            pc = 64 + i * 17
            taken = beh.resolve(st)
            pred = bp.predict(pc)
            cp = bp.checkpoint()
            bp.spec_push(pc, pred.taken)
            if pred.taken != taken:
                bp.restore(cp, pc, taken)
                wrong[beh.name] += 1
            bp.update(pc, taken, pred.meta, pred.taken != taken)
            total[beh.name] += 1
    return {k: wrong[k] / total[k] for k in wrong}


class TestGlobalHistory:
    def test_push_and_recent(self):
        h = GlobalHistory(8)
        for bit in (True, False, True):
            h.push(bit)
        assert h.recent(3) == 0b101

    def test_bounded_length(self):
        h = GlobalHistory(4)
        for _ in range(100):
            h.push(True)
        assert h.bits == 0b1111

    def test_checkpoint_restore(self):
        h = GlobalHistory(16)
        h.push(True)
        cp = h.checkpoint()
        h.push(False)
        h.restore(cp)
        assert h.bits == cp

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)


class TestBimodal:
    def test_learns_bias(self):
        rates = train_inorder(BimodalPredictor(), [Bernoulli("b", 0.9)], 3000)
        assert rates["b"] < 0.15

    def test_cannot_learn_patterns(self):
        rates = train_inorder(BimodalPredictor(), [Periodic("p", (True, False))], 3000)
        assert rates["p"] > 0.4


class TestGShare:
    def test_learns_short_patterns(self):
        rates = train_inorder(GSharePredictor(), [Periodic("p", (True, True, False))], 5000)
        assert rates["p"] < 0.05

    def test_power_of_two_size(self):
        with pytest.raises(ValueError):
            GSharePredictor(size=1000)


class TestTage:
    def test_learns_periodic_nearly_perfectly(self):
        behaviors = [Periodic("p", (True, True, False, False, True))]
        rates = train_inorder(TagePredictor(), behaviors, 5000)
        assert rates["p"] < 0.02

    def test_learns_correlation_through_history(self):
        """The Fig. 2(b) pair: the follower becomes predictable only because
        the leader's outcome is in the global history."""
        rates = train_inorder(
            TagePredictor(),
            [Bernoulli("lead", 0.5), Correlated("follow", "lead")],
            6000,
        )
        assert rates["lead"] > 0.35       # leader is genuinely hard
        assert rates["follow"] < 0.05     # follower rides the history

    def test_noise_stays_near_entropy_floor(self):
        rates = train_inorder(TagePredictor(), [Bernoulli("b", 0.25)], 8000)
        assert rates["b"] < 0.40  # no worse than a mildly noisy bimodal

    def test_checkpoint_restore_roundtrip(self):
        bp = TagePredictor()
        bp.spec_push(0, True)
        cp = bp.checkpoint()
        bp.spec_push(0, False)
        bp.restore(cp, 0, True)
        assert bp.hist.recent(2) == 0b11

    def test_restore_without_outcome(self):
        bp = TagePredictor()
        bp.spec_push(0, True)
        cp = bp.checkpoint()
        bp.spec_push(0, False)
        bp.restore(cp, 0, None)
        assert bp.hist.bits == cp

    def test_allocation_on_mispredicts(self):
        bp = TagePredictor()
        train_inorder(bp, [Bernoulli("b", 0.5)], 2000)
        assert sum(bp.tagged_occupancy()) > 0

    def test_storage_accounted(self):
        assert TagePredictor().storage_bits() > 8 * 1024


class TestOracle:
    def test_always_right(self):
        bp = OraclePredictor()
        assert bp.predict(0, actual=True).taken is True
        assert bp.predict(0, actual=False).taken is False


class TestConfidence:
    def test_confident_after_streak(self):
        est = ConfidenceEstimator(threshold=4)
        for _ in range(4):
            est.train(10, correct=True)
        assert est.is_confident(10)

    def test_reset_on_mispredict(self):
        est = ConfidenceEstimator(threshold=4)
        for _ in range(10):
            est.train(10, correct=True)
        est.train(10, correct=False)
        assert not est.is_confident(10)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            ConfidenceEstimator(size=100)
        with pytest.raises(ValueError):
            ConfidenceEstimator(threshold=0)


class TestBtb:
    def test_hit_after_insert(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        assert not btb.lookup(5)
        btb.insert(5, 100)
        assert btb.lookup(5)

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.insert(0, 1)
        btb.insert(16, 1)
        btb.lookup(0)          # make 0 most recent
        btb.insert(32, 1)      # evicts 16
        assert btb.lookup(0)
        assert not btb.lookup(16)


class TestFactory:
    def test_all_registered(self):
        for name in ("bimodal", "gshare", "tage", "oracle"):
            assert make_predictor(name) is not None

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_predictor("neural")
