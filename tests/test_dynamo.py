"""Tests for the Dynamo performance monitor (Section III-C, Figure 5)."""

from dataclasses import replace

from repro.acb import (
    BAD,
    GOOD,
    LIKELY_BAD,
    LIKELY_GOOD,
    NEUTRAL,
    AcbConfig,
    AcbTable,
    Dynamo,
)


def make_dynamo(epoch=100, factor=0.125, involvement_bits=4, reset=0):
    cfg = replace(
        AcbConfig(),
        epoch_length=epoch,
        cycle_change_factor=factor,
        involvement_bits=involvement_bits,
        dynamo_reset_interval=reset,
    )
    table = AcbTable(cfg)
    return Dynamo(cfg, table), table


def run_epoch(dynamo, cycles_per_instr):
    """Retire one epoch's worth of instructions at a given CPI."""
    start = dynamo.epoch_start_cycle
    for i in range(dynamo.config.epoch_length):
        cycle = start + int((i + 1) * cycles_per_instr)
        dynamo.on_retire(cycle)


def saturate_involvement(dynamo, entry):
    for _ in range(20):
        dynamo.note_instance(entry)


class TestEpochs:
    def test_epoch_parity_alternates(self):
        dynamo, _ = make_dynamo()
        assert dynamo.measuring_off          # epoch 1 = odd = ACB mostly off
        run_epoch(dynamo, 1.0)
        assert not dynamo.measuring_off
        run_epoch(dynamo, 1.0)
        assert dynamo.measuring_off

    def test_enable_policy_by_state_and_parity(self):
        dynamo, table = make_dynamo()
        entry = table.allocate(1, 1, 5, 4)
        # odd epoch: only GOOD entries run
        entry.fsm = NEUTRAL
        assert not dynamo.enabled(entry)
        entry.fsm = GOOD
        assert dynamo.enabled(entry)
        run_epoch(dynamo, 1.0)  # now even
        entry.fsm = NEUTRAL
        assert dynamo.enabled(entry)
        entry.fsm = BAD
        assert not dynamo.enabled(entry)

    def test_disabled_dynamo_always_enables(self):
        dynamo, table = make_dynamo()
        dynamo.config = replace(dynamo.config, dynamo_enabled=False)
        entry = table.allocate(1, 1, 5, 4)
        entry.fsm = BAD
        assert dynamo.enabled(entry)


class TestPairEvaluation:
    def test_bad_transition_on_slowdown(self):
        dynamo, table = make_dynamo()
        entry = table.allocate(1, 1, 5, 4)
        run_epoch(dynamo, 1.0)              # off epoch: 100 cycles
        saturate_involvement(dynamo, entry)
        run_epoch(dynamo, 2.0)              # on epoch: 200 cycles (worse)
        assert entry.fsm == LIKELY_BAD

    def test_good_transition_on_speedup(self):
        dynamo, table = make_dynamo()
        entry = table.allocate(1, 1, 5, 4)
        run_epoch(dynamo, 2.0)
        saturate_involvement(dynamo, entry)
        run_epoch(dynamo, 1.0)
        assert entry.fsm == LIKELY_GOOD

    def test_final_states_reached_after_consecutive_pairs(self):
        dynamo, table = make_dynamo()
        entry = table.allocate(1, 1, 5, 4)
        for _ in range(2):
            run_epoch(dynamo, 1.0)
            saturate_involvement(dynamo, entry)
            run_epoch(dynamo, 2.0)
        assert entry.fsm == BAD

    def test_final_states_absorbing(self):
        dynamo, table = make_dynamo()
        entry = table.allocate(1, 1, 5, 4)
        entry.fsm = BAD
        run_epoch(dynamo, 2.0)
        saturate_involvement(dynamo, entry)
        run_epoch(dynamo, 1.0)   # huge improvement, but BAD stays
        assert entry.fsm == BAD

    def test_within_threshold_no_transition(self):
        dynamo, table = make_dynamo(factor=0.125)
        entry = table.allocate(1, 1, 5, 4)
        run_epoch(dynamo, 1.0)
        saturate_involvement(dynamo, entry)
        run_epoch(dynamo, 1.05)  # +5% < 12.5% threshold
        assert entry.fsm == NEUTRAL

    def test_unsaturated_involvement_blocks_transition(self):
        dynamo, table = make_dynamo()
        entry = table.allocate(1, 1, 5, 4)
        run_epoch(dynamo, 1.0)
        dynamo.note_instance(entry)  # far below saturation
        run_epoch(dynamo, 3.0)
        assert entry.fsm == NEUTRAL

    def test_involvement_reset_every_pair(self):
        dynamo, table = make_dynamo()
        entry = table.allocate(1, 1, 5, 4)
        run_epoch(dynamo, 1.0)
        saturate_involvement(dynamo, entry)
        run_epoch(dynamo, 1.0)
        assert entry.involvement == 0


class TestReset:
    def test_periodic_reset_restores_neutral(self):
        dynamo, table = make_dynamo(epoch=100, reset=400)
        entry = table.allocate(1, 1, 5, 4)
        entry.fsm = BAD
        for _ in range(4):
            run_epoch(dynamo, 1.0)
        assert entry.fsm == NEUTRAL
        assert entry.involvement == 0

    def test_state_histogram(self):
        dynamo, table = make_dynamo()
        a = table.allocate(1, 1, 5, 4)
        b = table.allocate(2, 1, 6, 4)
        a.fsm, b.fsm = GOOD, BAD
        hist = dynamo.state_histogram()
        assert hist[GOOD] == 1 and hist[BAD] == 1 and sum(hist) == 2


class TestSaturation:
    def test_cycle_counter_saturates_at_18_bits(self):
        dynamo, table = make_dynamo(epoch=10)
        entry = table.allocate(1, 1, 5, 4)
        run_epoch(dynamo, 1.0)
        saturate_involvement(dynamo, entry)
        # astronomically slow on-epoch: counter clamps, still evaluates BAD-ward
        start = dynamo.epoch_start_cycle
        for i in range(10):
            dynamo.on_retire(start + (i + 1) * 1_000_000)
        assert entry.fsm == LIKELY_BAD
