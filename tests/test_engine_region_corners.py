"""Corner-case tests of predicated-region / flush interactions.

These exercise the most delicate engine logic: regions torn by flushes,
cycle-based divergence timeouts, inner mispredicting branches inside a
predicated region, and history handling ablations.
"""

from dataclasses import replace
from typing import Optional

from repro.acb import AcbScheme
from repro.core import SKYLAKE_LIKE, Core
from repro.core.predication import PredicationPlan, PredicationScheme
from repro.harness.runner import reduced_acb_config
from repro.program import ProgramBuilder
from repro.workloads import Bernoulli, Periodic, UniformRandom, Workload


class PredicateAt(PredicationScheme):
    """Predicate every instance of one PC with a fixed plan."""

    def __init__(self, branch_pc, reconv_pc, conv_type=1, first_taken=False,
                 max_cycles=400, max_fetch=96):
        self.kw = dict(branch_pc=branch_pc, reconv_pc=reconv_pc,
                       conv_type=conv_type, first_taken=first_taken,
                       max_cycles=max_cycles, max_fetch=max_fetch)
        self.closed = 0
        self.diverged = 0
        self.flushes_seen = 0

    def consider(self, dyn, prediction) -> Optional[PredicationPlan]:
        if dyn.pc != self.kw["branch_pc"]:
            return None
        return PredicationPlan(**self.kw)

    def on_region_closed(self, region, diverged):
        self.closed += 1
        self.diverged += diverged

    def on_flush(self):
        self.flushes_seen += 1


def inner_branch_workload(inner_p=0.3, seed=11):
    """An H2P hammock whose body contains another (mispredicting) branch."""
    b = ProgramBuilder("inner")
    b.label("top")
    b.alu(dst=1, srcs=(1,))
    b.compare(srcs=(1,))
    b.cond_branch("join", behavior="outer")     # the predicated branch
    b.alu(dst=2, srcs=(1,))
    b.compare(srcs=(2,))
    b.cond_branch("iskip", behavior="inner")    # inner H2P branch (true path)
    b.alu(dst=2, srcs=(2,))
    b.label("iskip")
    b.alu(dst=2, srcs=(2,))
    b.label("join")
    b.alu(dst=3, srcs=(2,))
    b.alu(dst=8, srcs=(8,))
    b.jump("top")
    return Workload(
        "inner", "test", b.build(),
        {"outer": Bernoulli("outer", 0.4), "inner": Bernoulli("inner", inner_p)},
        seed=seed,
    )


class TestInnerBranchInsideRegion:
    def test_survives_inner_mispredicts(self):
        """Inner true-path mispredicts flush mid-region; the engine must
        recover (divergence or refetch) and keep the functional stream in
        sync for thousands of instances."""
        workload = inner_branch_workload()
        pc = workload.program.cond_branch_pcs()[0]
        scheme = PredicateAt(pc, workload.program[pc].target, conv_type=1)
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme)
        stats = core.run(20_000)
        assert stats.instructions >= 20_000
        assert stats.predicated_instances > 500
        # inner branch still flushes; outer almost never does
        outer = stats.per_branch[pc]
        assert outer.mispredicted <= stats.divergence_flushes
        inner_pc = workload.program.cond_branch_pcs()[1]
        assert stats.per_branch[inner_pc].mispredicted > 100

    def test_architectural_count_unaffected(self):
        workload = inner_branch_workload()
        base = Core(inner_branch_workload(), SKYLAKE_LIKE).run(8_000)
        pc = workload.program.cond_branch_pcs()[0]
        scheme = PredicateAt(pc, workload.program[pc].target, conv_type=1)
        pred = Core(inner_branch_workload(), SKYLAKE_LIKE, scheme=scheme).run(8_000)
        assert abs(base.instructions - pred.instructions) <= SKYLAKE_LIKE.retire_width


class TestCycleTimeout:
    def test_stale_open_region_diverges_on_cycle_budget(self):
        """White-box: an open region whose cycle budget lapses must be
        declared divergent by the per-cycle timeout tick (the deadlock
        backstop for regions the fetch stream can never finish)."""
        workload = inner_branch_workload()
        pc = workload.program.cond_branch_pcs()[0]
        scheme = PredicateAt(pc, workload.program[pc].target, conv_type=1,
                             max_cycles=50)
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme)
        # run until a region is open at the fetch boundary
        for _ in range(50_000):
            core.step()
            if core.region is not None:
                break
        assert core.region is not None
        region = core.region
        region.opened_cycle = core.cycle - 10_000  # simulate a stale region
        core._tick_region_timeout()
        assert core.region is None
        assert region.branch.diverged
        assert core.fetch_halted  # waiting for the divergence flush
        # and the machine recovers: the flush happens and progress resumes
        before = core.stats.instructions
        core.run(before + 500)
        assert core.stats.divergence_flushes >= 1


class TestOracleHistoryAblation:
    def test_acb_pbh_restores_follower_accuracy(self):
        """With oracle history insertion, predicated leaders stay visible to
        the history, so correlated followers keep predicting well."""
        from repro.workloads import load_suite

        def run(oracle_history):
            (workload,) = load_suite(["omnetpp"])
            cfg = replace(reduced_acb_config(), oracle_history=oracle_history,
                          dynamo_enabled=False)
            core = Core(workload, SKYLAKE_LIKE, scheme=AcbScheme(cfg))
            stats = core.run_window(10_000, 10_000)
            followers = [
                pc for pc in workload.program.cond_branch_pcs()
                if not workload.program[pc].is_forward_branch
            ]
            return sum(stats.per_branch[pc].mispredicted for pc in followers
                       if pc in stats.per_branch)

        assert run(oracle_history=True) < run(oracle_history=False) * 0.5


class TestRegionTornByLaterFlush:
    def test_closed_region_survives_posterior_flush(self):
        """A flush from a branch *after* the region must not corrupt the
        pending region's resolution."""
        b = ProgramBuilder("posterior")
        b.label("top")
        b.load(dst=7, srcs=(3,), behavior="slow")   # slow branch source
        b.compare(srcs=(7,))
        b.cond_branch("join", behavior="h2p")       # predicated, resolves late
        b.alu(dst=2, srcs=(1,))
        b.alu(dst=2, srcs=(2,))
        b.label("join")
        b.alu(dst=3, srcs=(2,))
        b.compare(srcs=(1,))
        b.cond_branch("skip2", behavior="h2p2")     # posterior H2P branch
        b.alu(dst=5, srcs=(1,))
        b.label("skip2")
        b.alu(dst=6, srcs=(5,))
        b.jump("top")
        workload = Workload(
            "posterior", "test", b.build(),
            {"h2p": Bernoulli("h2p", 0.4), "h2p2": Bernoulli("h2p2", 0.4),
             "slow": UniformRandom("slow", 1 << 26, 8 << 20)},
            seed=9,
        )
        pc = workload.program.cond_branch_pcs()[0]
        scheme = PredicateAt(pc, workload.program[pc].target, conv_type=1)
        core = Core(workload, SKYLAKE_LIKE, scheme=scheme)
        stats = core.run(10_000)
        assert stats.instructions >= 10_000
        # the predicated branch itself stays flush-free apart from rare
        # divergences, while the posterior branch flushes freely
        assert stats.per_branch[pc].mispredicted == 0
        posterior_pc = workload.program.cond_branch_pcs()[1]
        assert stats.per_branch[posterior_pc].mispredicted > 100


class TestPredictableRegionsNoOp:
    def test_predicating_a_predictable_branch_wastes_little(self):
        """Force-predicating a perfectly predictable branch should cost only
        modest allocation overhead — the Equation 1 cost side in isolation."""
        def make():
            b = ProgramBuilder("easy")
            b.label("top")
            b.alu(dst=1, srcs=(1,))
            b.compare(srcs=(1,))
            b.cond_branch("join", behavior="pat")
            b.alu(dst=2, srcs=(1,))
            b.alu(dst=2, srcs=(2,))
            b.label("join")
            b.alu(dst=3, srcs=(2,))
            for r in (8, 9, 10, 11):
                b.alu(dst=r, srcs=(r,))
            b.jump("top")
            return Workload("easy", "test", b.build(),
                            {"pat": Periodic("pat", (True, False))}, seed=5)

        base = Core(make(), SKYLAKE_LIKE).run(8_000)
        workload = make()
        pc = workload.program.cond_branch_pcs()[0]
        scheme = PredicateAt(pc, workload.program[pc].target, conv_type=1)
        pred = Core(make(), SKYLAKE_LIKE, scheme=scheme).run(8_000)
        # some slowdown from extra fetch/alloc, but bounded
        assert pred.cycles < base.cycles * 1.5
        assert pred.allocated > base.allocated
