"""Tests for the workload generator's program shapes."""

import pytest

from repro.isa import FLAGS, UopClass
from repro.program import classify_hammock, find_reconvergence
from repro.workloads import HammockSpec, WorkloadSpec, build_workload


def gen(shape=None, hammock=None, **spec_kw):
    hammocks = (hammock,) if hammock else (
        HammockSpec(shape=shape or "if", taken_len=4, nt_len=4, p=0.4),
    )
    defaults = dict(ilp=2, chain=2, memory="strided", mem_span_kb=64)
    defaults.update(spec_kw)
    return build_workload(
        WorkloadSpec(name="gen", category="test", hammocks=hammocks, **defaults)
    )


class TestShapes:
    @pytest.mark.parametrize("shape", ["if", "if_else", "type3", "nested",
                                       "nested_else", "multi_exit"])
    def test_every_shape_reconverges(self, shape):
        workload = gen(shape)
        pc = workload.program.cond_branch_pcs()[0]
        assert find_reconvergence(workload.program, pc) is not None

    def test_if_body_length(self):
        workload = gen(hammock=HammockSpec(shape="if", nt_len=6, p=0.4))
        pc = workload.program.cond_branch_pcs()[0]
        info = classify_hammock(workload.program, pc)
        assert info.not_taken_len == 6
        assert info.taken_len == 0

    def test_type3_taken_block_after_loop_jump(self):
        workload = gen("type3")
        program = workload.program
        pc = program.cond_branch_pcs()[0]
        target = program[pc].target
        reconv = find_reconvergence(program, pc)
        assert pc < reconv < target  # the Type-3 signature

    def test_live_outs_spread_registers(self):
        wide = gen(hammock=HammockSpec(shape="if", nt_len=8, p=0.4, live_outs=4))
        narrow = gen(hammock=HammockSpec(shape="if", nt_len=8, p=0.4, live_outs=1))
        def body_dsts(workload):
            pc = workload.program.cond_branch_pcs()[0]
            instr = workload.program[pc]
            return {
                workload.program[p].dst
                for p in range(instr.fallthrough, instr.target)
                if workload.program[p].dst is not None
            }
        assert len(body_dsts(wide)) > len(body_dsts(narrow))

    def test_store_in_body(self):
        workload = gen(hammock=HammockSpec(shape="if", nt_len=5, p=0.4,
                                           store_in_body=True))
        pc = workload.program.cond_branch_pcs()[0]
        assert classify_hammock(workload.program, pc).has_store


class TestType3PlusShapes:
    """The frontier shapes: regions the *static* fetch-stream learner must
    reject (with a stable, named reason) while the dynamic merge-point
    backend may accept them."""

    def _run_scheme(self, shape, config, n=6000, **hammock_kw):
        from repro.core import SKYLAKE_LIKE, Core
        from repro.harness.runner import make_scheme

        workload = gen(hammock=HammockSpec(shape=shape, p=0.5, **hammock_kw))
        scheme = make_scheme(config)
        Core(workload, SKYLAKE_LIKE, scheme=scheme).run(n)
        return scheme

    def test_loop_body_emits_inner_counted_loop(self):
        workload = gen(hammock=HammockSpec(shape="loop_body", nt_len=4, p=0.5,
                                           arm_trips=12))
        program = workload.program
        backward = [
            p for p in program.cond_branch_pcs()
            if not program[p].is_forward_branch
        ]
        # the arm loop plus the outer kernel loop
        assert len(backward) >= 1
        arm = backward[0]
        behavior = workload.behaviors[program[arm].behavior]
        assert behavior.trips == 12 and behavior.jitter == 0

    def test_multi_exit_far_targets_past_local_join(self):
        workload = gen(hammock=HammockSpec(shape="multi_exit_far", nt_len=4,
                                           p=0.5, far_gap=48))
        program = workload.program
        pc = program.cond_branch_pcs()[0]
        target = program[pc].target
        # the branch jumps over the NT body AND the far gap
        assert target - program[pc].fallthrough > 48

    @pytest.mark.parametrize("shape,kw", [
        ("loop_body", dict(nt_len=4, arm_trips=12)),
        ("multi_exit_far", dict(nt_len=4, far_gap=48)),
    ])
    def test_static_learner_rejects_with_stable_reason(self, shape, kw):
        """The fetch-stream scan wraps the kernel loop without confirming a
        convergence type on both frontier shapes — and says so.  Pinning
        the reason string keeps the rejection *diagnosable*: a future
        learner change that starts rejecting for a different reason (or
        accepting) must show up here."""
        scheme = self._run_scheme(shape, "acb", **kw)
        assert scheme.learned == 0
        assert scheme.learning.last_fail_reason == "wrapped"

    @pytest.mark.parametrize("shape,kw", [
        ("loop_body", dict(nt_len=4, arm_trips=12)),
        ("multi_exit_far", dict(nt_len=4, far_gap=48)),
    ])
    def test_dynamic_backend_accepts(self, shape, kw):
        scheme = self._run_scheme(shape, "acb-dmp-reconv", **kw)
        assert scheme.learned >= 1


class TestBehaviorWiring:
    def test_slow_source_adds_compare_load(self):
        workload = gen(hammock=HammockSpec(shape="if", nt_len=4, p=0.4,
                                           slow_source=True))
        program = workload.program
        pc = program.cond_branch_pcs()[0]
        # the two instructions before the branch: load then compare
        assert program[pc - 1].dst == FLAGS
        assert program[pc - 2].uop is UopClass.LOAD

    def test_followers_are_backward_branches(self):
        workload = gen(hammock=HammockSpec(shape="if", nt_len=4, p=0.4,
                                           followers=2))
        program = workload.program
        backward = [
            p for p in program.cond_branch_pcs()
            if not program[p].is_forward_branch
        ]
        assert len(backward) == 2
        for p in backward:
            assert workload.behaviors[program[p].behavior].source == "h0"

    def test_join_feeds_chain(self):
        workload = gen(hammock=HammockSpec(shape="if", nt_len=4, p=0.4,
                                           join_feeds_chain=True))
        program = workload.program
        pc = program.cond_branch_pcs()[0]
        join = program[pc].target
        # join consumer writes R3, then the chain feed reads (R1, R3) -> R1
        assert program[join + 1].dst == 1
        assert set(program[join + 1].srcs) == {1, 3}

    def test_training_variant_shifts_bernoulli(self):
        workload = gen(
            hammock=HammockSpec(shape="if", nt_len=4, p=0.40),
            train_shift=-0.2,
        )
        assert workload.behaviors["h0"].p == pytest.approx(0.40)
        assert workload.train.behaviors["h0"].p == pytest.approx(0.20)

    def test_memory_modes(self):
        for mode in ("none", "strided", "random", "chase"):
            workload = gen("if", memory=mode, mem_span_kb=128)
            has_loads = any(i.is_load for i in workload.program)
            assert has_loads == (mode != "none")

    def test_inner_loop_emits_backward_branch(self):
        workload = gen("if", inner_loop=(8, 2))
        program = workload.program
        assert any(
            not program[p].is_forward_branch for p in program.cond_branch_pcs()
        )
