"""Trace container round-trip, corruption rejection, and text ingest.

The native ``.rbt.gz`` format (repro.workloads.trace.format) is the
interchange point between the converter CLI and the replay harness; these
tests pin its invariants: byte-identical round trips (the committed
mini-traces must be regenerable bit-for-bit), loud rejection of anything
malformed, and faithful parsing of CBP-style text dumps.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.workloads.trace import (
    MAGIC,
    RECORD_BYTES,
    TRACE_SCHEMA_VERSION,
    BranchRecord,
    TraceFormatError,
    TraceMeta,
    downsample,
    load_branch_trace,
    read_cbp_text,
    read_trace,
    recommended_acb_scale,
    trace_stem,
    write_trace,
)


def sample_records(n: int = 64) -> list:
    return [
        BranchRecord(pc=0x400000 + 4 * i, taken=bool(i % 3), target=0x500000 + i)
        for i in range(n)
    ]


def sample_meta(n: int) -> TraceMeta:
    return TraceMeta(
        name="sample", records=n, source="unit-test", source_records=n,
        acb_scale=recommended_acb_scale(max(1, n)),
    )


class TestNativeRoundTrip:
    def test_records_and_meta_survive(self, tmp_path):
        records = sample_records(200)
        path = str(tmp_path / "sample.rbt.gz")
        count = write_trace(path, records, sample_meta(200))
        assert count == 200
        meta, back = read_trace(path)
        assert back == records
        assert meta.name == "sample"
        assert meta.records == 200
        assert meta.schema == TRACE_SCHEMA_VERSION
        assert meta.acb_scale == recommended_acb_scale(200)

    def test_rewrite_is_bit_identical(self, tmp_path):
        records = sample_records(150)
        a, b = str(tmp_path / "a.rbt.gz"), str(tmp_path / "b.rbt.gz")
        write_trace(a, records, sample_meta(150))
        write_trace(b, records, sample_meta(150))
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_generator_input_fills_count(self, tmp_path):
        path = str(tmp_path / "gen.rbt.gz")
        meta = sample_meta(0)
        write_trace(path, iter(sample_records(33)), meta)
        assert meta.records == 33
        got, back = read_trace(path)
        assert got.records == 33 and len(back) == 33

    def test_empty_trace_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.rbt.gz")
        write_trace(path, [], sample_meta(0))
        meta, records = read_trace(path)
        assert meta.records == 0 and records == []

    def test_64bit_pcs_survive(self, tmp_path):
        records = [BranchRecord(0x7FFF_FFFF_FFFF_FFF0, True, (1 << 64) - 4)]
        path = str(tmp_path / "wide.rbt.gz")
        write_trace(path, records, sample_meta(1))
        _, back = read_trace(path)
        assert back == records


class TestCorruptionRejection:
    def _valid_bytes(self, tmp_path, n: int = 40) -> bytes:
        path = str(tmp_path / "valid.rbt.gz")
        write_trace(path, sample_records(n), sample_meta(n))
        return open(path, "rb").read()

    def _write(self, tmp_path, raw: bytes) -> str:
        path = str(tmp_path / "corrupt.rbt.gz")
        with open(path, "wb") as handle:
            handle.write(raw)
        return path

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path, gzip.compress(b"NOPE" + b"x" * 64))
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace(path)

    def test_truncated_gzip_stream(self, tmp_path):
        raw = self._valid_bytes(tmp_path)
        path = self._write(tmp_path, raw[: len(raw) // 2])
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = self._write(tmp_path, gzip.compress(MAGIC + b'{"schema": 1'))
        with pytest.raises(TraceFormatError, match="truncated header"):
            read_trace(path)

    def test_corrupt_header_json(self, tmp_path):
        path = self._write(tmp_path, gzip.compress(MAGIC + b"not json\n"))
        with pytest.raises(TraceFormatError, match="corrupt header"):
            read_trace(path)

    def test_unsupported_schema(self, tmp_path):
        header = json.dumps({"schema": 99, "name": "x", "records": 0}).encode()
        path = self._write(tmp_path, gzip.compress(MAGIC + header + b"\n"))
        with pytest.raises(TraceFormatError, match="schema"):
            read_trace(path)

    def test_payload_shorter_than_promised(self, tmp_path):
        header = json.dumps({"schema": 1, "name": "x", "records": 10}).encode()
        payload = b"\x00" * (3 * RECORD_BYTES)
        path = self._write(tmp_path, gzip.compress(MAGIC + header + b"\n" + payload))
        with pytest.raises(TraceFormatError, match="payload"):
            read_trace(path)

    def test_negative_record_count(self, tmp_path):
        header = json.dumps({"schema": 1, "name": "x", "records": -1}).encode()
        path = self._write(tmp_path, gzip.compress(MAGIC + header + b"\n"))
        with pytest.raises(TraceFormatError, match="record count"):
            read_trace(path)

    def test_bad_acb_scale(self, tmp_path):
        header = json.dumps(
            {"schema": 1, "name": "x", "records": 0, "acb_scale": 0}
        ).encode()
        path = self._write(tmp_path, gzip.compress(MAGIC + header + b"\n"))
        with pytest.raises(TraceFormatError, match="acb_scale"):
            read_trace(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="unreadable"):
            read_trace(str(tmp_path / "never-written.rbt.gz"))


class TestCbpText:
    def _write(self, tmp_path, text: str, name: str = "t.cbp") -> str:
        path = str(tmp_path / name)
        with open(path, "w") as handle:
            handle.write(text)
        return path

    def test_hex_and_decimal_with_outcome_tokens(self, tmp_path):
        path = self._write(
            tmp_path,
            "# comment line\n"
            "0x400010 T 0x400050\n"
            "4194384 N\n"
            "0x400010 1 0x400050\n"
            "0x400020 0 0x400010  # trailing comment\n"
            "\n",
        )
        records = read_cbp_text(path)
        assert records == [
            BranchRecord(0x400010, True, 0x400050),
            BranchRecord(4194384, False, 4194384),  # missing target -> own pc
            BranchRecord(0x400010, True, 0x400050),
            BranchRecord(0x400020, False, 0x400010),
        ]

    def test_gzipped_text(self, tmp_path):
        path = str(tmp_path / "t.cbp.gz")
        with open(path, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as gz:
                gz.write(b"0x10 T 0x20\n0x20 N\n")
        assert len(read_cbp_text(path)) == 2

    def test_short_line_rejected(self, tmp_path):
        path = self._write(tmp_path, "0x400010\n")
        with pytest.raises(TraceFormatError, match="pc outcome"):
            read_cbp_text(path)

    def test_bad_outcome_token_rejected(self, tmp_path):
        path = self._write(tmp_path, "0x400010 maybe\n")
        with pytest.raises(TraceFormatError, match="unparsable"):
            read_cbp_text(path)

    def test_load_branch_trace_synthesizes_meta(self, tmp_path):
        path = self._write(tmp_path, "0x10 T\n" * 300, name="dump.cbp")
        meta, records = load_branch_trace(path)
        assert len(records) == 300
        assert meta.name == "dump"
        assert meta.acb_scale == recommended_acb_scale(300)

    def test_load_branch_trace_unknown_suffix_fallback(self, tmp_path):
        native = str(tmp_path / "mystery.bin")
        write_trace(native, sample_records(5), sample_meta(5))
        meta, records = load_branch_trace(native)
        assert meta.name == "sample" and len(records) == 5
        text = self._write(tmp_path, "0x10 T\n", name="mystery2.bin")
        _, records = load_branch_trace(text)
        assert len(records) == 1


class TestDownsampleAndHelpers:
    def test_window_and_offset(self):
        records = sample_records(100)
        window, offset = downsample(records, 10, 20)
        assert window == records[20:30] and offset == 20

    def test_none_window_keeps_tail(self):
        records = sample_records(10)
        window, offset = downsample(records, None, 4)
        assert window == records[4:] and offset == 4

    def test_overlong_window_clamps(self):
        records = sample_records(10)
        window, _ = downsample(records, 500, 2)
        assert window == records[2:]

    def test_bad_arguments(self):
        records = sample_records(10)
        with pytest.raises(ValueError, match="offset"):
            downsample(records, 5, -1)
        with pytest.raises(ValueError, match="window"):
            downsample(records, 0, 0)
        with pytest.raises(ValueError, match="past the end"):
            downsample(records, 5, 10)

    def test_trace_stem(self):
        assert trace_stem("/a/b/foo.rbt.gz") == "foo"
        assert trace_stem("bar.cbp.gz") == "bar"
        assert trace_stem("baz.txt") == "baz"
        assert trace_stem("plain") == "plain"

    def test_recommended_acb_scale_bounds(self):
        with pytest.raises(ValueError):
            recommended_acb_scale(0)
        assert recommended_acb_scale(1) == 50        # clamped at the floor pass
        assert recommended_acb_scale(10_000) == 3    # 70k uops per pass
        assert recommended_acb_scale(10_000_000) == 1
