"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_suite_lists_categories(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "ISPEC" in out and "Server" in out
        assert "lammps" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_bytes"] == 386

    def test_experiment_registry_covers_evaluation(self):
        for fig in ("fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"):
            assert fig in EXPERIMENTS
        for table in ("table1", "table2", "table3"):
            assert table in EXPERIMENTS

    def test_run_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "1500")
        monkeypatch.setenv("REPRO_MEASURE", "2000")
        assert main(["run", "lammps", "--config", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out

    def test_compare_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "1500")
        monkeypatch.setenv("REPRO_MEASURE", "2000")
        assert main(["compare", "lammps", "baseline", "acb"]) == 0
        out = capsys.readouterr().out
        assert "vs first" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "quake3"])
