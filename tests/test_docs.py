"""Tests for the documentation checker (tools/check_docs.py).

The repo's own docs must pass, and the checker must actually detect the
failure modes it exists for — a checker that never fails checks nothing.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO, "tools", "check_docs.py")


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepoDocsPass:
    def test_all_links_resolve(self):
        findings = [f for path in checker.doc_files()
                    for f in checker.check_links(path)]
        assert findings == []

    def test_python_snippets_compile(self):
        # full execution is the CI docs job; the unit suite only compiles
        for path in checker.doc_files():
            for snippet in checker.snippets(path):
                if snippet.lang == "python":
                    compile(snippet.text, f"{path}:{snippet.line}", "exec")

    def test_bash_snippets_validate(self):
        subcommands = checker._cli_subcommands()
        assert "trace" in subcommands and "run" in subcommands
        findings = [
            f for path in checker.doc_files()
            for snippet in checker.snippets(path)
            if snippet.lang == "bash"
            for f in checker.check_bash(snippet, subcommands)
        ]
        assert findings == []

    def test_observability_doc_exists_and_indexed(self):
        assert os.path.exists(os.path.join(REPO, "docs", "observability.md"))
        readme = open(os.path.join(REPO, "README.md")).read()
        assert "docs/observability.md" in readme


class TestCheckerCatches:
    def test_broken_link_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("see [missing](no/such/file.md) for details\n")
        findings = list(checker.check_links(str(doc)))
        assert len(findings) == 1
        assert "no/such/file.md" in findings[0]

    def test_external_links_not_fetched(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text("[x](https://example.com/y) [y](mailto:a@b.c)\n")
        assert list(checker.check_links(str(doc))) == []

    def test_bad_subcommand_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("```bash\npython -m repro frobnicate lammps\n```\n")
        (snippet,) = checker.snippets(str(doc))
        findings = list(checker.check_bash(snippet, {"run", "trace"}))
        assert findings and "frobnicate" in findings[0]

    def test_missing_path_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("```bash\npytest tests/no_such_test.py\n```\n")
        (snippet,) = checker.snippets(str(doc))
        findings = list(checker.check_bash(snippet, set()))
        assert findings and "no_such_test.py" in findings[0]

    def test_syntax_error_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("```python\ndef broken(:\n```\n")
        (snippet,) = checker.snippets(str(doc))
        findings = list(checker.check_python(snippet))
        assert findings and "compile" in findings[0]

    def test_skip_marker_respected(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text(
            "<!-- doccheck: skip -->\n"
            "```python\nraise RuntimeError('never executed')\n```\n"
        )
        (snippet,) = checker.snippets(str(doc))
        assert snippet.skipped
        assert list(checker.check_python(snippet)) == []


class TestCheckerCli:
    def test_exit_zero_on_repo(self):
        proc = subprocess.run(
            [sys.executable, SCRIPT], cwd=REPO,
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout
