"""Tests for the documentation checker (tools/check_docs.py).

The repo's own docs must pass, and the checker must actually detect the
failure modes it exists for — a checker that never fails checks nothing.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO, "tools", "check_docs.py")


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepoDocsPass:
    def test_all_links_resolve(self):
        findings = [f for path in checker.doc_files()
                    for f in checker.check_links(path)]
        assert findings == []

    def test_python_snippets_compile(self):
        # full execution is the CI docs job; the unit suite only compiles
        for path in checker.doc_files():
            for snippet in checker.snippets(path):
                if snippet.lang == "python":
                    compile(snippet.text, f"{path}:{snippet.line}", "exec")

    def test_bash_snippets_validate(self):
        subcommands = checker._cli_subcommands()
        assert "trace" in subcommands and "run" in subcommands
        assert "serve" in subcommands and "submit" in subcommands
        routes = checker.service_routes()
        findings = [
            f for path in checker.doc_files()
            for snippet in checker.snippets(path)
            if snippet.lang == "bash"
            for f in checker.check_bash(snippet, subcommands, routes)
        ]
        assert findings == []

    def test_every_route_documented(self):
        routes = checker.service_routes()
        assert len(routes) >= 10
        assert list(checker.check_route_coverage(routes)) == []

    def test_observability_doc_exists_and_indexed(self):
        assert os.path.exists(os.path.join(REPO, "docs", "observability.md"))
        readme = open(os.path.join(REPO, "README.md")).read()
        assert "docs/observability.md" in readme

    def test_service_doc_indexed(self):
        readme = open(os.path.join(REPO, "README.md")).read()
        assert "docs/service.md" in readme
        assert "CHANGES.md" in readme  # the project-status pointer


class TestCheckerCatches:
    def test_broken_link_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("see [missing](no/such/file.md) for details\n")
        findings = list(checker.check_links(str(doc)))
        assert len(findings) == 1
        assert "no/such/file.md" in findings[0]

    def test_external_links_not_fetched(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text("[x](https://example.com/y) [y](mailto:a@b.c)\n")
        assert list(checker.check_links(str(doc))) == []

    def test_bad_subcommand_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("```bash\npython -m repro frobnicate lammps\n```\n")
        (snippet,) = checker.snippets(str(doc))
        findings = list(checker.check_bash(snippet, {"run", "trace"}, []))
        assert findings and "frobnicate" in findings[0]

    def test_missing_path_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("```bash\npytest tests/no_such_test.py\n```\n")
        (snippet,) = checker.snippets(str(doc))
        findings = list(checker.check_bash(snippet, set(), []))
        assert findings and "no_such_test.py" in findings[0]

    def test_curl_against_unknown_route_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text(
            "```bash\ncurl -s http://127.0.0.1:8321/api/v1/bogus\n```\n"
        )
        (snippet,) = checker.snippets(str(doc))
        routes = checker.service_routes()
        findings = list(checker.check_bash(snippet, set(), routes))
        assert findings and "/api/v1/bogus" in findings[0]

    def test_curl_wrong_method_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text(
            "```bash\ncurl -s -X POST http://127.0.0.1:8321/api/v1/health\n```\n"
        )
        (snippet,) = checker.snippets(str(doc))
        findings = list(
            checker.check_bash(snippet, set(), checker.service_routes())
        )
        assert findings and "POST /api/v1/health" in findings[0]

    def test_curl_placeholder_segment_matches_param(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text(
            "```bash\n"
            "curl -s 'http://127.0.0.1:8321/api/v1/jobs/<job_id>/events?since=3'\n"
            "curl -s -X POST http://127.0.0.1:8321/api/v1/jobs \\\n"
            "  -d '{\"workloads\": [\"lammps\"], \"configs\": [\"acb\"]}'\n"
            "```\n"
        )
        (snippet,) = checker.snippets(str(doc))
        findings = list(
            checker.check_bash(snippet, set(), checker.service_routes())
        )
        assert findings == []

    def test_undocumented_route_detected(self, tmp_path, monkeypatch):
        doc = tmp_path / "service.md"
        doc.write_text("# partial api docs\n\nGET /api/v1/health\n")
        monkeypatch.setattr(checker, "SERVICE_DOC", str(doc))
        findings = list(checker.check_route_coverage(checker.service_routes()))
        assert findings and any("POST /api/v1/jobs" in f for f in findings)

    def test_syntax_error_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("```python\ndef broken(:\n```\n")
        (snippet,) = checker.snippets(str(doc))
        findings = list(checker.check_python(snippet))
        assert findings and "compile" in findings[0]

    def test_skip_marker_respected(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text(
            "<!-- doccheck: skip -->\n"
            "```python\nraise RuntimeError('never executed')\n```\n"
        )
        (snippet,) = checker.snippets(str(doc))
        assert snippet.skipped
        assert list(checker.check_python(snippet)) == []


class TestCheckerCli:
    def test_exit_zero_on_repo(self):
        proc = subprocess.run(
            [sys.executable, SCRIPT], cwd=REPO,
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout
