"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.acb import CriticalTable
from repro.branch import GlobalHistory
from repro.harness import geomean
from repro.isa import Instruction, UopClass
from repro.memory import Cache
from repro.program import ProgramBuilder
from repro.workloads import WorkloadState


class TestWorkloadStateProperties:
    @given(seed=st.integers(min_value=0, max_value=2**63), n=st.integers(1, 50))
    @settings(max_examples=50)
    def test_snapshot_restore_replays_exactly(self, seed, n):
        state = WorkloadState(seed)
        snap = state.snapshot()
        first = [state.rand_u64() for _ in range(n)]
        state.restore(snap)
        assert [state.rand_u64() for _ in range(n)] == first

    @given(seed=st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=50)
    def test_rand01_bounds(self, seed):
        state = WorkloadState(seed)
        for _ in range(100):
            assert 0.0 <= state.rand01() < 1.0


class TestHistoryProperties:
    @given(bits=st.lists(st.booleans(), min_size=1, max_size=200),
           length=st.integers(1, 64))
    @settings(max_examples=50)
    def test_history_keeps_only_recent_bits(self, bits, length):
        hist = GlobalHistory(length)
        for bit in bits:
            hist.push(bit)
        expected = 0
        for bit in bits[-length:]:
            expected = ((expected << 1) | bit) & ((1 << length) - 1)
        assert hist.bits == expected

    @given(bits=st.lists(st.booleans(), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_checkpoint_restore_is_identity(self, bits):
        hist = GlobalHistory(32)
        for bit in bits[: len(bits) // 2]:
            hist.push(bit)
        cp = hist.checkpoint()
        for bit in bits[len(bits) // 2:]:
            hist.push(bit)
        hist.restore(cp)
        assert hist.bits == cp


class TestCacheProperties:
    @given(addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_ways(self, addrs):
        cache = Cache(4096, 4)
        for addr in addrs:
            if not cache.access(addr):
                cache.fill(addr)
        for cset in cache._sets:
            assert len(cset) <= cache.ways

    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_fill_makes_hit(self, addrs):
        cache = Cache(8192, 8)
        for addr in addrs:
            cache.fill(addr)
            assert cache.access(addr)


class TestCriticalTableProperties:
    @given(pcs=st.lists(st.integers(0, 4095), min_size=1, max_size=400))
    @settings(max_examples=30)
    def test_counters_stay_in_range(self, pcs):
        table = CriticalTable(entries=16, counter_bits=4)
        for pc in pcs:
            table.record_mispredict(pc)
        for entry in table._table:
            if entry is not None:
                assert 0 <= entry.critical <= 15
                assert 0 <= entry.utility <= 3

    @given(pcs=st.lists(st.integers(0, 4095), min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_lookup_after_record_consistent(self, pcs):
        table = CriticalTable(entries=16)
        for pc in pcs:
            table.record_mispredict(pc)
        count = table.lookup(pcs[-1])
        assert count is None or count >= 1


class TestGeomeanProperties:
    @given(vals=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_bounded_by_min_max(self, vals):
        g = geomean(vals)
        assert min(vals) - 1e-9 <= g <= max(vals) + 1e-9


class TestProgramProperties:
    @given(
        ops=st.lists(
            st.sampled_from(["alu", "load", "store", "mul"]), min_size=1, max_size=40
        )
    )
    @settings(max_examples=30)
    def test_linear_programs_always_valid(self, ops):
        b = ProgramBuilder("prop")
        b.label("top")
        for op in ops:
            if op == "alu":
                b.alu(dst=1, srcs=(1,))
            elif op == "mul":
                b.mul(dst=2, srcs=(1,))
            elif op == "load":
                b.load(dst=3, srcs=(1,))
            else:
                b.store(srcs=(1,))
        b.jump("top")
        program = b.build()
        assert len(program) == len(ops) + 1
        for instr in program:
            assert instr.successors()

    @given(body=st.integers(1, 10), data=st.data())
    @settings(max_examples=20)
    def test_hammock_programs_reconverge(self, body, data):
        from repro.program import find_reconvergence

        b = ProgramBuilder("hammock")
        b.label("top")
        b.compare(srcs=(1,))
        b.cond_branch("skip", behavior="x")
        for _ in range(body):
            b.alu(dst=2, srcs=(2,))
        b.label("skip")
        b.jump("top")
        program = b.build()
        pc = program.cond_branch_pcs()[0]
        assert find_reconvergence(program, pc) == program[pc].target


class TestLearningTableFuzz:
    """The learner must never crash or livelock on arbitrary fetch streams."""

    @given(
        events=st.lists(
            st.tuples(
                st.integers(0, 30),              # pc
                st.sampled_from(["alu", "cond", "jump"]),
                st.booleans(),                    # predicted direction
                st.integers(0, 30),              # branch target
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_never_crashes(self, events):
        from repro.acb import LearningTable
        from repro.isa.dyninst import DynInst

        table = LearningTable(limit=10)
        table.load(branch_pc=5, target=12)
        for pc, kind, pred, target in events:
            if kind == "alu":
                instr = Instruction(pc=pc, uop=UopClass.ALU, dst=1)
                dyn = DynInst(0, instr)
            elif kind == "cond":
                instr = Instruction(pc=pc, uop=UopClass.BRANCH, target=target, cond=True)
                dyn = DynInst(0, instr)
                dyn.predicted = True
                dyn.pred_taken = pred
            else:
                instr = Instruction(pc=pc, uop=UopClass.BRANCH, target=target)
                dyn = DynInst(0, instr)
            table.observe(dyn)
        # FSM stayed within its state space
        assert table.phase in range(5)
        assert table.stage in (0, 1)
