"""Tests for CFG analysis: reconvergence, post-dominance, hammock shapes.

These use the workload generator's shapes so the "compiler" analysis is
tested against the exact layouts the suite produces.
"""

import pytest

from repro.program import (
    classify_hammock,
    find_guaranteed_reconvergence,
    find_reconvergence,
)
from repro.workloads import HammockSpec, WorkloadSpec, build_workload


def shape_program(shape, **kw):
    spec = WorkloadSpec(
        name=f"cfgtest_{shape}",
        category="test",
        hammocks=(HammockSpec(shape=shape, taken_len=4, nt_len=4, p=0.4, **kw),),
        ilp=1,
        chain=1,
        memory="none",
    )
    return build_workload(spec).program


def only_h2p_branch(program):
    """The hammock branch is the first conditional branch."""
    return program.cond_branch_pcs()[0]


class TestFindReconvergence:
    def test_if_reconverges_at_target(self):
        program = shape_program("if")
        pc = only_h2p_branch(program)
        assert find_reconvergence(program, pc) == program[pc].target

    def test_if_else_reconverges_past_target(self):
        program = shape_program("if_else")
        pc = only_h2p_branch(program)
        reconv = find_reconvergence(program, pc)
        assert reconv is not None
        assert reconv > program[pc].target

    def test_type3_reconverges_between_branch_and_target(self):
        program = shape_program("type3")
        pc = only_h2p_branch(program)
        reconv = find_reconvergence(program, pc)
        assert reconv is not None
        assert pc < reconv < program[pc].target

    def test_nested_still_reconverges_at_target(self):
        program = shape_program("nested")
        pc = only_h2p_branch(program)
        assert find_reconvergence(program, pc) == program[pc].target

    def test_non_branch_raises(self):
        program = shape_program("if")
        with pytest.raises(ValueError):
            find_reconvergence(program, 0)

    def test_unreachable_within_window_returns_none(self):
        program = shape_program("if")
        pc = only_h2p_branch(program)
        assert find_reconvergence(program, pc, max_dist=1) is None


class TestGuaranteedReconvergence:
    def test_plain_shapes_match_plain_analysis(self):
        for shape in ("if", "if_else", "type3"):
            program = shape_program(shape)
            pc = only_h2p_branch(program)
            assert find_guaranteed_reconvergence(program, pc) == find_reconvergence(
                program, pc
            )

    def test_multi_exit_guaranteed_point_is_beyond_the_bypassable_join(self):
        """The B1 pattern: the branch target (the near join) can be bypassed
        by the escape edge, so it is NOT a guaranteed merge point — the
        compiler must pick a point beyond it."""
        program = shape_program("multi_exit")
        pc = only_h2p_branch(program)
        near_join = program[pc].target
        guaranteed = find_guaranteed_reconvergence(program, pc)
        assert guaranteed is not None
        assert guaranteed > near_join
        # the hardware's Type-1 scan would confirm the near join instead —
        # exactly the coverage gap DMP's compiler analysis closes (Fig. 8 B1)
        plain = find_reconvergence(program, pc)
        assert plain is not None


class TestClassifyHammock:
    def test_if_is_simple(self):
        program = shape_program("if")
        info = classify_hammock(program, only_h2p_branch(program))
        assert info.simple
        assert info.taken_len == 0
        assert info.not_taken_len == 4
        assert not info.if_else
        assert info.body_size == 4

    def test_if_else_sides(self):
        program = shape_program("if_else")
        info = classify_hammock(program, only_h2p_branch(program))
        assert info.if_else
        assert info.taken_len == 4
        # the jumper at the end of the NT side counts toward its length
        assert info.not_taken_len == 5

    def test_store_detected(self):
        program = shape_program("if", store_in_body=True)
        info = classify_hammock(program, only_h2p_branch(program))
        assert info.has_store

    def test_nested_not_simple(self):
        program = shape_program("nested")
        info = classify_hammock(program, only_h2p_branch(program))
        assert info is not None
        assert not info.simple
