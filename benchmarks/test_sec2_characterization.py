"""Section II — characterization of branch mispredictions.

Paper: ~64 PCs cover >95% of dynamic mispredictions; of conditional-branch
mispredictions, ~72% come from convergent conditionals, ~13% from loops,
~13% from non-converging control flow.
"""

from repro.harness import experiments, format_table

from conftest import once, report


def test_sec2_characterization(benchmark):
    result = once(benchmark, experiments.sec2_characterization)

    share = result["share"]
    rows = [[kind, f"{fraction:.1%}"] for kind, fraction in share.items()]
    rows.append(["top-64-PC coverage", f"{result['avg_top64_coverage']:.1%}"])
    report(
        "sec2_characterization",
        "Misprediction characterization (paper: 72% convergent / 13% loop / "
        "13% non-convergent; 64 PCs ≥ 95%)\n"
        + format_table(["class", "share"], rows),
    )

    # shape: a small PC set covers nearly everything on kernel workloads,
    # and convergent conditionals dominate
    assert result["avg_top64_coverage"] > 0.95
    assert share["convergent"] > 0.5
    assert share["loop"] > 0.0
