"""Shared helpers for the figure/table benchmark harness.

Each benchmark regenerates one table or figure of the paper through
:mod:`repro.harness.experiments`, checks the qualitative *shape* the paper
reports, and writes the formatted rows/series to
``benchmarks/results/<id>.txt`` (pytest captures stdout, so the files are
the durable record; EXPERIMENTS.md is compiled from them).

Workload selection defaults to the representative 12-workload subset;
``REPRO_SUITE=full`` runs all 70 (slower).  Simulation runs are memoized
in-process and persisted to the on-disk result cache (``.repro_cache/``
by default, ``REPRO_CACHE=0`` to disable), so shared (workload, config)
pairs are simulated once and repeated benchmark invocations skip
already-simulated cells.  Matrices fan out over ``REPRO_JOBS`` worker
processes; a per-session run manifest is printed at the end.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.cache import ResultCache, set_active_cache
from repro.harness.parallel import session_manifests, shutdown_pool
from repro.harness.reporting import summarize_manifests

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _result_cache():
    """Install the persistent result cache for the whole benchmark session."""
    previous = set_active_cache(ResultCache.from_env())
    yield
    set_active_cache(previous)
    shutdown_pool()


def pytest_terminal_summary(terminalreporter):
    manifests = session_manifests()
    if manifests:
        terminalreporter.write_line(summarize_manifests(manifests))


def report(experiment_id: str, text: str) -> None:
    """Persist one experiment's formatted output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n")
    print(f"\n[{experiment_id}]\n{text}")


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
