"""Shared helpers for the figure/table benchmark harness.

Each benchmark regenerates one table or figure of the paper through
:mod:`repro.harness.experiments`, checks the qualitative *shape* the paper
reports, and writes the formatted rows/series to
``benchmarks/results/<id>.txt`` (pytest captures stdout, so the files are
the durable record; EXPERIMENTS.md is compiled from them).

Workload selection defaults to the representative 12-workload subset;
``REPRO_SUITE=full`` runs all 70 (slower).  Simulation runs are memoized
across benchmarks, so shared (workload, config) pairs are simulated once.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(experiment_id: str, text: str) -> None:
    """Persist one experiment's formatted output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n")
    print(f"\n[{experiment_id}]\n{text}")


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
