"""Section V-E — power proxies.

Paper: ACB cuts pipeline flushes by 22% and *total* OOO allocations by 5%
(the extra predicated-path allocations are more than paid for by the
wrong-path work the saved flushes no longer re-execute), which translates
directly into energy savings.
"""

from repro.harness import experiments, format_table

from conftest import once, report


def test_sec5e_power_proxy(benchmark):
    result = once(benchmark, experiments.sec5e_power_proxies)

    rows = [
        ["flush reduction", f"{result['flush_reduction']:.1%}", "22% (paper)"],
        ["allocation reduction", f"{result['allocation_reduction']:.1%}", "5% (paper)"],
    ]
    report(
        "sec5e_power_proxy",
        "Power proxies under ACB\n" + format_table(["metric", "measured", "target"], rows),
    )

    assert result["flush_reduction"] > 0.10
    # net allocations fall despite dual-path fetch
    assert result["allocation_reduction"] > 0.0
