"""Figure 9 — DMP vs oracle-history DMP (DMP-PBH) on categories D and E.

Paper: DMP *increases* branch mispredictions on these workloads because
confidence-dependent predication destabilizes the global history; perfect
branch history (DMP-PBH) recovers most of category D's losses but not
category E's.
"""

from repro.harness import experiments, format_table

from conftest import once, report


def test_fig09_dmp_pbh(benchmark):
    result = once(benchmark, experiments.fig9_dmp_pbh)

    rows = [
        [r["workload"], r["tag"], f"{r['dmp_perf']:.3f}", f"{r['dmp_misspec']:.2f}",
         f"{r['pbh_perf']:.3f}", f"{r['pbh_misspec']:.2f}", f"{r['acb_perf']:.3f}"]
        for r in sorted(result["rows"], key=lambda r: (r["tag"], r["workload"]))
    ]
    report(
        "fig09_dmp_pbh",
        "Categories D/E: DMP vs DMP-PBH (perfect history) vs ACB\n"
        + format_table(
            ["workload", "tag", "dmp", "dmp msr", "pbh", "pbh msr", "acb"], rows
        ),
    )

    d_rows = [r for r in result["rows"] if r["tag"] == "D"]
    e_rows = [r for r in result["rows"] if r["tag"] == "E"]
    assert d_rows and e_rows

    for r in d_rows:
        # DMP loses on D; oracle history recovers most of it
        assert r["dmp_perf"] < 0.9, r
        assert r["pbh_perf"] > r["dmp_perf"] + 0.15, r
        # corrupted history keeps mis-speculations from falling as they
        # should; PBH slashes them
        assert r["dmp_misspec"] > r["pbh_misspec"], r
    for r in e_rows:
        # E is not a history problem: PBH does NOT recover it
        assert r["pbh_perf"] < 0.9, r
        assert abs(r["pbh_perf"] - r["dmp_perf"]) < 0.15, r
        # ACB with Dynamo stays safe where both DMP variants lose
        assert r["acb_perf"] > r["pbh_perf"], r
