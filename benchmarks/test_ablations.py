"""Ablations of the design choices DESIGN.md §7 calls out.

Each sweeps one ACB knob around the paper's published value:

* Dynamo epoch length (paper: 8K–32K instructions optimal, 16K chosen);
* Dynamo cycle-change factor (paper optimum: 1/8);
* convergence scan limit N (paper: 40);
* ACB table size (paper: 32 → 256 entries has negligible effect);
* the select-uop variant (paper: only ~+0.2% — Dynamo already throttles
  the cases it would rescue);
* the ROB-proximity criticality heuristic (paper: slight improvement over
  the frequency filter).
"""

from repro.harness import experiments, format_table

from conftest import once, report


def test_ablation_epoch_length(benchmark):
    result = once(benchmark, experiments.ablation_epoch_length)
    rows = [[str(epoch), f"{ratio:.3f}"] for epoch, ratio in
            result["speedup_by_epoch"].items()]
    report(
        "ablation_epoch_length",
        f"Dynamo epoch sweep on {result['workload']} (hostile workload; the\n"
        "paper picks the midpoint of the stable plateau)\n"
        + format_table(["epoch (instrs)", "speedup"], rows),
    )
    ratios = result["speedup_by_epoch"]
    # throttling must keep the hostile workload near baseline at every
    # epoch length; extremes are allowed to be mildly worse than the middle
    assert all(r > 0.7 for r in ratios.values())


def test_ablation_cycle_factor(benchmark):
    result = once(benchmark, experiments.ablation_cycle_factor)
    rows = [[f"1/{int(1/f)}", f"{ratio:.3f}"] for f, ratio in
            result["speedup_by_factor"].items()]
    report(
        "ablation_cycle_factor",
        f"Dynamo cycle-change-factor sweep on {result['workload']} "
        "(paper optimum: 1/8)\n" + format_table(["factor", "speedup"], rows),
    )
    ratios = result["speedup_by_factor"]
    # an insensitive (huge) threshold must not beat the paper's 1/8 on a
    # workload that needs throttling
    assert ratios[0.125] >= ratios[0.5] - 0.02


def test_ablation_learning_limit(benchmark):
    result = once(benchmark, experiments.ablation_learning_limit)
    rows = [[str(n), f"{ratio:.3f}"] for n, ratio in
            result["speedup_by_limit"].items()]
    report(
        "ablation_learning_limit",
        f"Convergence scan limit N sweep on {result['workload']} (paper: 40)\n"
        + format_table(["N", "speedup"], rows),
    )
    ratios = result["speedup_by_limit"]
    # a too-small N cannot cover the workload's large bodies
    assert ratios[40] >= ratios[10]


def test_ablation_acb_table_size(benchmark):
    result = once(benchmark, experiments.ablation_acb_table_size)
    rows = [[str(entries), f"{ratio:.3f}"] for entries, ratio in
            result["speedup_by_entries"].items()]
    report(
        "ablation_acb_table_size",
        f"ACB table size sweep on {result['workload']} (paper: 32 -> 256 flat)\n"
        + format_table(["entries", "speedup"], rows),
    )
    ratios = list(result["speedup_by_entries"].values())
    # beyond the default the curve is flat (the Learning Table is the filter)
    assert abs(ratios[-1] - ratios[1]) < 0.08


def test_ablation_select_uops(benchmark):
    result = once(benchmark, experiments.ablation_select_uops)
    report(
        "ablation_select_uops",
        "ACB with select micro-ops (paper: ~+0.2% only)\n"
        + format_table(
            ["variant", "geomean"],
            [["acb (stall + transparency)", f"{result['acb']:.3f}"],
             ["acb + select uops", f"{result['acb_select']:.3f}"]],
        ),
    )
    # the variant must not change the aggregate much — that is the paper's
    # justification for the simpler logical-destination tracking
    assert abs(result["acb_select"] - result["acb"]) < 0.06


def test_ablation_rob_proximity(benchmark):
    result = once(benchmark, experiments.ablation_rob_proximity)
    report(
        "ablation_rob_proximity",
        "Criticality filter: frequency-only vs + ROB-proximity heuristic\n"
        + format_table(
            ["filter", "geomean"],
            [[k, f"{v:.3f}"] for k, v in result.items()],
        ),
    )
    # both filters must deliver; the heuristic is a refinement, not a
    # prerequisite (Section III-A)
    assert result["frequency_only"] > 1.0
