"""Figure 7 — mis-speculation reduction vs performance, per workload.

Paper: flush reduction correlates positively with speedup; the largest
positive outlier (lammps) exceeds 2x; soplex cuts flushes with little gain
(off-critical-path mispredictions); omnetpp slightly *increases*
mis-speculations via correlation effects, with losses contained by Dynamo.
"""

from repro.harness import experiments, format_table

from conftest import once, report


def test_fig07_correlation(benchmark):
    result = once(benchmark, experiments.fig7_correlation)
    rows = result["rows"]

    table_rows = [
        [r["workload"], r["tag"] or "-", f"{r['perf_ratio']:.3f}",
         f"{r['misspec_ratio']:.3f}"]
        for r in rows
    ]
    report(
        "fig07_correlation",
        "Per-workload perf ratio vs mis-speculation ratio (sorted by perf)\n"
        + format_table(["workload", "tag", "perf", "misspec"], table_rows),
    )

    by_name = {r["workload"]: r for r in rows}
    if "lammps" in by_name:  # the >2x positive outlier
        assert by_name["lammps"]["perf_ratio"] > 2.0
    if "soplex" in by_name:  # flushes down, performance flat
        assert by_name["soplex"]["misspec_ratio"] < 0.8
        assert 0.9 < by_name["soplex"]["perf_ratio"] < 1.15
    if "omnetpp" in by_name:  # mis-speculations do not fall; loss contained
        assert by_name["omnetpp"]["misspec_ratio"] > 0.85
        assert by_name["omnetpp"]["perf_ratio"] > 0.75

    # overall positive correlation: big flush cuts should sit at the top end
    gainers = [r for r in rows if r["perf_ratio"] > 1.1]
    if gainers:
        avg_cut = sum(r["misspec_ratio"] for r in gainers) / len(gainers)
        assert avg_cut < 0.7
