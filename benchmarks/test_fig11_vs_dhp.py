"""Figure 11 — ACB vs Dynamic Hammock Predication.

Paper: ACB (8.0%) delivers nearly double DHP's gain (4.3%); DHP's
short-simple-hammock restriction leaves many workloads insensitive to it.
"""

from repro.harness import experiments, format_table

from conftest import once, report


def test_fig11_vs_dhp(benchmark):
    result = once(benchmark, experiments.fig11_vs_dhp)

    rows = [
        [r["workload"], f"{r['acb']:.3f}", f"{r['dhp']:.3f}"]
        for r in sorted(result["rows"], key=lambda r: r["acb"], reverse=True)
    ]
    geo = result["geomean"]
    rows.append(["GEOMEAN", f"{geo['acb']:.3f}", f"{geo['dhp']:.3f}"])
    report(
        "fig11_vs_dhp",
        "ACB vs DHP (paper: 8.0% vs 4.3%; many workloads DHP-insensitive)\n"
        + format_table(["workload", "acb", "dhp"], rows)
        + f"\nDHP-insensitive workloads: {result['dhp_insensitive']}",
    )

    # the coverage story: ACB's aggregate exceeds DHP's, and a meaningful
    # share of workloads do not respond to DHP at all
    assert geo["acb"] > geo["dhp"]
    assert result["dhp_insensitive"] >= 2
