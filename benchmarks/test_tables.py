"""Tables I–III — storage budget, core parameters, workload list."""

from repro.harness import experiments, format_table

from conftest import once, report


def test_table1_storage(benchmark):
    """Table I: aggregate ACB storage is 386 bytes."""
    result = once(benchmark, experiments.table1_storage)

    rows = [[k.replace("_bytes", ""), f"{v:.0f} B"] for k, v in result.items()
            if k.endswith("_bytes") and k != "total_bytes"]
    rows.append(["TOTAL", f"{result['total_bytes']:.0f} B"])
    rows.append(["paper", f"{result['paper_total_bytes']} B"])
    table = format_table(["structure", "bytes"], rows)
    report("table1_storage", "ACB storage budget\n" + table)

    assert result["total_bytes"] == result["paper_total_bytes"] == 386


def test_table2_core_params(benchmark):
    """Table II: the Skylake-like simulated core."""
    result = once(benchmark, experiments.table2_core_params)
    rows = sorted(result.items())
    table = format_table(["parameter", "value"], rows)
    report("table2_core_params", "Core parameters\n" + table)
    assert result["Branch predictor"] == "TAGE"
    assert "224" in result["ROB / IQ"]


def test_table3_workloads(benchmark):
    """Table III: 70 workloads in six categories."""
    result = once(benchmark, experiments.table3_workloads)
    rows = [[cat, str(len(names)), ", ".join(sorted(names)[:6]) + ", ..."]
            for cat, names in sorted(result.items())]
    table = format_table(["category", "count", "members"], rows)
    report("table3_workloads", "Workload suite\n" + table)
    assert sum(len(v) for v in result.values()) == 70
    assert set(result) == {"ISPEC", "FSPEC", "SPEC17", "SYSmark", "Client", "Server"}
