"""Figure 10 — allocation stalls on category E workloads.

Paper: even with perfect branch history, category E workloads suffer from
allocation stalls caused by data dependencies on select micro-ops beyond
the reconvergence point — the cost a throttling mechanism like Dynamo is
needed for.
"""

from repro.harness import experiments, format_table

from conftest import once, report


def test_fig10_alloc_stalls(benchmark):
    result = once(benchmark, experiments.fig10_alloc_stalls)

    rows = [
        [r["workload"], f"{r['base_stalls']:.2f}", f"{r['pbh_stalls']:.2f}",
         f"{r['acb_stalls']:.2f}", f"{r['pbh_perf']:.3f}"]
        for r in result["rows"]
    ]
    report(
        "fig10_alloc_stalls",
        "Category E: allocation-stall cycle fraction (baseline vs DMP-PBH vs ACB)\n"
        + format_table(
            ["workload", "base stalls", "pbh stalls", "acb stalls", "pbh perf"], rows
        ),
    )

    assert result["rows"]
    for r in result["rows"]:
        # DMP-PBH raises the allocation-stall fraction and loses performance
        assert r["pbh_stalls"] > r["base_stalls"] * 1.1, r
        assert r["pbh_perf"] < 1.0, r
        # ACB's throttling keeps its stall fraction below DMP-PBH's
        assert r["acb_stalls"] < r["pbh_stalls"], r
