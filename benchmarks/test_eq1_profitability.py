"""Equation 1 — the predication profitability trade-off.

Paper's worked example (Section II-C1): with alloc width 4 and a 20-cycle
penalty, a 10% misprediction rate makes predication profitable only for
combined bodies under 16 instructions; a 32-instruction body needs >20%.
The bench validates the analytic model and confirms it empirically with a
body-size sweep on the simulator.
"""

import pytest

from repro.core import SKYLAKE_LIKE, Core
from repro.harness import experiments, format_table
from repro.workloads import HammockSpec, WorkloadSpec, build_workload

from conftest import once, report


def _empirical_sweep():
    """ACB speedup as the body grows at a fixed misprediction rate."""
    out = {}
    for body in (4, 16, 48):
        spec = WorkloadSpec(
            name=f"eq1_body{body}",
            category="bench",
            seed=body,
            hammocks=(HammockSpec(shape="if", nt_len=body, p=0.12),),
            ilp=4,
            chain=1,
            memory="none",
        )
        from repro.acb import AcbScheme
        from repro.harness.runner import reduced_acb_config

        base = Core(build_workload(spec), SKYLAKE_LIKE).run_window(8000, 8000)
        acb = Core(
            build_workload(spec), SKYLAKE_LIKE, scheme=AcbScheme(reduced_acb_config())
        ).run_window(8000, 8000)
        out[body] = base.cycles / acb.cycles
    return out


def test_eq1_profitability(benchmark):
    model = once(benchmark, experiments.eq1_profitability)

    rows = [
        [f"{row['mispred_rate']:.0%}", f"{row['break_even_body']:.0f}"]
        for row in model["rows"]
    ]
    sweep = _empirical_sweep()
    sweep_rows = [[str(body), f"{ratio:.3f}"] for body, ratio in sweep.items()]
    report(
        "eq1_profitability",
        "Analytic break-even body size (T+N) per misprediction rate\n"
        + format_table(["mispred rate", "max body"], rows)
        + "\n\nEmpirical ACB speedup at ~12% mispredict vs body size\n"
        + format_table(["body", "speedup"], sweep_rows),
    )

    # the paper's two worked numbers
    assert model["example_body16_rate"] == pytest.approx(0.10)
    assert model["example_body32_rate"] == pytest.approx(0.20)
    # empirical shape: the benefit shrinks as the body grows
    assert sweep[4] > sweep[48]
