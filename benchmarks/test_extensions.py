"""Extension and design-choice benches beyond the paper's headline figures.

* **Dynamo vs stall-count throttling** — Section V-B's rejected alternative:
  counting issue-queue stalls throttles profitable predication too, because
  stalling the body is *how* predication works.
* **Multiple reconvergence points** — the enhancement the paper proposes for
  category B1 ("ACB can be enhanced ... by actively learning and allocating
  multiple reconvergence points"): re-learn a farther merge point after
  divergences.
* **Predictor sensitivity** — ACB composes with any baseline direction
  predictor (Section VI: "ACB is applicable on top of any baseline branch
  predictor").
"""

from repro.harness import experiments, format_table

from conftest import once, report


def test_ablation_throttle_dynamo_vs_stalls(benchmark):
    result = once(benchmark, experiments.ablation_throttle)

    rows = [[name, f"{r['dynamo']:.3f}", f"{r['stalls']:.3f}"]
            for name, r in result["rows"].items()]
    geo = result["geomean"]
    rows.append(["GEOMEAN", f"{geo['dynamo']:.3f}", f"{geo['stalls']:.3f}"])
    report(
        "ablation_throttle",
        "Dynamo vs stall-count throttling (Section V-B's rejected heuristic)\n"
        + format_table(["workload", "dynamo", "stall-based"], rows),
    )

    rows_by_name = result["rows"]
    # the failure mode the paper describes: high stall counts on a hugely
    # profitable predication make the local heuristic throttle it
    assert rows_by_name["lammps"]["dynamo"] > 2.0
    assert rows_by_name["lammps"]["stalls"] < rows_by_name["lammps"]["dynamo"] * 0.5
    # overall, measuring delivered performance beats counting stalls
    assert geo["dynamo"] > geo["stalls"]


def test_extension_multi_reconv(benchmark):
    result = once(benchmark, experiments.extension_multi_reconv)

    rows = [
        [name, f"{r['acb']:.3f}", f"{r['acb_multireconv']:.3f}", f"{r['dmp']:.3f}",
         str(r["acb_divergences"]), str(r["multi_divergences"])]
        for name, r in result["rows"].items()
    ]
    report(
        "extension_multi_reconv",
        "B1 enhancement: re-learning farther reconvergence points\n"
        + format_table(
            ["workload", "acb", "acb+multi", "dmp", "acb div", "multi div"], rows
        ),
    )

    for name, r in result["rows"].items():
        # the enhancement must recover (most of) DMP's B1 advantage
        assert r["acb_multireconv"] >= r["acb"] - 0.02, name
    assert any(
        r["acb_multireconv"] > r["acb"] + 0.1 for r in result["rows"].values()
    )


def test_related_work_ordering(benchmark):
    """Section VI's lineage on one mixed subset: ACB > DMP ≥ Wish, with DHP
    safe but coverage-limited."""
    result = once(benchmark, experiments.related_work_ordering)

    configs = ("acb", "dmp", "dhp", "wish")
    rows = [
        [name] + [f"{r[cfg]:.3f}" for cfg in configs]
        for name, r in result["per_workload"].items()
    ]
    geo = result["geomean"]
    rows.append(["GEOMEAN"] + [f"{geo[cfg]:.3f}" for cfg in configs])
    report(
        "related_work_ordering",
        "ACB vs DMP vs DHP vs Wish Branches (mixed subset)\n"
        + format_table(["workload", "acb", "dmp", "dhp", "wish"], rows),
    )

    # run-time monitoring puts ACB clearly ahead on a mix that includes
    # predication-hostile workloads
    assert geo["acb"] > geo["dmp"] + 0.05
    assert geo["acb"] > geo["wish"] + 0.05
    # profile-driven selection keeps DMP at or above Wish Branches
    assert geo["dmp"] >= geo["wish"] - 0.02


def test_predictor_sensitivity(benchmark):
    result = once(benchmark, experiments.predictor_sensitivity)

    rows = [[pred, f"{r['baseline_mpki']:.1f}", f"{r['acb_gain']:.3f}"]
            for pred, r in result.items()]
    report(
        "predictor_sensitivity",
        "ACB gain on top of different baseline predictors\n"
        + format_table(["predictor", "baseline mpki", "acb gain"], rows),
    )

    # ACB helps on every baseline predictor...
    for pred, r in result.items():
        assert r["acb_gain"] > 1.0, pred
    # ...and weaker predictors leave more mispredictions on the table
    assert result["bimodal"]["baseline_mpki"] >= result["tage"]["baseline_mpki"]
