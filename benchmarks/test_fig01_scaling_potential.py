"""Figure 1 — performance potential of perfect branch prediction as the
OOO machine scales.

Paper: the oracle's speedup over the TAGE baseline grows with machine
scale; a 3x wider/deeper machine is roughly twice as speculation-bound as
the Skylake-like 1x point.
"""

from repro.harness import experiments, format_table, pct

from conftest import once, report


def test_fig01_scaling_potential(benchmark):
    result = once(benchmark, experiments.fig1_scaling_potential)
    series = result["series"]

    rows = [
        [f"{scale}x", f"{series[scale]['geomean']:.3f}", pct(series[scale]["geomean"])]
        for scale in result["scales"]
    ]
    report(
        "fig01_scaling_potential",
        "Perfect-BP speedup over TAGE baseline vs core scale\n"
        + format_table(["scale", "oracle speedup", "gain"], rows),
    )

    gains = [series[s]["geomean"] for s in result["scales"]]
    # the paper's shape: monotone growth in speculation-boundedness
    assert gains[0] > 1.0
    assert gains[-1] > gains[0]
