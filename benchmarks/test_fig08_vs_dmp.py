"""Figure 8 / Section V-B — ACB vs ACB-without-Dynamo vs DMP.

Paper: Dynamo lifts ACB from 6.7% to 8.0%; without it the worst outliers
(eembc, h264) lose ~20%; DMP produces impressive positives (A), wins on B1
(multi-reconvergence) and B2 (eager execution), and loses where run-time
monitoring is needed (C).
"""

from repro.harness import experiments, format_table

from conftest import once, report


def test_fig08_vs_dmp(benchmark):
    result = once(benchmark, experiments.fig8_vs_dmp)

    rows = [
        [r["workload"], r["tag"] or "-", f"{r['acb']:.3f}",
         f"{r['acb_nodynamo']:.3f}", f"{r['dmp']:.3f}"]
        for r in sorted(result["rows"], key=lambda r: r["acb"])
    ]
    geo = result["geomean"]
    rows.append(["GEOMEAN", "", f"{geo['acb']:.3f}",
                 f"{geo['acb-nodynamo']:.3f}", f"{geo['dmp']:.3f}"])
    report(
        "fig08_vs_dmp",
        "ACB vs ACB-no-Dynamo vs DMP (paper: 8.0% / 6.7% / mixed)\n"
        + format_table(["workload", "tag", "acb", "no-dynamo", "dmp"], rows),
    )

    by_name = {r["workload"]: r for r in result["rows"]}
    # Dynamo improves the aggregate and, critically, the worst case
    assert geo["acb"] > geo["acb-nodynamo"]
    assert result["worst"]["acb"] > result["worst"]["acb-nodynamo"]
    # the C-category outliers lose heavily without Dynamo (paper ~-20%)
    if "eembc" in by_name:
        assert by_name["eembc"]["acb_nodynamo"] < 0.85
        assert by_name["eembc"]["acb"] > by_name["eembc"]["acb_nodynamo"]
    # B1: DMP's compiler-provided reconvergence beats ACB's learned one
    if "gobmk" in by_name:
        assert by_name["gobmk"]["dmp"] > by_name["gobmk"]["acb"]
    # B2: eager execution beats stall-until-resolve
    if "povray" in by_name:
        assert by_name["povray"]["dmp"] > by_name["povray"]["acb"]
