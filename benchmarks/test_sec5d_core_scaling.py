"""Section V-D — ACB on a scaled-up core.

Paper: on an 8-wide machine with twice the execution/fetch resources,
ACB's gain grows from 8.0% to 8.6% — mispredictions waste more work on
bigger machines, so mitigating them is worth more.
"""

from repro.harness import experiments, format_table, pct

from conftest import once, report


def test_sec5d_core_scaling(benchmark):
    result = once(benchmark, experiments.sec5d_core_scaling)
    gains = result["gain_by_scale"]

    rows = [[f"{scale}x", f"{gain:.3f}", pct(gain)] for scale, gain in gains.items()]
    report(
        "sec5d_core_scaling",
        "ACB geomean speedup vs core scale (paper: 8.0% -> 8.6%)\n"
        + format_table(["core scale", "acb speedup", "gain"], rows),
    )

    assert gains[1] > 1.0
    assert gains[2] > gains[1]  # the paper's scaling trend
