"""Figure 6 — ACB performance summary.

Paper: ACB delivers 8.0% geomean IPC gain and a 22% reduction in
mis-speculations over the Skylake-like baseline, reported per category.
"""

from repro.harness import experiments, format_table, pct

from conftest import once, report


def test_fig06_acb_summary(benchmark):
    result = once(benchmark, experiments.fig6_acb_summary)

    rows = [[cat, f"{ratio:.3f}", pct(ratio)] for cat, ratio in
            result["per_category"].items()]
    rows.append(["GEOMEAN", f"{result['geomean']:.3f}", pct(result["geomean"])])
    per_wl = sorted(result["per_workload"].items(), key=lambda kv: kv[1])
    wl_rows = [[name, f"{ratio:.3f}"] for name, ratio in per_wl]
    report(
        "fig06_acb_summary",
        "ACB speedup per category (paper: +8.0% geomean, -22% flushes)\n"
        + format_table(["category", "speedup", "gain"], rows)
        + f"\nflush reduction: {result['flush_reduction']:.1%}\n\n"
        + format_table(["workload", "speedup"], wl_rows),
    )

    # the paper's shape: a clear aggregate win with a real flush reduction
    assert result["geomean"] > 1.02
    assert result["flush_reduction"] > 0.10
    # losses are contained (Dynamo): nothing catastrophically negative
    assert min(result["per_workload"].values()) > 0.75
