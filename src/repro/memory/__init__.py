"""Cache/memory substrate."""

from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy

__all__ = ["Cache", "MemoryConfig", "MemoryHierarchy"]
