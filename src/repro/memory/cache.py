"""Set-associative cache with LRU replacement."""

from __future__ import annotations

from collections import OrderedDict


class Cache:
    """A single cache level tracking presence only (no data).

    The timing model needs hit/miss outcomes, not contents; lines are
    identified by address >> line_shift.
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64, name: str = ""):
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        sets = size_bytes // (ways * line_bytes)
        if sets < 1 or sets & (sets - 1):
            raise ValueError(
                f"cache geometry invalid: {size_bytes}B / {ways}w / {line_bytes}B line"
            )
        self.name = name or f"{size_bytes // 1024}KB"
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.line_shift = line_bytes.bit_length() - 1
        self.num_sets = sets
        self._sets = [OrderedDict() for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int):
        line = addr >> self.line_shift
        return line, self._sets[line & (self.num_sets - 1)]

    def probe(self, addr: int) -> bool:
        """Hit test without LRU side effects (for tests/analysis)."""
        line, cset = self._locate(addr)
        return line in cset

    def access(self, addr: int) -> bool:
        """Look up *addr*; returns hit and updates LRU. Misses do not fill."""
        line, cset = self._locate(addr)
        if line in cset:
            cset.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> None:
        """Install the line containing *addr*, evicting LRU if needed."""
        line, cset = self._locate(addr)
        if line in cset:
            cset.move_to_end(line)
            return
        if len(cset) >= self.ways:
            cset.popitem(last=False)
        cset[line] = True

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
