"""Three-level inclusive cache hierarchy with a flat DRAM latency.

Latency-only model: each data access walks L1D → L2 → LLC → DRAM, returns
the load-to-use latency of the first hit, and fills all levels above it
(inclusive).  Bandwidth and MSHR contention are not modeled — the paper's
trade-offs (Eq. 1, the Fig. 2c critical-load effect) are latency phenomena.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.memory.cache import Cache


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry and latencies, Table II defaults (Skylake-like)."""

    l1_size: int = 32 * 1024
    l1_ways: int = 8
    l1_latency: int = 4
    l2_size: int = 256 * 1024
    l2_ways: int = 4
    l2_latency: int = 14
    llc_size: int = 2 * 1024 * 1024
    llc_ways: int = 16
    llc_latency: int = 44
    dram_latency: int = 220
    line_bytes: int = 64


class MemoryHierarchy:
    """L1D + L2 + LLC + DRAM latency model."""

    def __init__(self, config: MemoryConfig = MemoryConfig()):
        self.config = config
        self.l1 = Cache(config.l1_size, config.l1_ways, config.line_bytes, "L1D")
        self.l2 = Cache(config.l2_size, config.l2_ways, config.line_bytes, "L2")
        self.llc = Cache(config.llc_size, config.llc_ways, config.line_bytes, "LLC")
        self._levels: List[Tuple[Cache, int]] = [
            (self.l1, config.l1_latency),
            (self.l2, config.l2_latency),
            (self.llc, config.llc_latency),
        ]
        self.dram_accesses = 0

    def load(self, addr: int) -> int:
        """Access latency in cycles for a load of *addr*; fills on miss."""
        missed: List[Cache] = []
        for cache, latency in self._levels:
            if cache.access(addr):
                for above in missed:
                    above.fill(addr)
                return latency
            missed.append(cache)
        self.dram_accesses += 1
        for cache in missed:
            cache.fill(addr)
        return self.config.dram_latency

    def store(self, addr: int) -> None:
        """Commit a store: write-allocate into all levels (no latency cost —
        stores complete post-retirement through the store buffer)."""
        for cache, _ in self._levels:
            if not cache.access(addr):
                cache.fill(addr)

    def is_llc_miss(self, addr: int) -> bool:
        """Non-destructive probe: would *addr* go to DRAM right now?"""
        return not any(cache.probe(addr) for cache, _ in self._levels)
