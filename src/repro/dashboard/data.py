"""Collect everything the dashboard renders, as plain data.

One pass over the experiment database (and the ``BENCH_<tag>.json``
reports next to it) produces a :class:`DashboardData` — the renderer in
:mod:`repro.dashboard.render` is a pure function of this object, which is
what the structural tests assert against.  The store is opened in
tolerant mode: a missing or corrupt database renders an empty dashboard
instead of failing.
"""

from __future__ import annotations

import glob
import json
import math
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Stored runs whose config equals this are the speedup denominator.
BASELINE_CONFIG = "baseline"

#: Most-mispredicting branch PCs shown in the per-branch table.
TOP_BRANCHES = 12

#: Occurrence marks drawn per branch in a timeline strip.
TIMELINE_MARKS = 160


@dataclass
class DashboardData:
    """Everything the single-file dashboard shows."""

    title: str = "repro dashboard"
    db_path: str = ""
    schema: Dict[str, Any] = field(default_factory=dict)
    runs: List[Dict[str, Any]] = field(default_factory=list)
    jobs: List[Dict[str, Any]] = field(default_factory=list)
    lease_counts: Dict[str, int] = field(default_factory=dict)
    leases: List[Dict[str, Any]] = field(default_factory=list)
    #: per non-baseline config: geomean speedup vs baseline across the
    #: matrix groups where both sides exist
    speedups: List[Dict[str, Any]] = field(default_factory=list)
    #: top mispredicting branch PCs aggregated over the stored runs
    branches: List[Dict[str, Any]] = field(default_factory=list)
    #: parsed per-branch timeline artifacts (repro trace --formats timeline)
    timelines: List[Dict[str, Any]] = field(default_factory=list)
    #: bench trajectory: group -> [{tag, created, cycles_per_s}] in
    #: report-creation order (the sparkline series)
    bench: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    bench_reports: int = 0


def geomean(values: List[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


# ----------------------------------------------------------------------
# store-side collection
# ----------------------------------------------------------------------
def _collect_runs(store, limit: int) -> List[Dict[str, Any]]:
    runs = []
    for summary in store.query_runs(limit=limit):
        record = store.get_run(summary["run_id"])
        if record is None:
            continue
        summary = dict(summary)
        summary["stats"] = record["stats"]
        runs.append(summary)
    return runs


def _speedups(runs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Geomean speedup vs ``baseline`` per scheme, newest run per cell.

    Cells group on (workload, core_scale, predictor, warmup, measure) so a
    config is only compared against the baseline simulated under the
    *same* window — never across windows.
    """
    newest: Dict[tuple, Dict[str, Any]] = {}
    for run in runs:  # query_runs is newest-first; keep the first seen
        cell = (run["workload"], run["core_scale"], run["predictor"],
                run["warmup"], run["measure"], run["config"])
        newest.setdefault(cell, run)
    by_config: Dict[str, List[Dict[str, Any]]] = {}
    for (workload, scale, predictor, warmup, measure, config), run \
            in newest.items():
        if config == BASELINE_CONFIG:
            continue
        base = newest.get(
            (workload, scale, predictor, warmup, measure, BASELINE_CONFIG)
        )
        if base is None:
            continue
        cycles = run["stats"].get("cycles", 0)
        base_cycles = base["stats"].get("cycles", 0)
        if not cycles or not base_cycles:
            continue
        by_config.setdefault(config, []).append({
            "workload": workload,
            "speedup": base_cycles / cycles,
        })
    out = []
    for config, rows in by_config.items():
        rows.sort(key=lambda r: r["speedup"], reverse=True)
        out.append({
            "config": config,
            "geomean": geomean([r["speedup"] for r in rows]),
            "count": len(rows),
            "per_workload": rows,
        })
    out.sort(key=lambda r: r["geomean"], reverse=True)
    return out


def _branches(runs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Top mispredicting PCs across the stored runs (newest run wins)."""
    seen: Dict[tuple, Dict[str, Any]] = {}
    for run in runs:
        for pc, stats in (run["stats"].get("per_branch") or {}).items():
            key = (run["workload"], run["config"], pc)
            if key in seen:
                continue
            executed = stats.get("executed", 0)
            seen[key] = {
                "workload": run["workload"],
                "config": run["config"],
                "pc": int(pc),
                "executed": executed,
                "mispredicted": stats.get("mispredicted", 0),
                "predicated": stats.get("predicated", 0),
                "rate": (stats.get("mispredicted", 0) / executed
                         if executed else 0.0),
            }
    rows = sorted(seen.values(),
                  key=lambda r: (r["mispredicted"], r["rate"]), reverse=True)
    return rows[:TOP_BRANCHES]


# ----------------------------------------------------------------------
# timeline artifacts (repro trace --formats timeline)
# ----------------------------------------------------------------------
_BRANCH_RE = re.compile(
    r"^branch pc=(\d+): (\d+) occurrences in window "
    r"\((\d+) mispredicted, (\d+) predicated\)"
)
_OCCURRENCE_RE = re.compile(
    r"^\s+cycle\s+(\d+)\s+seq=\d+\s+pred=\S+\s+actual=\S+\s+(.*\S)"
)


def parse_timeline(text: str) -> List[Dict[str, Any]]:
    """Parse a per-branch timeline artifact into plottable occurrences."""
    branches: List[Dict[str, Any]] = []
    current: Optional[Dict[str, Any]] = None
    for line in text.splitlines():
        header = _BRANCH_RE.match(line)
        if header:
            current = {
                "pc": int(header.group(1)),
                "occurrences_total": int(header.group(2)),
                "mispredicted": int(header.group(3)),
                "predicated": int(header.group(4)),
                "occurrences": [],
            }
            branches.append(current)
            continue
        if current is None:
            continue
        mark = _OCCURRENCE_RE.match(line)
        if mark:
            current["occurrences"].append({
                "cycle": int(mark.group(1)),
                "outcome": mark.group(2).strip(),
            })
    for branch in branches:
        branch["occurrences"] = branch["occurrences"][-TIMELINE_MARKS:]
    return branches


def _timelines(store) -> List[Dict[str, Any]]:
    out = []
    for job in store.list_jobs(limit=50):
        for artifact in store.artifacts_for(job["job_id"]):
            if artifact.get("format") != "timeline":
                continue
            path = artifact.get("path", "")
            try:
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                continue
            branches = parse_timeline(text)
            if branches:
                out.append({
                    "name": artifact.get("name", os.path.basename(path)),
                    "job_id": job["job_id"],
                    "branches": branches,
                })
    return out


# ----------------------------------------------------------------------
# bench trajectory (BENCH_<tag>.json files)
# ----------------------------------------------------------------------
def _bench_series(bench_dir: str) -> tuple:
    reports = []
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as handle:
                report = json.load(handle)
        except (OSError, ValueError):
            continue
        if not isinstance(report, dict) or "runs" not in report:
            continue
        reports.append(report)
    reports.sort(key=lambda r: str(r.get("created", "")))
    series: Dict[str, List[Dict[str, Any]]] = {}
    for report in reports:
        by_group: Dict[str, List[float]] = {}
        for run in report.get("runs", []):
            rate = run.get("cycles_per_s", 0) or 0
            if rate > 0:
                by_group.setdefault(str(run.get("group", "?")), []).append(rate)
        for group, rates in by_group.items():
            series.setdefault(group, []).append({
                "tag": str(report.get("tag", "?")),
                "created": str(report.get("created", "")),
                "cycles_per_s": geomean(rates),
            })
    return series, len(reports)


# ----------------------------------------------------------------------
def collect(
    db_path: Optional[str] = None,
    bench_dir: str = ".",
    limit: int = 500,
    title: Optional[str] = None,
) -> DashboardData:
    """Read the store and bench reports into one :class:`DashboardData`."""
    from repro.service.store import ExperimentStore

    store = ExperimentStore(db_path, strict=False)
    data = DashboardData(
        title=title or "repro dashboard — ACB (ISCA 2020) reproduction",
        db_path=str(store.path),
    )
    data.schema = store.schema_info()
    data.runs = _collect_runs(store, limit)
    data.jobs = store.list_jobs(limit=50)
    data.lease_counts = store.lease_counts()
    data.leases = store.list_leases(limit=200)
    data.speedups = _speedups(data.runs)
    data.branches = _branches(data.runs)
    data.timelines = _timelines(store)
    data.bench, data.bench_reports = _bench_series(bench_dir)
    return data
