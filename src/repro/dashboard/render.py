"""Render :class:`~repro.dashboard.data.DashboardData` to one HTML file.

Self-containment is the contract (docs/dashboard.md): every byte of
markup, style, script, and chart geometry is inlined, so the file opens
from ``file://`` on an air-gapped machine.  The structural test enforces
it literally — the output must not contain the substring ``"htt"+"p"``
anywhere, which rules out external stylesheets, fonts, CDNs, and
trackers by construction.

Charts are inline SVG: speedup bars per scheme, bench-trajectory
sparklines, and per-branch occurrence strips colored by outcome.  Colors
follow the chart's job — one categorical blue for magnitude bars, status
colors only for branch outcomes (mispredict/divergence are *states*, not
series) — with an automatic dark mode via CSS custom properties.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List

from repro.dashboard.data import DashboardData

__all__ = ["render_dashboard"]


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


# categorical slot 1 (light/dark) carries every "magnitude" mark; branch
# outcomes use the reserved status palette (see the module docstring)
_CSS = """
:root {
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11, 11, 11, 0.10);
  --s1: #2a78d6;
  --good: #0ca30c; --warn: #fab219; --serious: #ec835a; --crit: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255, 255, 255, 0.10);
    --s1: #3987e5;
  }
}
:root[data-theme="dark"] {
  --page: #0d0d0d; --surface: #1a1a19;
  --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --axis: #383835; --ring: rgba(255, 255, 255, 0.10);
  --s1: #3987e5;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif;
}
main { max-width: 1080px; margin: 0 auto; }
header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
.sub { color: var(--ink2); }
.mono { font-family: ui-monospace, monospace; font-size: 12px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile {
  background: var(--surface); border: 1px solid var(--ring);
  border-radius: 8px; padding: 10px 16px; min-width: 120px;
}
.tile b { display: block; font-size: 22px; font-variant-numeric: tabular-nums; }
.tile span { color: var(--ink2); font-size: 12px; }
table {
  border-collapse: collapse; width: 100%;
  background: var(--surface); border: 1px solid var(--ring);
  border-radius: 8px;
}
th, td {
  text-align: left; padding: 5px 10px;
  border-bottom: 1px solid var(--grid); font-size: 13px;
}
th { color: var(--ink2); font-weight: 600; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr:last-child td { border-bottom: none; }
svg { display: block; }
.bar { fill: var(--s1); }
.axis { stroke: var(--axis); stroke-width: 1; }
.spark { stroke: var(--s1); stroke-width: 2; fill: none; }
.legend {
  display: flex; gap: 16px; color: var(--ink2); font-size: 12px;
  margin: 6px 0; flex-wrap: wrap;
}
.legend i {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 5px; vertical-align: -1px;
}
.status { font-size: 12px; border-radius: 10px; padding: 1px 8px; }
.status.done { color: var(--good); border: 1px solid var(--good); }
.status.running, .status.queued {
  color: var(--ink2); border: 1px solid var(--axis);
}
.status.failed { color: var(--crit); border: 1px solid var(--crit); }
input[type="search"] {
  background: var(--surface); color: var(--ink);
  border: 1px solid var(--axis); border-radius: 6px;
  padding: 5px 10px; font: inherit; margin: 0 0 8px; width: 280px;
}
button {
  background: var(--surface); color: var(--ink2);
  border: 1px solid var(--axis); border-radius: 6px;
  padding: 4px 10px; font: inherit; cursor: pointer; margin-left: auto;
}
.empty { color: var(--muted); padding: 12px; }
footer { color: var(--muted); font-size: 12px; margin-top: 32px; }
"""

_JS = """
(function () {
  var root = document.documentElement;
  document.getElementById("theme").addEventListener("click", function () {
    var dark = root.getAttribute("data-theme") === "dark" ||
      (!root.getAttribute("data-theme") &&
       window.matchMedia("(prefers-color-scheme: dark)").matches);
    root.setAttribute("data-theme", dark ? "light" : "dark");
  });
  var filter = document.getElementById("run-filter");
  if (filter) {
    filter.addEventListener("input", function () {
      var needle = filter.value.toLowerCase();
      var rows = document.querySelectorAll("#runs tbody tr");
      for (var i = 0; i < rows.length; i++) {
        var hit = rows[i].textContent.toLowerCase().indexOf(needle) >= 0;
        rows[i].style.display = hit ? "" : "none";
      }
    });
  }
})();
"""

#: branch-occurrence outcome -> (status CSS variable, legend label)
OUTCOME_STATUS = {
    "correct": ("var(--axis)", "correct"),
    "MISPREDICT": ("var(--crit)", "mispredict (flush)"),
    "predicated": ("var(--s1)", "predicated"),
    "predicated (saved flush)": ("var(--good)", "predicated (saved flush)"),
    "diverged": ("var(--serious)", "diverged"),
    "squashed": ("var(--muted)", "squashed (wrong path)"),
}


def _tiles(data: DashboardData) -> str:
    best = data.speedups[0] if data.speedups else None
    cells = data.lease_counts or {}
    tiles = [
        (len(data.runs), "stored runs"),
        (len({r["workload"] for r in data.runs}), "workloads"),
        (len({r["config"] for r in data.runs}), "configs"),
        (len(data.jobs), "jobs"),
        (f"{best['geomean']:.2f}×" if best else "—",
         f"best geomean ({_esc(best['config'])})" if best else "best geomean"),
    ]
    if cells.get("pending") or cells.get("leased"):
        tiles.append((f"{cells.get('done', 0)}/{sum(cells.values())}",
                      "distributed cells done"))
    return '<div class="tiles">' + "".join(
        f'<div class="tile"><b>{_esc(v)}</b><span>{label}</span></div>'
        for v, label in tiles
    ) + "</div>"


def _speedup_section(data: DashboardData) -> str:
    if not data.speedups:
        return ('<h2>Speedup vs baseline</h2>'
                '<p class="empty">No config has a stored baseline twin yet '
                '— run a matrix that includes the baseline scheme.</p>')
    scale = max(max(s["geomean"] for s in data.speedups), 1.0)
    rows = []
    for entry in data.speedups:
        width = max(2, round(240 * entry["geomean"] / scale))
        per = ", ".join(
            f"{r['workload']} {r['speedup']:.2f}x"
            for r in entry["per_workload"][:8]
        )
        bar = (
            f'<svg width="250" height="16" role="img" '
            f'aria-label="{entry["geomean"]:.2f}x">'
            f'<line class="axis" x1="0.5" y1="0" x2="0.5" y2="16"></line>'
            f'<rect class="bar" x="1" y="2" width="{width}" height="12" '
            f'rx="4"></rect></svg>'
        )
        rows.append(
            f"<tr><td>{_esc(entry['config'])}</td>"
            f'<td class="num">{entry["geomean"]:.3f}×</td>'
            f'<td class="num">{entry["count"]}</td>'
            f'<td title="{_esc(per)}">{bar}</td></tr>'
        )
    return (
        "<h2>Speedup vs baseline</h2>"
        '<p class="sub">Geomean of per-workload cycle ratios; each cell is '
        "compared only against the baseline simulated under the same "
        "window.</p>"
        "<table><thead><tr><th>config</th><th>geomean</th>"
        "<th>workloads</th><th>speedup</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _jobs_section(data: DashboardData) -> str:
    if not data.jobs:
        return ""
    rows = []
    for job in data.jobs[:20]:
        status = _esc(job.get("status", "?"))
        rows.append(
            f'<tr><td class="mono">{_esc(job["job_id"])}</td>'
            f"<td>{_esc(job.get('kind', ''))}</td>"
            f'<td><span class="status {status}">{status}</span></td>'
            f"<td>{_esc(job.get('submitted', ''))}</td>"
            f"<td>{_esc(job.get('finished') or '')}</td></tr>"
        )
    counts = data.lease_counts or {}
    lease_line = ""
    if any(counts.values()):
        lease_line = (
            f'<p class="sub">Distributed cells: {counts.get("pending", 0)} '
            f"pending, {counts.get('leased', 0)} leased, "
            f"{counts.get('done', 0)} done.</p>"
        )
    return (
        "<h2>Jobs</h2>" + lease_line +
        "<table><thead><tr><th>job</th><th>kind</th><th>status</th>"
        "<th>submitted</th><th>finished</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _branch_section(data: DashboardData) -> str:
    if not data.branches:
        return ""
    rows = []
    for row in data.branches:
        rate = row["rate"]
        rows.append(
            f"<tr><td>{_esc(row['workload'])}</td>"
            f"<td>{_esc(row['config'])}</td>"
            f'<td class="num mono">{row["pc"]}</td>'
            f'<td class="num">{row["executed"]}</td>'
            f'<td class="num">{row["mispredicted"]}</td>'
            f'<td class="num">{row["predicated"]}</td>'
            f'<td class="num">{rate:.1%}</td></tr>'
        )
    return (
        "<h2>Hardest branches</h2>"
        '<p class="sub">Top mispredicting static branches across the stored '
        "runs — the H2Ps auto-predication targets.</p>"
        "<table><thead><tr><th>workload</th><th>config</th><th>pc</th>"
        "<th>executed</th><th>mispredicted</th><th>predicated</th>"
        "<th>rate</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _timeline_strip(branch: Dict[str, Any]) -> str:
    occurrences = branch["occurrences"]
    if not occurrences:
        return ""
    lo = occurrences[0]["cycle"]
    hi = max(occurrences[-1]["cycle"], lo + 1)
    width = 640
    marks = []
    for occ in occurrences:
        x = 4 + (width - 8) * (occ["cycle"] - lo) / (hi - lo)
        color = OUTCOME_STATUS.get(occ["outcome"], ("var(--axis)", ""))[0]
        marks.append(
            f'<rect x="{x:.1f}" y="3" width="2.5" height="14" rx="1" '
            f'fill="{color}"><title>cycle {occ["cycle"]}: '
            f'{_esc(occ["outcome"])}</title></rect>'
        )
    return (
        f'<svg width="{width}" height="20" role="img" '
        f'aria-label="branch {branch["pc"]} timeline">'
        f'<line class="axis" x1="0" y1="19.5" x2="{width}" y2="19.5"></line>'
        f"{''.join(marks)}</svg>"
    )


def _timeline_section(data: DashboardData) -> str:
    if not data.timelines:
        return ""
    legend = "".join(
        f'<span><i style="background:{color}"></i>{_esc(label)}</span>'
        for color, label in OUTCOME_STATUS.values()
    )
    blocks = []
    for timeline in data.timelines[:4]:
        rows = []
        for branch in timeline["branches"][:8]:
            rows.append(
                f'<tr><td class="num mono">{branch["pc"]}</td>'
                f'<td class="num">{branch["occurrences_total"]}</td>'
                f'<td class="num">{branch["mispredicted"]}</td>'
                f'<td class="num">{branch["predicated"]}</td>'
                f"<td>{_timeline_strip(branch)}</td></tr>"
            )
        blocks.append(
            f'<p class="sub mono">{_esc(timeline["name"])} '
            f"(job {_esc(timeline['job_id'])})</p>"
            "<table><thead><tr><th>pc</th><th>occurrences</th>"
            "<th>mispredicted</th><th>predicated</th>"
            "<th>occurrence timeline (fetch cycle →)</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )
    return (
        "<h2>Per-branch timelines</h2>"
        '<p class="sub">Every mark is one dynamic occurrence of a static '
        "branch from a trace artifact, placed by fetch cycle and colored "
        "by its fate.</p>"
        f'<div class="legend">{legend}</div>' + "".join(blocks)
    )


def _sparkline(points: List[Dict[str, Any]]) -> str:
    width, height = 220, 36
    rates = [p["cycles_per_s"] for p in points]
    lo, hi = min(rates), max(rates)
    span = (hi - lo) or 1.0
    coords = []
    for i, rate in enumerate(rates):
        x = 6 + (width - 12) * (i / max(len(rates) - 1, 1))
        y = height - 6 - (height - 14) * ((rate - lo) / span)
        coords.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = coords[-1].split(",")
    return (
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="{rates[-1]:.0f} cycles per second">'
        f'<line class="axis" x1="0" y1="{height - 0.5}" x2="{width}" '
        f'y2="{height - 0.5}"></line>'
        f'<polyline class="spark" points="{" ".join(coords)}"></polyline>'
        f'<circle cx="{last_x}" cy="{last_y}" r="3" fill="var(--s1)">'
        f"</circle></svg>"
    )


def _bench_section(data: DashboardData) -> str:
    if not data.bench:
        return ""
    rows = []
    for group in sorted(data.bench):
        points = data.bench[group]
        tags = " → ".join(_esc(p["tag"]) for p in points[-5:])
        rows.append(
            f"<tr><td>{_esc(group)}</td>"
            f'<td class="num">{points[-1]["cycles_per_s"]:,.0f}</td>'
            f"<td>{_sparkline(points)}</td>"
            f'<td class="sub">{tags}</td></tr>'
        )
    return (
        "<h2>Simulator throughput trajectory</h2>"
        f'<p class="sub">Geomean simulated cycles per second across '
        f"{data.bench_reports} BENCH report(s), per target group "
        "(docs/performance.md).</p>"
        "<table><thead><tr><th>group</th><th>latest cyc/s</th>"
        "<th>trend</th><th>reports</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _runs_section(data: DashboardData) -> str:
    if not data.runs:
        return ('<h2>Runs</h2><p class="empty">The experiment store is '
                "empty — simulate something first (docs/service.md).</p>")
    rows = []
    for run in data.runs:
        rows.append(
            f'<tr><td class="mono">{_esc(run["run_id"])}</td>'
            f"<td>{_esc(run['workload'])}</td>"
            f"<td>{_esc(run['config'])}</td>"
            f'<td class="num">{_esc(run["warmup"])}+{_esc(run["measure"])}'
            f"</td>"
            f'<td class="num">{run["ipc"]:.3f}</td>'
            f'<td class="num">{run["stats"].get("cycles", 0)}</td>'
            f'<td class="num">{run["stats"].get("mispredicts", 0)}</td>'
            f"<td>{_esc(run['created'])}</td></tr>"
        )
    return (
        f"<h2>Runs ({len(data.runs)})</h2>"
        '<input type="search" id="run-filter" '
        'placeholder="filter workload / config / run id" />'
        '<table id="runs"><thead><tr><th>run_id</th><th>workload</th>'
        "<th>config</th><th>window</th><th>ipc</th><th>cycles</th>"
        "<th>mispredicts</th><th>created</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def render_dashboard(data: DashboardData) -> str:
    """The complete HTML document as a string."""
    sections = [
        _tiles(data),
        _speedup_section(data),
        _jobs_section(data),
        _branch_section(data),
        _timeline_section(data),
        _bench_section(data),
        _runs_section(data),
    ]
    schema = data.schema or {}
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8" />\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1" '
        "/>\n"
        f"<title>{_esc(data.title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n<main>\n"
        "<header>"
        f"<div><h1>{_esc(data.title)}</h1>"
        f'<div class="sub mono">store: {_esc(data.db_path)} '
        f"(schema v{_esc(schema.get('schema_version', '?'))})</div></div>"
        '<button id="theme" type="button">light/dark</button>'
        "</header>\n"
        + "\n".join(s for s in sections if s)
        + "\n<footer>Generated by <span class=\"mono\">repro dashboard"
        "</span> — self-contained file, no external requests "
        "(docs/dashboard.md).</footer>\n"
        f"</main>\n<script>{_JS}</script>\n</body>\n</html>\n"
    )
