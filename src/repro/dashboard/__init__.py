"""Self-contained results dashboard (``repro dashboard``).

Renders the SQLite experiment store — runs, jobs, distributed lease
progress, per-branch timelines from trace artifacts, and the
``BENCH_<tag>.json`` throughput trajectory — into one HTML file with no
external assets (see docs/dashboard.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.dashboard.data import DashboardData, collect, parse_timeline
from repro.dashboard.render import render_dashboard

__all__ = [
    "DashboardData",
    "DashboardReport",
    "collect",
    "generate",
    "parse_timeline",
    "render_dashboard",
]


@dataclass(frozen=True)
class DashboardReport:
    """What ``generate`` wrote, for the CLI summary line."""

    out_path: str
    size_bytes: int
    runs: int
    jobs: int
    bench_reports: int


def generate(
    db_path: Optional[str] = None,
    out_path: str = "repro_dashboard.html",
    bench_dir: str = ".",
    limit: int = 500,
    title: Optional[str] = None,
) -> DashboardReport:
    """Collect, render, and write the dashboard; returns a summary."""
    data = collect(db_path=db_path, bench_dir=bench_dir, limit=limit,
                   title=title)
    document = render_dashboard(data)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return DashboardReport(
        out_path=out_path,
        size_bytes=os.path.getsize(out_path),
        runs=len(data.runs),
        jobs=len(data.jobs),
        bench_reports=data.bench_reports,
    )
