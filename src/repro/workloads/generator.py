"""Turn a :class:`WorkloadSpec` into a runnable :class:`Workload`.

Kernels are one big loop.  Register conventions:

====  =======================================================
R1    loop-carried serial chain (feeds every compare)
R2,R5,R6,R7  hammock-body chains / live-outs
R3    join consumer of body live-outs (register transparency)
R4    memory value register
R8–R11  independent ILP filler
R12   address register produced inside bodies (Fig. 2c pattern)
R13   long-latency load destination
R14   pointer-chase register (serialized DRAM misses)
R15   inner-loop counter
====  =======================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.program.builder import ProgramBuilder
from repro.workloads.behaviors import (
    Bernoulli,
    LoopTrip,
    Periodic,
    Phased,
    Strided,
    UniformRandom,
)
from repro.workloads.specs import HammockSpec, WorkloadSpec
from repro.workloads.workload import Workload

_BODY_REGS = (2, 5, 6, 7)


def _branch_behavior(name: str, h: HammockSpec, p_shift: float = 0.0):
    if h.kind == "bernoulli":
        p = min(0.95, max(0.01, h.p + p_shift))
        return Bernoulli(name, p)
    if h.kind == "periodic":
        return Periodic(name, h.pattern)
    if h.kind == "markov":
        from repro.workloads.behaviors import Markov

        return Markov(name, h.p_stay)
    return Phased(name, h.phases)


def _emit_body(
    b: ProgramBuilder,
    h: HammockSpec,
    length: int,
    hname: str,
    side: str,
) -> None:
    """Emit *length* instructions of hammock body."""
    if length <= 0:
        return
    op = b.mul if h.body_op == "mul" else b.alu
    store_at = length // 2 if h.store_in_body else -1
    feed_at = length - 1 if h.body_feeds_load else -1
    store_behavior = f"{hname}_st" if h.shared_store else None
    reg = _BODY_REGS[0]
    for i in range(length):
        reg = _BODY_REGS[i % max(1, min(h.live_outs, len(_BODY_REGS)))]
        if i == store_at:
            b.store(srcs=(reg,), behavior=store_behavior,
                    note=f"{hname}.{side}.store")
        elif i == feed_at:
            b.alu(dst=12, srcs=(reg, 12), note=f"{hname}.{side}.addrfeed")
        elif i == 0:
            op(dst=reg, srcs=(1,), note=f"{hname}.{side}.0")
        else:
            prev = _BODY_REGS[(i - 1) % max(1, min(h.live_outs, len(_BODY_REGS)))]
            op(dst=reg, srcs=(prev,), note=f"{hname}.{side}.{i}")
    if h.carry_in_body:
        # loop-carried dependence through the predicated arm: transparency
        # must hand the previous R1 through when the arm is predicated false.
        b.alu(dst=1, srcs=(1, reg), note=f"{hname}.{side}.carry")


def _emit_hammock(
    b: ProgramBuilder,
    hi: int,
    h: HammockSpec,
    behaviors: Dict[str, object],
    deferred: List[Callable[[], None]],
    p_shift: float,
) -> None:
    hname = f"h{hi}"
    behaviors[hname] = _branch_behavior(hname, h, p_shift)
    join = f"join{hi}"
    if h.store_in_body and h.shared_store:
        # one address stream shared by every arm's store: arm choice decides
        # the final memory image at these locations.
        behaviors[f"{hname}_st"] = Strided(
            f"{hname}_st", base=(hi + 5) << 22, stride=64, span=1 << 10
        )
    if h.slow_source:
        # the branch condition comes from memory: a missy load makes the
        # branch resolve late, so predication stalls its whole region while
        # speculation runs ahead (the Fig. 2c pathology).
        sname = f"{hname}_src"
        behaviors[sname] = UniformRandom(
            sname, base=(hi + 9) << 26, span=h.slow_span_kb << 10
        )
        b.load(dst=7, srcs=(3,), behavior=sname, note=f"{hname}.slowsrc")
        b.compare(srcs=(7,), note=f"{hname}.cmp")
    else:
        b.compare(srcs=(1,), note=f"{hname}.cmp")

    if h.shape in ("if", "nested", "multi_exit"):
        b.cond_branch(join, behavior=hname, note=f"{hname}.branch")
        if h.shape == "if":
            _emit_body(b, h, h.nt_len, hname, "nt")
        elif h.shape == "nested":
            first = max(1, h.nt_len // 2)
            _emit_body(b, h, first, hname, "nt_a")
            iname = f"{hname}_inner"
            behaviors[iname] = Periodic(iname, (True, False, False))
            b.cond_branch(f"iskip{hi}", behavior=iname, note=f"{hname}.inner")
            b.alu(dst=5, srcs=(2,), note=f"{hname}.inner.0")
            b.alu(dst=5, srcs=(5,), note=f"{hname}.inner.1")
            b.label(f"iskip{hi}")
            _emit_body(b, h, max(1, h.nt_len - first), hname, "nt_b")
        else:  # multi_exit: body may escape past the join to a farther point
            first = max(1, h.nt_len // 2)
            _emit_body(b, h, first, hname, "nt_a")
            ename = f"{hname}_escape"
            behaviors[ename] = Bernoulli(ename, h.escape_p)
            b.cond_branch(f"far{hi}", behavior=ename, note=f"{hname}.escape")
            _emit_body(b, h, max(1, h.nt_len - first), hname, "nt_b")
    elif h.shape == "if_else":
        b.cond_branch(f"tblk{hi}", behavior=hname, note=f"{hname}.branch")
        _emit_body(b, h, h.nt_len, hname, "nt")
        b.jump(join, note=f"{hname}.jumper")
        b.label(f"tblk{hi}")
        _emit_body(b, h, h.taken_len, hname, "t")
    elif h.shape == "loop_body":
        # Type-3+: the NT arm contains a counted inner loop, so the dynamic
        # path to the join runs ``~4 × arm_trips`` instructions — past the
        # static learner's N-instruction scan, but well inside a dynamic
        # merge-point learner's retired-path window.
        b.cond_branch(join, behavior=hname, note=f"{hname}.branch")
        first = max(1, h.nt_len // 2)
        _emit_body(b, h, first, hname, "nt_a")
        lname = f"{hname}_arm"
        # fixed trip count: the *arm loop* must stay predictable so the
        # hard-to-predict outer branch, not the inner exit, is the region's
        # only uncertainty (jitter would diverge every opened region).
        behaviors[lname] = LoopTrip(lname, trips=h.arm_trips, jitter=0)
        b.label(f"armtop{hi}")
        b.alu(dst=15, srcs=(15,), note=f"{hname}.arm.count")
        b.alu(dst=5, srcs=(5,), note=f"{hname}.arm.body")
        b.compare(srcs=(15,), note=f"{hname}.arm.cmp")
        b.cond_branch(f"armtop{hi}", behavior=lname, note=f"{hname}.arm.branch")
        _emit_body(b, h, max(1, h.nt_len - first), hname, "nt_b")
    elif h.shape == "multi_exit_far":
        # Type-3+: the branch targets a far label *past* the local join, and
        # the NT path reaches it only after a long straight-line gap — the
        # true reconvergence point sits beyond the static scan horizon.
        b.cond_branch(f"far{hi}", behavior=hname, note=f"{hname}.branch")
        _emit_body(b, h, h.nt_len, hname, "nt")
    elif h.shape == "nested_else":
        # Type-2 with an inner hammock inside the NT arm: an asymmetric
        # nested region whose inner reconvergence sits before the outer one.
        b.cond_branch(f"tblk{hi}", behavior=hname, note=f"{hname}.branch")
        first = max(1, h.nt_len // 2)
        _emit_body(b, h, first, hname, "nt_a")
        iname = f"{hname}_inner"
        behaviors[iname] = Periodic(iname, (False, True, True))
        b.cond_branch(f"iskip{hi}", behavior=iname, note=f"{hname}.inner")
        b.alu(dst=6, srcs=(2,), note=f"{hname}.inner.0")
        b.alu(dst=6, srcs=(6,), note=f"{hname}.inner.1")
        b.label(f"iskip{hi}")
        _emit_body(b, h, max(1, h.nt_len - first), hname, "nt_b")
        b.jump(join, note=f"{hname}.jumper")
        b.label(f"tblk{hi}")
        _emit_body(b, h, h.taken_len, hname, "t")
    else:  # type3: taken block placed after the loop, jumping back to join
        b.cond_branch(f"tblk{hi}", behavior=hname, note=f"{hname}.branch")
        _emit_body(b, h, h.nt_len, hname, "nt")

        def _deferred_taken(hi=hi, h=h, hname=hname):
            b.label(f"tblk{hi}")
            _emit_body(b, h, max(1, h.taken_len), hname, "t")
            b.jump(join, note=f"{hname}.backjumper")

        deferred.append(_deferred_taken)

    b.label(join)
    b.alu(dst=3, srcs=(2,), note=f"{hname}.join")
    if h.join_feeds_chain:
        b.alu(dst=1, srcs=(1, 3), note=f"{hname}.chainfeed")

    if h.shape == "multi_exit":
        b.alu(dst=3, srcs=(3,), note=f"{hname}.postjoin")
        b.label(f"far{hi}")
        b.alu(dst=3, srcs=(3,), note=f"{hname}.far")
    elif h.shape == "multi_exit_far":
        for i in range(h.far_gap):
            b.alu(dst=10, srcs=(10,), note=f"{hname}.gap.{i}")
        b.label(f"far{hi}")
        b.alu(dst=3, srcs=(3,), note=f"{hname}.far")

    if h.body_feeds_load:
        lname = f"{hname}_critload"
        behaviors[lname] = UniformRandom(lname, base=(hi + 1) << 28, span=64 << 20)
        b.load(dst=13, srcs=(12,), behavior=lname, note=f"{hname}.critload")
        b.alu(dst=1, srcs=(1, 13), note=f"{hname}.critconsume")

    # Followers are perfectly correlated with the hammock branch but
    # deliberately *backward*, so no predication scheme can cover them:
    # once the leader is predicated out of the global history, their
    # accuracy collapses and nothing can repair it — the Section II-C2 /
    # omnetpp inversion.
    from repro.workloads.behaviors import Correlated

    for f in range(h.followers):
        fname = f"{hname}_follower{f}"
        behaviors[fname] = Correlated(fname, source=hname)
        b.jump(f"fmain{hi}_{f}", note=f"{fname}.skipblock")
        b.label(f"fblock{hi}_{f}")
        b.alu(dst=5, srcs=(1,), note=f"{fname}.body0")
        b.alu(dst=5, srcs=(5,), note=f"{fname}.body1")
        b.jump(f"fcont{hi}_{f}", note=f"{fname}.return")
        b.label(f"fmain{hi}_{f}")
        sname = f"{fname}_src"
        behaviors[sname] = UniformRandom(
            sname, base=(hi * 7 + f + 3) << 27, span=h.follower_slow_kb << 10
        )
        b.load(dst=6, srcs=(3,), behavior=sname, note=f"{fname}.slowsrc")
        b.compare(srcs=(6,), note=f"{fname}.cmp")
        b.cond_branch(f"fblock{hi}_{f}", behavior=fname, note=f"{fname}.branch")
        b.label(f"fcont{hi}_{f}")
        b.alu(dst=6, srcs=(5,), note=f"{fname}.join")


def _emit_memory(
    b: ProgramBuilder, spec: WorkloadSpec, behaviors: Dict[str, object]
) -> None:
    if spec.memory == "none":
        return
    span = spec.mem_span_kb * 1024
    for m in range(spec.mem_ops):
        mname = f"mem{m}"
        if spec.memory == "strided":
            behaviors[mname] = Strided(mname, base=(m + 1) << 24, stride=64, span=span)
            b.load(dst=4, srcs=(3,), behavior=mname, note=f"mem.load{m}")
            if m % 2 == 1:
                behaviors[f"{mname}s"] = Strided(
                    f"{mname}s", base=(m + 17) << 24, stride=64, span=span
                )
                b.store(srcs=(4,), behavior=f"{mname}s", note=f"mem.store{m}")
        elif spec.memory == "random":
            behaviors[mname] = UniformRandom(mname, base=(m + 1) << 24, span=span)
            b.load(dst=4, srcs=(3,), behavior=mname, note=f"mem.load{m}")
        else:  # chase: serialized long-latency loads, off the branch chain
            behaviors[mname] = UniformRandom(mname, base=(m + 1) << 28, span=span)
            b.load(dst=14, srcs=(14,), behavior=mname, note=f"mem.chase{m}")
            # consume into a side register: the chase dominates the critical
            # path without making branch conditions depend on it, so flushes
            # resolve in its shadow (the soplex analysis, Section V-A).
            b.alu(dst=5, srcs=(5, 14), note=f"mem.chaseuse{m}")


def _emit_inner_loop(
    b: ProgramBuilder, spec: WorkloadSpec, behaviors: Dict[str, object]
) -> None:
    if spec.inner_loop is None:
        return
    trips, jitter = spec.inner_loop
    behaviors["iloop"] = LoopTrip("iloop", trips=trips, jitter=jitter)
    b.label("inner_top")
    b.alu(dst=15, srcs=(15,), note="iloop.count")
    b.alu(dst=9, srcs=(9,), note="iloop.body")
    b.compare(srcs=(15,), note="iloop.cmp")
    b.cond_branch("inner_top", behavior="iloop", note="iloop.branch")


def build_workload(spec: WorkloadSpec, train: bool = False) -> Workload:
    """Materialize *spec* into a program + behaviours.

    With ``train=True`` the branch probabilities are shifted by
    ``spec.train_shift`` and a different functional seed is used — this is
    the profiling input handed to DMP's compiler pass.
    """
    behaviors: Dict[str, object] = {}
    b = ProgramBuilder(spec.name if not train else f"{spec.name}.train")
    deferred: List[Callable[[], None]] = []
    p_shift = spec.train_shift if train else 0.0

    b.label("top")
    for i in range(spec.chain):
        b.alu(dst=1, srcs=(1,), note=f"chain.{i}")
    for i in range(spec.ilp):
        reg = 8 + i % 4
        b.alu(dst=reg, srcs=(reg,), note=f"ilp.{i}")
    for hi, h in enumerate(spec.hammocks):
        _emit_hammock(b, hi, h, behaviors, deferred, p_shift)
    _emit_memory(b, spec, behaviors)
    _emit_inner_loop(b, spec, behaviors)
    b.jump("top")
    for emit in deferred:
        emit()

    workload = Workload(
        name=spec.name if not train else f"{spec.name}.train",
        category=spec.category,
        program=b.build(),
        behaviors=behaviors,
        seed=spec.seed + (1_000_003 if train else 0),
        description=spec.description,
        paper_tag=spec.paper_tag,
    )
    if not train:
        workload.train = build_workload(spec, train=True)
    return workload
