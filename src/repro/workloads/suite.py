"""The 70-workload evaluation suite (the paper's Table III).

The paper's workloads are proprietary traces; each name here is a synthetic
proxy built from the generator's vocabulary.  The named outliers the paper
analyzes individually get hand-written specs that reproduce the specific
mechanism attributed to them:

* ``lammps`` — one dominant, tiny, maximally hard IF hammock on a serial
  chain: the >2x positive outlier of Fig. 7.
* ``soplex`` — mispredictions shadowed by a serialized DRAM pointer chase:
  flush reduction without speedup (Fig. 7's left end).
* ``omnetpp`` — a perfectly correlated follower branch: predication removes
  the leader from the history and the follower starts missing (Fig. 7's
  negative outlier, Section II-C2).
* ``eembc`` / ``h264ref`` — hammock bodies produce the address of a
  critical long-latency load: predication elongates the critical path; ACB
  without Dynamo loses ~20% (Fig. 8, Section V-B).

``paper_tag`` carries the Fig. 8/9 category letter (A, B1, B2, C, D, E)
where the paper assigns one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.workloads.generator import build_workload
from repro.workloads.specs import HammockSpec, WorkloadSpec
from repro.workloads.workload import Workload

_MASK = (1 << 63) - 1


def _name_seed(name: str) -> int:
    h = 1469598103934665603
    for ch in name:
        h = ((h ^ ord(ch)) * 1099511628211) & _MASK
    return h or 1


class _Rng:
    """Deterministic per-name parameter stream."""

    def __init__(self, name: str):
        self._s = _name_seed(name)

    def _next(self) -> int:
        s = self._s
        s ^= (s << 13) & _MASK
        s ^= s >> 7
        s ^= (s << 17) & _MASK
        self._s = s & _MASK
        return self._s

    def choice(self, seq):
        return seq[self._next() % len(seq)]

    def randint(self, lo: int, hi: int) -> int:
        return lo + self._next() % (hi - lo + 1)

    def uniform(self, lo: float, hi: float) -> float:
        return lo + (self._next() / float(_MASK)) * (hi - lo)


# ----------------------------------------------------------------------
# Hand-written outlier specs
# ----------------------------------------------------------------------
def _special_specs() -> Dict[str, WorkloadSpec]:
    specs = [
        WorkloadSpec(
            name="lammps",
            category="Server",
            paper_tag="A",
            seed=_name_seed("lammps"),
            hammocks=(HammockSpec(shape="if", nt_len=3, p=0.48),),
            ilp=1,
            chain=4,
            memory="none",
            description="dominant tiny H2P hammock on a serial chain (>2x gain)",
        ),
        WorkloadSpec(
            name="soplex",
            category="FSPEC",
            paper_tag="shadowed",
            seed=_name_seed("soplex"),
            hammocks=(HammockSpec(shape="if", nt_len=4, p=0.35),),
            ilp=3,
            chain=1,
            memory="chase",
            mem_span_kb=64 * 1024,
            description="mispredictions shadowed by a DRAM pointer chase",
        ),
        WorkloadSpec(
            name="omnetpp",
            category="ISPEC",
            paper_tag="D",
            seed=_name_seed("omnetpp"),
            hammocks=(HammockSpec(shape="if", nt_len=5, p=0.42, followers=2),),
            ilp=3,
            chain=2,
            memory="strided",
            train_shift=-0.15,
            description="correlated follower loses accuracy under predication",
        ),
        WorkloadSpec(
            name="h264ref",
            category="ISPEC",
            paper_tag="C",
            seed=_name_seed("h264ref"),
            hammocks=(
                HammockSpec(shape="if", nt_len=10, p=0.30, slow_source=True,
                            slow_span_kb=1024, join_feeds_chain=True),
            ),
            ilp=8,
            chain=1,
            memory="strided",
            mem_span_kb=64,
            description="body feeds a critical load: predication-hostile",
        ),
        WorkloadSpec(
            name="eembc",
            category="Client",
            paper_tag="C",
            seed=_name_seed("eembc"),
            hammocks=(
                HammockSpec(shape="if", nt_len=12, p=0.28, slow_source=True,
                            slow_span_kb=2048, join_feeds_chain=True),
            ),
            ilp=6,
            chain=1,
            memory="strided",
            mem_span_kb=64,
            description="body feeds a critical load: worst no-Dynamo outlier",
        ),
        WorkloadSpec(
            name="gobmk",
            category="ISPEC",
            paper_tag="B1",
            seed=_name_seed("gobmk"),
            hammocks=(
                HammockSpec(shape="multi_exit", nt_len=8, p=0.40, escape_p=0.18),
            ),
            ilp=3,
            chain=2,
            memory="strided",
            description="multiple reconvergence points: DMP's compiler wins",
        ),
        WorkloadSpec(
            name="sjeng",
            category="ISPEC",
            paper_tag="B1",
            seed=_name_seed("sjeng"),
            hammocks=(
                HammockSpec(shape="multi_exit", nt_len=6, p=0.35, escape_p=0.15),
                HammockSpec(shape="if", nt_len=4, p=0.30),
            ),
            ilp=4,
            chain=1,
            memory="strided",
            description="multi-exit plus a plain hammock",
        ),
        WorkloadSpec(
            name="povray",
            category="FSPEC",
            paper_tag="B2",
            seed=_name_seed("povray"),
            hammocks=(
                HammockSpec(shape="if_else", taken_len=10, nt_len=10, p=0.45,
                            body_op="mul", slow_source=True, slow_span_kb=16,
                            join_feeds_chain=True),
            ),
            ilp=2,
            chain=1,
            memory="strided",
            description="long-latency bodies: eager (select-uop) execution wins",
        ),
        WorkloadSpec(
            name="namd",
            category="FSPEC",
            paper_tag="B2",
            seed=_name_seed("namd"),
            hammocks=(
                HammockSpec(shape="if_else", taken_len=8, nt_len=8, p=0.40,
                            body_op="mul", slow_source=True, slow_span_kb=16,
                            join_feeds_chain=True),
            ),
            ilp=3,
            chain=2,
            memory="strided",
            description="long-latency bodies favouring eager execution",
        ),
        WorkloadSpec(
            name="xalancbmk",
            category="ISPEC",
            paper_tag="D",
            seed=_name_seed("xalancbmk"),
            hammocks=(
                HammockSpec(shape="if", nt_len=6, p=0.38, followers=2),
                HammockSpec(shape="if_else", taken_len=3, nt_len=3, p=0.25),
            ),
            ilp=3,
            chain=2,
            memory="strided",
            train_shift=-0.20,
            description="correlated followers + profile/input mismatch",
        ),
        WorkloadSpec(
            name="perlbench",
            category="ISPEC",
            paper_tag="D",
            seed=_name_seed("perlbench"),
            hammocks=(
                HammockSpec(shape="if_else", taken_len=4, nt_len=4, p=0.40,
                            followers=2),
            ),
            ilp=4,
            chain=1,
            memory="strided",
            train_shift=0.18,
            description="follower correlation destroyed by predication",
        ),
        WorkloadSpec(
            name="gcc",
            category="ISPEC",
            paper_tag="E",
            seed=_name_seed("gcc"),
            hammocks=(
                HammockSpec(shape="if_else", taken_len=10, nt_len=10, p=0.35,
                            live_outs=4, slow_source=True, slow_span_kb=1024,
                            join_feeds_chain=True),
            ),
            ilp=6,
            chain=1,
            memory="strided",
            description="wide live-out sets: select-uop allocation stalls",
        ),
        WorkloadSpec(
            name="mcf",
            category="ISPEC",
            paper_tag="E",
            seed=_name_seed("mcf"),
            hammocks=(
                HammockSpec(shape="if_else", taken_len=12, nt_len=8, p=0.30,
                            live_outs=4, slow_source=True, slow_span_kb=2048,
                            join_feeds_chain=True),
            ),
            ilp=8,
            chain=1,
            memory="strided",
            mem_span_kb=64,
            description="select-uop pressure + dependent loads",
        ),
    ]
    return {s.name: s for s in specs}


# ----------------------------------------------------------------------
# Template-based generation for the remaining names
# ----------------------------------------------------------------------
_CATEGORY_NAMES: Dict[str, Sequence[str]] = {
    "ISPEC": (
        "perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng",
        "libquantum", "h264ref", "omnetpp", "astar", "xalancbmk",
    ),
    "FSPEC": (
        "bwaves", "gamess", "milc", "zeusmp", "soplex", "povray", "calculix",
        "gemsfdtd", "tonto", "lbm", "wrf", "sphinx3", "gromacs", "cactusADM",
        "leslie3d", "namd", "dealII",
    ),
    "SPEC17": (
        "cactuBSSN_17", "lbm_17", "cam4_17", "pop2_17", "imagick_17",
        "nab_17", "roms_17", "perlbench_17", "gcc_17", "mcf_17",
        "omnetpp_17", "xalancbmk_17", "x264_17", "deepsjeng_17", "leela_17",
        "exchange2_17", "xz_17",
    ),
    "SYSmark": ("winzip", "photoshop", "sketchup", "premiere"),
    "Client": (
        "tabletmark", "geekbench_int", "geekbench_fp", "compression",
        "3dmark", "eembc", "chrome",
    ),
    "Server": (
        "lammps", "parsec_blackscholes", "parsec_canneal", "parsec_dedup",
        "parsec_ferret", "parsec_fluidanimate", "parsec_freqmine",
        "parsec_streamcluster", "parsec_swaptions", "parsec_bodytrack",
        "parsec_facesim", "parsec_raytrace", "parsec_vips",
    ),
}

#: Names whose kernels are branch-friendly (predictable): the suite needs
#: workloads that are insensitive to predication, as in Figs. 6/11.
_PREDICTABLE = {
    "bwaves", "milc", "lbm", "lbm_17", "wrf", "gamess", "cactusADM",
    "cactuBSSN_17", "roms_17", "imagick_17", "exchange2_17",
    "parsec_blackscholes", "parsec_swaptions", "sketchup",
}

#: Loop-dominated kernels (jittery inner-loop exits).
_LOOPY = {"libquantum", "zeusmp", "tonto", "nab_17", "pop2_17", "compression",
          "parsec_streamcluster", "winzip"}

#: Phase-changing kernels (exercise Dynamo's periodic reset).
_PHASED = {"chrome", "photoshop", "premiere", "tabletmark", "parsec_ferret"}


def _template_spec(name: str, category: str) -> WorkloadSpec:
    rng = _Rng(name)
    hammocks: List[HammockSpec] = []

    if name in _PREDICTABLE:
        hammocks.append(
            HammockSpec(
                shape=rng.choice(("if", "if_else")),
                taken_len=rng.randint(2, 4),
                nt_len=rng.randint(2, 5),
                kind="periodic",
                pattern=tuple(rng.choice((True, False)) for _ in range(6)) or (True,),
            )
        )
        memory = rng.choice(("strided", "strided", "random"))
        span = 64
    elif name in _PHASED:
        hammocks.append(
            HammockSpec(
                shape="if",
                nt_len=rng.randint(4, 8),
                kind="phased",
                phases=((rng.randint(2000, 5000), rng.uniform(0.3, 0.5)),
                        (rng.randint(2000, 5000), rng.uniform(0.0, 0.05))),
            )
        )
        memory = "strided"
        span = 256
    else:
        count = rng.randint(1, 2)
        for _ in range(count):
            shape = rng.choice(("if", "if", "if_else", "type3", "nested"))
            hammocks.append(
                HammockSpec(
                    shape=shape,
                    taken_len=rng.randint(2, 8),
                    nt_len=rng.randint(2, 8),
                    p=rng.uniform(0.12, 0.48),
                    store_in_body=rng.randint(0, 4) == 0,
                )
            )
        memory = rng.choice(("strided", "strided", "random", "none"))
        span = rng.choice((64, 256, 1024, 4096))

    inner = (rng.randint(8, 20), rng.randint(2, 6)) if name in _LOOPY else None
    return WorkloadSpec(
        name=name,
        category=category,
        seed=_name_seed(name),
        hammocks=tuple(hammocks),
        ilp=rng.randint(1, 5),
        chain=rng.randint(1, 3),
        memory=memory,
        mem_span_kb=span,
        mem_ops=rng.randint(1, 2),
        inner_loop=inner,
        description="template-generated proxy",
    )


# ----------------------------------------------------------------------
def suite_specs() -> Dict[str, WorkloadSpec]:
    """All 70 workload specs, keyed by name."""
    special = _special_specs()
    specs: Dict[str, WorkloadSpec] = {}
    for category, names in _CATEGORY_NAMES.items():
        for name in names:
            if name in special and special[name].category == category:
                specs[name] = special[name]
            else:
                specs[name] = _template_spec(name, category)
    return specs


def load_suite(names: Optional[Sequence[str]] = None) -> List[Workload]:
    """Build (a subset of) the suite as runnable workloads."""
    specs = suite_specs()
    if names is None:
        selected = list(specs.values())
    else:
        missing = [n for n in names if n not in specs]
        if missing:
            raise KeyError(f"unknown workloads: {missing}")
        selected = [specs[n] for n in names]
    return [build_workload(spec) for spec in selected]


def suite_names() -> List[str]:
    return list(suite_specs())


def categories() -> Dict[str, List[str]]:
    """Category → workload-name map (the Table III bench)."""
    out: Dict[str, List[str]] = {}
    for name, spec in suite_specs().items():
        out.setdefault(spec.category, []).append(name)
    return out


#: A 12-workload representative subset for quick experiments: the named
#: outliers plus one typical workload per category.
REPRESENTATIVE = (
    "lammps", "soplex", "omnetpp", "eembc", "h264ref", "gobmk", "povray",
    "gcc", "perlbench", "bzip2", "chrome", "winzip",
)
