"""Frontier workloads: region shapes past the static learner's reach.

These kernels are built from the Type-3+ hammock shapes (``loop_body``,
``multi_exit_far``) whose reconvergence points the paper's fetch-stream
learner *provably* cannot confirm within its N-instruction scan — the
shapes Section VI defers to future work.  They exist to probe the dynamic
merge-point backend (``acb-dmp-reconv``): plain ACB rejects every
candidate on them, while the DMP-style learner opens regions, so the
``fig8-frontier`` experiment can measure what that unlocked coverage is
worth.

They are intentionally *not* part of the 70-workload suite: the suite
mirrors the paper's evaluation set, while these are mechanism probes.
:func:`repro.harness.runner.resolve_workload` resolves them by name just
like suite workloads, so every harness/CLI/bench path can run them.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.specs import HammockSpec, WorkloadSpec
from repro.workloads.workload import Workload

#: Every frontier kernel keeps its hard-to-predict branch at p≈0.5 so the
#: criticality filter saturates quickly even in reduced windows.
FRONTIER_SPECS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            name="frontier_loop_arm",
            category="frontier",
            seed=90_001,
            paper_tag="SectionVI",
            hammocks=(
                HammockSpec(
                    shape="loop_body", nt_len=4, p=0.5, arm_trips=12,
                ),
            ),
            ilp=2,
            chain=1,
            memory="strided",
            mem_span_kb=16,
            mem_ops=1,
            description=(
                "counted loop inside the predicated arm: the dynamic "
                "NT path overruns the static scan limit"
            ),
        ),
        WorkloadSpec(
            name="frontier_far_merge",
            category="frontier",
            seed=90_002,
            paper_tag="SectionVI",
            hammocks=(
                HammockSpec(
                    shape="multi_exit_far", nt_len=4, p=0.5, far_gap=48,
                ),
            ),
            ilp=2,
            chain=1,
            memory="strided",
            mem_span_kb=16,
            mem_ops=1,
            description=(
                "reconvergence at a far label past the local join, "
                "beyond the static scan horizon"
            ),
        ),
        WorkloadSpec(
            name="frontier_mixed",
            category="frontier",
            seed=90_003,
            paper_tag="SectionVI",
            hammocks=(
                HammockSpec(shape="if_else", taken_len=3, nt_len=3, p=0.5),
                HammockSpec(
                    shape="loop_body", nt_len=4, p=0.5, arm_trips=12,
                ),
                HammockSpec(
                    shape="multi_exit_far", nt_len=4, p=0.5, far_gap=48,
                ),
            ),
            ilp=3,
            chain=1,
            memory="strided",
            mem_span_kb=16,
            mem_ops=1,
            description=(
                "one learnable diamond next to two Type-3+ shapes: the "
                "static learner covers a third of the region space, the "
                "merge-point learner all of it"
            ),
        ),
    )
}


def frontier_names() -> List[str]:
    return list(FRONTIER_SPECS)


def is_frontier_name(name: str) -> bool:
    return name in FRONTIER_SPECS


def load_frontier_workload(name: str) -> Workload:
    from repro.workloads.generator import build_workload

    return build_workload(FRONTIER_SPECS[name])
