"""Synthetic workload substrate: behaviours, generators, and the suite."""

from repro.workloads.behaviors import (
    Bernoulli,
    BranchBehavior,
    Correlated,
    LoopTrip,
    Markov,
    MemBehavior,
    Periodic,
    Phased,
    Strided,
    UniformRandom,
    WorkloadState,
)
from repro.workloads.generator import build_workload
from repro.workloads.specs import HammockSpec, WorkloadSpec
from repro.workloads.suite import (
    REPRESENTATIVE,
    categories,
    load_suite,
    suite_names,
    suite_specs,
)
from repro.workloads.workload import FunctionalExecutor, StepResult, Workload

__all__ = [
    "HammockSpec",
    "WorkloadSpec",
    "build_workload",
    "REPRESENTATIVE",
    "categories",
    "load_suite",
    "suite_names",
    "suite_specs",
    "Bernoulli",
    "BranchBehavior",
    "Correlated",
    "LoopTrip",
    "Markov",
    "MemBehavior",
    "Periodic",
    "Phased",
    "Strided",
    "UniformRandom",
    "WorkloadState",
    "FunctionalExecutor",
    "StepResult",
    "Workload",
]
