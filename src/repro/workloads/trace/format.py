"""On-disk branch-trace formats: the native ``.rbt.gz`` container and a
CBP-style text reader.

The native format is a gzip stream holding a schema-versioned JSON header
line followed by fixed-width packed records::

    magic   b"RBTR"                       (4 bytes, inside the gzip stream)
    header  JSON object + b"\\n"           ({"schema": 1, "records": N, ...})
    records N x struct "<QQB"             (pc, target, taken) little-endian

Everything a replay needs travels in the header (:class:`TraceMeta`):
provenance, the downsampling window the converter applied, and the
proportional ACB window scale (see :meth:`repro.acb.AcbConfig.reduced`)
matched to the shortened slice.  Writes pin the gzip ``mtime`` to zero so
identical content produces identical bytes — the committed mini-traces
under ``tests/traces/`` are regenerable bit-for-bit.

The CBP-style reader accepts the common text dump shape used by branch
prediction championship tooling: one branch per line, ``pc outcome
[target]`` with hex or decimal PCs and ``T``/``N``/``1``/``0`` outcomes.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import struct
import zlib
from dataclasses import asdict, dataclass, field
from typing import IO, Iterable, List, NamedTuple, Optional, Tuple

#: Bump when the record layout or header semantics change; readers reject
#: anything else (the converter is the migration path).
TRACE_SCHEMA_VERSION = 1

MAGIC = b"RBTR"

_RECORD = struct.Struct("<QQB")
RECORD_BYTES = _RECORD.size

#: extensions understood by :func:`load_branch_trace`
NATIVE_SUFFIXES = (".rbt", ".rbt.gz")
TEXT_SUFFIXES = (".cbp", ".cbp.gz", ".txt", ".txt.gz")


class BranchRecord(NamedTuple):
    """One dynamic conditional-branch event."""

    pc: int
    taken: bool
    target: int


class TraceFormatError(ValueError):
    """Raised for malformed, truncated, or schema-incompatible traces."""


#: rough micro-ops per replayed branch event (filler + compare + branch +
#: body amortized) — converts a window length into an ACB scale.
AVG_UOPS_PER_EVENT = 7


def recommended_acb_scale(n_records: int) -> int:
    """Proportional ACB/Dynamo scaling for an *n_records*-event window.

    The full-size mechanism observes 200K-instruction criticality windows
    and 16K-instruction Dynamo epochs (Table II); a replayed window loops
    every ``n_records * AVG_UOPS_PER_EVENT`` micro-ops, and the windows
    shrink proportionally so criticality filtering and Dynamo both reach
    verdicts within a few passes of the slice — the same proportionality
    ``AcbConfig.reduced`` applies to the synthetic suite (EXPERIMENTS.md).
    """
    if n_records < 1:
        raise ValueError("a trace window needs at least one record")
    pass_instructions = n_records * AVG_UOPS_PER_EVENT
    return max(1, min(50, round(200_000 / max(800, pass_instructions))))


@dataclass
class TraceMeta:
    """Header of a native trace: provenance plus replay parameters."""

    name: str
    records: int
    schema: int = TRACE_SCHEMA_VERSION
    #: original source file and its event count, when converted
    source: str = ""
    source_records: int = 0
    #: downsampling window applied by the converter ([offset, offset+records))
    window_offset: int = 0
    #: proportional ACB/Dynamo window scale for this slice length — the
    #: replay harness runs ACB schemes with ``AcbConfig().reduced(acb_scale)``
    acb_scale: int = 10
    #: free-form provenance (converter version, generator parameters)
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def to_header(self) -> dict:
        header = asdict(self)
        header["schema"] = TRACE_SCHEMA_VERSION
        return header

    @classmethod
    def from_header(cls, header: dict) -> "TraceMeta":
        known = {f for f in cls.__dataclass_fields__}
        fields_in = {k: v for k, v in header.items() if k in known}
        try:
            meta = cls(**fields_in)
        except TypeError as exc:
            raise TraceFormatError(f"bad trace header: {exc}") from None
        if not isinstance(meta.records, int) or meta.records < 0:
            raise TraceFormatError(f"bad record count: {meta.records!r}")
        if not isinstance(meta.acb_scale, int) or meta.acb_scale < 1:
            raise TraceFormatError(f"bad acb_scale: {meta.acb_scale!r}")
        return meta


# ----------------------------------------------------------------------
# native container
# ----------------------------------------------------------------------
def write_trace(path: str, records: Iterable[BranchRecord], meta: TraceMeta) -> int:
    """Write *records* under *meta* to *path*; returns the record count.

    The header's ``records`` field is filled in from the actual count, so
    callers may pass a generator.  Output bytes are a pure function of the
    content (gzip mtime pinned to 0).
    """
    packed = io.BytesIO()
    count = 0
    pack = _RECORD.pack
    for pc, taken, target in records:
        packed.write(pack(pc, target, 1 if taken else 0))
        count += 1
    meta.records = count
    header = json.dumps(meta.to_header(), sort_keys=True).encode()
    dirname = os.path.dirname(path)
    if dirname:
        os.makedirs(dirname, exist_ok=True)
    with open(path, "wb") as raw:
        with gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0) as gz:
            gz.write(MAGIC)
            gz.write(header + b"\n")
            gz.write(packed.getvalue())
    return count


def _open_maybe_gzip(path: str) -> IO[bytes]:
    handle = open(path, "rb")
    head = handle.read(2)
    handle.seek(0)
    if head == b"\x1f\x8b":
        return gzip.GzipFile(fileobj=handle, mode="rb")  # type: ignore[return-value]
    return handle


def read_trace(path: str) -> Tuple[TraceMeta, List[BranchRecord]]:
    """Read a native trace; raises :class:`TraceFormatError` when invalid."""
    try:
        with _open_maybe_gzip(path) as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise TraceFormatError(
                    f"{path}: not a branch trace (magic {magic!r}, want {MAGIC!r})"
                )
            header_line = bytearray()
            while True:
                byte = handle.read(1)
                if not byte:
                    raise TraceFormatError(f"{path}: truncated header")
                if byte == b"\n":
                    break
                header_line += byte
                if len(header_line) > 1 << 16:
                    raise TraceFormatError(f"{path}: unterminated header")
            try:
                header = json.loads(header_line.decode())
            except (UnicodeDecodeError, ValueError) as exc:
                raise TraceFormatError(f"{path}: corrupt header: {exc}") from None
            if not isinstance(header, dict):
                raise TraceFormatError(f"{path}: header is not an object")
            if header.get("schema") != TRACE_SCHEMA_VERSION:
                raise TraceFormatError(
                    f"{path}: schema {header.get('schema')!r} unsupported "
                    f"(this reader speaks {TRACE_SCHEMA_VERSION})"
                )
            meta = TraceMeta.from_header(header)
            payload = handle.read()
    except (OSError, EOFError, zlib.error) as exc:
        # gzip signals truncation as EOFError and interior corruption as
        # zlib.error — both are "this file is broken" to a caller
        raise TraceFormatError(f"{path}: unreadable: {exc}") from None
    expected = meta.records * RECORD_BYTES
    if len(payload) != expected:
        raise TraceFormatError(
            f"{path}: payload is {len(payload)} bytes, header promises "
            f"{meta.records} records ({expected} bytes)"
        )
    records = [
        BranchRecord(pc, bool(taken), target)
        for pc, target, taken in _RECORD.iter_unpack(payload)
    ]
    return meta, records


# ----------------------------------------------------------------------
# CBP-style text traces
# ----------------------------------------------------------------------
def _parse_int(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


_TAKEN_TOKENS = {"t": True, "1": True, "n": False, "0": False}


def read_cbp_text(path: str) -> List[BranchRecord]:
    """Read a CBP-style text trace: ``pc outcome [target]`` per line.

    Blank lines and ``#`` comments are skipped.  Outcomes are ``T``/``N``
    (or ``1``/``0``); a missing target defaults to the branch's own pc —
    the replay only needs the target to distinguish successor blocks, and
    direction-only dumps are common.
    """
    records: List[BranchRecord] = []
    try:
        with _open_maybe_gzip(path) as handle:
            for lineno, raw in enumerate(
                io.TextIOWrapper(handle, encoding="utf-8"), start=1
            ):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise TraceFormatError(
                        f"{path}:{lineno}: want `pc outcome [target]`, got {raw!r}"
                    )
                try:
                    pc = _parse_int(parts[0])
                    taken = _TAKEN_TOKENS[parts[1].lower()]
                    target = _parse_int(parts[2]) if len(parts) > 2 else pc
                except (KeyError, ValueError) as exc:
                    raise TraceFormatError(
                        f"{path}:{lineno}: unparsable branch event: {exc}"
                    ) from None
                records.append(BranchRecord(pc, taken, target))
    except (OSError, EOFError, zlib.error) as exc:
        raise TraceFormatError(f"{path}: unreadable: {exc}") from None
    except UnicodeDecodeError as exc:
        raise TraceFormatError(f"{path}: not a text trace: {exc}") from None
    return records


# ----------------------------------------------------------------------
def _text_meta(path: str, records: List[BranchRecord]) -> TraceMeta:
    """Synthesized header for a text trace (no native header to carry one)."""
    return TraceMeta(
        name=trace_stem(path),
        records=len(records),
        source=path,
        acb_scale=recommended_acb_scale(len(records)) if records else 10,
    )


def load_branch_trace(path: str) -> Tuple[TraceMeta, List[BranchRecord]]:
    """Load any supported trace; text traces get a synthesized meta."""
    lowered = path.lower()
    if lowered.endswith(NATIVE_SUFFIXES):
        return read_trace(path)
    if lowered.endswith(TEXT_SUFFIXES):
        records = read_cbp_text(path)
        return _text_meta(path, records), records
    # unknown extension: try native first, fall back to text
    try:
        return read_trace(path)
    except TraceFormatError:
        records = read_cbp_text(path)
        return _text_meta(path, records), records


def trace_stem(path: str) -> str:
    """Basename of *path* with every trace suffix stripped."""
    stem = os.path.basename(path)
    for suffix in (".gz", ".rbt", ".cbp", ".txt"):
        if stem.lower().endswith(suffix):
            stem = stem[: -len(suffix)]
    return stem or "trace"


def downsample(
    records: List[BranchRecord], window: Optional[int], offset: int = 0
) -> Tuple[List[BranchRecord], int]:
    """Cut ``[offset, offset+window)`` out of *records*.

    Returns ``(slice, applied_offset)``; a ``window`` of ``None`` (or one
    at least as long as the trace) keeps everything.
    """
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    if window is not None and window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if offset >= len(records):
        raise ValueError(
            f"offset {offset} is past the end of the trace ({len(records)} records)"
        )
    if window is None or offset + window >= len(records):
        return records[offset:], offset
    return records[offset: offset + window], offset
