"""Naming and lookup for trace workloads.

Trace workloads are addressed as ``trace:<name-or-path>`` everywhere a
suite workload name is accepted (``repro run``, ``repro trace``, the
harness matrix, experiment drivers):

* ``trace:h2p_loop`` — a *registered* mini-trace: ``<name>.rbt.gz`` or
  ``<name>.cbp.gz`` found in the trace directory (``tests/traces/`` in a
  checkout, overridable via ``REPRO_TRACE_DIR``);
* ``trace:path/to/file.rbt.gz`` — any trace file on disk, native or
  CBP-style text.

Because a trace file's *content* defines the simulation, cache identity
comes from a digest of the bytes (:func:`trace_content_digest`) — the
harness folds it into the memo/cache key so editing a trace in place can
never serve stale results.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
from typing import Dict, Optional

from repro.workloads.trace.format import load_branch_trace
from repro.workloads.trace.replay import TraceReplayWorkload, build_trace_workload

TRACE_PREFIX = "trace:"

ENV_TRACE_DIR = "REPRO_TRACE_DIR"

#: suffixes the trace directory scan registers (native and CBP-style text)
REGISTERED_SUFFIXES = (".rbt.gz", ".cbp.gz")


def is_trace_name(name: object) -> bool:
    """Is *name* a ``trace:``-addressed workload?"""
    return isinstance(name, str) and name.startswith(TRACE_PREFIX)


def trace_dir() -> Optional[pathlib.Path]:
    """Directory holding the registered mini-traces, if one exists."""
    env = os.environ.get(ENV_TRACE_DIR)
    if env:
        path = pathlib.Path(env)
        return path if path.is_dir() else None
    here = pathlib.Path(__file__).resolve()
    candidates = []
    if len(here.parents) >= 5:
        candidates.append(here.parents[4] / "tests" / "traces")
    candidates.append(pathlib.Path.cwd() / "tests" / "traces")
    for candidate in candidates:
        if candidate.is_dir():
            return candidate
    return None


def registered_traces() -> Dict[str, str]:
    """``{name: path}`` of the committed mini-traces."""
    directory = trace_dir()
    if directory is None:
        return {}
    out: Dict[str, str] = {}
    for entry in sorted(directory.iterdir()):
        for suffix in REGISTERED_SUFFIXES:
            if entry.name.endswith(suffix):
                out.setdefault(entry.name[: -len(suffix)], str(entry))
                break
    return out


def trace_workload_names() -> list:
    """Addressable names of all registered traces (``trace:<name>``)."""
    return [TRACE_PREFIX + name for name in registered_traces()]


def resolve_trace_path(name: str) -> str:
    """Map a ``trace:`` workload name to a trace file path."""
    ref = name[len(TRACE_PREFIX):] if is_trace_name(name) else name
    if not ref:
        raise KeyError("empty trace reference; use trace:<name> or trace:<path>")
    registered = registered_traces()
    if ref in registered:
        return registered[ref]
    if os.path.exists(ref):
        return ref
    known = ", ".join(sorted(registered)) or "none found"
    raise KeyError(
        f"unknown trace {ref!r}: not a registered mini-trace ({known}) "
        f"and no such file"
    )


def trace_content_digest(path: str) -> str:
    """Stable digest of a trace file's bytes (cache-key component)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()[:16]


def load_trace_workload(name: str) -> TraceReplayWorkload:
    """Load and reconstruct the trace workload addressed by *name*."""
    path = resolve_trace_path(name)
    meta, records = load_branch_trace(path)
    canonical = TRACE_PREFIX + (
        name[len(TRACE_PREFIX):] if is_trace_name(name) else name
    )
    return build_trace_workload(meta, records, name=canonical)
