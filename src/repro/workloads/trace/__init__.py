"""Trace-driven workloads: ingest real branch traces and replay them.

The synthetic suite reproduces the *shapes* of the paper's figures; this
package opens the scenario space of real workloads by ingesting branch
traces (the native ``.rbt.gz`` container or CBP-style text dumps),
characterizing their H2P statistics, and reconstructing engine-runnable
workloads from them.  See ``docs/workloads.md`` ("Trace-driven
workloads") for the format specification and converter workflow.
"""

from repro.workloads.trace.format import (
    MAGIC,
    NATIVE_SUFFIXES,
    RECORD_BYTES,
    TEXT_SUFFIXES,
    TRACE_SCHEMA_VERSION,
    BranchRecord,
    TraceFormatError,
    TraceMeta,
    downsample,
    load_branch_trace,
    read_cbp_text,
    read_trace,
    trace_stem,
    write_trace,
)
from repro.workloads.trace.registry import (
    TRACE_PREFIX,
    is_trace_name,
    load_trace_workload,
    registered_traces,
    resolve_trace_path,
    trace_content_digest,
    trace_workload_names,
)
from repro.workloads.trace.replay import (
    DEFAULT_MAX_STATIC,
    TraceOutcomes,
    TraceReplayWorkload,
    build_trace_workload,
    recommended_acb_scale,
)
from repro.workloads.trace.stats import (
    H2P_MIN_SHARE,
    H2P_TOP_K,
    PcProfile,
    TraceSummary,
    misprediction_concentration,
    replay_tage,
    summarize,
)

__all__ = [
    "MAGIC",
    "NATIVE_SUFFIXES",
    "RECORD_BYTES",
    "TEXT_SUFFIXES",
    "TRACE_SCHEMA_VERSION",
    "BranchRecord",
    "TraceFormatError",
    "TraceMeta",
    "downsample",
    "load_branch_trace",
    "read_cbp_text",
    "read_trace",
    "trace_stem",
    "write_trace",
    "TRACE_PREFIX",
    "is_trace_name",
    "load_trace_workload",
    "registered_traces",
    "resolve_trace_path",
    "trace_content_digest",
    "trace_workload_names",
    "DEFAULT_MAX_STATIC",
    "TraceOutcomes",
    "TraceReplayWorkload",
    "build_trace_workload",
    "recommended_acb_scale",
    "H2P_MIN_SHARE",
    "H2P_TOP_K",
    "PcProfile",
    "TraceSummary",
    "misprediction_concentration",
    "replay_tage",
    "summarize",
]
