"""Trace characterization: the H2P statistics of an ingested trace.

"Branch Prediction Is Not a Solved Problem" (PAPERS.md) measures that in
real workloads a *handful of static branches* — the hard-to-predict (H2P)
set — produce the overwhelming majority of TAGE mispredictions.  This
module computes exactly that profile for a branch trace by replaying it
through the repository's own :class:`~repro.branch.tage.TagePredictor`
(trace order, non-speculative history), and it is the acceptance gate for
ingest: a converted trace that does not concentrate its mispredictions the
way the paper's measurements do is not exercising the ACB problem space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.branch.tage import TagePredictor
from repro.workloads.trace.format import BranchRecord

#: the H2P concentration the acceptance check asserts: the hottest
#: ``H2P_TOP_K`` static branches must own at least ``H2P_MIN_SHARE`` of all
#: TAGE mispredictions (cf. the paper's 64-PC coverage measurements).
H2P_TOP_K = 32
H2P_MIN_SHARE = 0.80


@dataclass
class PcProfile:
    """Per-static-branch replay profile."""

    executed: int = 0
    taken: int = 0
    mispredicted: int = 0

    @property
    def mispred_rate(self) -> float:
        return self.mispredicted / self.executed if self.executed else 0.0


@dataclass
class TraceSummary:
    """Summary statistics printed by the converter and asserted in tests."""

    records: int
    static_branches: int
    taken_rate: float
    tage_mispredicts: int
    #: mispredictions per 1000 branch events under TAGE
    tage_mpkb: float
    #: fraction of TAGE mispredictions owned by the top-K static branches
    top_k: int
    top_k_share: float
    #: (pc, executed, mispredicted) rows for the hottest misprediction PCs
    hottest: List[Tuple[int, int, int]]

    @property
    def h2p_profile_ok(self) -> bool:
        """Does the trace exhibit the paper's H2P concentration?"""
        return self.top_k_share >= H2P_MIN_SHARE

    def format(self) -> str:
        lines = [
            f"records          {self.records}",
            f"static branches  {self.static_branches}",
            f"taken rate       {self.taken_rate:.3f}",
            f"TAGE mispredicts {self.tage_mispredicts} "
            f"({self.tage_mpkb:.1f} per kilo-branch)",
            f"top-{self.top_k} share     {self.top_k_share:.1%} of mispredictions "
            f"({'H2P profile ok' if self.h2p_profile_ok else 'below H2P profile'})",
            "hottest mispredicting branches:",
        ]
        for pc, executed, mispredicted in self.hottest[:8]:
            lines.append(
                f"  pc=0x{pc:x}  executed={executed}  mispred={mispredicted} "
                f"({mispredicted / max(1, executed):.1%})"
            )
        return "\n".join(lines)


def replay_tage(records: Sequence[BranchRecord]) -> Dict[int, PcProfile]:
    """Replay *records* through a fresh TAGE, non-speculatively.

    Standard trace-driven predictor methodology: predict, train, then push
    the *actual* outcome into the global history (no wrong-path history to
    repair because nothing speculates past a trace event).
    """
    tage = TagePredictor()
    profiles: Dict[int, PcProfile] = {}
    for pc, taken, _target in records:
        profile = profiles.get(pc)
        if profile is None:
            profile = profiles[pc] = PcProfile()
        prediction = tage.predict(pc)
        mispredicted = prediction.taken != taken
        tage.update(pc, taken, prediction.meta, mispredicted)
        tage.push_outcome(pc, taken)
        profile.executed += 1
        if taken:
            profile.taken += 1
        if mispredicted:
            profile.mispredicted += 1
    return profiles


def misprediction_concentration(
    profiles: Dict[int, PcProfile], top_k: int = H2P_TOP_K
) -> Tuple[float, List[Tuple[int, int, int]]]:
    """Share of mispredictions owned by the *top_k* hottest PCs.

    Returns ``(share, rows)`` with rows ``(pc, executed, mispredicted)``
    sorted hottest-first.  A trace with zero mispredictions has share 1.0
    (vacuously concentrated).
    """
    ranked = sorted(
        profiles.items(), key=lambda kv: (kv[1].mispredicted, kv[0]), reverse=True
    )
    total = sum(p.mispredicted for _, p in ranked)
    top = sum(p.mispredicted for _, p in ranked[:top_k])
    share = top / total if total else 1.0
    rows = [(pc, p.executed, p.mispredicted) for pc, p in ranked]
    return share, rows


def summarize(records: Sequence[BranchRecord], top_k: int = H2P_TOP_K) -> TraceSummary:
    """Full characterization of a branch-event sequence."""
    profiles = replay_tage(records)
    share, rows = misprediction_concentration(profiles, top_k)
    taken = sum(p.taken for p in profiles.values())
    mispredicts = sum(p.mispredicted for p in profiles.values())
    count = len(records)
    return TraceSummary(
        records=count,
        static_branches=len(profiles),
        taken_rate=taken / count if count else 0.0,
        tage_mispredicts=mispredicts,
        tage_mpkb=1000.0 * mispredicts / count if count else 0.0,
        top_k=top_k,
        top_k_share=share,
        hottest=rows[:top_k],
    )
