"""Trace replay: rebuild an engine-runnable workload from a branch trace.

The cycle engine executes a static :class:`~repro.program.Program` whose
conditional branches draw outcomes from behaviours — it cannot follow a
trace file directly.  This module closes the gap by *reconstructing* a
program from the trace:

* every static branch in the trace becomes one **block**: filler micro-ops
  (the instructions the trace elided), a compare, and the branch itself;
* successor edges come from the trace — the next event after ``(pc, taken)``
  tells us which block a direction leads to.  When both directions of a
  branch lead to the same next branch the block is emitted as a Type-1
  hammock (branch over a small body to a join), which is exactly the shape
  the ACB learner predicates; otherwise it is a diamond whose arms jump to
  their respective successor blocks;
* each static branch gets a :class:`TraceOutcomes` behaviour replaying its
  recorded outcome subsequence (wrapping at the end, in step with the
  last-event → first-event successor edge, so the window loops).

Because successor edges and outcome sequences both come from the same
trace, a *consistent* trace (every ``(pc, direction)`` always followed by
the same next branch — true of any trace captured from real control flow)
replays with exactly the recorded interleaving: per-PC outcome sequences,
execution frequencies, and global branch order are all preserved.  Traces
with inconsistent edges (e.g. direction-only text dumps that elided
indirect jumps) take the majority edge; the divergence count is reported
on the workload.

Recorded PCs survive as block identities: the engine's dense program PCs
are mapped back through :attr:`TraceReplayWorkload.pc_map`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.program.builder import ProgramBuilder
from repro.workloads.behaviors import BranchBehavior, Strided, WorkloadState
from repro.workloads.trace.format import (
    AVG_UOPS_PER_EVENT,
    BranchRecord,
    TraceMeta,
    recommended_acb_scale,
)
from repro.workloads.workload import Workload

__all__ = [
    "AVG_UOPS_PER_EVENT",
    "DEFAULT_MAX_STATIC",
    "TraceOutcomes",
    "TraceReplayWorkload",
    "build_trace_workload",
    "recommended_acb_scale",
]

#: static-branch cap: traces with more distinct PCs keep the hottest ones
#: (events at dropped PCs are filtered out, successors re-chained).
DEFAULT_MAX_STATIC = 512

_MASK = (1 << 63) - 1


def _pc_hash(pc: int) -> int:
    h = (pc * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03) & _MASK
    h ^= h >> 29
    return h


class TraceOutcomes(BranchBehavior):
    """Replays a fixed outcome sequence, wrapping at the end.

    The cursor lives in ``WorkloadState.vars`` so ACB region rewinds (which
    snapshot/restore the functional state) replay the same outcomes after a
    divergence — replay stays deterministic under predication.
    """

    def __init__(self, name: str, outcomes: Sequence[bool]):
        super().__init__(name)
        if not outcomes:
            raise ValueError(f"behaviour {name!r} needs at least one outcome")
        self.outcomes = tuple(bool(o) for o in outcomes)

    def outcome(self, st: WorkloadState) -> bool:
        (idx,) = st.vars.get(self.name, (0,))
        st.vars[self.name] = ((idx + 1) % len(self.outcomes),)
        return self.outcomes[idx]


@dataclass
class TraceReplayWorkload(Workload):
    """A :class:`Workload` reconstructed from a branch trace."""

    meta: Optional[TraceMeta] = None
    #: program branch pc -> recorded (trace) pc
    pc_map: Dict[int, int] = field(default_factory=dict)
    #: events whose recorded successor lost the majority vote for its edge
    inconsistent_edges: int = 0
    #: distinct static PCs dropped by the ``max_static`` cap
    dropped_static: int = 0

    @property
    def acb_scale(self) -> int:
        """ACB window-reduction scale the harness should run this with."""
        return self.meta.acb_scale if self.meta is not None else 10

    @property
    def recorded_pcs(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.pc_map.values())))


# ----------------------------------------------------------------------
# trace -> CFG
# ----------------------------------------------------------------------
def _filter_hottest(
    records: Sequence[BranchRecord], max_static: int
) -> Tuple[List[BranchRecord], int]:
    """Keep only events at the *max_static* most frequent PCs."""
    counts: Dict[int, int] = {}
    for rec in records:
        counts[rec.pc] = counts.get(rec.pc, 0) + 1
    if len(counts) <= max_static:
        return list(records), 0
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    kept = {pc for pc, _ in ranked[:max_static]}
    filtered = [rec for rec in records if rec.pc in kept]
    return filtered, len(counts) - max_static


def _majority_edges(
    records: Sequence[BranchRecord],
) -> Tuple[Dict[Tuple[int, bool], int], int]:
    """Successor block per ``(pc, direction)`` by majority vote.

    The successor of event *i* is the PC of event *i+1*; the final event
    wraps to the first so the replayed window forms a closed loop.
    """
    votes: Dict[Tuple[int, bool], Dict[int, int]] = {}
    count = len(records)
    for i, rec in enumerate(records):
        succ = records[(i + 1) % count].pc
        slot = votes.setdefault((rec.pc, rec.taken), {})
        slot[succ] = slot.get(succ, 0) + 1
    edges: Dict[Tuple[int, bool], int] = {}
    inconsistent = 0
    for key, slot in votes.items():
        winner = max(slot.items(), key=lambda kv: (kv[1], -kv[0]))[0]
        edges[key] = winner
        inconsistent += sum(n for succ, n in slot.items() if succ != winner)
    return edges, inconsistent


def build_trace_workload(
    meta: TraceMeta,
    records: Sequence[BranchRecord],
    name: Optional[str] = None,
    max_static: int = DEFAULT_MAX_STATIC,
) -> TraceReplayWorkload:
    """Reconstruct a runnable workload from *records* (see module docs)."""
    if not records:
        raise ValueError(f"trace {meta.name!r} is empty — nothing to replay")
    records, dropped = _filter_hottest(records, max_static)
    edges, inconsistent = _majority_edges(records)

    outcomes: Dict[int, List[bool]] = {}
    for rec in records:
        outcomes.setdefault(rec.pc, []).append(rec.taken)

    behaviors: Dict[str, object] = {}
    builder = ProgramBuilder(name or f"trace:{meta.name}")
    entry = records[0].pc
    # entry block first (execution starts at program pc 0), the rest in
    # recorded-PC order for a deterministic, diffable layout.
    order = [entry] + [pc for pc in sorted(outcomes) if pc != entry]

    branch_pcs: Dict[int, int] = {}  # recorded pc -> program branch pc
    for pc in order:
        h = _pc_hash(pc)
        bname = f"tr_{pc:x}"
        behaviors[bname] = TraceOutcomes(bname, outcomes[pc])
        taken_succ = edges.get((pc, True), pc)
        nt_succ = edges.get((pc, False), pc)

        builder.label(f"blk_{pc:x}")
        # filler: the non-branch instructions the trace elided, on the
        # synthetic suite's register conventions (serial chain in R1,
        # independent ILP in R8-R11, memory value in R4).
        builder.alu(dst=1, srcs=(1,), note=f"{bname}.chain")
        for i in range(1 + h % 3):
            reg = 8 + (h >> (4 * i)) % 4
            builder.alu(dst=reg, srcs=(reg,), note=f"{bname}.ilp{i}")
        if h % 4 == 0:
            mname = f"{bname}_mem"
            behaviors[mname] = Strided(
                mname, base=(1 + h % 127) << 20, stride=64, span=1 << 14
            )
            builder.load(dst=4, srcs=(3,), behavior=mname, note=f"{bname}.load")
        builder.compare(srcs=(1,), note=f"{bname}.cmp")

        if taken_succ == nt_succ:
            # both directions reach the same next branch: a Type-1 hammock
            # whose body stands in for the fall-through code the taken
            # direction skips.
            branch_pcs[pc] = builder.cond_branch(
                f"join_{pc:x}", behavior=bname, note=f"{bname}.branch"
            )
            body = 2 + (h >> 8) % 4
            builder.alu(dst=2, srcs=(1,), note=f"{bname}.body0")
            for i in range(1, body):
                builder.alu(dst=2, srcs=(2,), note=f"{bname}.body{i}")
            builder.label(f"join_{pc:x}")
            builder.alu(dst=3, srcs=(2,), note=f"{bname}.join")
            builder.jump(f"blk_{taken_succ:x}", note=f"{bname}.next")
        else:
            # directions diverge to different branches: a diamond whose
            # arms leave for their respective successor blocks.
            branch_pcs[pc] = builder.cond_branch(
                f"tarm_{pc:x}", behavior=bname, note=f"{bname}.branch"
            )
            builder.alu(dst=2, srcs=(1,), note=f"{bname}.ntarm")
            builder.jump(f"blk_{nt_succ:x}", note=f"{bname}.ntnext")
            builder.label(f"tarm_{pc:x}")
            builder.alu(dst=5, srcs=(1,), note=f"{bname}.tarm")
            builder.jump(f"blk_{taken_succ:x}", note=f"{bname}.tnext")

    workload = TraceReplayWorkload(
        name=name or f"trace:{meta.name}",
        category="TRACE",
        program=builder.build(),
        behaviors=behaviors,
        seed=1,
        description=(
            f"replay of {meta.records} branch events, "
            f"{len(outcomes)} static branches"
            + (f" (from {meta.source})" if meta.source else "")
        ),
        paper_tag="trace",
        meta=meta,
        pc_map={prog_pc: pc for pc, prog_pc in branch_pcs.items()},
        inconsistent_edges=inconsistent,
        dropped_static=dropped,
    )
    return workload
