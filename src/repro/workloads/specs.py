"""Workload specification dataclasses.

A :class:`WorkloadSpec` is a declarative description of a synthetic kernel;
:mod:`repro.workloads.generator` turns it into a program + behaviours.  The
vocabulary is chosen so each phenomenon the paper analyzes has a dedicated
knob (see DESIGN.md §2's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class HammockSpec:
    """One conditional-branch hammock inside the kernel loop.

    Parameters
    ----------
    shape:
        ``"if"`` (Type-1), ``"if_else"`` (Type-2), ``"type3"`` (Type-3
        layout with the taken block placed after the join), ``"nested"``
        (Type-1 with an inner predictable hammock), ``"nested_else"``
        (Type-2 whose NT arm contains an inner hammock — an asymmetric
        nested region), ``"multi_exit"`` (the NT body can escape to a
        farther join — the multiple-reconvergence-point pattern DMP's
        compiler handles, Fig. 8 B1), ``"loop_body"`` (the NT arm contains
        an inner counted loop, so the dynamic path to the join exceeds any
        static scan budget — a Type-3+ shape only a dynamic merge-point
        learner can accept), or ``"multi_exit_far"`` (the branch targets a
        far label past the local join and the NT path falls through a long
        straight-line gap to reach it — reconvergence farther than the
        static scan limit).
    taken_len / nt_len:
        Instructions on each side (the T and N of Equation 1).
    p:
        Taken probability (for ``kind="bernoulli"``).
    kind:
        ``"bernoulli"`` (hard-to-predict), ``"periodic"`` (predictable), or
        ``"phased"`` (p changes between program phases).
    followers:
        Number of perfectly correlated follower branches after the join —
        the Figure 2(b) pairs whose accuracy predication destroys.  They
        are emitted as backward branches so no predication scheme can cover
        them.
    body_feeds_load:
        The body produces the address of a long-latency load consumed by
        the loop-carried chain — the Figure 2(c) critical-load pattern.
    store_in_body:
        Put a store inside the body (exercises false-path store
        invalidation, and disqualifies the hammock for DHP).
    shared_store:
        With ``store_in_body``, both arms store through *one* shared address
        stream, so which arm executes decides the final memory image at the
        shared locations — the pattern differential validation leans on to
        expose false-path stores leaking to memory.
    carry_in_body:
        Each arm ends by folding its live-out into R1, the loop-carried
        serial chain — a loop-carried dependence *through* the predicated
        arm, so register transparency must hand the old R1 through whenever
        the arm is predicated false.
    body_op:
        ``"alu"`` or ``"mul"``: ``"mul"`` makes stalling the body costlier,
        favouring DMP's eager execution (Fig. 8 B2).
    escape_p:
        For ``multi_exit``: probability the body escapes to the far join.
    """

    shape: str = "if"
    taken_len: int = 0
    nt_len: int = 4
    p: float = 0.4
    kind: str = "bernoulli"
    pattern: Tuple[bool, ...] = (True, True, False)
    phases: Tuple[Tuple[int, float], ...] = ((4000, 0.45), (4000, 0.02))
    p_stay: float = 0.9  # for kind="markov": burst persistence
    followers: int = 0
    #: span of the followers' compare-source load: followers resolving late
    #: flush more in-flight work, which is what makes corrupting their
    #: prediction (Section II-C2) expensive.
    follower_slow_kb: int = 256
    body_feeds_load: bool = False
    store_in_body: bool = False
    shared_store: bool = False
    carry_in_body: bool = False
    #: feed the branch compare from a long-latency load: the branch resolves
    #: slowly, so stalling its body (predication) hurts while speculation
    #: sails through — the classic predication-hostile pattern (Fig. 2c,
    #: categories C/E).
    slow_source: bool = False
    #: span of the slow-source load's address stream (controls how late the
    #: branch resolves and hence how hostile predication is).
    slow_span_kb: int = 4096
    #: route the loop-carried chain through the region's live-out: with
    #: predication (or select micro-ops) the whole loop then waits for the
    #: branch to resolve, while speculation runs ahead — combined with
    #: ``slow_source`` this is the Figure 2(c) pathology in loop-carried
    #: form (categories C and E).
    join_feeds_chain: bool = False
    body_op: str = "alu"
    escape_p: float = 0.15
    #: distinct registers the body writes (select-uop pressure for DMP;
    #: the Fig. 10 allocation-stall pattern needs several live-outs).
    live_outs: int = 1
    #: for ``loop_body``: trip count of the counted loop inside the NT arm
    #: (sets how far the dynamic path overruns the static scan limit).
    arm_trips: int = 12
    #: for ``multi_exit_far``: straight-line instructions between the local
    #: join and the far reconvergence point the branch targets.
    far_gap: int = 48

    def __post_init__(self):
        if self.shape not in (
            "if", "if_else", "type3", "nested", "nested_else", "multi_exit",
            "loop_body", "multi_exit_far",
        ):
            raise ValueError(f"unknown hammock shape {self.shape!r}")
        if self.kind not in ("bernoulli", "periodic", "phased", "markov"):
            raise ValueError(f"unknown branch kind {self.kind!r}")


@dataclass(frozen=True)
class WorkloadSpec:
    """Full description of one synthetic workload."""

    name: str
    category: str
    seed: int = 1
    paper_tag: str = ""
    hammocks: Tuple[HammockSpec, ...] = (HammockSpec(),)
    ilp: int = 4                 # independent filler ALU ops per iteration
    chain: int = 2               # serial loop-carried chain ops per iteration
    memory: str = "strided"      # "none" | "strided" | "random" | "chase"
    mem_span_kb: int = 16
    mem_ops: int = 1
    inner_loop: Optional[Tuple[int, int]] = None   # (trips, jitter)
    #: shift applied to every hammock's p for the *training* input used by
    #: DMP's profiling pass — the train/test input mismatch of Section II-B.
    train_shift: float = 0.0
    description: str = field(default="", compare=False)

    def __post_init__(self):
        if self.memory not in ("none", "strided", "random", "chase"):
            raise ValueError(f"unknown memory pattern {self.memory!r}")
        if not self.hammocks:
            raise ValueError("a workload needs at least one hammock")
