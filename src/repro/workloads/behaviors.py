"""Stochastic processes that drive synthetic workloads.

A workload couples a static program with *behaviours*: small deterministic
state machines that decide conditional-branch outcomes and memory addresses
during functional execution.  The paper's workloads are proprietary traces;
behaviours let us synthesize programs whose branches exhibit the specific
phenomena the paper analyzes — pure-noise hard-to-predict branches,
perfectly correlated branch pairs (Fig. 2b), loop trip counts, phase
changes, and LLC-missing address streams (Fig. 2c).

Everything is seeded and snapshot-able: the functional executor must be able
to rewind to the start of a predicated region when an ACB instance diverges,
so :class:`WorkloadState` keeps its entire mutable state in cheaply copyable
scalars.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

_MASK64 = (1 << 64) - 1


class WorkloadState:
    """Mutable functional-execution state shared by all behaviours.

    The random stream is a xorshift64* generator so a snapshot is a single
    integer rather than a Mersenne-Twister state vector — predicated regions
    snapshot this object on every dynamic instance.
    """

    def __init__(self, seed: int):
        self._s = (seed * 2685821657736338717 + 1) & _MASK64 or 0x9E3779B97F4A7C15
        #: last resolved outcome per branch behaviour, for correlation.
        self.last: Dict[str, bool] = {}
        #: per-behaviour scalar state; values must stay immutable.
        self.vars: Dict[str, Tuple[int, ...]] = {}
        #: functional (correct-path) instructions executed so far.
        self.instr_count = 0

    # -- random stream --------------------------------------------------
    def rand_u64(self) -> int:
        s = self._s
        s ^= (s >> 12) & _MASK64
        s ^= (s << 25) & _MASK64
        s ^= (s >> 27) & _MASK64
        self._s = s & _MASK64
        return (self._s * 2685821657736338717) & _MASK64

    def rand01(self) -> float:
        return self.rand_u64() / float(1 << 64)

    def randint(self, n: int) -> int:
        """Uniform integer in ``[0, n)``."""
        return self.rand_u64() % n

    # -- snapshot / restore ---------------------------------------------
    def snapshot(self) -> tuple:
        return (self._s, dict(self.last), dict(self.vars), self.instr_count)

    def restore(self, snap: tuple) -> None:
        self._s, last, variables, self.instr_count = snap
        self.last = dict(last)
        self.vars = dict(variables)


# ----------------------------------------------------------------------
# Branch behaviours
# ----------------------------------------------------------------------
class BranchBehavior:
    """Decides the outcome of one static conditional branch."""

    def __init__(self, name: str):
        self.name = name

    def outcome(self, st: WorkloadState) -> bool:
        raise NotImplementedError

    def resolve(self, st: WorkloadState) -> bool:
        """Compute the outcome and record it for correlated followers."""
        taken = self.outcome(st)
        st.last[self.name] = taken
        return taken


class Bernoulli(BranchBehavior):
    """Pure data-dependent noise: taken with probability *p*.

    This is the canonical hard-to-predict branch — no history-based
    predictor can beat ``max(p, 1-p)`` accuracy on it.
    """

    def __init__(self, name: str, p: float):
        super().__init__(name)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be a probability, got {p}")
        self.p = p

    def outcome(self, st: WorkloadState) -> bool:
        return st.rand01() < self.p


class Correlated(BranchBehavior):
    """Outcome equals the last outcome of behaviour *source* (Fig. 2b).

    With *agree* < 1 the correlation is imperfect.  A TAGE predictor learns
    this branch perfectly as long as the source branch appears in the global
    history — which is exactly what dynamic predication of the source branch
    destroys (Section II-C2, the omnetpp effect).
    """

    def __init__(self, name: str, source: str, agree: float = 1.0, invert: bool = False):
        super().__init__(name)
        self.source = source
        self.agree = agree
        self.invert = invert

    def outcome(self, st: WorkloadState) -> bool:
        base = st.last.get(self.source, False)
        if self.invert:
            base = not base
        if self.agree < 1.0 and st.rand01() >= self.agree:
            base = not base
        return base


class Periodic(BranchBehavior):
    """Deterministic repeating pattern — trivially predictable by TAGE."""

    def __init__(self, name: str, pattern: Tuple[bool, ...]):
        super().__init__(name)
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = tuple(bool(b) for b in pattern)

    def outcome(self, st: WorkloadState) -> bool:
        (idx,) = st.vars.get(self.name, (0,))
        st.vars[self.name] = ((idx + 1) % len(self.pattern),)
        return self.pattern[idx]


class LoopTrip(BranchBehavior):
    """Backward loop branch: taken ``trip - 1`` times, then exits.

    With *jitter* > 0 the trip count is re-drawn each time around
    ``trips ± jitter``, making the exit hard to predict — the loop category
    of the Section II characterization.
    """

    def __init__(self, name: str, trips: int, jitter: int = 0):
        super().__init__(name)
        if trips < 1:
            raise ValueError("trips must be >= 1")
        self.trips = trips
        self.jitter = jitter

    def _draw(self, st: WorkloadState) -> int:
        if self.jitter == 0:
            return self.trips
        lo = max(1, self.trips - self.jitter)
        return lo + st.randint(2 * self.jitter + 1)

    def outcome(self, st: WorkloadState) -> bool:
        count, cur = st.vars.get(self.name, (0, 0))
        if cur == 0:
            cur = self._draw(st)
        count += 1
        if count >= cur:
            st.vars[self.name] = (0, 0)
            return False  # exit the loop
        st.vars[self.name] = (count, cur)
        return True


class Markov(BranchBehavior):
    """Two-state Markov chain: bursty taken/not-taken runs.

    ``p_stay`` is the probability of remaining in the current state each
    resolution.  High values produce long correlated bursts — predictable
    by history inside a burst, mispredicted at every transition — the
    "streaky" branch profile common in client workloads.
    """

    def __init__(self, name: str, p_stay: float = 0.9):
        super().__init__(name)
        if not 0.0 < p_stay < 1.0:
            raise ValueError("p_stay must lie strictly between 0 and 1")
        self.p_stay = p_stay

    def outcome(self, st: WorkloadState) -> bool:
        (state,) = st.vars.get(self.name, (1,))
        if st.rand01() >= self.p_stay:
            state = 1 - state
        st.vars[self.name] = (state,)
        return bool(state)


class Phased(BranchBehavior):
    """Bernoulli whose *p* changes between program phases.

    ``phases`` is a list of ``(duration_in_resolutions, p)`` pairs, cycled.
    Used to exercise Dynamo's periodic re-learning (Section III-C).
    """

    def __init__(self, name: str, phases: Tuple[Tuple[int, float], ...]):
        super().__init__(name)
        if not phases:
            raise ValueError("phases must be non-empty")
        self.phases = tuple((int(n), float(p)) for n, p in phases)

    def outcome(self, st: WorkloadState) -> bool:
        idx, left = st.vars.get(self.name, (0, self.phases[0][0]))
        p = self.phases[idx][1]
        left -= 1
        if left <= 0:
            idx = (idx + 1) % len(self.phases)
            left = self.phases[idx][0]
        st.vars[self.name] = (idx, left)
        return st.rand01() < p


# ----------------------------------------------------------------------
# Memory behaviours
# ----------------------------------------------------------------------
class MemBehavior:
    """Produces the byte address of one static load or store."""

    def __init__(self, name: str):
        self.name = name

    def address(self, st: WorkloadState) -> int:
        raise NotImplementedError


class Strided(MemBehavior):
    """Sequential stream: cache-resident after warm-up."""

    def __init__(self, name: str, base: int, stride: int = 64, span: int = 1 << 14):
        super().__init__(name)
        self.base = base
        self.stride = stride
        self.span = span

    def address(self, st: WorkloadState) -> int:
        (k,) = st.vars.get(self.name, (0,))
        st.vars[self.name] = (k + 1,)
        return self.base + (k * self.stride) % self.span


class UniformRandom(MemBehavior):
    """Uniform random addresses over *span* bytes.

    Spans much larger than the LLC produce DRAM misses — the long-latency
    loads that shadow branch mispredictions in the soplex analysis
    (Section V-A) and that predication can delay (Fig. 2c).
    """

    def __init__(self, name: str, base: int, span: int):
        super().__init__(name)
        self.base = base
        self.span = span

    def address(self, st: WorkloadState) -> int:
        return self.base + (st.rand_u64() % self.span) & ~0x3F


def make_default_mem(pc: int) -> MemBehavior:
    """Private strided stream for loads/stores without an explicit behaviour."""
    return Strided(f"_default_mem_{pc}", base=(pc + 1) << 20, stride=64, span=1 << 12)


# ----------------------------------------------------------------------
BehaviorMap = Dict[str, object]


def resolve_branch(behaviors: BehaviorMap, name: Optional[str], st: WorkloadState) -> bool:
    """Resolve a branch outcome through the registry."""
    if name is None or name not in behaviors:
        raise KeyError(f"conditional branch without behaviour: {name!r}")
    behavior = behaviors[name]
    if not isinstance(behavior, BranchBehavior):
        raise TypeError(f"behaviour {name!r} is not a BranchBehavior")
    return behavior.resolve(st)
