"""Workload = static program + behaviours, and its functional executor.

The functional executor advances architectural control flow along the
*correct* path only, one instruction per :meth:`FunctionalExecutor.step`.
The timing simulator drives it from fetch: correct-path fetches step the
executor; wrong-path and predicated-false-path fetches do not.  Snapshots
support rewinding to the start of a predicated region when an ACB instance
diverges and must be refetched (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Optional, Tuple

from repro.program.program import Program
from repro.workloads.behaviors import (
    BranchBehavior,
    MemBehavior,
    WorkloadState,
    make_default_mem,
)

#: step-table row kinds (:meth:`Workload.step_rows`)
STEP_PLAIN = 0
STEP_COND = 1
STEP_JUMP = 2
STEP_MEM = 3


@dataclass
class Workload:
    """A runnable synthetic workload.

    Parameters
    ----------
    name, category:
        Identification; *category* matches the paper's Table III groups
        (``ISPEC``, ``FSPEC``, ``SPEC17``, ``SYSmark``, ``Client``,
        ``Server``).
    program:
        The static code.
    behaviors:
        Registry mapping behaviour names referenced by instructions to
        behaviour objects.
    seed:
        Seed of the functional random stream (the workload's "input set").
    paper_tag:
        Optional tag tying the workload to a named paper outlier or category
        letter (``lammps``, ``soplex``, ``omnetpp``, ``A``…``E``).
    """

    name: str
    category: str
    program: Program
    behaviors: Dict[str, object]
    seed: int = 1
    description: str = ""
    paper_tag: str = ""
    #: optional profiling input (different behaviour parameters) used by the
    #: DMP baseline's compiler pass — the train/test mismatch of Section II.
    train: Optional["Workload"] = None
    _mem_defaults: Dict[int, MemBehavior] = field(default_factory=dict, repr=False)
    #: lazily-built dense decode table (:meth:`step_rows`), shared by every
    #: executor over this workload — including all lanes of a pack.
    _step_rows: Optional[list] = field(default=None, repr=False)

    def mem_behavior(self, pc: int) -> MemBehavior:
        """Behaviour for the memory instruction at *pc* (default: strided)."""
        key = self.program[pc].behavior
        if key is not None and key in self.behaviors:
            behavior = self.behaviors[key]
            if not isinstance(behavior, MemBehavior):
                raise TypeError(f"behaviour {key!r} at pc={pc} is not a MemBehavior")
            return behavior
        if pc not in self._mem_defaults:
            self._mem_defaults[pc] = make_default_mem(pc)
        return self._mem_defaults[pc]

    def branch_behavior(self, pc: int) -> BranchBehavior:
        key = self.program[pc].behavior
        behavior = self.behaviors.get(key) if key else None
        if not isinstance(behavior, BranchBehavior):
            raise KeyError(f"conditional branch at pc={pc} has no branch behaviour")
        return behavior

    # -- structure-of-arrays step table ---------------------------------
    def step_rows(self) -> list:
        """Dense per-pc decode table for functional stepping.

        One slot per static instruction, filled on first execution of that
        pc: ``(kind, target, fallthrough, behavior)`` with *kind* one of
        :data:`STEP_PLAIN` / :data:`STEP_COND` / :data:`STEP_JUMP` /
        :data:`STEP_MEM`.  A flat list indexed by pc replaces the per-pc
        dict memos the executor used to keep, and because the table lives
        on the workload it is built once no matter how many executors (or
        lanes) run the program.  Rows are filled lazily so a misconfigured
        instruction that is never executed keeps raising only when reached,
        exactly as before.
        """
        if self._step_rows is None:
            self._step_rows = [None] * len(self.program.instructions)
        return self._step_rows

    def decode_step(self, pc: int) -> tuple:
        """Build the :meth:`step_rows` row for *pc*."""
        instr = self.program[pc]
        if instr.is_cond_branch:
            return (STEP_COND, instr.target, instr.fallthrough,
                    self.branch_behavior(pc))
        if instr.is_branch:
            return (STEP_JUMP, instr.target, 0, None)
        if instr.is_mem:
            return (STEP_MEM, 0, instr.fallthrough, self.mem_behavior(pc))
        return (STEP_PLAIN, 0, instr.fallthrough, None)


class StepResult(NamedTuple):
    """Functional outcome of one correct-path instruction.

    A ``NamedTuple`` rather than a frozen dataclass: one is created per
    simulated instruction, and tuple construction skips the per-field
    ``object.__setattr__`` a frozen dataclass pays.
    """

    taken: Optional[bool]     # branches only
    next_pc: int
    mem_addr: Optional[int]   # loads/stores only


class FunctionalExecutor:
    """Architectural (timing-free) execution along the correct path."""

    def __init__(self, workload: Workload, seed_offset: int = 0):
        self.workload = workload
        self.program = workload.program
        self.state = WorkloadState(workload.seed + seed_offset)
        self.next_pc = 0
        # dense per-pc decode rows, shared through the workload: one list
        # index replaces the instruction attribute tests and behaviour
        # registry lookups in the one-call-per-instruction hot path, and
        # every executor over this workload reuses the same filled rows.
        self._rows = workload.step_rows()

    @property
    def instr_count(self) -> int:
        """Correct-path instructions executed so far."""
        return self.state.instr_count

    def step(self, pc: int) -> StepResult:
        """Execute the instruction at *pc*, which must be the next correct PC."""
        return StepResult(*self.step_fast(pc))

    def step_fast(self, pc: int) -> tuple:
        """:meth:`step` returning a bare ``(taken, next_pc, mem_addr)``.

        The cycle engine calls this once per correct-path fetch and unpacks
        the tuple immediately, so it skips the StepResult construction.
        """
        if pc != self.next_pc:
            raise RuntimeError(
                f"functional stream out of sync: expected pc={self.next_pc}, got {pc}"
            )
        state = self.state
        row = self._rows[pc]
        if row is None:
            row = self.workload.decode_step(pc)
            self._rows[pc] = row
        kind, target, fallthrough, beh = row
        taken: Optional[bool] = None
        mem_addr: Optional[int] = None
        if kind == STEP_COND:
            taken = beh.resolve(state)
            nxt = target if taken else fallthrough
        elif kind == STEP_JUMP:
            taken = True
            nxt = target
        else:
            nxt = fallthrough
            if kind == STEP_MEM:
                mem_addr = beh.address(state)
        state.instr_count += 1
        self.next_pc = nxt
        return (taken, nxt, mem_addr)

    # -- rewind support ---------------------------------------------------
    def snapshot(self) -> Tuple[int, tuple]:
        return (self.next_pc, self.state.snapshot())

    def restore(self, snap: Tuple[int, tuple]) -> None:
        self.next_pc, state_snap = snap
        self.state.restore(state_snap)
