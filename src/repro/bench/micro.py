"""Per-pipeline-stage microbenchmark kernels.

Each factory builds a small closed-loop workload that concentrates dynamic
work in one pipeline stage, so a ``--compare`` delta localizes a slowdown
before reaching for cProfile: a regression confined to ``micro:fetch-branchy``
points at fetch/prediction, one in ``micro:issue-chain`` at the
scheduler/wakeup path, and so on.

The kernels are deliberately tiny and deterministic — they are *timing*
probes for the simulator itself, not paper workloads.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.program import ProgramBuilder
from repro.workloads import Bernoulli, Periodic, Workload


def fetch_branchy() -> Workload:
    """Dense, highly predictable branches: stresses fetch, the branch
    predictor lookup path, and BTB redirects."""
    b = ProgramBuilder("bench-fetch-branchy")
    b.label("top")
    for i in range(8):
        b.alu(dst=1 + i % 4, srcs=(1 + i % 4,))
        b.compare(srcs=(1 + i % 4,))
        b.cond_branch(f"skip{i}", behavior=f"pat{i}")
        b.alu(dst=5, srcs=(5,))
        b.label(f"skip{i}")
    b.jump("top")
    behaviors = {
        f"pat{i}": Periodic(f"pat{i}", (True, False, False, False))
        for i in range(8)
    }
    return Workload("bench-fetch-branchy", "bench", b.build(), behaviors, seed=11)


def issue_chain() -> Workload:
    """Long dependence chains plus independent filler: stresses allocate,
    the ready heap, wakeup, and completion."""
    b = ProgramBuilder("bench-issue-chain")
    b.label("top")
    for _ in range(4):
        b.alu(dst=1, srcs=(1,))
        b.mul(dst=2, srcs=(1, 2))
        b.alu(dst=3, srcs=(2,))
        for i in range(6):
            reg = 8 + i % 4
            b.alu(dst=reg, srcs=(reg,))
    b.jump("top")
    return Workload("bench-issue-chain", "bench", b.build(), {}, seed=13)


def memory_stream() -> Workload:
    """Load/store streams: stresses the LSQ (disambiguation, forwarding),
    address generation, and the cache hierarchy walk."""
    b = ProgramBuilder("bench-memory-stream")
    b.label("top")
    for i in range(4):
        b.load(dst=1 + i, srcs=(1 + i,))
        b.alu(dst=5, srcs=(1 + i, 5))
        b.store(srcs=(5,))
    b.jump("top")
    return Workload("bench-memory-stream", "bench", b.build(), {}, seed=17)


def predication_hammock() -> Workload:
    """A hard-to-predict IF-hammock: under the ACB configuration this
    stresses region open/close, body bookkeeping, and transparency rewiring."""
    b = ProgramBuilder("bench-predication-hammock")
    b.label("top")
    b.alu(dst=1, srcs=(1,))
    b.compare(srcs=(1,))
    b.cond_branch("skip", behavior="h2p")
    for i in range(3):
        b.alu(dst=2, srcs=(2 if i else 1,))
    b.label("skip")
    b.alu(dst=3, srcs=(2,))
    b.alu(dst=4, srcs=(4,))
    b.alu(dst=5, srcs=(5,))
    b.jump("top")
    return Workload(
        "bench-predication-hammock", "bench", b.build(),
        {"h2p": Bernoulli("h2p", 0.4)}, seed=7,
    )


#: name → factory for every ``micro:*`` bench target.
MICRO_WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "fetch-branchy": fetch_branchy,
    "issue-chain": issue_chain,
    "memory-stream": memory_stream,
    "predication-hammock": predication_hammock,
}
