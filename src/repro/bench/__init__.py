"""Performance benchmarking and regression tracking (``python -m repro bench``).

The simulator's own speed is a first-class artifact of this repository: the
paper's evaluation needs thousands of simulated windows, so every hot-loop
change must be *measurable* and *regression-proof*.  This package times
pinned simulation targets and emits a schema-versioned JSON report
(``BENCH_<tag>.json``) that later runs compare against.

Layout
------
* :mod:`repro.bench.targets` — the pinned target matrix: the Figure 6 smoke
  set (representative workloads × baseline/ACB), a per-scheme throughput
  sweep, and per-pipeline-stage microbenchmarks.
* :mod:`repro.bench.micro` — the synthetic stage-stressor kernels behind
  the ``micro:*`` targets.
* :mod:`repro.bench.runner` — timed execution (:func:`run_bench`) and the
  opt-in cProfile per-stage breakdown.
* :mod:`repro.bench.schema` — the report schema (:data:`SCHEMA_VERSION`)
  and :func:`validate_report`.
* :mod:`repro.bench.compare` — baseline comparison (:func:`compare_reports`)
  with per-group geomean speedups and a regression threshold.

See ``docs/performance.md`` for the workflow and the recorded optimization
history.
"""

from repro.bench.compare import CompareResult, compare_reports, format_compare
from repro.bench.runner import run_bench
from repro.bench.schema import SCHEMA_VERSION, validate_report
from repro.bench.targets import BenchTarget, bench_targets

__all__ = [
    "BenchTarget",
    "CompareResult",
    "SCHEMA_VERSION",
    "bench_targets",
    "compare_reports",
    "format_compare",
    "run_bench",
    "validate_report",
]
