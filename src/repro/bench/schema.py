"""Bench report schema and validation.

A report is plain JSON so other tooling (CI artifact diffing, plotting)
can consume it without this package.  ``schema_version`` gates evolution:
consumers must reject reports with a *newer* major version than they know.

Top level::

    {
      "schema": "repro-bench",
      "schema_version": 1,
      "tag": "baseline",            # free-form label (--tag)
      "quick": true,                # CI-sized matrix vs the full one
      "created": "2026-08-06T12:00:00Z",
      "python": "3.12.3",
      "platform": "Linux-...",
      "runs": [ <run>, ... ],       # one record per bench target
      "profile": { ... } | null     # cProfile breakdown (--profile only)
    }

Each run record::

    {
      "name": "fig6:lammps:acb",    # stable target name (compare key)
      "group": "fig6",              # fig6 | scheme | micro | trace
      "workload": "lammps",
      "config": "acb",
      "warmup": 16000, "measure": 12000,
      "wall_s": 0.71,               # wall-clock seconds for the whole run
      "cycles": 36256,              # simulated cycles (warmup + window)
      "uops": 48210,                # micro-ops fetched
      "instructions": 28000,        # architectural instructions executed
      "cycles_per_s": 51064.8,      # cycles / wall_s   (throughput metrics)
      "uops_per_s": 67900.0,
      "ipc": 0.754                  # measurement-window IPC (sanity anchor)
    }

Version 2 adds *matrix* run records (group ``"matrix"``): one record times
an end-to-end ``run_matrix`` invocation rather than a single core.  Matrix
records carry three extra keys::

    {
      ...,
      "cells": 8,                   # matrix cells simulated
      "cells_per_s": 6.5,           # cells / wall_s (matrix throughput)
      "lanes": 8                    # lane-pack width (0 = scalar dispatch)
    }

and their ``cycles``/``uops``/``instructions`` are sums over the matrix's
measurement windows.  The extra keys are optional per run record, so a v2
tool accepts v1 reports unchanged (and v1 baselines simply have no matrix
records to match).

The ``cycles``/``uops``/``instructions``/``ipc`` fields are *simulation*
results and must be machine-independent: two runs of the same tree on any
host agree exactly (the bit-identical-stats invariant).  Only ``wall_s``
and the derived ``*_per_s`` rates vary across machines.
"""

from __future__ import annotations

from typing import Any, Dict, List

SCHEMA_NAME = "repro-bench"
SCHEMA_VERSION = 2

_TOP_REQUIRED = {
    "schema": str,
    "schema_version": int,
    "tag": str,
    "quick": bool,
    "created": str,
    "python": str,
    "platform": str,
    "runs": list,
}

_NUMERIC = (int, float)

_RUN_REQUIRED = {
    "name": str,
    "group": str,
    "workload": str,
    "config": str,
    "warmup": int,
    "measure": int,
    "wall_s": _NUMERIC,
    "cycles": int,
    "uops": int,
    "instructions": int,
    "cycles_per_s": _NUMERIC,
    "uops_per_s": _NUMERIC,
    "ipc": _NUMERIC,
}

#: schema-v2 matrix-record keys; validated when present (v1 reports omit
#: them, which stays valid).
_RUN_OPTIONAL = {
    "cells": int,
    "cells_per_s": _NUMERIC,
    "lanes": int,
}


def validate_report(report: Any) -> List[str]:
    """Return a list of schema violations (empty when the report is valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return [f"report must be a JSON object, got {type(report).__name__}"]
    for key, expected in _TOP_REQUIRED.items():
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
        elif not isinstance(report[key], expected):
            problems.append(
                f"top-level {key!r} must be {expected}, "
                f"got {type(report[key]).__name__}"
            )
    if problems:
        return problems
    if report["schema"] != SCHEMA_NAME:
        problems.append(f"schema must be {SCHEMA_NAME!r}, got {report['schema']!r}")
    if report["schema_version"] > SCHEMA_VERSION:
        problems.append(
            f"schema_version {report['schema_version']} is newer than this "
            f"tool understands ({SCHEMA_VERSION})"
        )
    if not report["runs"]:
        problems.append("report contains no runs")
    seen = set()
    for i, run in enumerate(report["runs"]):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: must be an object")
            continue
        for key, expected in _RUN_REQUIRED.items():
            if key not in run:
                problems.append(f"{where}: missing key {key!r}")
            elif not isinstance(run[key], expected) or isinstance(run[key], bool):
                problems.append(
                    f"{where}: {key!r} has wrong type {type(run[key]).__name__}"
                )
        for key, expected in _RUN_OPTIONAL.items():
            if key in run and (
                not isinstance(run[key], expected) or isinstance(run[key], bool)
            ):
                problems.append(
                    f"{where}: {key!r} has wrong type {type(run[key]).__name__}"
                )
        name = run.get("name")
        if name in seen:
            problems.append(f"{where}: duplicate run name {name!r}")
        seen.add(name)
        wall = run.get("wall_s")
        if isinstance(wall, _NUMERIC) and not isinstance(wall, bool) and wall <= 0:
            problems.append(f"{where}: wall_s must be positive")
    return problems


def runs_by_name(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Index a validated report's runs by their stable target name."""
    return {run["name"]: run for run in report["runs"]}
