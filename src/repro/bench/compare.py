"""Baseline comparison: per-run and per-group cycles/sec deltas.

Runs are matched by their stable target name; the headline number is the
geometric mean of per-run ``cycles_per_s`` ratios (new / baseline), per
group and overall.  A ratio above 1.0 means the new tree is faster.

The regression gate is deliberately generous: wall-clock numbers move with
the host, so CI compares with a wide threshold (default 1.5×) and only
fails on an overall slowdown *past* it — enough headroom for runner noise,
tight enough to catch a real hot-loop regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.bench.schema import runs_by_name


def _geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


@dataclass
class CompareResult:
    """Outcome of comparing a new report against a baseline report."""

    #: (name, baseline cycles/s, new cycles/s, ratio new/baseline)
    rows: List[Tuple[str, float, float, float]] = field(default_factory=list)
    #: group → geomean ratio over that group's matched runs
    per_group: Dict[str, float] = field(default_factory=dict)
    #: geomean ratio over every matched run
    overall: float = 0.0
    #: target names present in only one of the two reports
    only_in_baseline: List[str] = field(default_factory=list)
    only_in_new: List[str] = field(default_factory=list)
    #: matched names whose simulation windows differ (rates not comparable)
    window_mismatch: List[str] = field(default_factory=list)

    def regressed(self, threshold: float) -> bool:
        """True when the new tree is more than *threshold*× slower overall."""
        return bool(self.rows) and self.overall < 1.0 / threshold


def compare_reports(baseline: Dict[str, Any], new: Dict[str, Any]) -> CompareResult:
    """Match runs by name and compute throughput ratios."""
    base_runs = runs_by_name(baseline)
    new_runs = runs_by_name(new)
    result = CompareResult()
    result.only_in_baseline = sorted(set(base_runs) - set(new_runs))
    result.only_in_new = sorted(set(new_runs) - set(base_runs))

    group_ratios: Dict[str, List[float]] = {}
    for name in sorted(set(base_runs) & set(new_runs)):
        old, cur = base_runs[name], new_runs[name]
        if (old["warmup"], old["measure"]) != (cur["warmup"], cur["measure"]):
            result.window_mismatch.append(name)
            continue
        ratio = cur["cycles_per_s"] / old["cycles_per_s"]
        result.rows.append((name, old["cycles_per_s"], cur["cycles_per_s"], ratio))
        group_ratios.setdefault(cur["group"], []).append(ratio)

    result.per_group = {g: _geomean(rs) for g, rs in sorted(group_ratios.items())}
    result.overall = _geomean([row[3] for row in result.rows])
    return result


def lanes_speedup(report: Dict[str, Any]) -> Dict[str, float]:
    """Lanes-vs-scalar matrix throughput ratios *within* one report.

    Matrix targets come in ``<prefix>:scalar`` / ``<prefix>:lanes`` pairs
    (e.g. ``matrix:fig6``); for every pair present, returns
    ``{prefix: lanes_cells_per_s / scalar_cells_per_s}``.  Unlike the
    baseline comparison this needs no second report — both runs sit in the
    same one, so the ratio is machine-noise-free by construction.
    """
    runs = runs_by_name(report)
    out: Dict[str, float] = {}
    for name, run in runs.items():
        if run.get("group") != "matrix" or not name.endswith(":lanes"):
            continue
        prefix = name[: -len(":lanes")]
        scalar = runs.get(prefix + ":scalar")
        if not scalar:
            continue
        lanes_rate = run.get("cells_per_s")
        scalar_rate = scalar.get("cells_per_s")
        if lanes_rate and scalar_rate:
            out[prefix] = lanes_rate / scalar_rate
    return out


def format_compare(result: CompareResult, baseline_tag: str = "baseline") -> str:
    """Human-readable comparison table."""
    lines = [
        f"{'target':36s} {'base c/s':>12s} {'new c/s':>12s} {'speedup':>8s}"
    ]
    for name, old, new, ratio in result.rows:
        lines.append(f"{name:36s} {old:12,.0f} {new:12,.0f} {ratio:7.2f}x")
    lines.append("")
    for group, ratio in result.per_group.items():
        lines.append(f"geomean [{group}]: {ratio:.2f}x")
    lines.append(f"geomean [overall vs {baseline_tag}]: {result.overall:.2f}x")
    for name in result.window_mismatch:
        lines.append(f"warning: {name}: simulation windows differ — skipped")
    if result.only_in_baseline:
        lines.append("only in baseline: " + ", ".join(result.only_in_baseline))
    if result.only_in_new:
        lines.append("only in new run: " + ", ".join(result.only_in_new))
    return "\n".join(lines)
