"""The pinned bench target matrix.

Four groups, chosen so a single report answers the questions we actually
ask of it:

* ``fig6`` — the Figure 6 smoke set (the 12-workload representative subset
  × baseline/ACB at the harness default windows): end-to-end throughput on
  the workloads every evaluation matrix is built from.  This is the group
  the repository's headline cycles/sec number comes from.
* ``scheme`` — one workload under each of the paper's seven comparison
  schemes: catches slowdowns confined to one scheme's machinery.
* ``micro`` — per-pipeline-stage stressors (:mod:`repro.bench.micro`):
  localizes a regression to fetch/issue/memory/predication before
  profiling.
* ``trace`` — a committed mini-trace replayed under baseline/ACB
  (:mod:`repro.workloads.trace`): times the trace-reconstruction path,
  whose programs are shaped by recorded control flow rather than the
  synthetic generator.
* ``frontier`` — one frontier workload under the dynamic-reconvergence
  and Bullseye backends (:mod:`repro.workloads.frontier`): times the
  merge-point learner's retired-stream scanning and the long-history
  predictor, neither of which the other groups exercise.
* ``matrix`` — end-to-end ``run_matrix`` over the fig6 cells, once under
  scalar dispatch and once under the batched lane engine
  (:mod:`repro.core.lanes`), reported as cells/sec: the number the lane
  work is accountable to, and the pair ``--compare`` derives its
  lanes-vs-scalar speedup line from.

``quick=True`` shrinks the matrix (fewer workloads, smaller windows) to a
CI-sized smoke run.  Target *names* are stable across quick and full modes
so ``--compare`` matches runs by name; the windows ride along in each run
record and the comparison warns when they differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.workloads import Workload

#: The paper's comparison points (Figure 6/8/9/11 configurations).
SCHEME_SWEEP = ("baseline", "oracle-bp", "acb", "dmp", "dmp-pbh", "dhp", "wish")

#: Workload the per-scheme sweep runs on (a named paper outlier with real
#: predication activity).
SCHEME_WORKLOAD = "lammps"


@dataclass(frozen=True)
class BenchTarget:
    """One timed simulation: a workload under a configuration and window."""

    name: str                 # stable identifier, e.g. ``fig6:lammps:acb``
    group: str                # fig6 | scheme | micro | trace | frontier | matrix
    workload: str             # suite name, or micro kernel name
    config: str               # scheme configuration (repro.harness.runner)
    warmup: int
    measure: int
    #: factory for non-suite workloads (micro kernels); ``None`` loads
    #: ``workload`` from the suite.
    factory: Optional[Callable[[], Workload]] = None
    #: matrix targets: when non-empty, the target times one end-to-end
    #: ``run_matrix`` over ``matrix_workloads × matrix_configs`` instead of
    #: a single core run; ``workload``/``config`` become summary labels.
    matrix_workloads: tuple = ()
    matrix_configs: tuple = ()
    #: lane width for matrix targets (0 = scalar dispatch).
    lanes: int = 0


def bench_targets(quick: bool = False) -> List[BenchTarget]:
    """The pinned target list for one bench invocation."""
    from repro.bench.micro import MICRO_WORKLOADS
    from repro.harness.runner import default_measure, default_warmup
    from repro.workloads import REPRESENTATIVE

    targets: List[BenchTarget] = []

    fig6_names = REPRESENTATIVE[:4] if quick else REPRESENTATIVE
    fig6_warmup = 3000 if quick else default_warmup()
    fig6_measure = 3000 if quick else default_measure()
    for name in fig6_names:
        for config in ("baseline", "acb"):
            targets.append(BenchTarget(
                name=f"fig6:{name}:{config}", group="fig6",
                workload=name, config=config,
                warmup=fig6_warmup, measure=fig6_measure,
            ))

    scheme_warmup, scheme_measure = (2000, 2000) if quick else (8000, 8000)
    for config in SCHEME_SWEEP:
        targets.append(BenchTarget(
            name=f"scheme:{SCHEME_WORKLOAD}:{config}", group="scheme",
            workload=SCHEME_WORKLOAD, config=config,
            warmup=scheme_warmup, measure=scheme_measure,
        ))

    from repro.workloads.trace import load_trace_workload, registered_traces

    if "h2p_loop" in registered_traces():
        trace_warmup, trace_measure = (2000, 2000) if quick else (8000, 8000)
        for config in ("baseline", "acb"):
            targets.append(BenchTarget(
                name=f"trace:h2p_loop:{config}", group="trace",
                workload="trace:h2p_loop", config=config,
                warmup=trace_warmup, measure=trace_measure,
                factory=lambda: load_trace_workload("trace:h2p_loop"),
            ))

    from repro.workloads.frontier import load_frontier_workload

    frontier_warmup, frontier_measure = (2000, 2000) if quick else (8000, 8000)
    for config in ("acb-dmp-reconv", "acb@bullseye"):
        targets.append(BenchTarget(
            name=f"frontier:frontier_far_merge:{config}", group="frontier",
            workload="frontier_far_merge", config=config,
            warmup=frontier_warmup, measure=frontier_measure,
            factory=lambda: load_frontier_workload("frontier_far_merge"),
        ))

    # end-to-end run_matrix throughput over the fig6 cells, scalar dispatch
    # vs the lane engine (repro.core.lanes) — the pair the lanes speedup
    # line in `repro bench --compare` is computed from.  jobs is pinned to
    # 1 inside the runner so this times the engine, not the worker pool.
    from repro.core.lanes import DEFAULT_LANES

    for mode, lanes in (("scalar", 0), ("lanes", DEFAULT_LANES)):
        targets.append(BenchTarget(
            name=f"matrix:fig6:{mode}", group="matrix",
            workload="representative", config="baseline+acb",
            warmup=fig6_warmup, measure=fig6_measure,
            matrix_workloads=tuple(fig6_names),
            matrix_configs=("baseline", "acb"),
            lanes=lanes,
        ))

    micro_warmup, micro_measure = (1000, 4000) if quick else (2000, 12000)
    for kernel, factory in MICRO_WORKLOADS.items():
        config = "acb" if kernel == "predication-hammock" else "baseline"
        targets.append(BenchTarget(
            name=f"micro:{kernel}", group="micro",
            workload=kernel, config=config,
            warmup=micro_warmup, measure=micro_measure,
            factory=factory,
        ))

    return targets
