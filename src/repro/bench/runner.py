"""Timed bench execution and the opt-in cProfile stage breakdown.

Each target is simulated in-process with a fresh :class:`~repro.core.Core`
(never through the result cache — the point is to *time* the simulator),
and the wall clock covers core construction plus the full warmup+measure
window.  Throughput is reported as simulated cycles and fetched micro-ops
per wall second; the simulation outputs themselves (cycles, instructions,
IPC) ride along so a report doubles as a coarse cross-machine sanity check.

``profile=True`` wraps the whole matrix in :mod:`cProfile` and attaches a
per-function breakdown (engine stages, predictor lookups, the memory
hierarchy, the functional executor) to the report — the first tool to reach
for when ``--compare`` shows a slowdown (see docs/performance.md).
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench.schema import SCHEMA_NAME, SCHEMA_VERSION
from repro.bench.targets import BenchTarget, bench_targets

#: Source files whose functions the profile breakdown keeps (everything the
#: hot loop can touch); the rest of the profile is aggregated as "other".
_PROFILE_FILES = (
    "core/engine.py",
    "isa/dyninst.py",
    "isa/instruction.py",
    "branch/",
    "memory/",
    "workloads/workload.py",
    "workloads/behaviors.py",
)


def _run_matrix_target(target: BenchTarget) -> Dict[str, Any]:
    """Time one end-to-end ``run_matrix`` invocation (group ``matrix``).

    Every caching layer is detached and the in-process memo cleared on
    both sides of the run, so each matrix target simulates all its cells
    from scratch — the scalar and lanes targets time identical work.
    ``jobs=1`` keeps the worker pool out of the measurement.
    """
    from repro.harness import cache as result_cache
    from repro.harness.parallel import RunRequest, run_matrix
    from repro.harness.runner import clear_memo

    requests = [
        RunRequest(workload, config,
                   warmup=target.warmup, measure=target.measure)
        for workload in target.matrix_workloads
        for config in target.matrix_configs
    ]
    saved_cache = result_cache.get_active_cache()
    saved_store = result_cache.get_active_store()
    result_cache.set_active_cache(None)
    result_cache.set_active_store(None)
    clear_memo()
    try:
        started = time.perf_counter()
        results = run_matrix(requests, jobs=1, lanes=target.lanes)
        wall = time.perf_counter() - started
    finally:
        clear_memo()
        result_cache.set_active_cache(saved_cache)
        result_cache.set_active_store(saved_store)

    cycles = sum(r.stats.cycles for r in results)
    uops = sum(r.stats.retired_uops for r in results)
    instructions = sum(r.stats.instructions for r in results)
    return {
        "name": target.name,
        "group": target.group,
        "workload": target.workload,
        "config": target.config,
        "warmup": target.warmup,
        "measure": target.measure,
        "wall_s": round(wall, 6),
        "cycles": cycles,
        "uops": uops,
        "instructions": instructions,
        "cycles_per_s": round(cycles / wall, 1),
        "uops_per_s": round(uops / wall, 1),
        "ipc": round(instructions / cycles if cycles else 0.0, 4),
        "cells": len(requests),
        "cells_per_s": round(len(requests) / wall, 3),
        "lanes": target.lanes,
    }


def _run_target(target: BenchTarget) -> Dict[str, Any]:
    from repro.core import SKYLAKE_LIKE, Core, scaled
    from repro.harness.runner import scheme_for, split_config
    from repro.workloads import load_suite

    if target.matrix_workloads:
        return _run_matrix_target(target)
    if target.factory is not None:
        workload = target.factory()
    else:
        (workload,) = load_suite([target.workload])
    scheme = scheme_for(workload, target.config)
    scheme_name, predictor = split_config(target.config)
    if scheme_name == "oracle-bp":
        predictor = "oracle"

    started = time.perf_counter()
    core = Core(workload, scaled(1, SKYLAKE_LIKE), scheme=scheme,
                predictor=predictor)
    stats = core.run_window(target.warmup, target.measure)
    wall = time.perf_counter() - started

    return {
        "name": target.name,
        "group": target.group,
        "workload": target.workload,
        "config": target.config,
        "warmup": target.warmup,
        "measure": target.measure,
        "wall_s": round(wall, 6),
        "cycles": core.cycle,
        "uops": core._seq,
        "instructions": core.func.instr_count,
        "cycles_per_s": round(core.cycle / wall, 1),
        "uops_per_s": round(core._seq / wall, 1),
        "ipc": round(stats.ipc, 4),
    }


def _profile_breakdown(profiler) -> Dict[str, Any]:
    """Aggregate a cProfile run into a JSON-friendly per-function table."""
    import pstats

    stats = pstats.Stats(profiler)
    rows: List[Dict[str, Any]] = []
    total = 0.0
    for (filename, _lineno, func), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        total += tottime
        norm = filename.replace("\\", "/")
        for marker in _PROFILE_FILES:
            if marker in norm:
                tail = norm.split("repro/", 1)[-1]
                rows.append({
                    "function": f"{tail}:{func}",
                    "calls": int(ncalls),
                    "tottime_s": round(tottime, 4),
                    "cumtime_s": round(cumtime, 4),
                })
                break
    rows.sort(key=lambda r: r["tottime_s"], reverse=True)
    accounted = sum(r["tottime_s"] for r in rows)
    return {
        "total_s": round(total, 4),
        "other_s": round(total - accounted, 4),
        "functions": rows[:40],
    }


def run_bench(
    quick: bool = False,
    tag: str = "local",
    groups: Optional[Sequence[str]] = None,
    profile: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the pinned target matrix and return a schema-valid report."""
    targets = bench_targets(quick=quick)
    if groups:
        wanted = set(groups)
        unknown = wanted - {t.group for t in targets}
        if unknown:
            raise ValueError(
                f"unknown bench group(s) {sorted(unknown)}; "
                f"have {sorted({t.group for t in targets})}"
            )
        targets = [t for t in targets if t.group in wanted]

    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    runs: List[Dict[str, Any]] = []
    for target in targets:
        record = _run_target(target)
        runs.append(record)
        if progress is not None:
            progress(
                f"{record['name']}: {record['wall_s']:.2f}s  "
                f"{record['cycles_per_s']:,.0f} cycles/s"
            )

    breakdown = None
    if profiler is not None:
        profiler.disable()
        breakdown = _profile_breakdown(profiler)

    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "tag": tag,
        "quick": quick,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "runs": runs,
        "profile": breakdown,
    }
