"""Background job queue: submitted matrices → ``run_matrix`` → the store.

A *job* is one submitted :class:`~repro.harness.parallel.RunRequest`
matrix.  The queue executes jobs one at a time on a worker thread — the
parallelism lives *inside* each job, which fans its cells out over the
shared process pool via :func:`~repro.harness.parallel.run_matrix` — and
reports per-cell progress events as chunks complete, so the HTTP layer
can stream them.

Every completed cell is written through to the experiment store under its
normalized config-hash ``run_id`` (idempotent), regardless of whether the
cell was freshly simulated or served from the memo / JSON cache / store —
so the durable database converges on the union of everything any client
ever ran.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness.parallel import (
    CellRecord,
    RunRequest,
    last_manifest,
    resolve_backend,
    run_matrix,
)
from repro.harness.runner import RunResult
from repro.service.store import ExperimentStore, run_id_for, utcnow

#: Job lifecycle.  queued → running → done | failed.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class JobCell:
    """One matrix cell and how the job satisfied it."""

    index: int
    request: RunRequest
    run_id: str
    source: Optional[str] = None   # run | memo | cache | store | dedup
    wall_time: float = 0.0
    #: lane-pack width the cell was simulated under (0 = scalar engine);
    #: recorded so stored results remain reproducible.
    lanes: int = 0
    #: distributed dispatch only: the worker that acked this cell.
    worker: Optional[str] = None
    result: Optional[RunResult] = None

    def summary(self) -> Dict[str, Any]:
        out = {
            "index": self.index,
            "run_id": self.run_id,
            "workload": self.request.workload_name,
            "config": self.request.config,
        }
        if self.source is not None:
            out["source"] = self.source
            out["wall_time"] = round(self.wall_time, 4)
            out["lanes"] = self.lanes
        if self.worker is not None:
            out["worker"] = self.worker
        return out


@dataclass
class Job:
    """One submitted matrix working its way through the queue."""

    job_id: str
    cells: List[JobCell]
    request: Dict[str, Any]
    #: requested lane width (None: server environment decides).
    lanes: Optional[int] = None
    #: "local": executed by this server's queue thread via ``run_matrix``;
    #: "distributed": cells are leased to pull-based workers over HTTP.
    backend: str = "local"
    status: str = "queued"
    error: Optional[str] = None
    submitted: str = field(default_factory=utcnow)
    started: Optional[str] = None
    finished: Optional[str] = None
    wall_time: float = 0.0
    events: List[Dict[str, Any]] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def done_cells(self) -> int:
        return sum(1 for c in self.cells if c.source is not None)

    @property
    def simulated(self) -> int:
        return sum(1 for c in self.cells if c.source == "run")

    @property
    def cache_hits(self) -> int:
        return sum(
            1 for c in self.cells
            if c.source in ("memo", "cache", "store", "dedup")
        )

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")

    def add_event(self, event: str, **payload: Any) -> None:
        with self._lock:
            self.events.append(
                {"seq": len(self.events) + 1, "event": event, **payload}
            )

    def events_since(self, since: int = 0) -> List[Dict[str, Any]]:
        with self._lock:
            return [e for e in self.events if e["seq"] > since]

    def status_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": "matrix",
            "backend": self.backend,
            "status": self.status,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "total": self.total,
            "done": self.done_cells,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "wall_time": round(self.wall_time, 4),
            "error": self.error,
            "events": len(self.events),
        }

    def manifest_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "backend": self.backend,
            "wall_time": round(self.wall_time, 4),
            "lanes": self.lanes,
            "cells": [c.summary() for c in self.cells],
        }


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


def request_fields(request: RunRequest) -> Dict[str, Any]:
    """The wire form of a cell: exactly the fields a worker re-runs from."""
    return {
        "workload": request.workload_name,
        "config": request.config,
        "core_scale": request.core_scale,
        "predictor": request.predictor,
        "warmup": request.warmup,
        "measure": request.measure,
    }


def request_from_fields(fields: Dict[str, Any]) -> RunRequest:
    return RunRequest(
        workload=fields["workload"],
        config=fields.get("config", "baseline"),
        core_scale=fields.get("core_scale") or 1,
        predictor=fields.get("predictor"),
        warmup=fields.get("warmup"),
        measure=fields.get("measure"),
    )


class JobQueue:
    """Worker thread executing submitted matrices through ``run_matrix``.

    *jobs* is the process-pool width each matrix fans out over (``None``:
    ``REPRO_JOBS``, else all cores).  Cells execute in chunks of the pool
    width so progress events fire as the matrix advances rather than only
    at the end.
    """

    def __init__(self, store: ExperimentStore, jobs: Optional[int] = None):
        self.store = store
        self.jobs = jobs
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._lock = threading.Lock()
        #: distributed jobs: job_id -> monotonic submit time (wall clock)
        self._started_at: Dict[str, float] = {}
        self._worker = threading.Thread(
            target=self._work, name="repro-job-queue", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(self, requests: List[RunRequest],
               lanes: Optional[int] = None,
               backend: Optional[str] = None) -> Job:
        """Enqueue a matrix; returns the (still queued) job immediately.

        *lanes* selects the dispatch mode each chunk's ``run_matrix`` uses
        (see :mod:`repro.core.lanes`); ``None`` defers to the server's
        ``REPRO_LANES`` environment.  Results are bit-identical either
        way; the manifest records the width actually used per cell.

        *backend* ``"distributed"`` skips the local queue thread entirely:
        the cells become pending rows in the store's lease table, and the
        job completes as pull-based workers lease, execute, and ack them
        (see docs/distributed.md).  Anything else executes locally.
        """
        cells = []
        for i, request in enumerate(requests):
            key = request.memo_key()
            if key is None:
                raise ValueError(
                    f"cell {i} ({request.workload_name!r} × "
                    f"{request.config!r}) is not addressable by a config "
                    f"hash; the service accepts suite/frontier/trace "
                    f"workloads by name with default core/ACB config"
                )
            cells.append(JobCell(index=i, request=request, run_id=run_id_for(key)))
        backend = backend or "local"
        job = Job(
            job_id=new_job_id(),
            cells=cells,
            request={"cells": [c.summary() for c in cells], "lanes": lanes,
                     "backend": backend},
            lanes=lanes,
            backend=backend,
        )
        job.add_event("queued", total=job.total)
        with self._lock:
            self._jobs[job.job_id] = job
        if backend == "distributed":
            return self._submit_distributed(job)
        self.store.record_job(
            job.job_id, "queued", job.request, submitted=job.submitted
        )
        self._queue.put(job)
        return job

    def _submit_distributed(self, job: Job) -> Job:
        """Distributed path: cells become leasable rows, job runs at once."""
        job.status = "running"
        job.started = utcnow()
        self._started_at[job.job_id] = time.monotonic()
        job.add_event("running", total=job.total, backend="distributed")
        self.store.record_job(
            job.job_id, "running", job.request, submitted=job.submitted
        )
        self.store.update_job(job.job_id, started=job.started)
        self.store.enqueue_cells(
            job.job_id,
            [
                {
                    "index": cell.index,
                    "run_id": cell.run_id,
                    "request": request_fields(cell.request),
                }
                for cell in job.cells
            ],
        )
        return job

    # ------------------------------------------------------------------
    # distributed-cell completion (called by the worker ack route)
    # ------------------------------------------------------------------
    def note_requeue(self, job_id: str, cell_index: int,
                     worker: Optional[str]) -> None:
        """Surface an expired-lease requeue in the job's event feed."""
        job = self.get(job_id)
        if job is not None:
            job.add_event("requeue", index=cell_index, worker=worker)

    def complete_cell(
        self,
        lease: Dict[str, Any],
        result: RunResult,
        wall_time: float,
        worker: Optional[str],
    ) -> Dict[str, int]:
        """Record one acked distributed cell; finalize the job when drained.

        *lease* is the acked row from
        :meth:`~repro.service.store.ExperimentStore.ack_lease` — it carries
        the request fields, so the run key is recomputed *server-side*
        (workers never get to choose where a result lands).  Returns the
        job's remaining lease counts.
        """
        job_id = lease["job_id"]
        request = request_from_fields(lease["request"])
        key = request.memo_key()
        if key is not None:
            self.store.put(key, result, job_id=job_id)
        job = self.get(job_id)
        if job is not None and 0 <= lease["cell_index"] < len(job.cells):
            cell = job.cells[lease["cell_index"]]
            cell.result = result
            cell.source = "run"
            cell.wall_time = wall_time
            cell.worker = worker
            job.add_event(
                "cell", done=job.done_cells, total=job.total, **cell.summary()
            )
        counts = self.store.lease_counts(job_id)
        if counts["pending"] == 0 and counts["leased"] == 0:
            self._finalize_distributed(job_id, job)
        return counts

    def _finalize_distributed(self, job_id: str, job: Optional[Job]) -> None:
        if job is not None:
            with self._lock:
                if job.terminal:
                    return  # two acks raced on the last cell; idempotent
                job.status = "done"
            started = self._started_at.pop(job_id, None)
            job.wall_time = (
                time.monotonic() - started if started is not None else 0.0
            )
            job.finished = utcnow()
            job.add_event(
                "done",
                total=job.total,
                simulated=job.simulated,
                cache_hits=job.cache_hits,
                wall_time=round(job.wall_time, 4),
            )
            self.store.update_job(
                job.job_id, status="done", finished=job.finished,
                manifest=job.manifest_dict(),
            )
            return
        # post-restart: the in-memory job is gone, finish from store rows
        stored = self.store.get_job(job_id)
        if stored is None or stored.get("status") == "done":
            return
        by_index = {
            row["cell_index"]: row for row in self.store.list_leases(job_id)
        }
        cells = []
        for cell in stored.get("request", {}).get("cells", []):
            row = by_index.get(cell.get("index"))
            cells.append({
                **cell,
                "source": "run",
                "wall_time": round(row["wall_time"], 4) if row else 0.0,
                "lanes": 0,
                "worker": row["worker"] if row else None,
            })
        self.store.update_job(
            job_id, status="done", finished=utcnow(),
            manifest={"job_id": job_id, "backend": "distributed",
                      "wall_time": 0.0, "lanes": None, "cells": cells},
        )

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def snapshot(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float = 300.0) -> Optional[Job]:
        """Block until *job_id* reaches a terminal state (tests, CLI)."""
        deadline = time.monotonic() + timeout
        job = self.get(job_id)
        while job is not None and not job.terminal:
            if time.monotonic() > deadline:
                return job
            time.sleep(0.02)
        return job

    def close(self) -> None:
        """Finish the in-flight job, then stop the worker thread."""
        self._queue.put(None)
        self._worker.join(timeout=60)

    # ------------------------------------------------------------------
    def _work(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._execute(job)
            except Exception as exc:  # a failed job must not kill the queue
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished = utcnow()
                job.add_event("failed", error=job.error)
                self.store.update_job(
                    job.job_id, status="failed", error=job.error,
                    finished=job.finished,
                )

    def _execute(self, job: Job) -> None:
        job.status = "running"
        job.started = utcnow()
        job.add_event("running", total=job.total)
        self.store.update_job(job.job_id, status="running", started=job.started)
        started = time.monotonic()
        # progress granularity: one pool-width of cells per run_matrix call
        # — scaled by the lane width when lane packs are on, so chunking
        # never splits cells that would have shared a pack.
        from repro.core.lanes import resolve_lanes

        chunk = max(1, self.jobs or 1) * max(1, resolve_lanes(job.lanes))
        # a local job must never recurse into distributed dispatch, even
        # when the server itself runs under REPRO_BACKEND=distributed
        backend = resolve_backend(None)
        backend = "pool" if backend == "distributed" else (backend or None)
        for lo in range(0, job.total, chunk):
            cells = job.cells[lo:lo + chunk]
            results = run_matrix(
                [c.request for c in cells], jobs=self.jobs, lanes=job.lanes,
                backend=backend,
            )
            manifest = last_manifest()
            records = manifest.cells if manifest is not None else []
            if len(records) != len(cells):  # another thread's manifest raced in
                records = [
                    CellRecord(c.request.workload_name, c.request.config, "run")
                    for c in cells
                ]
            for cell, result, record in zip(cells, results, records):
                cell.result = result
                cell.source = record.source
                cell.wall_time = record.wall_time
                cell.lanes = record.lanes
                self.store.put(
                    cell.request.memo_key(), result, job_id=job.job_id
                )
                job.add_event(
                    "cell",
                    done=job.done_cells,
                    total=job.total,
                    **cell.summary(),
                )
        job.wall_time = time.monotonic() - started
        job.status = "done"
        job.finished = utcnow()
        job.add_event(
            "done",
            total=job.total,
            simulated=job.simulated,
            cache_hits=job.cache_hits,
            wall_time=round(job.wall_time, 4),
        )
        self.store.update_job(
            job.job_id, status="done", finished=job.finished,
            manifest=job.manifest_dict(),
        )
