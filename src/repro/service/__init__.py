"""Simulation-as-a-service: HTTP API, job queue, experiment database.

The service layer turns the experiment harness into a long-lived process
that other tools talk to over HTTP (see ``docs/service.md``):

``store``
    :class:`ExperimentStore` — a schema-versioned SQLite database of every
    run ever executed, keyed by the same normalized config-hash digests as
    the ``.repro_cache/`` JSON cache, so the cache is the L1 of a durable
    store.
``jobs``
    :class:`JobQueue` — a background worker that executes submitted
    :class:`~repro.harness.parallel.RunRequest` matrices through
    ``run_matrix`` (process-pool fan-out, dedup, manifests) and records
    per-cell progress events.
``app``
    The stdlib HTTP server (``python -m repro serve``) exposing the route
    table in :data:`repro.service.app.ROUTES`.
``client``
    :class:`ServiceClient` — a urllib-only client used by ``repro submit``
    / ``repro runs``, the tests, and the CI ``service-smoke`` job.
"""

from repro.service.jobs import Job, JobCell, JobQueue
from repro.service.store import (
    STORE_SCHEMA_VERSION,
    ExperimentStore,
    StoreSchemaError,
)

__all__ = [
    "ExperimentStore",
    "Job",
    "JobCell",
    "JobQueue",
    "STORE_SCHEMA_VERSION",
    "StoreSchemaError",
]
