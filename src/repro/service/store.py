"""The experiment database: a durable, queryable store of every run.

``.repro_cache/`` (:mod:`repro.harness.cache`) is a content-addressed JSON
cache: fast, disposable, one file per cell.  This module is the layer
*below* it — a single SQLite file that keeps every :class:`RunResult` ever
executed, plus the jobs that produced them and any trace artifacts they
exported, so experiment history survives cache eviction and is queryable
by config hash (``repro runs``, ``GET /api/v1/runs``).

Key discipline — **cache-key parity**: a run's ``run_id`` is
:func:`repro.harness.cache.key_digest` over the *same* normalized run key
the JSON cache uses.  The same configuration therefore hashes to the same
identity in both stores, the cache is literally the L1 of this store, and
bumping ``CACHE_SCHEMA_VERSION`` (the invalidation story for
simulator-visible changes) re-keys new runs while old rows remain as
queryable history.

Schema evolution: the ``meta`` table records ``schema_version``.  Opening
a database written by a *newer* schema raises :class:`StoreSchemaError`;
an *older* database is migrated in place when a migration is registered
in :data:`_MIGRATIONS`, and refused otherwise.  See ``docs/service.md``
for the DDL and the migration policy.

Robustness: constructed with ``strict=False`` (the harness attach path),
a corrupt or locked database degrades to warnings — reads miss, writes
drop — so a broken store can never fail a run that simulated fine.  The
service itself opens ``strict=True`` and refuses loudly.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional
from warnings import warn

from repro.harness.cache import RunKey, key_digest

#: Bump on any change to the table layout below; register a migration for
#: upgrades that can be applied in place.
STORE_SCHEMA_VERSION = 2

SCHEMA_NAME = "repro-store"

DEFAULT_STORE_DIR = ".repro_store"
DEFAULT_STORE_NAME = "experiments.sqlite"

#: Environment override for the database path (CLI ``--store``/``--db``
#: take precedence).
ENV_STORE = "REPRO_STORE"

#: Lease states a distributed matrix cell moves through.
LEASE_STATES = ("pending", "leased", "done")

#: Default seconds a worker's lease (and each heartbeat renewal) lasts.
DEFAULT_LEASE_TTL = 30.0

#: The version-2 addition: lease bookkeeping for distributed matrix cells.
#: Kept as its own script so the 1 -> 2 migration and the fresh-database
#: DDL cannot drift apart.
_DDL_LEASES = """
CREATE TABLE IF NOT EXISTS leases (
    job_id     TEXT NOT NULL,
    cell_index INTEGER NOT NULL,
    run_id     TEXT NOT NULL,
    request    TEXT NOT NULL,      -- RunRequest fields as JSON
    state      TEXT NOT NULL DEFAULT 'pending',  -- pending | leased | done
    worker     TEXT,
    lease_id   TEXT,
    deadline   REAL,               -- time.time() when the lease expires
    attempts   INTEGER NOT NULL DEFAULT 0,
    wall_time  REAL NOT NULL DEFAULT 0.0,
    created    TEXT NOT NULL,
    updated    TEXT NOT NULL,
    PRIMARY KEY (job_id, cell_index)
);
CREATE INDEX IF NOT EXISTS idx_leases_state ON leases(state);
"""


def _upgrade_v1_to_v2(conn: sqlite3.Connection) -> None:
    """v1 -> v2: add the distributed-dispatch lease table."""
    conn.executescript(_DDL_LEASES)


#: ``old_version -> upgrade(connection)`` hooks, applied in sequence until
#: the database reaches STORE_SCHEMA_VERSION.
_MIGRATIONS: Dict[int, Any] = {1: _upgrade_v1_to_v2}

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id     TEXT PRIMARY KEY,   -- key_digest(normalized run key)
    run_key    TEXT NOT NULL,      -- the normalized key itself, as JSON
    workload   TEXT NOT NULL,
    config     TEXT NOT NULL,
    core_scale INTEGER NOT NULL,
    predictor  TEXT,
    warmup     INTEGER NOT NULL,
    measure    INTEGER NOT NULL,
    category   TEXT NOT NULL,
    paper_tag  TEXT NOT NULL,
    stats      TEXT NOT NULL,      -- SimStats.to_dict() as JSON
    created    TEXT NOT NULL,
    job_id     TEXT
);
CREATE INDEX IF NOT EXISTS idx_runs_workload ON runs(workload);
CREATE INDEX IF NOT EXISTS idx_runs_config   ON runs(config);
CREATE TABLE IF NOT EXISTS jobs (
    job_id    TEXT PRIMARY KEY,
    kind      TEXT NOT NULL,       -- "matrix" | "trace"
    status    TEXT NOT NULL,       -- queued | running | done | failed
    submitted TEXT NOT NULL,
    started   TEXT,
    finished  TEXT,
    request   TEXT NOT NULL,       -- the submitted matrix, as JSON
    manifest  TEXT,                -- per-cell sources + wall times, as JSON
    error     TEXT
);
CREATE TABLE IF NOT EXISTS artifacts (
    artifact_id INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id      TEXT NOT NULL,
    name        TEXT NOT NULL,
    format      TEXT NOT NULL,
    path        TEXT NOT NULL,
    bytes       INTEGER NOT NULL,
    created     TEXT NOT NULL
);
""" + _DDL_LEASES


class StoreSchemaError(RuntimeError):
    """The database speaks a schema this code cannot (newer, or corrupt)."""


def utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def run_id_for(key: RunKey) -> str:
    """The run's durable identity — identical to the L1 cache file stem."""
    return key_digest(key)


@dataclass
class StoreCounters:
    """Hit/miss accounting, mirroring :class:`~repro.harness.cache.CacheCounters`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0


class ExperimentStore:
    """SQLite experiment database rooted at *path*.

    Every public method opens a short-lived connection, so one instance is
    safe to share across threads, and concurrent writers from separate
    processes serialize on SQLite's file lock (``timeout`` seconds before
    giving up).  Writes of the same ``run_id`` are idempotent
    (``INSERT OR IGNORE`` — identical keys serialize identical payloads).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        strict: bool = True,
        timeout: float = 5.0,
    ):
        self.path = pathlib.Path(
            path
            or os.environ.get(ENV_STORE, "").strip()
            or os.path.join(DEFAULT_STORE_DIR, DEFAULT_STORE_NAME)
        )
        self.strict = strict
        self.timeout = timeout
        self.counters = StoreCounters()
        self._ready = False
        self._broken = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # connection / schema lifecycle
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=self.timeout)
        conn.row_factory = sqlite3.Row
        return conn

    def _ensure(self) -> bool:
        """Create or migrate the schema once; False when degraded."""
        with self._lock:
            if self._ready:
                return True
            if self._broken:
                return False
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with self._connect() as conn:
                    self._ensure_schema(conn)
            except StoreSchemaError:
                raise
            except (sqlite3.Error, OSError) as exc:
                if self.strict:
                    raise StoreSchemaError(
                        f"cannot open experiment store {self.path}: {exc}"
                    ) from exc
                warn(
                    f"experiment store {self.path} unusable, continuing "
                    f"without it: {exc}",
                    RuntimeWarning,
                )
                self.counters.errors += 1
                self._broken = True
                return False
            self._ready = True
            return True

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        row = None
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError:
            pass  # fresh database: meta does not exist yet
        if row is None:
            conn.executescript(_DDL)
            conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES(?, ?)",
                ("schema", SCHEMA_NAME),
            )
            conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES(?, ?)",
                ("schema_version", str(STORE_SCHEMA_VERSION)),
            )
            conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES(?, ?)",
                ("created", utcnow()),
            )
            return
        version = int(row["value"])
        while version < STORE_SCHEMA_VERSION:
            upgrade = _MIGRATIONS.get(version)
            if upgrade is None:
                raise StoreSchemaError(
                    f"{self.path} is schema version {version} and no "
                    f"migration to {STORE_SCHEMA_VERSION} is registered"
                )
            upgrade(conn)
            version += 1
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(version),),
            )
        if version > STORE_SCHEMA_VERSION:
            raise StoreSchemaError(
                f"{self.path} is schema version {version}, newer than this "
                f"code understands ({STORE_SCHEMA_VERSION}); refusing to touch it"
            )

    def _degrade(self, what: str, exc: Exception) -> None:
        self.counters.errors += 1
        if self.strict:
            raise StoreSchemaError(f"experiment store {what} failed: {exc}") from exc
        warn(f"experiment store {what} failed: {exc}", RuntimeWarning)

    def schema_info(self) -> Dict[str, Any]:
        if not self._ensure():
            return {}
        with self._connect() as conn:
            rows = conn.execute("SELECT key, value FROM meta").fetchall()
        info: Dict[str, Any] = {row["key"]: row["value"] for row in rows}
        info["schema_version"] = int(info["schema_version"])
        return info

    # ------------------------------------------------------------------
    # result-backend surface (duck-compatible with ResultCache)
    # ------------------------------------------------------------------
    def get(self, key: RunKey):
        """Stored ``RunResult`` for *key*, or ``None`` on any kind of miss."""
        from repro.core.stats import SimStats
        from repro.harness.runner import RunResult  # circular at import time

        try:
            if not self._ensure():
                return None
            with self._connect() as conn:
                row = conn.execute(
                    "SELECT workload, category, paper_tag, config, stats "
                    "FROM runs WHERE run_id = ?",
                    (run_id_for(key),),
                ).fetchone()
        except StoreSchemaError:
            raise
        except (sqlite3.Error, OSError) as exc:
            self._degrade("read", exc)
            return None
        if row is None:
            self.counters.misses += 1
            return None
        try:
            result = RunResult(
                workload=row["workload"],
                category=row["category"],
                paper_tag=row["paper_tag"],
                config=row["config"],
                stats=SimStats.from_dict(json.loads(row["stats"])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            warn(f"ignoring corrupt store row for {key}: {exc}", RuntimeWarning)
            self.counters.errors += 1
            return None
        self.counters.hits += 1
        return result

    def put(self, key: RunKey, result, job_id: Optional[str] = None) -> None:
        """Persist *result* under *key* (idempotent; degrades on failure)."""
        try:
            if not self._ensure():
                return
            with self._connect() as conn:
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO runs(run_id, run_key, workload, "
                    "config, core_scale, predictor, warmup, measure, "
                    "category, paper_tag, stats, created, job_id) "
                    "VALUES(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id_for(key),
                        json.dumps(list(key)),
                        key[0],
                        key[1],
                        key[2],
                        key[3],
                        key[4],
                        key[5],
                        result.category,
                        result.paper_tag,
                        json.dumps(result.stats.to_dict()),
                        utcnow(),
                        job_id,
                    ),
                )
                if cursor.rowcount:
                    self.counters.stores += 1
        except StoreSchemaError:
            raise
        except (sqlite3.Error, OSError) as exc:
            self._degrade("write", exc)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def count_runs(self) -> int:
        if not self._ensure():
            return 0
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def query_runs(
        self,
        workload: Optional[str] = None,
        config: Optional[str] = None,
        limit: int = 100,
    ) -> List[Dict[str, Any]]:
        """Run summaries (no full stats), newest first."""
        if not self._ensure():
            return []
        clauses, params = [], []
        if workload is not None:
            clauses.append("workload = ?")
            params.append(workload)
        if config is not None:
            clauses.append("config = ?")
            params.append(config)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT run_id, workload, config, core_scale, predictor, "
                f"warmup, measure, stats, created, job_id FROM runs {where} "
                "ORDER BY created DESC, run_id LIMIT ?",
                (*params, max(1, limit)),
            ).fetchall()
        out = []
        for row in rows:
            stats = json.loads(row["stats"])
            cycles = stats.get("cycles", 0)
            out.append(
                {
                    "run_id": row["run_id"],
                    "workload": row["workload"],
                    "config": row["config"],
                    "core_scale": row["core_scale"],
                    "predictor": row["predictor"],
                    "warmup": row["warmup"],
                    "measure": row["measure"],
                    "ipc": (
                        round(stats.get("instructions", 0) / cycles, 4)
                        if cycles
                        else 0.0
                    ),
                    "created": row["created"],
                    "job_id": row["job_id"],
                }
            )
        return out

    def get_run(self, run_id: str) -> Optional[Dict[str, Any]]:
        """One run's full record (normalized key + complete stats)."""
        if not self._ensure():
            return None
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            return None
        record = dict(row)
        record["run_key"] = json.loads(record["run_key"])
        record["stats"] = json.loads(record["stats"])
        return record

    # ------------------------------------------------------------------
    # jobs
    # ------------------------------------------------------------------
    def record_job(
        self,
        job_id: str,
        status: str,
        request: Dict[str, Any],
        kind: str = "matrix",
        submitted: Optional[str] = None,
    ) -> None:
        if not self._ensure():
            return
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO jobs(job_id, kind, status, submitted, "
                "request) VALUES(?, ?, ?, ?, ?)",
                (job_id, kind, status, submitted or utcnow(), json.dumps(request)),
            )

    def update_job(self, job_id: str, **fields: Any) -> None:
        allowed = {"status", "started", "finished", "manifest", "error"}
        unknown = set(fields) - allowed
        if unknown:
            raise ValueError(f"unknown job fields {sorted(unknown)}")
        if not fields or not self._ensure():
            return
        values = {
            k: (json.dumps(v) if k == "manifest" and v is not None else v)
            for k, v in fields.items()
        }
        assignment = ", ".join(f"{k} = ?" for k in values)
        with self._connect() as conn:
            conn.execute(
                f"UPDATE jobs SET {assignment} WHERE job_id = ?",
                (*values.values(), job_id),
            )

    def get_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        if not self._ensure():
            return None
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            return None
        record = dict(row)
        record["request"] = json.loads(record["request"])
        if record["manifest"]:
            record["manifest"] = json.loads(record["manifest"])
        return record

    def list_jobs(self, limit: int = 50) -> List[Dict[str, Any]]:
        if not self._ensure():
            return []
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT job_id, kind, status, submitted, started, finished, "
                "error FROM jobs ORDER BY submitted DESC, job_id LIMIT ?",
                (max(1, limit),),
            ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # distributed leases (docs/distributed.md)
    # ------------------------------------------------------------------
    def enqueue_cells(self, job_id: str, cells: List[Dict[str, Any]]) -> int:
        """Queue distributed matrix cells for workers to lease.

        *cells*: dicts with ``index``, ``run_id``, and a JSON-serializable
        ``request`` (the ``RunRequest`` fields a worker needs to re-run the
        cell).  Idempotent per ``(job_id, index)``.
        """
        if not cells or not self._ensure():
            return 0
        stamp = utcnow()
        try:
            with self._connect() as conn:
                cursor = conn.executemany(
                    "INSERT OR IGNORE INTO leases(job_id, cell_index, "
                    "run_id, request, state, attempts, created, updated) "
                    "VALUES(?, ?, ?, ?, 'pending', 0, ?, ?)",
                    [
                        (job_id, cell["index"], cell["run_id"],
                         json.dumps(cell["request"]), stamp, stamp)
                        for cell in cells
                    ],
                )
                return cursor.rowcount
        except (sqlite3.Error, OSError) as exc:
            self._degrade("lease enqueue", exc)
            return 0

    def lease_next(
        self,
        worker: str,
        ttl: float = DEFAULT_LEASE_TTL,
        now: Optional[float] = None,
    ) -> Optional[Dict[str, Any]]:
        """Atomically claim the oldest pending cell for *worker*.

        The claim is a ``state = 'pending'``-guarded UPDATE, so concurrent
        workers (threads or separate processes on the same database) never
        double-lease a cell; a lost race simply retries on the next oldest
        row.  Returns the leased cell or ``None`` when the queue is empty.
        """
        if not self._ensure():
            return None
        now = time.time() if now is None else now
        lease_id = uuid.uuid4().hex
        try:
            with self._connect() as conn:
                while True:
                    row = conn.execute(
                        "SELECT job_id, cell_index, run_id, request, attempts "
                        "FROM leases WHERE state = 'pending' "
                        "ORDER BY created, job_id, cell_index LIMIT 1"
                    ).fetchone()
                    if row is None:
                        return None
                    claimed = conn.execute(
                        "UPDATE leases SET state = 'leased', worker = ?, "
                        "lease_id = ?, deadline = ?, attempts = attempts + 1, "
                        "updated = ? WHERE job_id = ? AND cell_index = ? "
                        "AND state = 'pending'",
                        (worker, lease_id, now + ttl, utcnow(),
                         row["job_id"], row["cell_index"]),
                    ).rowcount
                    if claimed:
                        return {
                            "job_id": row["job_id"],
                            "index": row["cell_index"],
                            "run_id": row["run_id"],
                            "request": json.loads(row["request"]),
                            "lease_id": lease_id,
                            "deadline": now + ttl,
                            "attempts": row["attempts"] + 1,
                        }
        except (sqlite3.Error, OSError) as exc:
            self._degrade("lease claim", exc)
            return None

    def requeue_expired(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Return expired leases to the pending queue (dead workers).

        Called lazily on every lease poll — there is no background reaper
        thread, so an abandoned cell is recovered the moment any surviving
        worker next asks for work.
        """
        if not self._ensure():
            return []
        now = time.time() if now is None else now
        out: List[Dict[str, Any]] = []
        try:
            with self._connect() as conn:
                rows = conn.execute(
                    "SELECT job_id, cell_index, worker, attempts FROM leases "
                    "WHERE state = 'leased' AND deadline < ?", (now,),
                ).fetchall()
                for row in rows:
                    freed = conn.execute(
                        "UPDATE leases SET state = 'pending', worker = NULL, "
                        "lease_id = NULL, deadline = NULL, updated = ? "
                        "WHERE job_id = ? AND cell_index = ? "
                        "AND state = 'leased' AND deadline < ?",
                        (utcnow(), row["job_id"], row["cell_index"], now),
                    ).rowcount
                    if freed:
                        out.append(dict(row))
        except (sqlite3.Error, OSError) as exc:
            self._degrade("lease requeue", exc)
        return out

    def heartbeat_lease(
        self,
        lease_id: str,
        ttl: float = DEFAULT_LEASE_TTL,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Renew a live lease; returns the new deadline, or ``None`` when
        the lease is gone (acked, or expired and reassigned)."""
        if not self._ensure():
            return None
        now = time.time() if now is None else now
        try:
            with self._connect() as conn:
                renewed = conn.execute(
                    "UPDATE leases SET deadline = ?, updated = ? "
                    "WHERE lease_id = ? AND state = 'leased'",
                    (now + ttl, utcnow(), lease_id),
                ).rowcount
        except (sqlite3.Error, OSError) as exc:
            self._degrade("lease heartbeat", exc)
            return None
        return now + ttl if renewed else None

    def ack_lease(
        self, lease_id: str, wall_time: float = 0.0
    ) -> Optional[Dict[str, Any]]:
        """Mark a leased cell done; ``None`` when the lease is stale.

        A stale ack (the cell expired and was re-leased to another worker)
        is rejected so the attempt accounting stays exact — the duplicate
        result is harmless either way because the simulator is
        deterministic and run writes are idempotent.
        """
        if not self._ensure():
            return None
        try:
            with self._connect() as conn:
                row = conn.execute(
                    "SELECT job_id, cell_index, run_id, request, worker, "
                    "attempts FROM leases "
                    "WHERE lease_id = ? AND state = 'leased'",
                    (lease_id,),
                ).fetchone()
                if row is None:
                    return None
                conn.execute(
                    "UPDATE leases SET state = 'done', wall_time = ?, "
                    "updated = ? WHERE lease_id = ? AND state = 'leased'",
                    (wall_time, utcnow(), lease_id),
                )
        except (sqlite3.Error, OSError) as exc:
            self._degrade("lease ack", exc)
            return None
        out = dict(row)
        out["request"] = json.loads(out["request"])
        return out

    def lease_counts(self, job_id: Optional[str] = None) -> Dict[str, int]:
        counts = {state: 0 for state in LEASE_STATES}
        if not self._ensure():
            return counts
        clause, params = ("WHERE job_id = ?", (job_id,)) if job_id else ("", ())
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT state, COUNT(*) AS n FROM leases {clause} "
                f"GROUP BY state",
                params,
            ).fetchall()
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def list_leases(
        self, job_id: Optional[str] = None, limit: int = 1000
    ) -> List[Dict[str, Any]]:
        if not self._ensure():
            return []
        clause, params = ("WHERE job_id = ?", (job_id,)) if job_id else ("", ())
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT job_id, cell_index, run_id, state, worker, lease_id, "
                f"deadline, attempts, wall_time, updated FROM leases {clause} "
                "ORDER BY job_id, cell_index LIMIT ?",
                (*params, max(1, limit)),
            ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # artifacts
    # ------------------------------------------------------------------
    def add_artifact(self, job_id: str, name: str, fmt: str, path: str) -> int:
        if not self._ensure():
            return -1
        size = os.path.getsize(path)
        with self._connect() as conn:
            cursor = conn.execute(
                "INSERT INTO artifacts(job_id, name, format, path, bytes, "
                "created) VALUES(?, ?, ?, ?, ?, ?)",
                (job_id, name, fmt, path, size, utcnow()),
            )
            return int(cursor.lastrowid)

    def artifacts_for(self, job_id: str) -> List[Dict[str, Any]]:
        if not self._ensure():
            return []
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT artifact_id, job_id, name, format, path, bytes, "
                "created FROM artifacts WHERE job_id = ? ORDER BY artifact_id",
                (job_id,),
            ).fetchall()
        return [dict(row) for row in rows]

    def get_artifact(self, artifact_id: int) -> Optional[Dict[str, Any]]:
        if not self._ensure():
            return None
        with self._connect() as conn:
            row = conn.execute(
                "SELECT artifact_id, job_id, name, format, path, bytes, "
                "created FROM artifacts WHERE artifact_id = ?",
                (artifact_id,),
            ).fetchone()
        return dict(row) if row is not None else None
