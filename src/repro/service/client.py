"""urllib-only client for the service API (``repro submit`` / ``repro runs``).

No third-party HTTP stack: the client the CLI, the tests, and the CI
``service-smoke`` job all use is ~anything a user could paste from
``docs/service.md`` with ``urllib.request``.  Base URL resolution:
explicit argument, else the ``REPRO_SERVICE_URL`` environment variable,
else ``http://127.0.0.1:8321``.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Callable, Dict, List, Optional

#: Environment override for the service base URL.
ENV_SERVICE_URL = "REPRO_SERVICE_URL"

DEFAULT_URL = "http://127.0.0.1:8321"


def service_url(url: Optional[str] = None) -> str:
    return (url or os.environ.get(ENV_SERVICE_URL, "").strip()
            or DEFAULT_URL).rstrip("/")


class ServiceError(RuntimeError):
    """Non-2xx response; carries the HTTP status and decoded error body."""

    def __init__(self, status: int, payload: Any):
        detail = payload.get("error") if isinstance(payload, dict) else payload
        problems = payload.get("problems") if isinstance(payload, dict) else None
        message = f"HTTP {status}: {detail}"
        if problems:
            message += " (" + "; ".join(problems) + ")"
        super().__init__(message)
        self.status = status
        self.payload = payload


class ServiceClient:
    """Thin JSON client over one service base URL."""

    def __init__(self, url: Optional[str] = None, timeout: float = 30.0):
        self.url = service_url(url)
        self.timeout = timeout

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        query: Optional[Dict[str, Any]] = None,
    ) -> Any:
        url = self.url + path
        if query:
            pruned = {k: v for k, v in query.items() if v is not None}
            if pruned:
                url += "?" + urllib.parse.urlencode(pruned)
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                raw = resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw)
            except ValueError:
                payload = raw.decode(errors="replace")
            raise ServiceError(exc.code, payload) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.url}: {exc.reason}"
            ) from None
        return json.loads(raw) if raw else None

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self.request("GET", "/api/v1/health")

    def submit(
        self,
        cells: Optional[List[Dict]] = None,
        workloads: Optional[List[str]] = None,
        configs: Optional[List[str]] = None,
        backend: Optional[str] = None,
        **defaults: Any,
    ) -> Dict:
        """Submit a matrix; returns the 202 body (``job_id``, cells).

        *defaults* become top-level body fields each cell may override —
        ``warmup``/``measure``/``core_scale``/``predictor`` — plus the
        matrix-level ``lanes`` width (0 = scalar engine, ``None`` lets the
        server's ``REPRO_LANES`` decide; see docs/performance.md).
        *backend* ``"distributed"`` queues the cells for pull-based
        workers instead of the server's local job queue
        (docs/distributed.md).
        """
        body: Dict[str, Any] = dict(defaults)
        if backend is not None:
            body["backend"] = backend
        if cells is not None:
            body["cells"] = cells
        if workloads is not None:
            body["workloads"] = workloads
        if configs is not None:
            body["configs"] = configs
        return self.request("POST", "/api/v1/jobs", body=body)

    def job(self, job_id: str) -> Dict:
        return self.request("GET", f"/api/v1/jobs/{job_id}")

    def events(self, job_id: str, since: int = 0) -> Dict:
        return self.request(
            "GET", f"/api/v1/jobs/{job_id}/events", query={"since": since}
        )

    def results(self, job_id: str) -> List[Dict]:
        return self.request(
            "GET", f"/api/v1/jobs/{job_id}/results"
        )["results"]

    def manifest(self, job_id: str) -> Dict:
        return self.request("GET", f"/api/v1/jobs/{job_id}/manifest")

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll: float = 0.2,
        on_event: Optional[Callable[[Dict], None]] = None,
    ) -> Dict:
        """Poll until the job is terminal; returns its final status dict.

        *on_event* receives each new progress event as it is observed.
        Raises :class:`ServiceError` on job failure or timeout.
        """
        deadline = time.monotonic() + timeout
        cursor = 0
        while True:
            if on_event is not None:
                feed = self.events(job_id, since=cursor)
                for event in feed["events"]:
                    cursor = event["seq"]
                    on_event(event)
            status = self.job(job_id)
            if status["status"] == "failed":
                raise ServiceError(500, {"error": status.get("error")
                                         or "job failed"})
            if status["status"] == "done":
                return status
            if time.monotonic() > deadline:
                raise ServiceError(
                    0, f"job {job_id} still {status['status']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def runs(
        self,
        workload: Optional[str] = None,
        config: Optional[str] = None,
        limit: int = 100,
    ) -> List[Dict]:
        return self.request(
            "GET", "/api/v1/runs",
            query={"workload": workload, "config": config, "limit": limit},
        )["runs"]

    def run(self, run_id: str) -> Dict:
        return self.request("GET", f"/api/v1/runs/{run_id}")

    def trace(self, workload: str, config: str = "acb", **options: Any) -> Dict:
        return self.request(
            "POST", "/api/v1/trace",
            body={"workload": workload, "config": config, **options},
        )

    # ------------------------------------------------------------------
    # distributed-worker surface (docs/distributed.md)
    # ------------------------------------------------------------------
    def lease(self, worker: str, ttl: Optional[float] = None) -> Dict:
        """Claim the oldest pending distributed cell, or ``cell: None``."""
        body: Dict[str, Any] = {"worker": worker}
        if ttl is not None:
            body["ttl"] = ttl
        return self.request("POST", "/api/v1/workers/lease", body=body)

    def heartbeat(self, lease_id: str, ttl: Optional[float] = None) -> Dict:
        """Renew a live lease; raises ``ServiceError`` (410) when gone."""
        body: Dict[str, Any] = {"lease_id": lease_id}
        if ttl is not None:
            body["ttl"] = ttl
        return self.request("POST", "/api/v1/workers/heartbeat", body=body)

    def ack(
        self,
        lease_id: str,
        worker: str,
        stats: Dict,
        category: str = "",
        paper_tag: str = "",
        wall_time: float = 0.0,
    ) -> Dict:
        """Post one executed cell's ``SimStats.to_dict()`` back."""
        return self.request("POST", "/api/v1/workers/ack", body={
            "lease_id": lease_id,
            "worker": worker,
            "stats": stats,
            "category": category,
            "paper_tag": paper_tag,
            "wall_time": wall_time,
        })

    def workers(self) -> Dict:
        return self.request("GET", "/api/v1/workers")

    def artifacts(self, job_id: str) -> List[Dict]:
        return self.request(
            "GET", f"/api/v1/jobs/{job_id}/artifacts"
        )["artifacts"]

    def artifact(self, artifact_id: int) -> bytes:
        url = f"{self.url}/api/v1/artifacts/{artifact_id}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, exc.read().decode(errors="replace")
                               ) from None
