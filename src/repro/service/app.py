"""The HTTP API: ``python -m repro serve``.

A stdlib-only (``http.server``) JSON API over the experiment store and
the job queue.  The route table below is the *source of truth* for the
service surface: ``tools/check_docs.py`` validates every HTTP snippet in
``docs/service.md`` against it, and requires every route to be documented
there — the docs and the server cannot drift apart.

Threading model: ``ThreadingHTTPServer`` handles each connection on its
own thread; handlers only read job state, query SQLite (per-call
connections), or enqueue work — the simulation itself happens on the job
queue's worker thread, which fans out over the harness process pool.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, NamedTuple, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.harness.cache import set_active_store
from repro.harness.parallel import RunRequest
from repro.harness.runner import SCHEME_FACTORIES, RunResult, split_config
from repro.service.jobs import JobQueue, new_job_id
from repro.service.store import (
    DEFAULT_LEASE_TTL,
    STORE_SCHEMA_VERSION,
    ExperimentStore,
    utcnow,
)

API_PREFIX = "/api/v1"

#: Largest accepted request body (a 4096-cell matrix is ~1 MB of JSON).
MAX_BODY_BYTES = 16 << 20

#: Largest matrix one job may hold.
MAX_CELLS = 4096


class Route(NamedTuple):
    """One row of the service surface: ``<segment>`` matches one path part."""

    method: str
    pattern: str
    handler: str


#: The complete service surface.  docs/service.md documents each row
#: verbatim; tools/check_docs.py enforces both directions.
ROUTES: Tuple[Route, ...] = (
    Route("GET", "/api/v1/health", "health"),
    Route("POST", "/api/v1/jobs", "submit_job"),
    Route("GET", "/api/v1/jobs", "list_jobs"),
    Route("GET", "/api/v1/jobs/<job_id>", "job_status"),
    Route("GET", "/api/v1/jobs/<job_id>/events", "job_events"),
    Route("GET", "/api/v1/jobs/<job_id>/results", "job_results"),
    Route("GET", "/api/v1/jobs/<job_id>/manifest", "job_manifest"),
    Route("GET", "/api/v1/jobs/<job_id>/artifacts", "job_artifacts"),
    Route("GET", "/api/v1/runs", "list_runs"),
    Route("GET", "/api/v1/runs/<run_id>", "run_detail"),
    Route("POST", "/api/v1/trace", "trace_run"),
    Route("GET", "/api/v1/artifacts/<artifact_id>", "artifact_content"),
    Route("GET", "/api/v1/workers", "list_workers"),
    Route("POST", "/api/v1/workers/lease", "worker_lease"),
    Route("POST", "/api/v1/workers/heartbeat", "worker_heartbeat"),
    Route("POST", "/api/v1/workers/ack", "worker_ack"),
)


def _compile(pattern: str) -> "re.Pattern[str]":
    parts = [
        f"(?P<{seg[1:-1]}>[^/]+)"
        if seg.startswith("<") and seg.endswith(">") else re.escape(seg)
        for seg in pattern.split("/")
    ]
    return re.compile("^" + "/".join(parts) + "$")

_COMPILED = [(route, _compile(route.pattern)) for route in ROUTES]


class BadRequest(ValueError):
    """A 400: the body carries the per-problem detail list."""

    def __init__(self, problems: List[str]):
        super().__init__("; ".join(problems))
        self.problems = problems


# ----------------------------------------------------------------------
# request parsing / validation
# ----------------------------------------------------------------------
def _validate_workload(name: Any) -> Optional[str]:
    from repro.workloads import suite_names
    from repro.workloads.frontier import is_frontier_name
    from repro.workloads.trace import is_trace_name, resolve_trace_path

    if not isinstance(name, str) or not name:
        return f"workload must be a non-empty string, got {name!r}"
    if is_trace_name(name):
        try:
            resolve_trace_path(name)
        except KeyError as exc:
            return str(exc).strip("'\"")
        return None
    if name in suite_names() or is_frontier_name(name):
        return None
    return (
        f"unknown workload {name!r}: not a suite workload, not a frontier "
        f"workload, and not a trace:<name-or-path> reference"
    )


def _validate_config(name: Any) -> Optional[str]:
    from repro.branch import PREDICTORS

    if not isinstance(name, str) or not name:
        return f"config must be a non-empty string, got {name!r}"
    scheme, predictor = split_config(name)
    if scheme not in SCHEME_FACTORIES:
        return (
            f"unknown config {scheme!r}; choose from "
            f"{sorted(SCHEME_FACTORIES)} (optionally '@<predictor>')"
        )
    if predictor is not None and predictor not in PREDICTORS:
        return f"unknown predictor {predictor!r}; choose from {sorted(PREDICTORS)}"
    return None


def _int_field(payload: Dict, field: str, problems: List[str]) -> Optional[int]:
    value = payload.get(field)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        problems.append(f"{field} must be a positive integer, got {value!r}")
        return None
    return value


def parse_lanes(payload: Any) -> Optional[int]:
    """Top-level ``lanes`` field of a submitted matrix.

    ``None``/absent defers to the server's environment (``REPRO_LANES``);
    ``0`` forces scalar dispatch; ``N >= 1`` requests lane packs of up to
    N cells (:mod:`repro.core.lanes`).  The chosen width is recorded in
    the job manifest so stored results say how they were produced.
    """
    if not isinstance(payload, dict):
        return None
    value = payload.get("lanes")
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise BadRequest(
            [f"lanes must be a non-negative integer, got {value!r}"]
        )
    return value


def parse_backend(payload: Any) -> Optional[str]:
    """Top-level ``backend`` field of a submitted matrix.

    ``None``/absent/``"local"`` executes on this server's job queue;
    ``"distributed"`` turns the cells into leasable rows that pull-based
    workers execute over HTTP (docs/distributed.md).
    """
    if not isinstance(payload, dict):
        return None
    value = payload.get("backend")
    if value is None or value == "local":
        return None
    if value != "distributed":
        raise BadRequest(
            [f"backend must be 'local' or 'distributed', got {value!r}"]
        )
    return "distributed"


def _float_field(
    payload: Dict, field: str, problems: List[str]
) -> Optional[float]:
    value = payload.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value <= 0:
        problems.append(f"{field} must be a positive number, got {value!r}")
        return None
    return float(value)


def parse_matrix(payload: Any) -> List[RunRequest]:
    """Submitted JSON → validated ``RunRequest`` cells.

    Two spellings: an explicit ``"cells"`` list, or a ``"workloads"`` ×
    ``"configs"`` product.  Top-level ``warmup``/``measure``/``core_scale``
    /``predictor`` are defaults each cell may override.  Raises
    :class:`BadRequest` listing every problem at once.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        raise BadRequest(["request body must be a JSON object"])
    defaults = {
        "warmup": _int_field(payload, "warmup", problems),
        "measure": _int_field(payload, "measure", problems),
        "core_scale": _int_field(payload, "core_scale", problems) or 1,
        "predictor": payload.get("predictor"),
    }
    cells = payload.get("cells")
    if cells is None:
        workloads = payload.get("workloads")
        configs = payload.get("configs")
        # only the *structural* problems make the product unbuildable; a
        # bad top-level default must not hide per-cell findings
        structural = []
        if not isinstance(workloads, list) or not workloads:
            structural.append("need 'cells' or a non-empty 'workloads' list")
        if not isinstance(configs, list) or not configs:
            structural.append("need 'cells' or a non-empty 'configs' list")
        if structural:
            raise BadRequest(problems + structural)
        cells = [
            {"workload": w, "config": c} for w in workloads for c in configs
        ]
    if not isinstance(cells, list) or not cells:
        problems.append("'cells' must be a non-empty list")
        raise BadRequest(problems)
    if len(cells) > MAX_CELLS:
        raise BadRequest(
            [f"matrix holds {len(cells)} cells; the limit is {MAX_CELLS}"]
        )

    requests: List[RunRequest] = []
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append(f"cells[{i}] must be an object")
            continue
        merged = {**defaults, **cell}
        cell_problems: List[str] = []
        error = _validate_workload(merged.get("workload"))
        if error:
            cell_problems.append(error)
        error = _validate_config(merged.get("config", "baseline"))
        if error:
            cell_problems.append(error)
        predictor = merged.get("predictor")
        if predictor is not None:
            from repro.branch import PREDICTORS

            if predictor not in PREDICTORS:
                cell_problems.append(f"unknown predictor {predictor!r}")
        if cell_problems:
            problems.extend(f"cells[{i}]: {p}" for p in cell_problems)
            continue
        requests.append(
            RunRequest(
                workload=merged["workload"],
                config=merged.get("config", "baseline"),
                core_scale=merged.get("core_scale") or 1,
                predictor=predictor,
                warmup=_int_field(merged, "warmup", problems),
                measure=_int_field(merged, "measure", problems),
            )
        )
    if problems:
        raise BadRequest(problems)
    return requests


# ----------------------------------------------------------------------
# the service bundle
# ----------------------------------------------------------------------
@dataclass
class Service:
    """Everything one server instance owns."""

    store: ExperimentStore
    queue: JobQueue
    artifact_dir: str
    started: str

    @classmethod
    def create(
        cls,
        db_path: Optional[str] = None,
        artifact_dir: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> "Service":
        store = ExperimentStore(db_path, strict=True)
        store.schema_info()  # fail fast on a broken/newer database
        if artifact_dir is None:
            artifact_dir = os.path.join(str(store.path.parent), "artifacts")
        service = cls(
            store=store,
            queue=JobQueue(store, jobs=jobs),
            artifact_dir=artifact_dir,
            started=utcnow(),
        )
        # while the service lives, its store backs every run_matrix call:
        # the lookup chain is memo → disk cache → this database, and every
        # simulated cell writes through (see repro.harness.runner)
        service._previous_store = set_active_store(store)
        return service

    def close(self) -> None:
        self.queue.close()
        set_active_store(getattr(self, "_previous_store", None))


class ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    service: Service
    verbose: bool = False


class ServiceHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    server_version = "repro-service"
    protocol_version = "HTTP/1.0"  # one request per connection; no chunking

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _dispatch(self, method: str) -> None:
        url = urlsplit(self.path)
        self.query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        allowed = set()
        for route, regex in _COMPILED:
            match = regex.match(url.path)
            if match is None:
                continue
            if route.method != method:
                allowed.add(route.method)
                continue
            try:
                getattr(self, route.handler)(**match.groupdict())
            except BadRequest as exc:
                self._send_json(400, {"error": "bad request",
                                      "problems": exc.problems})
            except BrokenPipeError:
                pass  # client went away mid-stream
            except Exception as exc:
                self._send_json(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            return
        if allowed:
            self._send_json(405, {"error": f"use {sorted(allowed)} here"})
        else:
            self._send_json(404, {"error": f"no route for {url.path}",
                                  "routes": [f"{r.method} {r.pattern}"
                                             for r in ROUTES]})

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest(["request body required (Content-Length missing)"])
        if length > MAX_BODY_BYTES:
            raise BadRequest([f"body larger than {MAX_BODY_BYTES} bytes"])
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise BadRequest([f"body is not valid JSON: {exc}"]) from None

    def _job_or_404(self, job_id: str):
        job = self.server.service.queue.get(job_id)
        if job is None:
            stored = self.server.service.store.get_job(job_id)
            if stored is None:
                self._send_json(404, {"error": f"no such job {job_id!r}"})
            return None, stored
        return job, None

    # ------------------------------------------------------------------
    # handlers (one per Route row)
    # ------------------------------------------------------------------
    def health(self) -> None:
        service = self.server.service
        jobs = service.queue.snapshot()
        self._send_json(200, {
            "status": "ok",
            "schema": "repro-store",
            "schema_version": STORE_SCHEMA_VERSION,
            "started": service.started,
            "db": str(service.store.path),
            "runs": service.store.count_runs(),
            "jobs": {
                state: sum(1 for j in jobs if j.status == state)
                for state in ("queued", "running", "done", "failed")
            },
        })

    def submit_job(self) -> None:
        payload = self._read_json()
        requests = parse_matrix(payload)
        job = self.server.service.queue.submit(
            requests, lanes=parse_lanes(payload),
            backend=parse_backend(payload),
        )
        self._send_json(202, {
            "job_id": job.job_id,
            "status": job.status,
            "backend": job.backend,
            "total": job.total,
            "cells": [c.summary() for c in job.cells],
        })

    def list_jobs(self) -> None:
        service = self.server.service
        live = {job.job_id: job.status_dict() for job in service.queue.snapshot()}
        merged = list(live.values())
        for row in service.store.list_jobs(limit=int(self.query.get("limit", 50))):
            if row["job_id"] not in live:
                merged.append(row)
        self._send_json(200, {"jobs": merged})

    def job_status(self, job_id: str) -> None:
        job, stored = self._job_or_404(job_id)
        if job is not None:
            self._send_json(200, job.status_dict())
        elif stored is not None:
            stored.pop("request", None)
            stored.pop("manifest", None)
            self._send_json(200, stored)

    def job_events(self, job_id: str) -> None:
        """Progress events after ``?since=N``; ``?follow=1`` streams NDJSON
        until the job reaches a terminal state (or ``?timeout=`` seconds)."""
        job, stored = self._job_or_404(job_id)
        if job is None:
            if stored is not None:  # pre-restart job: no event history
                self._send_json(200, {"events": [], "next": 0,
                                      "status": stored["status"]})
            return
        since = int(self.query.get("since", 0))
        if self.query.get("follow") not in ("1", "true", "yes"):
            events = job.events_since(since)
            self._send_json(200, {
                "events": events,
                "next": events[-1]["seq"] if events else since,
                "status": job.status,
            })
            return
        deadline = time.monotonic() + float(self.query.get("timeout", 600))
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        cursor = since
        while True:
            for event in job.events_since(cursor):
                cursor = event["seq"]
                self.wfile.write((json.dumps(event) + "\n").encode())
            self.wfile.flush()
            if job.terminal or time.monotonic() > deadline:
                return
            time.sleep(0.05)

    def job_results(self, job_id: str) -> None:
        job, stored = self._job_or_404(job_id)
        service = self.server.service
        if job is not None:
            if not job.terminal:
                self._send_json(409, {
                    "error": f"job {job_id} is {job.status}; results are "
                    f"available once it is done",
                    "status": job.status,
                })
                return
            results = [
                {**cell.summary(), "stats": cell.result.stats.to_dict(),
                 "category": cell.result.category,
                 "paper_tag": cell.result.paper_tag}
                for cell in job.cells if cell.result is not None
            ]
            self._send_json(200, {"job_id": job_id, "status": job.status,
                                  "results": results})
        elif stored is not None:
            # pre-restart job: serve from the experiment database
            results = []
            for cell in stored.get("manifest", {}).get("cells", []):
                row = service.store.get_run(cell["run_id"])
                if row is not None:
                    results.append({**cell, "stats": row["stats"],
                                    "category": row["category"],
                                    "paper_tag": row["paper_tag"]})
            self._send_json(200, {"job_id": job_id, "status": stored["status"],
                                  "results": results})

    def job_manifest(self, job_id: str) -> None:
        job, stored = self._job_or_404(job_id)
        if job is not None:
            self._send_json(200, job.manifest_dict())
        elif stored is not None:
            self._send_json(200, stored.get("manifest")
                            or {"job_id": job_id, "cells": []})

    def job_artifacts(self, job_id: str) -> None:
        job, stored = self._job_or_404(job_id)
        if job is None and stored is None:
            return
        artifacts = self.server.service.store.artifacts_for(job_id)
        for artifact in artifacts:
            artifact.pop("path", None)  # server-local detail
        self._send_json(200, {"job_id": job_id, "artifacts": artifacts})

    def list_runs(self) -> None:
        rows = self.server.service.store.query_runs(
            workload=self.query.get("workload"),
            config=self.query.get("config"),
            limit=int(self.query.get("limit", 100)),
        )
        self._send_json(200, {"runs": rows, "count": len(rows)})

    def run_detail(self, run_id: str) -> None:
        row = self.server.service.store.get_run(run_id)
        if row is None:
            self._send_json(404, {"error": f"no such run {run_id!r}"})
        else:
            self._send_json(200, row)

    def trace_run(self) -> None:
        from repro.trace.driver import TRACE_FORMATS, run_traced

        payload = self._read_json()
        if not isinstance(payload, dict):
            raise BadRequest(["request body must be a JSON object"])
        problems: List[str] = []
        error = _validate_workload(payload.get("workload"))
        if error:
            problems.append(error)
        config = payload.get("config", "acb")
        error = _validate_config(config)
        if error:
            problems.append(error)
        formats = payload.get("formats")
        if formats is not None and (
            not isinstance(formats, list)
            or any(f not in TRACE_FORMATS for f in formats)
        ):
            problems.append(f"formats must be a subset of {list(TRACE_FORMATS)}")
        warmup = _int_field(payload, "warmup", problems) or 3000
        measure = _int_field(payload, "measure", problems) or 2000
        scale = _int_field(payload, "scale", problems) or 1
        if problems:
            raise BadRequest(problems)

        service = self.server.service
        job_id = new_job_id()
        out_dir = os.path.join(service.artifact_dir, job_id)
        traced = run_traced(
            payload["workload"], config,
            out_dir=out_dir, formats=formats,
            warmup=warmup, measure=measure, scale=scale,
            pc=payload.get("pc"),
        )
        service.store.record_job(
            job_id, "done",
            {"workload": traced.workload, "config": config,
             "warmup": warmup, "measure": measure, "scale": scale},
            kind="trace",
        )
        service.store.update_job(job_id, finished=utcnow())
        artifacts = []
        for artifact in traced.artifacts:
            artifact_id = service.store.add_artifact(
                job_id, os.path.basename(artifact.path),
                artifact.format, artifact.path,
            )
            artifacts.append({
                "artifact_id": artifact_id,
                "name": os.path.basename(artifact.path),
                "format": artifact.format,
                "detail": artifact.detail,
                "bytes": os.path.getsize(artifact.path),
            })
        self._send_json(200, {
            "job_id": job_id,
            "workload": traced.workload,
            "config": traced.config,
            "stats": traced.stats.to_dict(),
            "trace_summary": traced.trace_summary,
            "truncated": {"uops": traced.truncated_uops,
                          "acb": traced.truncated_acb},
            "artifacts": artifacts,
        })

    def artifact_content(self, artifact_id: str) -> None:
        try:
            ident = int(artifact_id)
        except ValueError:
            raise BadRequest(["artifact id must be an integer"]) from None
        service = self.server.service
        row = service.store.get_artifact(ident)
        root = os.path.realpath(service.artifact_dir)
        if row is None or not os.path.realpath(row["path"]).startswith(
            root + os.sep
        ):
            self._send_json(404, {"error": f"no such artifact {artifact_id}"})
            return
        try:
            with open(row["path"], "rb") as handle:
                body = handle.read()
        except OSError:
            self._send_json(410, {"error": "artifact file no longer on disk"})
            return
        kind = ("application/json" if row["name"].endswith(".json")
                else "text/plain")
        self.send_response(200)
        self.send_header("Content-Type", kind)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    # distributed workers (docs/distributed.md)
    # ------------------------------------------------------------------
    def list_workers(self) -> None:
        """Active workers (live leases grouped by worker) + cell counts."""
        store = self.server.service.store
        workers: Dict[str, Dict[str, Any]] = {}
        for row in store.list_leases():
            if row["state"] != "leased" or not row["worker"]:
                continue
            entry = workers.setdefault(
                row["worker"],
                {"worker": row["worker"], "cells": 0, "deadline": 0.0},
            )
            entry["cells"] += 1
            entry["deadline"] = max(entry["deadline"], row["deadline"] or 0.0)
        self._send_json(200, {
            "workers": sorted(workers.values(), key=lambda w: w["worker"]),
            "cells": store.lease_counts(),
        })

    def worker_lease(self) -> None:
        """Claim the oldest pending cell; expired leases requeue first."""
        payload = self._read_json()
        if not isinstance(payload, dict):
            raise BadRequest(["request body must be a JSON object"])
        problems: List[str] = []
        worker = payload.get("worker")
        if not isinstance(worker, str) or not worker:
            problems.append(
                f"worker must be a non-empty string, got {worker!r}"
            )
        ttl = _float_field(payload, "ttl", problems) or DEFAULT_LEASE_TTL
        if problems:
            raise BadRequest(problems)
        service = self.server.service
        for row in service.store.requeue_expired():
            service.queue.note_requeue(
                row["job_id"], row["cell_index"], row["worker"]
            )
        lease = service.store.lease_next(worker, ttl=ttl)
        if lease is None:
            self._send_json(200, {"cell": None})
            return
        self._send_json(200, {
            "cell": {"job_id": lease["job_id"], "index": lease["index"],
                     "run_id": lease["run_id"], **lease["request"]},
            "lease_id": lease["lease_id"],
            "deadline": lease["deadline"],
            "ttl": ttl,
            "attempts": lease["attempts"],
        })

    def worker_heartbeat(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict):
            raise BadRequest(["request body must be a JSON object"])
        problems: List[str] = []
        lease_id = payload.get("lease_id")
        if not isinstance(lease_id, str) or not lease_id:
            problems.append(
                f"lease_id must be a non-empty string, got {lease_id!r}"
            )
        ttl = _float_field(payload, "ttl", problems) or DEFAULT_LEASE_TTL
        if problems:
            raise BadRequest(problems)
        deadline = self.server.service.store.heartbeat_lease(lease_id, ttl=ttl)
        if deadline is None:
            self._send_json(410, {
                "error": f"lease {lease_id!r} is gone "
                f"(acked, or expired and reassigned)",
            })
        else:
            self._send_json(200, {"deadline": deadline, "ttl": ttl})

    def worker_ack(self) -> None:
        """Accept one executed cell's stats; reject stale leases with 410.

        The run key — where the result lands in the store — is recomputed
        server-side from the leased request, so a worker can only ever
        fill the cell it was handed.
        """
        from repro.core.stats import SimStats

        payload = self._read_json()
        if not isinstance(payload, dict):
            raise BadRequest(["request body must be a JSON object"])
        problems: List[str] = []
        lease_id = payload.get("lease_id")
        if not isinstance(lease_id, str) or not lease_id:
            problems.append(
                f"lease_id must be a non-empty string, got {lease_id!r}"
            )
        wall_time = payload.get("wall_time", 0.0)
        if isinstance(wall_time, bool) or \
                not isinstance(wall_time, (int, float)) or wall_time < 0:
            problems.append(
                f"wall_time must be a non-negative number, got {wall_time!r}"
            )
            wall_time = 0.0
        stats_dict = payload.get("stats")
        stats = None
        if not isinstance(stats_dict, dict):
            problems.append("stats must be an object (SimStats.to_dict())")
        else:
            try:
                stats = SimStats.from_dict(stats_dict)
            except (KeyError, TypeError, ValueError) as exc:
                problems.append(f"stats do not decode as SimStats: {exc}")
        if problems:
            raise BadRequest(problems)

        service = self.server.service
        row = service.store.ack_lease(lease_id, wall_time=float(wall_time))
        if row is None:
            self._send_json(410, {
                "error": f"lease {lease_id!r} is not live "
                f"(already acked, or expired and reassigned)",
            })
            return
        result = RunResult(
            workload=row["request"]["workload"],
            category=str(payload.get("category", "")),
            paper_tag=str(payload.get("paper_tag", "")),
            config=row["request"]["config"],
            stats=stats,
        )
        counts = service.queue.complete_cell(
            row, result, float(wall_time),
            worker=payload.get("worker") or row["worker"],
        )
        self._send_json(200, {
            "job_id": row["job_id"],
            "index": row["cell_index"],
            "run_id": row["run_id"],
            "remaining": counts["pending"] + counts["leased"],
            "done": counts["done"],
        })


# ----------------------------------------------------------------------
# server construction
# ----------------------------------------------------------------------
def make_server(
    service: Service,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceHTTPServer:
    server = ServiceHTTPServer((host, port), ServiceHandler)
    server.service = service
    server.verbose = verbose
    return server


@contextmanager
def background_server(
    db_path: Optional[str] = None,
    artifact_dir: Optional[str] = None,
    jobs: Optional[int] = 1,
    host: str = "127.0.0.1",
    port: int = 0,
):
    """Run a service on an ephemeral port in a daemon thread (tests, docs).

    Yields the base URL; tears the server and its job queue down on exit.
    """
    service = Service.create(db_path, artifact_dir, jobs=jobs)
    server = make_server(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service", daemon=True
    )
    thread.start()
    try:
        yield f"http://{server.server_address[0]}:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        service.close()
