"""repro.trace — cycle-level pipeline/ACB observability.

A structured, low-overhead tracing subsystem for the core engine and the
ACB machinery.  Enable it by giving the core a
:class:`~repro.trace.config.TraceConfig`::

    from dataclasses import replace
    from repro import Core, SKYLAKE_LIKE
    from repro.trace import TraceConfig

    cfg = replace(SKYLAKE_LIKE, trace=TraceConfig())
    core = Core(workload, cfg, scheme=scheme)
    core.run_window(warmup=3_000, measure=2_000)
    core.trace.finish(core.cycle)

then turn the collected trace into artifacts::

    from repro.trace import export_konata, export_chrome, format_acb_log
    export_konata(core.trace, "trace.konata")     # Konata pipeline viewer
    export_chrome(core.trace, "trace.json")       # Perfetto / chrome://tracing
    print(format_acb_log(core.trace))             # ACB decision log

or from the command line: ``python -m repro trace WORKLOAD --config acb``.

With ``CoreConfig.trace`` left at ``None`` (the default) the engine hot
loop is allocation-free and timing/throughput are unchanged — see
``docs/observability.md`` for the event schema and worked examples.
"""

from repro.trace.chrome import export_chrome
from repro.trace.collector import TraceCollector
from repro.trace.config import TraceConfig
from repro.trace.events import AcbTraceEvent
from repro.trace.konata import export_konata
from repro.trace.timeline import format_acb_log, format_branch_timeline

# NOTE: repro.trace.driver (the traced-run driver shared by the CLI and
# the service) is deliberately NOT re-exported here: it imports repro.core,
# and repro.core.config imports repro.trace.config through this package,
# so an eager import would be circular.  Import it as repro.trace.driver.

__all__ = [
    "AcbTraceEvent",
    "TraceCollector",
    "TraceConfig",
    "export_chrome",
    "export_konata",
    "format_acb_log",
    "format_branch_timeline",
]
