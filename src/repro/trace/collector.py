"""The trace collector: bounded, allocation-light event recording.

One :class:`TraceCollector` is owned by a :class:`~repro.core.engine.Core`
when — and only when — ``CoreConfig.trace`` is set.  The disabled path
costs the engine a single ``self.trace is not None`` test per fetched
micro-op (plus one per retirement/flush/region event), so tier-1 timing
behaviour and benchmark throughput are unchanged when tracing is off;
``tests/test_trace.py`` enforces stat-for-stat identity both ways.

Design notes
------------
* **Micro-ops are recorded by reference.**  ``on_fetch`` appends the
  engine's own :class:`~repro.isa.dyninst.DynInst` to a bounded ring; the
  instance keeps accumulating its stage cycle stamps (``fetch_cycle``,
  ``alloc_cycle``, ``issue_cycle``, ``done_cycle``, ``retire_cycle``,
  ``squash_cycle``) as the pipeline moves it along, and exporters read the
  final values after the run.  No copy, no dict, no per-stage hook.
* **ACB decisions are snapshotted.**  Region records and Dynamo counters
  are mutable and reused, so each decision materializes one
  :class:`~repro.trace.events.AcbTraceEvent` at the moment it happens.
  Decision events are rare (region lifecycles, epoch boundaries), so the
  cost is negligible even with tracing on.
* **Rings drop oldest-first and never silently.**  ``uops_seen`` /
  ``acb_seen`` count everything observed; ``truncated_uops`` /
  ``truncated_acb`` report exactly how much fell off the back, and every
  exporter surfaces that number.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional

from repro.isa.dyninst import DynInst
from repro.trace.config import TraceConfig
from repro.trace.events import AcbTraceEvent


class TraceCollector:
    """Records per-uop lifecycle and ACB decision events for one core."""

    def __init__(self, config: Optional[TraceConfig] = None):
        self.config = config or TraceConfig()
        self.config.validate()
        self._uops: Optional[deque] = (
            deque(maxlen=self.config.uop_capacity) if self.config.uops else None
        )
        self._acb: Optional[deque] = (
            deque(maxlen=self.config.acb_capacity) if self.config.acb else None
        )
        self.uops_seen = 0
        self.acb_seen = 0
        self.start_cycle = 0
        self.end_cycle = 0

    # ------------------------------------------------------------------
    # recording hooks (engine / scheme / Dynamo side)
    # ------------------------------------------------------------------
    def on_fetch(self, dyn: DynInst) -> None:
        """Record one fetched micro-op (called from ``Core._new_dyn``)."""
        ring = self._uops
        if ring is None:
            return
        ring.append(dyn)
        self.uops_seen += 1

    def acb(self, cycle: int, kind: str, pc: int = -1, **data) -> None:
        """Record one ACB decision event (see :mod:`repro.trace.events`)."""
        ring = self._acb
        if ring is None:
            return
        ring.append(AcbTraceEvent(cycle, kind, pc, **data))
        self.acb_seen += 1

    def finish(self, cycle: int) -> None:
        """Close the trace window (exporters clamp open intervals here)."""
        self.end_cycle = cycle

    # ------------------------------------------------------------------
    # read side (exporters)
    # ------------------------------------------------------------------
    @property
    def truncated_uops(self) -> int:
        """Micro-ops observed but no longer in the ring (oldest dropped)."""
        return self.uops_seen - len(self._uops or ())

    @property
    def truncated_acb(self) -> int:
        return self.acb_seen - len(self._acb or ())

    def uop_records(self) -> List[DynInst]:
        """The retained micro-ops, oldest first (fetch order == seq order)."""
        return list(self._uops or ())

    def acb_events(self, kinds: Optional[Iterable[str]] = None) -> List[AcbTraceEvent]:
        """The retained decision events, oldest first, optionally filtered."""
        events = list(self._acb or ())
        if kinds is not None:
            wanted = frozenset(kinds)
            events = [e for e in events if e.kind in wanted]
        return events

    def summary(self) -> str:
        """One-line accounting for CLI output and log headers."""
        parts = [
            f"cycles {self.start_cycle}..{self.end_cycle}",
            f"{self.uops_seen} uops seen"
            + (f" ({self.truncated_uops} truncated)" if self.truncated_uops else ""),
            f"{self.acb_seen} acb events"
            + (f" ({self.truncated_acb} truncated)" if self.truncated_acb else ""),
        ]
        return ", ".join(parts)
