"""Trace-subsystem configuration.

Kept dependency-free so :class:`repro.core.config.CoreConfig` can embed a
:class:`TraceConfig` without importing any collector machinery: the core
only pays for tracing when a config is present (``CoreConfig.trace`` is
``None`` by default, and the engine's hot loop then contains nothing but a
single ``is not None`` test per fetched micro-op).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceConfig:
    """What to record and how much of it to keep.

    Attributes
    ----------
    uops:
        Record the per-micro-op lifecycle (fetch/allocate/issue/execute/
        retire/squash cycles, wrong-path and predicated-false flags).  The
        collector keeps *references* to the engine's in-flight
        :class:`~repro.isa.dyninst.DynInst` objects in a bounded ring, so
        recording adds one append per fetch and zero copies.
    acb:
        Record ACB decision events: region open/close/divergence/
        cancellation, branch resolution inside regions, learning-table
        transitions, tracking-table divergences, and Dynamo epoch/pair/
        reset decisions with the cycle counters that drove them.
    uop_capacity:
        Ring-buffer capacity for micro-op records; the *oldest* records are
        dropped first once the ring is full.  ``uops_seen`` on the
        collector reports how many were observed in total so exporters can
        say exactly how much was truncated.
    acb_capacity:
        Ring-buffer capacity for ACB decision events.
    """

    uops: bool = True
    acb: bool = True
    uop_capacity: int = 1 << 16
    acb_capacity: int = 1 << 14

    def validate(self) -> None:
        if self.uop_capacity <= 0:
            raise ValueError("uop_capacity must be positive")
        if self.acb_capacity <= 0:
            raise ValueError("acb_capacity must be positive")
