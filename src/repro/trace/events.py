"""ACB decision-event records.

Micro-op lifecycle information needs no record type of its own: the
collector keeps references to the engine's :class:`~repro.isa.dyninst.
DynInst` objects, which already carry every per-stage cycle stamp.  ACB
decisions, by contrast, are transient — a region record is reused, a
Dynamo epoch counter is reset — so each decision is snapshotted into an
:class:`AcbTraceEvent` at the moment it happens.

Event kinds
-----------
``region_open``
    A predicated region began dual-path fetch.
    data: ``seq``, ``reconv_pc``, ``conv_type``, ``first_taken``,
    ``true_taken``.
``region_close``
    The front end closed a region (reconverged or declared divergent).
    data: ``seq``, ``fetched``, ``diverged``.
``region_cancel``
    An older flush tore the region down before it could close.
    data: ``seq``.
``region_resolve``
    The predicated branch executed.  data: ``seq``, ``taken``,
    ``pred_taken``, ``diverged``, ``saved_flush`` (the discarded
    prediction was wrong — predication hid a would-be flush).
``learning_load`` / ``learning_converged`` / ``learning_failed``
    Learning Table lifecycle (Section III-B).  ``learning_load`` data:
    ``target``, ``far`` (multi-reconvergence re-learning pass);
    ``learning_converged`` data: ``conv_type``, ``reconv_pc``,
    ``body_size``, ``far``.
``tracking_diverged``
    The Tracking Table saw a learned reconvergence point fail to appear;
    the branch's confidence was reset.
``dynamo_epoch``
    A Dynamo epoch ended.  data: ``epoch``, ``measuring_off``,
    ``cycles``, ``instructions`` (the per-epoch IPC numerator/denominator
    Dynamo compares).
``dynamo_pair``
    An odd/even epoch pair was evaluated (the enable/disable decision,
    Figure 5).  data: ``cycles_off``, ``cycles_on``, ``instructions``,
    ``direction`` (+1 helped / -1 hurt / 0 inconclusive), ``transitions``
    (list of ``(pc, old_fsm, new_fsm)``).
``dynamo_reset``
    Periodic re-learning reset of every FSM/involvement counter.
"""

from __future__ import annotations

from typing import Any, Dict


class AcbTraceEvent:
    """One timestamped ACB machinery decision."""

    __slots__ = ("cycle", "kind", "pc", "data")

    def __init__(self, cycle: int, kind: str, pc: int = -1, **data: Any):
        self.cycle = cycle
        self.kind = kind
        self.pc = pc
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (exporters, decision-log files)."""
        out: Dict[str, Any] = {"cycle": self.cycle, "kind": self.kind}
        if self.pc >= 0:
            out["pc"] = self.pc
        out.update(self.data)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pc = f" pc={self.pc}" if self.pc >= 0 else ""
        return f"<AcbTraceEvent @{self.cycle} {self.kind}{pc} {self.data}>"
