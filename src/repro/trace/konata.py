"""Konata pipeline-viewer exporter.

Writes the Kanata log format consumed by the Konata pipeline visualizer
(https://github.com/shioyadan/Konata) — the same format Onikiri2 and
gem5's O3 pipeline viewer converters emit.  One line per event, tab
separated:

==========  =====================================================
``Kanata\\t0004``        header (format version 4)
``C=\\t<cycle>``         absolute starting cycle
``C\\t<n>``              advance the clock by *n* cycles
``I\\t<id>\\t<iid>\\t<tid>``  declare an instruction (display id, sim id, thread)
``L\\t<id>\\t<type>\\t<text>`` label; type 0 = left pane, 1 = hover detail
``S\\t<id>\\t<lane>\\t<stage>`` stage begin
``E\\t<id>\\t<lane>\\t<stage>`` stage end
``R\\t<id>\\t<rid>\\t<type>``  retire; type 0 = commit, 1 = flush
==========  =====================================================

Stage names map onto the simulator's pipeline: ``F`` fetch queue, ``A``
allocated / waiting in the scheduler, ``X`` executing, ``C`` complete /
waiting to retire.  Squashed micro-ops (wrong path, flushed, torn regions)
end with a type-1 (flush) retire at their squash cycle; micro-ops still in
flight when the trace window closes are flushed at the window edge.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.isa.dyninst import (
    ROLE_BODY,
    ROLE_BRANCH,
    ROLE_JUMPER,
    ROLE_SELECT,
    ST_RETIRED,
    DynInst,
)
from repro.trace.collector import TraceCollector

_ROLE_NAMES = {
    ROLE_BRANCH: "acb-branch",
    ROLE_BODY: "acb-body",
    ROLE_JUMPER: "acb-jumper",
    ROLE_SELECT: "acb-select",
}

# (priority, line) ordering inside one cycle: declarations and labels first,
# then stage ends, stage begins, and retires last.
_P_DECL, _P_END, _P_START, _P_RETIRE = 0, 1, 2, 3


def _detail(dyn: DynInst) -> str:
    bits = [f"seq={dyn.seq}", f"pc={dyn.pc}"]
    if dyn.wrong_path:
        bits.append("wrong-path")
    if dyn.acb_role in _ROLE_NAMES:
        bits.append(f"{_ROLE_NAMES[dyn.acb_role]}(region={dyn.acb_id})")
    if dyn.pred_false:
        bits.append("pred-false")
    if dyn.transparent:
        bits.append("transparent")
    if dyn.diverged:
        bits.append("diverged")
    if dyn.instr.is_cond_branch and dyn.taken is not None:
        bits.append(f"taken={dyn.taken} pred={dyn.pred_taken}")
    if dyn.mem_addr is not None:
        bits.append(f"addr={dyn.mem_addr:#x}")
    return " ".join(bits)


def _stages(dyn: DynInst, end_cycle: int) -> Tuple[List[Tuple[int, str]], int, bool]:
    """Stage begin points, the terminal cycle, and whether it committed."""
    retired = dyn.state == ST_RETIRED
    if retired:
        terminal = dyn.retire_cycle
    elif dyn.squash_cycle >= 0:
        terminal = dyn.squash_cycle
    else:
        terminal = end_cycle  # still in flight at the window edge
    begins = [(dyn.fetch_cycle, "F")]
    for cycle, stage in (
        (dyn.alloc_cycle, "A"),
        (dyn.issue_cycle, "X"),
        (dyn.done_cycle, "C"),
    ):
        if 0 <= cycle <= terminal:
            begins.append((cycle, stage))
    return begins, max(terminal, dyn.fetch_cycle), retired


def export_konata(trace: TraceCollector, path: str) -> int:
    """Write *trace*'s micro-op lifecycle to *path*; returns the uop count.

    The file always loads in Konata, even for partial windows: truncation
    is reported in a leading comment, never silently.
    """
    uops = trace.uop_records()
    lines: List[Tuple[int, int, int, str]] = []  # (cycle, seq, priority, text)

    for file_id, dyn in enumerate(uops):
        begins, terminal, retired = _stages(dyn, trace.end_cycle)
        fetch = dyn.fetch_cycle
        lines.append((fetch, dyn.seq, _P_DECL, f"I\t{file_id}\t{dyn.seq}\t0"))
        lines.append(
            (fetch, dyn.seq, _P_DECL, f"L\t{file_id}\t0\t{dyn.seq}: {dyn.instr}")
        )
        lines.append((fetch, dyn.seq, _P_DECL, f"L\t{file_id}\t1\t{_detail(dyn)}"))
        for i, (cycle, stage) in enumerate(begins):
            if i:
                prev_stage = begins[i - 1][1]
                lines.append((cycle, dyn.seq, _P_END, f"E\t{file_id}\t0\t{prev_stage}"))
            lines.append((cycle, dyn.seq, _P_START, f"S\t{file_id}\t0\t{stage}"))
        last_stage = begins[-1][1]
        lines.append((terminal, dyn.seq, _P_END, f"E\t{file_id}\t0\t{last_stage}"))
        flush = 0 if retired else 1
        lines.append((terminal, dyn.seq, _P_RETIRE, f"R\t{file_id}\t{dyn.seq}\t{flush}"))

    lines.sort(key=lambda item: (item[0], item[2], item[1]))
    start = lines[0][0] if lines else trace.start_cycle
    out = ["Kanata\t0004"]
    if trace.truncated_uops:
        out.append(f"#\ttruncated: {trace.truncated_uops} older uops dropped")
    out.append(f"C=\t{start}")
    clock = start
    for cycle, _seq, _prio, text in lines:
        if cycle > clock:
            out.append(f"C\t{cycle - clock}")
            clock = cycle
        out.append(text)
    with open(path, "w") as fh:
        fh.write("\n".join(out) + "\n")
    return len(uops)
