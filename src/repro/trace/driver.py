"""Traced-run driver shared by the CLI and the service layer.

``python -m repro trace`` and ``POST /api/v1/trace`` both mean the same
thing: re-simulate one workload with the trace collector armed and write
the exported artifacts somewhere.  This module is the single
implementation — run the window, export the requested formats, report
what was written — so the two surfaces cannot drift apart.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core import SKYLAKE_LIKE, Core, scaled
from repro.core.stats import SimStats
from repro.harness.runner import resolve_workload, scheme_for, split_config
from repro.trace.chrome import export_chrome
from repro.trace.config import TraceConfig
from repro.trace.konata import export_konata
from repro.trace.timeline import format_acb_log, format_branch_timeline

#: The exportable artifact formats, in emission order.
TRACE_FORMATS = ("konata", "chrome", "log", "timeline")


@dataclass
class TraceArtifact:
    """One exported file: its format, where it went, and a count detail."""

    format: str      # konata | chrome | log | timeline
    path: str
    detail: str      # human-readable, e.g. "8123 uops"


@dataclass
class TracedRun:
    """Everything a traced simulation produced."""

    workload: str
    config: str
    stats: SimStats
    artifacts: List[TraceArtifact]
    trace_summary: str
    truncated_uops: int
    truncated_acb: int
    wall_time: float

    @property
    def paths(self) -> List[str]:
        return [a.path for a in self.artifacts]


def run_traced(
    workload_ref: str,
    config: str = "acb",
    *,
    out_dir: Optional[str] = None,
    formats: Optional[Sequence[str]] = None,
    warmup: int = 3000,
    measure: int = 2000,
    scale: int = 1,
    pc: Optional[int] = None,
    uop_capacity: int = 1 << 16,
    acb_capacity: int = 1 << 14,
) -> TracedRun:
    """Simulate *workload_ref* with tracing on; export *formats* to *out_dir*.

    Raises ``ValueError`` for an unknown format and lets workload/config
    resolution errors propagate — callers validate their own surface.
    """
    formats = list(dict.fromkeys(formats)) if formats else list(TRACE_FORMATS)
    for fmt in formats:
        if fmt not in TRACE_FORMATS:
            raise ValueError(
                f"unknown trace format {fmt!r}; choose from {TRACE_FORMATS}"
            )

    workload = resolve_workload(workload_ref)
    trace_cfg = TraceConfig(uop_capacity=uop_capacity, acb_capacity=acb_capacity)
    core_cfg = replace(scaled(scale, SKYLAKE_LIKE), trace=trace_cfg)
    scheme = scheme_for(workload, config)
    scheme_name, predictor = split_config(config)
    if scheme_name == "oracle-bp":
        predictor = "oracle"

    started = time.perf_counter()
    core = Core(workload, core_cfg, scheme=scheme, predictor=predictor)
    stats = core.run_window(warmup, measure)
    core.trace.finish(core.cycle)
    wall_time = time.perf_counter() - started

    slug = workload_ref.replace(":", "_").replace("/", "_")
    out_dir = out_dir or os.path.join(".repro_traces", f"{slug}-{config}")
    os.makedirs(out_dir, exist_ok=True)

    artifacts: List[TraceArtifact] = []
    if "konata" in formats:
        path = os.path.join(out_dir, "trace.konata")
        count = export_konata(core.trace, path)
        artifacts.append(TraceArtifact(
            "konata", path, f"{count} uops (open with the Konata pipeline viewer)"
        ))
    if "chrome" in formats:
        path = os.path.join(out_dir, "trace.json")
        count = export_chrome(core.trace, path)
        artifacts.append(TraceArtifact(
            "chrome", path, f"{count} events (load at https://ui.perfetto.dev)"
        ))
    if "log" in formats:
        path = os.path.join(out_dir, "acb_log.txt")
        with open(path, "w") as handle:
            handle.write(format_acb_log(core.trace))
        artifacts.append(TraceArtifact(
            "log", path, f"{core.trace.acb_seen} ACB decision events"
        ))
    if "timeline" in formats:
        path = os.path.join(out_dir, "timeline.txt")
        with open(path, "w") as handle:
            handle.write(format_branch_timeline(core.trace, pc=pc))
        artifacts.append(TraceArtifact("timeline", path, "per-branch timeline"))

    return TracedRun(
        workload=workload_ref,
        config=config,
        stats=stats,
        artifacts=artifacts,
        trace_summary=core.trace.summary(),
        truncated_uops=core.trace.truncated_uops,
        truncated_acb=core.trace.truncated_acb,
        wall_time=wall_time,
    )
