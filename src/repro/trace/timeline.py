"""Plain-text trace views: the ACB decision log and per-branch timelines.

Where the Konata/Chrome exporters answer "what did the pipeline do",
these answer "why did ACB decide what it decided" — e.g. walking one
branch from Critical-Table saturation through convergence learning,
predication, and a Dynamo disable, without leaving the terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.acb.acb_table import STATE_NAMES
from repro.isa.dyninst import ROLE_BRANCH, ST_RETIRED, DynInst
from repro.trace.collector import TraceCollector
from repro.trace.events import AcbTraceEvent


def _dir(taken: Optional[bool]) -> str:
    if taken is None:
        return "?"
    return "T" if taken else "NT"


def _fsm(state: int) -> str:
    return STATE_NAMES.get(state, str(state))


def _format_event(event: AcbTraceEvent) -> str:
    d = event.data
    head = f"[cycle {event.cycle:>8}] {event.kind:<18}"
    if event.pc >= 0:
        head += f" pc={event.pc:<5}"
    if event.kind == "region_open":
        return head + (
            f" seq={d['seq']} reconv={d['reconv_pc']} type={d['conv_type']}"
            f" first={_dir(d['first_taken'])} actual={_dir(d['true_taken'])}"
        )
    if event.kind == "region_close":
        outcome = "diverged" if d.get("diverged") else "reconverged"
        return head + f" seq={d['seq']} fetched={d['fetched']} {outcome}"
    if event.kind == "region_cancel":
        return head + f" seq={d['seq']} torn by an older flush"
    if event.kind == "region_resolve":
        tail = f" seq={d['seq']} taken={_dir(d['taken'])} pred={_dir(d['pred_taken'])}"
        if d.get("saved_flush"):
            tail += " saved-flush"
        if d.get("diverged"):
            tail += " diverged"
        return head + tail
    if event.kind == "learning_load":
        tail = f" target={d['target']}"
        if d.get("far"):
            tail += " (far reconvergence re-learn)"
        return head + tail
    if event.kind == "learning_converged":
        tail = (
            f" type={d['conv_type']} reconv={d['reconv_pc']}"
            f" body={d['body_size']}"
        )
        if d.get("far"):
            tail += " (far)"
        return head + tail
    if event.kind == "learning_failed":
        return head + " no convergence within the scan limit"
    if event.kind == "tracking_diverged":
        return head + " learned reconvergence point missed; confidence reset"
    if event.kind == "dynamo_epoch":
        mode = "ACB-off" if d["measuring_off"] else "ACB-on"
        ipc = d["instructions"] / d["cycles"] if d["cycles"] else 0.0
        return head + (
            f" epoch={d['epoch']} ({mode}) cycles={d['cycles']}"
            f" instructions={d['instructions']} ipc={ipc:.3f}"
        )
    if event.kind == "dynamo_pair":
        verdict = {1: "predication helped", -1: "predication hurt",
                   0: "inconclusive"}[d["direction"]]
        line = head + (
            f" cycles_off={d['cycles_off']} cycles_on={d['cycles_on']}"
            f" ({verdict})"
        )
        for pc, old, new in d.get("transitions", ()):
            line += f"\n{'':>25}-> pc={pc} {_fsm(old)} -> {_fsm(new)}"
        return line
    if event.kind == "dynamo_reset":
        return head + " periodic FSM/involvement reset"
    extras = " ".join(f"{k}={v}" for k, v in d.items())
    return (head + " " + extras).rstrip()


def format_acb_log(trace: TraceCollector) -> str:
    """The full ACB decision log, one event per line, oldest first."""
    lines = [f"# acb decision log — {trace.summary()}"]
    if trace.truncated_acb:
        lines.append(f"# NOTE: {trace.truncated_acb} older events dropped")
    lines.extend(_format_event(e) for e in trace.acb_events())
    return "\n".join(lines)


def _branch_occurrences(trace: TraceCollector) -> Dict[int, List[DynInst]]:
    by_pc: Dict[int, List[DynInst]] = {}
    for dyn in trace.uop_records():
        if dyn.instr.is_cond_branch and not dyn.wrong_path:
            by_pc.setdefault(dyn.pc, []).append(dyn)
    return by_pc


def _occurrence_line(dyn: DynInst) -> str:
    if dyn.acb_role == ROLE_BRANCH:
        outcome = "diverged" if dyn.diverged else "predicated"
        if not dyn.diverged and dyn.pred_taken is not None and dyn.taken is not None \
                and dyn.pred_taken != dyn.taken:
            outcome += " (saved flush)"
    elif dyn.state != ST_RETIRED and dyn.squash_cycle >= 0:
        outcome = "squashed"
    elif dyn.pred_taken is not None and dyn.taken is not None \
            and dyn.pred_taken != dyn.taken:
        outcome = "MISPREDICT"
    else:
        outcome = "correct"
    return (
        f"  cycle {dyn.fetch_cycle:>8}  seq={dyn.seq:<7}"
        f" pred={_dir(dyn.pred_taken):<2} actual={_dir(dyn.taken):<2} {outcome}"
    )


def format_branch_timeline(
    trace: TraceCollector,
    pc: Optional[int] = None,
    max_occurrences: int = 50,
) -> str:
    """Per-static-branch occurrence timelines from the micro-op ring.

    For every correct-path conditional branch PC (or just *pc*): each
    retained occurrence with its prediction, outcome, and predication
    fate, followed by that PC's region events from the decision log.
    Shows at most *max_occurrences* of the newest occurrences per branch
    and says how many were omitted.
    """
    by_pc = _branch_occurrences(trace)
    if pc is not None:
        by_pc = {pc: by_pc.get(pc, [])}
    region_events: Dict[int, List[AcbTraceEvent]] = {}
    for event in trace.acb_events():
        if event.pc >= 0 and event.kind.startswith(("region_", "learning_",
                                                    "tracking_")):
            region_events.setdefault(event.pc, []).append(event)

    lines = [f"# per-branch timeline — {trace.summary()}"]
    for branch_pc in sorted(by_pc):
        occurrences = by_pc[branch_pc]
        mispredicted = sum(1 for d in occurrences if d.mispredicted)
        predicated = sum(1 for d in occurrences if d.acb_role == ROLE_BRANCH)
        lines.append("")
        lines.append(
            f"branch pc={branch_pc}: {len(occurrences)} occurrences in window"
            f" ({mispredicted} mispredicted, {predicated} predicated)"
        )
        omitted = len(occurrences) - max_occurrences
        if omitted > 0:
            lines.append(f"  ... {omitted} older occurrences omitted ...")
        lines.extend(_occurrence_line(d) for d in occurrences[-max_occurrences:])
        for event in region_events.get(branch_pc, ())[-max_occurrences:]:
            lines.append("  " + _format_event(event))
    return "\n".join(lines)
