"""Chrome trace-event JSON exporter (loads in Perfetto / chrome://tracing).

Produces the JSON object form of the Trace Event Format: a top-level
``{"traceEvents": [...]}`` with one complete (``"ph": "X"``) event per
pipeline-stage occupancy and instant (``"ph": "i"``) events for ACB
decisions.  Cycles map 1:1 onto microsecond timestamps, so "1 µs" in the
viewer reads as one core cycle.

Track layout:

* **pid 1 "pipeline"** — one thread row per stage (``F`` fetch, ``A``
  alloc/wait, ``X`` execute, ``C`` complete/wait-retire): each micro-op
  contributes one slice per stage it occupied, named ``<seq>:<uop>@<pc>``
  with its flags in ``args``.
* **pid 2 "acb"** — thread rows ``regions`` (one slice per predicated
  region, open → close), ``learning``/``tracking`` and ``dynamo``
  (instants carrying the decision's counters in ``args``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.isa.dyninst import ST_RETIRED, DynInst
from repro.trace.collector import TraceCollector
from repro.trace.konata import _ROLE_NAMES, _stages

_PID_PIPE = 1
_PID_ACB = 2
_STAGE_TIDS = {"F": 1, "A": 2, "X": 3, "C": 4}
_TID_REGIONS = 1
_TID_LEARNING = 2
_TID_DYNAMO = 3

_LEARNING_KINDS = (
    "learning_load",
    "learning_converged",
    "learning_failed",
    "tracking_diverged",
)
_DYNAMO_KINDS = ("dynamo_epoch", "dynamo_pair", "dynamo_reset")


def _meta(pid: int, name: str, tid: int = 0, thread: str = "") -> List[Dict[str, Any]]:
    events = [
        {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
         "args": {"name": name}},
    ]
    if thread:
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
             "args": {"name": thread}}
        )
    return events


def _uop_args(dyn: DynInst) -> Dict[str, Any]:
    args: Dict[str, Any] = {"seq": dyn.seq, "pc": dyn.pc}
    if dyn.wrong_path:
        args["wrong_path"] = True
    if dyn.acb_role in _ROLE_NAMES:
        args["role"] = _ROLE_NAMES[dyn.acb_role]
        args["region"] = dyn.acb_id
    if dyn.pred_false:
        args["pred_false"] = True
    if dyn.state != ST_RETIRED:
        args["squashed"] = True
    return args


def _uop_events(dyn: DynInst, end_cycle: int) -> List[Dict[str, Any]]:
    begins, terminal, _retired = _stages(dyn, end_cycle)
    name = f"{dyn.seq}:{dyn.instr.uop.name}@{dyn.pc}"
    args = _uop_args(dyn)
    events = []
    for i, (cycle, stage) in enumerate(begins):
        stop = begins[i + 1][0] if i + 1 < len(begins) else terminal
        events.append({
            "name": name,
            "cat": "uop",
            "ph": "X",
            "ts": cycle,
            "dur": max(stop - cycle, 0),
            "pid": _PID_PIPE,
            "tid": _STAGE_TIDS[stage],
            "args": args,
        })
    return events


def _acb_events(trace: TraceCollector) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    open_regions: Dict[int, Any] = {}
    for event in trace.acb_events():
        if event.kind == "region_open":
            open_regions[event.data["seq"]] = event
            continue
        if event.kind in ("region_close", "region_cancel"):
            seq = event.data["seq"]
            opened = open_regions.pop(seq, None)
            start = opened.cycle if opened is not None else event.cycle
            outcome = (
                "cancelled" if event.kind == "region_cancel"
                else "diverged" if event.data.get("diverged")
                else "reconverged"
            )
            args = dict(opened.data) if opened is not None else {"seq": seq}
            args.update(event.data)
            args["outcome"] = outcome
            events.append({
                "name": f"region@{event.pc if event.pc >= 0 else '?'}",
                "cat": "acb",
                "ph": "X",
                "ts": start,
                "dur": max(event.cycle - start, 0),
                "pid": _PID_ACB,
                "tid": _TID_REGIONS,
                "args": args,
            })
            continue
        if event.kind in _LEARNING_KINDS:
            tid = _TID_LEARNING
        elif event.kind in _DYNAMO_KINDS:
            tid = _TID_DYNAMO
        else:  # region_resolve and any future kinds ride the regions row
            tid = _TID_REGIONS
        events.append({
            "name": event.kind,
            "cat": "acb",
            "ph": "i",
            "s": "t",
            "ts": event.cycle,
            "pid": _PID_ACB,
            "tid": tid,
            "args": event.to_dict(),
        })
    # regions still open at the window edge
    for seq, opened in open_regions.items():
        events.append({
            "name": f"region@{opened.pc}",
            "cat": "acb",
            "ph": "X",
            "ts": opened.cycle,
            "dur": max(trace.end_cycle - opened.cycle, 0),
            "pid": _PID_ACB,
            "tid": _TID_REGIONS,
            "args": dict(opened.data, outcome="open-at-end"),
        })
    return events


def export_chrome(trace: TraceCollector, path: str) -> int:
    """Write *trace* as Chrome trace-event JSON; returns the event count."""
    events: List[Dict[str, Any]] = []
    events += _meta(_PID_PIPE, "pipeline")
    for stage, tid in _STAGE_TIDS.items():
        events += _meta(_PID_PIPE, "pipeline", tid, f"stage {stage}")[1:]
    events += _meta(_PID_ACB, "acb")
    for tid, thread in ((_TID_REGIONS, "regions"), (_TID_LEARNING, "learning"),
                        (_TID_DYNAMO, "dynamo")):
        events += _meta(_PID_ACB, "acb", tid, thread)[1:]
    for dyn in trace.uop_records():
        events += _uop_events(dyn, trace.end_cycle)
    events += _acb_events(trace)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.trace",
            "cycles": f"{trace.start_cycle}..{trace.end_cycle}",
            "uops_seen": trace.uops_seen,
            "uops_truncated": trace.truncated_uops,
            "acb_events_seen": trace.acb_seen,
            "acb_events_truncated": trace.truncated_acb,
        },
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    return len(events)
