"""Dynamic-predication interface between the core and a scheme (ACB/DMP/DHP).

The core owns the *mechanics* of predication — dual-path fetch with jumper
override, divergence timeouts, stall-until-resolve dependencies, register
transparency, select-micro-op injection — because they are pipeline
plumbing.  A :class:`PredicationScheme` owns the *policy*: which dynamic
branch instances to predicate, where their reconvergence point is, and any
learning/throttling state.  ACB, DMP and DHP are all schemes over the same
mechanics, mirroring how the paper frames them as points in one design
space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.branch.base import Prediction
from repro.isa.dyninst import DynInst

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import Core


@dataclass
class PredicationPlan:
    """Instructions from a scheme for predicating one dynamic branch instance.

    Attributes
    ----------
    reconv_pc:
        Learned/known reconvergence point.
    conv_type:
        1, 2 or 3 per Figure 3.  Type 1 fetches a single segment (the
        not-taken body) and falls into the reconvergence point; Types 2/3
        redirect at the Jumper branch to fetch the second path.
    first_taken:
        Direction fetched first: ``False`` (not-taken) for Types 1/2,
        ``True`` for Type 3 (Section III-C1).
    eager:
        DMP-style: body instructions execute before the branch resolves and
        select micro-ops reconcile values at the reconvergence point.  When
        ``False`` (ACB), the body is stalled on the branch and the
        predicated-false path becomes transparent moves.
    select_uops:
        Inject one select micro-op per region live-out at the reconvergence
        point (DMP; also ACB's optional select-uop variant, Section V-C).
    max_fetch / max_cycles:
        Divergence thresholds: fetched instructions beyond which, or cycles
        after which, the instance is declared divergent and flushed.
    source:
        Which learner produced the reconvergence point: ``"static"`` for
        the fetch-stream scanner (and the CFG-reading baselines),
        ``"dmp"`` for the dynamic merge-point table.  Purely a
        provenance label for tracing/diagnostics — the region mechanics
        are identical.
    """

    branch_pc: int
    reconv_pc: int
    conv_type: int
    first_taken: bool
    eager: bool = False
    select_uops: bool = False
    max_fetch: int = 96
    max_cycles: int = 400
    source: str = "static"


@dataclass
class RegionRecord:
    """Run-time state of one in-flight predicated region."""

    plan: PredicationPlan
    branch: DynInst
    true_taken: Optional[bool]          # architectural outcome (known at fetch)
    func_snapshot: Optional[tuple]      # functional rewind point (divergence)
    segment: int = 1                    # 1 = first fetched path, 2 = second
    seg_taken: bool = False             # direction of the current segment
    fetched: int = 0                    # region instructions fetched so far
    opened_cycle: int = 0
    closed: bool = False
    body: List[DynInst] = field(default_factory=list)
    # last writer per logical register on each side, for select uops:
    writers_taken: Dict[int, DynInst] = field(default_factory=dict)
    writers_nt: Dict[int, DynInst] = field(default_factory=dict)

    @property
    def seg_is_true(self) -> bool:
        """Is the currently fetched segment the architecturally true path?"""
        return self.true_taken is not None and self.seg_taken == self.true_taken


class PredicationScheme:
    """Base class for predication policies; default = never predicate."""

    name = "none"
    #: push the *actual* outcome into the global history when predicating —
    #: only the DMP-PBH oracle (Fig. 9) sets this.
    updates_history_on_predication = False

    def attach(self, core: "Core") -> None:
        """Called once by the core before simulation starts."""
        self.core = core

    def consider(self, dyn: DynInst, prediction: Prediction) -> Optional[PredicationPlan]:
        """Decide whether to predicate this dynamic instance.

        Called for every correct-path conditional branch fetched outside an
        open region.  *prediction* is the branch predictor's output (used by
        confidence-gated schemes); returning a plan discards it.
        """
        return None

    def observe_fetch(self, dyn: DynInst) -> None:
        """Called for every fetched instruction (convergence learning)."""

    def on_branch_resolved(
        self, dyn: DynInst, mispredicted: bool, predicated: bool
    ) -> None:
        """Called when a correct-path conditional branch executes."""

    def on_region_closed(self, region: RegionRecord, diverged: bool) -> None:
        """Called when the front end closes a region (reconverged or not)."""

    def on_flush(self) -> None:
        """Called on every pipeline flush.

        Fetch-stream observers (convergence learning/tracking) must abort
        any in-progress scan: the post-flush stream is a different path and
        splicing it onto the pre-flush stream fabricates convergence.
        """

    def on_retire(self, dyn: DynInst) -> None:
        """Called at every retirement (drives Dynamo's epochs)."""

    def storage_bytes(self) -> float:
        """Hardware budget of the scheme's tables (Table I)."""
        return 0.0


def region_live_outs(
    region: RegionRecord, cap: int = 8
) -> List[Tuple[int, Optional[DynInst], Optional[DynInst]]]:
    """Registers written in the region, with each side's last writer.

    Used to synthesize select micro-ops; capped because real DMP hardware
    bounds the number of selects it injects.
    """
    regs = sorted(set(region.writers_taken) | set(region.writers_nt))[:cap]
    return [
        (r, region.writers_taken.get(r), region.writers_nt.get(r))
        for r in regs
    ]
