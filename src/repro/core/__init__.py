"""The out-of-order core: configuration, statistics, and the cycle engine.

Public API map (paper section → class):

* Table II core parameters — :class:`CoreConfig` (:data:`SKYLAKE_LIKE`
  for the paper's baseline, :func:`scaled` for the Section V-D
  wider/deeper variants)
* Section IV simulated machine — :class:`Core`, the cycle engine:
  fetch/allocate/issue/complete/retire over a heap-backed completion
  event queue, full wrong-path execution, flush recovery
  (:class:`DeadlockError` on a wedged pipeline; hot-loop design notes
  in docs/performance.md)
* Sections II–III predication *mechanics* (policy-free) — the
  :class:`PredicationScheme` interface a scheme implements, the
  :class:`PredicationPlan` it returns per branch instance, the
  :class:`RegionRecord` region lifecycle the engine drives (dual-path
  fetch, Jumper override, transparency, divergence), and
  :func:`region_live_outs` for select-uop placement
* Figure 6/Equation 1 measurement — :class:`SimStats` (IPC, flushes,
  predication accounting; bit-identical across hosts) and the
  per-branch :class:`BranchPCStats` behind the Figure 7 correlation.

Policies plug in from outside: :class:`repro.acb.AcbScheme` and the
baselines (`repro.baselines`) implement :class:`PredicationScheme`.
"""

from repro.core.config import SKYLAKE_LIKE, CoreConfig, scaled
from repro.core.engine import Core, DeadlockError
from repro.core.predication import (
    PredicationPlan,
    PredicationScheme,
    RegionRecord,
    region_live_outs,
)
from repro.core.stats import BranchPCStats, SimStats

__all__ = [
    "Core",
    "CoreConfig",
    "DeadlockError",
    "SKYLAKE_LIKE",
    "scaled",
    "PredicationPlan",
    "PredicationScheme",
    "RegionRecord",
    "region_live_outs",
    "BranchPCStats",
    "SimStats",
]
