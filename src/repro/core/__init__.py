"""The out-of-order core: configuration, statistics, and the cycle engine."""

from repro.core.config import CoreConfig, SKYLAKE_LIKE, scaled
from repro.core.engine import Core, DeadlockError
from repro.core.predication import (
    PredicationPlan,
    PredicationScheme,
    RegionRecord,
    region_live_outs,
)
from repro.core.stats import BranchPCStats, SimStats

__all__ = [
    "Core",
    "CoreConfig",
    "DeadlockError",
    "SKYLAKE_LIKE",
    "scaled",
    "PredicationPlan",
    "PredicationScheme",
    "RegionRecord",
    "region_live_outs",
    "BranchPCStats",
    "SimStats",
]
