"""Cycle-level out-of-order core simulator.

Models the pipeline of the paper's Table II machine: fetch with branch
prediction and full wrong-path execution, rename with RAT checkpoints, ROB /
issue-queue / load-store-queue resources, port-constrained oldest-first
issue, store→load forwarding with conservative memory disambiguation,
in-order retirement, and misprediction flush/recovery.  Dynamic predication
mechanics (dual-path fetch, jumper override, divergence, register
transparency, select micro-ops) are built in and driven by a
:class:`~repro.core.predication.PredicationScheme`.

Functional execution advances along the correct path only (trace-driven
style): a correct-path fetch steps the :class:`FunctionalExecutor`; fetch
follows predictions onto the wrong path without stepping it, and flush
recovery resumes the correct path where it left off.  Divergent predicated
regions rewind the executor through snapshots.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional

from repro.branch import BranchTargetBuffer, make_predictor
from repro.core.config import SKYLAKE_LIKE, CoreConfig
from repro.core.predication import (
    PredicationPlan,
    PredicationScheme,
    RegionRecord,
    region_live_outs,
)
from repro.core.stats import SimStats
from repro.isa import Instruction, UopClass
from repro.isa.dyninst import (
    ROLE_BODY,
    ROLE_BRANCH,
    ROLE_JUMPER,
    ROLE_SELECT,
    ST_ALLOCATED,
    ST_DONE,
    ST_ISSUED,
    ST_RETIRED,
    ST_SQUASHED,
    DynInst,
)
from repro.memory import MemoryHierarchy
from repro.validate.events import RetireEvent
from repro.workloads.workload import FunctionalExecutor, Workload

_WRONG_PATH_MEM_BASE = 1 << 32
_WRONG_PATH_MEM_MASK = (1 << 24) - 64  # 16 MB, line aligned


class DeadlockError(RuntimeError):
    """Raised when the pipeline makes no forward progress."""


class Core:
    """One simulated out-of-order core running one workload."""

    def __init__(
        self,
        workload: Workload,
        config: CoreConfig = SKYLAKE_LIKE,
        scheme: Optional[PredicationScheme] = None,
        predictor: Optional[str] = None,
        seed_offset: int = 0,
        func: Optional[FunctionalExecutor] = None,
    ):
        config.validate()
        self.workload = workload
        self.program = workload.program
        self._instrs = workload.program.instructions  # direct tuple for fetch
        self.config = config
        # the functional stream is injectable so the lane engine
        # (repro.core.lanes) can hand N cores replay views over one shared
        # memoized correct-path trace; any replacement must produce the
        # exact step/snapshot/restore sequence of a fresh executor.
        self.func = func if func is not None else FunctionalExecutor(workload, seed_offset)
        self.bp = make_predictor(predictor or config.predictor)
        self.btb = BranchTargetBuffer(config.btb_sets, config.btb_ways)
        self.mem = MemoryHierarchy(config.memory)
        self.stats = SimStats()
        # trace collector (repro.trace): None keeps every hook to a single
        # `is not None` test.  Created before the scheme attaches so the
        # scheme can wire its own machinery (e.g. Dynamo) to the collector.
        self.trace = None
        if config.trace is not None:
            from repro.trace.collector import TraceCollector

            self.trace = TraceCollector(config.trace)
        self.scheme = scheme
        if scheme is not None:
            scheme.attach(self)

        # pipeline state
        self.cycle = 0
        self._seq = 0
        self.fetch_pc = 0
        self.on_correct_path = True
        self.fetch_resume_cycle = 0     # fetch blocked until this cycle
        self.fetch_halted = False       # divergence: wait for the flush
        self.fetchq: deque = deque()
        self.rob: deque = deque()
        self.iq_count = 0
        self.sq: deque = deque()        # stores in program order (head oldest)
        self.lq_count = 0
        self.rat: List[Optional[DynInst]] = [None] * 17
        # completion events as one heap of (cycle, seq, dyn): draining the
        # heap visits a cycle's events oldest-first, exactly the order the
        # old per-cycle bucket dict produced after its seq sort, and the
        # idle-skip reads the next event cycle in O(1) from the heap top.
        self._eventq: List = []
        self._ready: List = []          # heap of (seq, DynInst)
        self._blocked_loads: List[DynInst] = []
        self.region: Optional[RegionRecord] = None        # open at fetch
        self.unresolved_regions: Dict[int, RegionRecord] = {}
        self._last_retire_cycle = 0
        self.retire_log: Optional[List[DynInst]] = None
        self._retire_log_cap = 0
        self._cycle_offset = 0
        self.arch_trace: Optional[List[RetireEvent]] = None
        self._arch_trace_cap = 0
        self.checker = None
        if config.debug_checks:
            from repro.validate.checker import InvariantChecker

            self.checker = InvariantChecker(self)

        # hot-loop constants hoisted out of the per-cycle stages.
        # CoreConfig is frozen, so these cannot drift from self.config.
        self._fetch_width = config.fetch_width
        self._fetch_queue = config.fetch_queue
        self._alloc_width = config.alloc_width
        self._retire_width = config.retire_width
        self._rob_size = config.rob_size
        self._iq_size = config.iq_size
        self._lq_size = config.lq_size
        self._sq_size = config.sq_size
        self._ports_items = tuple(config.ports.items())
        self._issue_budget = sum(config.ports.values())

    # ==================================================================
    # Public driver
    # ==================================================================
    def run(self, max_instructions: int, max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until *max_instructions* architectural retirements
        (within the current measurement window).

        The loop body is an inlined :meth:`step` with a per-stage guard in
        front of each stage call, so a stage that provably has no work this
        cycle costs one queue test instead of a method call.  Each guard
        replicates the stage's own early-exit bookkeeping (``_retire``
        counts empty-ROB cycles), keeping ``run`` and an external
        ``step()`` loop bit-identical in SimStats.
        """
        budget = max_cycles if max_cycles is not None else max_instructions * 80 + 200_000
        cap = self.cycle + budget
        stats = self.stats
        fast_forward = self.config.fast_forward
        checker = self.checker
        rob = self.rob
        ready = self._ready
        eventq = self._eventq
        fetchq = self.fetchq
        retire = self._retire
        complete = self._complete
        issue = self._issue
        allocate = self._allocate
        fetch = self._fetch
        while stats.instructions < max_instructions:
            cycle = self.cycle
            if cycle >= cap:
                raise DeadlockError(
                    f"cycle cap hit at {cycle} "
                    f"({stats.instructions}/{max_instructions} instructions)"
                )
            if rob:
                if rob[0].state == ST_DONE:
                    retire()
            else:
                stats.empty_rob_cycles += 1
            if eventq and eventq[0][0] <= cycle:
                complete()
            if ready:
                issue()
            if fetchq:
                allocate()
            if self.fetch_halted or cycle < self.fetch_resume_cycle:
                # _fetch's stall path, sans call: count the stall; the
                # region-timeout tick only matters with an open region.
                if self.region is None:
                    stats.fetch_stall_cycles += 1
                else:
                    fetch()
            else:
                fetch()
            if checker is not None:
                checker.on_cycle()
            self.cycle = cycle + 1
            # cheap preconditions of _maybe_fast_forward, checked inline:
            # anything ready to issue (even a stale entry the full check
            # would lazily drop) or no pending event means no skip.  The
            # skip is stats-neutral by construction, so guarding it more
            # coarsely than the full check cannot change any counter.
            if fast_forward and eventq and not ready:
                self._maybe_fast_forward()
            if self.cycle - self._last_retire_cycle > 20_000:
                raise DeadlockError(self._deadlock_report())
        stats.cycles = self.cycle - self._cycle_offset
        return stats

    def _maybe_fast_forward(self) -> None:
        """Jump over cycles in which no pipeline stage can act.

        Safe only when every stage is provably idle until the next
        completion event: nothing ready to issue, the ROB head unfinished,
        no open predicated region (its timeout is cycle-based), and the
        front end unable to feed allocation — either fetch is blocked with
        an empty queue, or allocation is blocked on a back-end resource
        that only an event can free.  The per-cycle stall counters the idle
        loop would have produced are accounted identically.
        """
        # drop lazily-deleted entries so a stale heap doesn't mask idleness
        ready = self._ready
        while ready and (ready[0][1].state != ST_ALLOCATED or ready[0][1].hold):
            heapq.heappop(ready)
        if (
            ready
            or self.region is not None
            or not self.rob
            or self.rob[0].state == ST_DONE
            or not self._eventq
        ):
            return
        fetch_blocked = self.fetch_halted or self.cycle < self.fetch_resume_cycle
        if self.fetchq:
            # allocation must be blocked by a resource only completions free
            head = self.fetchq[0]
            cfg = self.config
            alloc_blocked = (
                len(self.rob) >= cfg.rob_size
                or self.iq_count >= cfg.iq_size
                or (head.instr.is_load and self.lq_count >= cfg.lq_size)
                or (head.instr.is_store and len(self.sq) >= cfg.sq_size)
            )
            if not alloc_blocked:
                return
            if not fetch_blocked and len(self.fetchq) < cfg.fetch_queue:
                return  # fetch would still make (queue) progress
            emulate_alloc_stall = True
        else:
            if not fetch_blocked:
                return
            emulate_alloc_stall = False

        skip_to = self._eventq[0][0]
        if not self.fetch_halted and self.fetch_resume_cycle > self.cycle:
            skip_to = min(skip_to, self.fetch_resume_cycle)
        skipped = skip_to - self.cycle
        if skipped <= 0:
            return
        # reproduce what the idle cycles would have counted
        self.stats.fetch_stall_cycles += skipped
        if emulate_alloc_stall:
            self.stats.alloc_stall_cycles += skipped
        self.cycle = skip_to

    def step(self) -> None:
        """Advance one cycle."""
        self._retire()
        self._complete()
        self._issue()
        self._allocate()
        self._fetch()
        if self.checker is not None:
            self.checker.on_cycle()
        self.cycle += 1

    def reset_stats(self) -> SimStats:
        """Start a fresh measurement window, keeping all learned state.

        Standard trace-slice methodology: run a warm-up period so the
        caches, predictor and (when present) the predication scheme's
        tables reach steady state, then measure a fresh window.  Returns
        the new stats object.
        """
        self.stats = SimStats()
        self._cycle_offset = self.cycle
        return self.stats

    def run_window(self, warmup: int, measure: int) -> SimStats:
        """Warm up for *warmup* instructions, then measure *measure* more."""
        if warmup > 0:
            self.run(warmup)
        start_cycle = self.cycle
        self.reset_stats()
        self.run(measure)
        self.stats.cycles = self.cycle - start_cycle
        return self.stats

    def enable_retire_log(self, cap: int = 50_000) -> List[DynInst]:
        """Record retired micro-ops (for offline criticality analysis)."""
        self.retire_log = []
        self._retire_log_cap = cap
        return self.retire_log

    def enable_arch_trace(self, cap: int = 1 << 20) -> List[RetireEvent]:
        """Record the architectural retirement trace for differential
        validation: one :class:`RetireEvent` per retired instruction that is
        neither predicated-false nor an injected select micro-op — exactly
        the stream the golden in-order model produces."""
        self.arch_trace = []
        self._arch_trace_cap = cap
        return self.arch_trace

    # ==================================================================
    # Retire
    # ==================================================================
    def _retire(self) -> None:
        """In-order retirement from the ROB head.

        SQ invariant: stores enter ``self.sq`` at rename in sequence order
        and retire in sequence order, and a flush only drops stores from
        the *tail* (younger than the flushing branch).  A store that
        reaches retirement still holding an SQ slot (``lsq_index >= 0``)
        is therefore always the SQ head — see :meth:`_sq_remove`.
        """
        rob = self.rob
        stats = self.stats
        if not rob:
            stats.empty_rob_cycles += 1
            return
        width = self._retire_width
        budget = width
        cycle = self.cycle
        checker = self.checker
        scheme = self.scheme
        retire_log = self.retire_log
        arch_trace = self.arch_trace
        while budget and rob and rob[0].state == ST_DONE:
            dyn = rob.popleft()
            if checker is not None:
                checker.on_retire(dyn)
            dyn.state = ST_RETIRED
            dyn.retire_cycle = cycle
            stats.retired_uops += 1
            instr = dyn.instr
            if instr.is_store:
                if dyn.lsq_index >= 0:
                    self._sq_remove(dyn)
                if not dyn.pred_false and dyn.mem_addr is not None:
                    self.mem.store(dyn.mem_addr)
            elif instr.is_load:
                self.lq_count -= 1
            if not dyn.pred_false and dyn.acb_role != ROLE_SELECT:
                stats.instructions += 1
                if (
                    arch_trace is not None
                    and len(arch_trace) < self._arch_trace_cap
                ):
                    arch_trace.append(
                        RetireEvent(
                            pc=dyn.pc,
                            dst=instr.dst,
                            taken=dyn.taken if instr.is_branch else None,
                            addr=dyn.mem_addr if instr.is_mem else None,
                            store=instr.is_store,
                        )
                    )
            if retire_log is not None and len(retire_log) < self._retire_log_cap:
                retire_log.append(dyn)
            if scheme is not None:
                scheme.on_retire(dyn)
            budget -= 1
        if budget != width:
            self._last_retire_cycle = cycle

    def _sq_remove(self, dyn: DynInst) -> None:
        """Drop a retiring store from the store queue.

        By the SQ invariant documented on :meth:`_retire`, the retiring
        store is always the queue head, so this is an O(1) popleft.  The
        linear fallback is purely defensive — the ordering that could make
        it run would already trip the
        :class:`~repro.validate.checker.InvariantChecker`.
        """
        sq = self.sq
        if sq and sq[0] is dyn:
            sq.popleft()
            return
        try:
            sq.remove(dyn)
        except ValueError:  # already dropped during a flush
            pass

    # ==================================================================
    # Complete / wakeup / branch resolution
    # ==================================================================
    def _complete(self) -> None:
        eventq = self._eventq
        cycle = self.cycle
        if not eventq or eventq[0][0] > cycle:
            return
        # the heap drains in (cycle, seq) order — oldest first, so an older
        # flush squashes younger same-cycle resolutions before they act.
        pop = heapq.heappop
        while eventq and eventq[0][0] <= cycle:
            dyn = pop(eventq)[2]
            if dyn.state == ST_SQUASHED:
                continue
            dyn.state = ST_DONE
            dyn.done_cycle = cycle
            instr = dyn.instr
            if instr.is_cond_branch and not dyn.wrong_path and dyn.taken is not None:
                self._resolve_branch(dyn)
            self._wake_consumers(dyn)
            if instr.is_store and self._blocked_loads:
                self._release_blocked_loads()

    def _wake_consumers(self, producer: DynInst) -> None:
        consumers = producer.consumers
        if not consumers:
            return
        ready = self._ready
        push = heapq.heappush
        for c in consumers:
            if c.state != ST_ALLOCATED:
                continue
            if c.rewired and producer is not c.prev_writer:
                continue
            c.deps -= 1
            if c.deps == 0 and not c.hold:
                push(ready, (c.seq, c))

    def _release_blocked_loads(self) -> None:
        loads = self._blocked_loads
        self._blocked_loads = []
        for load in loads:
            if load.state == ST_ALLOCATED:
                heapq.heappush(self._ready, (load.seq, load))

    # ------------------------------------------------------------------
    def _resolve_branch(self, dyn: DynInst) -> None:
        """Correct-path conditional branch executed: train, maybe flush."""
        stats = self.stats
        stats.branches += 1
        pcs = stats.branch_pc(dyn.pc)
        pcs.executed += 1

        if dyn.acb_role == ROLE_BRANCH:
            pcs.predicated += 1
            saved_flush = dyn.pred_taken is not None and dyn.pred_taken != dyn.taken
            if saved_flush:
                stats.predicated_saved_flushes += 1
            if self.trace is not None:
                self.trace.acb(
                    self.cycle, "region_resolve", dyn.pc,
                    seq=dyn.seq, taken=dyn.taken, pred_taken=dyn.pred_taken,
                    diverged=dyn.diverged, saved_flush=saved_flush,
                )
            # Predicated instances stay out of the global history
            # (Section V-C) but still train the prediction tables at
            # resolution, as retirement-time update hardware would.
            self.bp.update(dyn.pc, dyn.taken, dyn.bp_meta,
                           dyn.pred_taken != dyn.taken)
            if self.scheme is not None:
                self.scheme.on_branch_resolved(dyn, mispredicted=False, predicated=True)
            region = self.unresolved_regions.pop(dyn.seq, None)
            if dyn.diverged:
                stats.divergence_flushes += 1
                self._flush(dyn, push_history=False)
            elif region is not None:
                self._resolve_region(region)
            return

        mispredicted = dyn.predicted and dyn.pred_taken != dyn.taken
        self.bp.update(dyn.pc, dyn.taken, dyn.bp_meta, mispredicted)
        if self.scheme is not None:
            self.scheme.on_branch_resolved(dyn, mispredicted, predicated=False)
        if mispredicted:
            pcs.mispredicted += 1
            stats.mispredicts += 1
            self._flush(dyn, push_history=True)

    # ------------------------------------------------------------------
    def _resolve_region(self, region: RegionRecord) -> None:
        """Predicated branch resolved without divergence: settle the body.

        True-path instructions proceed normally (their forced dependence on
        the branch is now satisfied).  False-path producers become
        transparent moves of the previous value (Section III-C2); false-path
        loads/stores are invalidated (Section III-C3).
        """
        branch = region.branch
        taken = branch.taken
        eager = region.plan.eager
        for b in region.body:
            if b.state in (ST_SQUASHED, ST_RETIRED):
                continue
            if b.body_dir == taken:
                continue  # predicated-true side: executes normally
            b.pred_false = True
            b.transparent = True
            if eager or b.state != ST_ALLOCATED:
                # eager bodies already executed (selects reconcile values);
                # not-yet-allocated ones are handled at allocation.
                continue
            if b.instr.writes_register:
                b.rewired = True
                prev = b.prev_writer
                if prev is not None and prev.state < ST_DONE:
                    b.deps = 1
                    prev.consumers.append(b)
                else:
                    b.deps = 0
            else:
                b.rewired = True
                b.deps = 0
            if b.deps == 0 and not b.hold:
                heapq.heappush(self._ready, (b.seq, b))

    # ==================================================================
    # Flush
    # ==================================================================
    def _flush(self, branch: DynInst, push_history: bool) -> None:
        """Squash everything younger than *branch* and redirect fetch."""
        seqb = branch.seq

        for dyn in self.fetchq:
            dyn.state = ST_SQUASHED
            dyn.squash_cycle = self.cycle
        self.fetchq.clear()

        rob = self.rob
        while rob and rob[-1].seq > seqb:
            dyn = rob.pop()
            if dyn.state == ST_ALLOCATED:
                self.iq_count -= 1
            if dyn.instr.is_load and dyn.state != ST_RETIRED:
                self.lq_count -= 1
            dyn.state = ST_SQUASHED
            dyn.squash_cycle = self.cycle
        while self.sq and self.sq[-1].seq > seqb:
            self.sq.pop()

        # recover rename state and branch history
        if branch.rat_checkpoint is not None:
            self.rat = list(branch.rat_checkpoint)
        if branch.hist_checkpoint is not None:
            if push_history:
                self.bp.restore(branch.hist_checkpoint, branch.pc, branch.taken)
            else:  # divergence of a predicated instance: stays out of history
                self.bp.restore(branch.hist_checkpoint, branch.pc, None)

        # cancel or divert regions affected by this flush.  A region whose
        # fetch stream is still open gets torn by the redirect, so it must
        # divergence-flush at its own resolution; regions already closed at
        # the front end survive (their squashed body entries are simply
        # skipped at resolution, and the refetched stream is the correct
        # path, which needs no predication).
        if self.region is not None:
            reg_branch = self.region.branch
            if reg_branch.seq > seqb or reg_branch is branch:
                if self.checker is not None:
                    self.checker.on_region_cancel(self.region)
                if self.trace is not None:
                    self.trace.acb(self.cycle, "region_cancel", reg_branch.pc,
                                   seq=reg_branch.seq)
                self.region = None
            else:
                self._mark_diverged(self.region)
                self.region = None
        for seq in list(self.unresolved_regions):
            if seq > seqb:
                region = self.unresolved_regions[seq]
                if self.checker is not None:
                    self.checker.on_region_cancel(region)
                if self.trace is not None:
                    self.trace.acb(self.cycle, "region_cancel",
                                   region.branch.pc, seq=seq)
                del self.unresolved_regions[seq]

        # functional rewind for divergent predicated instances
        region = branch.region
        if region is not None and region.func_snapshot is not None and branch.diverged:
            self.func.restore(branch.region.func_snapshot)

        self.on_correct_path = True
        self.fetch_pc = (branch.resume_pc if branch.resume_pc is not None
                         else self.func.next_pc)
        self.fetch_resume_cycle = self.cycle + self.config.flush_latency
        self.fetch_halted = False
        # loads parked behind now-squashed stores must re-enter the scheduler
        self._release_blocked_loads()
        if self.scheme is not None:
            self.scheme.on_flush()
        if self.checker is not None:
            self.checker.on_flush(branch)

    def _mark_diverged(self, region: RegionRecord) -> None:
        branch = region.branch
        branch.diverged = True
        if branch.hold:
            branch.hold = False
            if branch.deps == 0 and branch.state == ST_ALLOCATED:
                heapq.heappush(self._ready, (branch.seq, branch))
        if self.checker is not None:
            self.checker.on_region_close(region, diverged=True)
        if self.trace is not None:
            self.trace.acb(self.cycle, "region_close", branch.pc,
                           seq=branch.seq, fetched=region.fetched, diverged=True)
        if self.scheme is not None and not region.closed:
            region.closed = True
            self.scheme.on_region_closed(region, diverged=True)

    # ==================================================================
    # Issue
    # ==================================================================
    def _issue(self) -> None:
        ready = self._ready
        if not ready:
            return
        ports = dict(self._ports_items)
        budget = self._issue_budget
        stash: List = []
        pop = heapq.heappop
        push = heapq.heappush
        eventq = self._eventq
        cycle = self.cycle
        while ready and budget > 0:
            seq, dyn = pop(ready)
            if dyn.state != ST_ALLOCATED or dyn.hold:
                continue
            instr = dyn.instr
            group = instr.port_group
            if ports.get(group, 0) <= 0:
                stash.append((seq, dyn))
                continue
            if instr.is_load and not dyn.pred_false and self._load_blocked(dyn):
                self._blocked_loads.append(dyn)
                continue
            ports[group] -= 1
            budget -= 1
            # _dispatch, inlined for the hot path; non-memory ops take the
            # precomputed class latency without the _latency_of call.
            dyn.state = ST_ISSUED
            dyn.issue_cycle = cycle
            self.iq_count -= 1
            if dyn.transparent or dyn.pred_false:
                latency = 1
            elif not instr.is_mem:
                latency = instr.latency
            else:
                latency = self._latency_of(dyn)
            push(eventq, (cycle + latency, seq, dyn))
        for item in stash:
            push(ready, item)

    def _load_blocked(self, load: DynInst) -> bool:
        """Conservative disambiguation: wait for older store addresses."""
        seq = load.seq
        for store in self.sq:
            if store.seq >= seq:
                break
            if store.state < ST_DONE and not store.pred_false:
                return True
        return False

    def _dispatch(self, dyn: DynInst) -> None:
        cycle = self.cycle
        dyn.state = ST_ISSUED
        dyn.issue_cycle = cycle
        self.iq_count -= 1
        latency = self._latency_of(dyn)
        heapq.heappush(self._eventq, (cycle + latency, dyn.seq, dyn))

    def _latency_of(self, dyn: DynInst) -> int:
        if dyn.transparent or dyn.pred_false:
            return 1
        instr = dyn.instr
        if instr.is_load:
            addr = dyn.mem_addr
            fwd = self._forwarding_store(dyn)
            if fwd is not None:
                latency = self.config.store_forward_latency
            else:
                latency = self.mem.load(addr)
            self.stats.loads += 1
            self.stats.load_latency_total += latency
            return latency
        if instr.is_store:
            self.stats.stores += 1
        return instr.latency

    def _forwarding_store(self, load: DynInst) -> Optional[DynInst]:
        line = load.mem_addr >> 6
        seq = load.seq
        best = None
        for store in self.sq:
            if store.seq >= seq:
                break
            if (
                store.state >= ST_DONE
                and not store.pred_false
                and store.mem_addr is not None
                and (store.mem_addr >> 6) == line
            ):
                best = store
        return best

    # ==================================================================
    # Allocate (rename + resource assignment)
    # ==================================================================
    def _allocate(self) -> None:
        """Allocate (rename + resource assignment) from the fetch queue.

        Rename is inlined into the allocation loop — the two ran as one
        call pair per micro-op, and splitting them bought nothing but call
        overhead at simulation scale.

        ``state < ST_DONE`` alone identifies an in-flight producer:
        ST_SQUASHED (5) compares above ST_DONE, and the RAT never maps a
        squashed producer in the first place (a checker invariant), so no
        separate ``squashed`` test is needed.
        """
        fetchq = self.fetchq
        if not fetchq:
            return
        budget = self._alloc_width
        rob = self.rob
        rob_size = self._rob_size
        iq_size = self._iq_size
        sq = self.sq
        stats = self.stats
        rat = self.rat  # only _flush (never reached from here) reassigns it
        ready = self._ready
        push = heapq.heappush
        cycle = self.cycle
        stalled = False
        while budget and fetchq:
            dyn = fetchq[0]
            instr = dyn.instr
            if len(rob) >= rob_size or self.iq_count >= iq_size:
                stalled = True
                break
            if instr.is_load:
                if self.lq_count >= self._lq_size:
                    stalled = True
                    break
            elif instr.is_store and len(sq) >= self._sq_size:
                stalled = True
                break
            fetchq.popleft()
            budget -= 1

            # ---- rename ----
            dyn.state = ST_ALLOCATED
            dyn.alloc_cycle = cycle
            rob.append(dyn)
            self.iq_count += 1
            stats.allocated += 1
            if dyn.wrong_path:
                stats.wrong_path_allocated += 1

            deps = 0
            if dyn.pred_false and instr.writes_register:
                # transparency decided before allocation: depend only on
                # the previous value of the destination (plus the already-
                # resolved branch), not on the original sources.
                dyn.rewired = True
                prev = rat[instr.dst]
                dyn.prev_writer = prev
                if prev is not None and prev.state < ST_DONE:
                    deps += 1
                    prev.consumers.append(dyn)
            elif dyn.pred_false:
                dyn.rewired = True
            else:
                for src in instr.srcs:
                    prod = rat[src]
                    if prod is not None and prod.state < ST_DONE:
                        deps += 1
                        prod.consumers.append(dyn)
                if dyn.forced_producers:
                    for prod in dyn.forced_producers:
                        if prod.state < ST_DONE:
                            deps += 1
                            prod.consumers.append(dyn)
                if dyn.acb_role == ROLE_SELECT:
                    prev = rat[instr.dst]
                    dyn.prev_writer = prev
                    if prev is not None and prev.state < ST_DONE:
                        deps += 1
                        prev.consumers.append(dyn)
                elif dyn.acb_id >= 0 and instr.writes_register and dyn.acb_role in (
                    ROLE_BODY,
                    ROLE_JUMPER,
                ):
                    dyn.prev_writer = rat[instr.dst]

            if instr.writes_register:
                rat[instr.dst] = dyn

            if instr.is_cond_branch:
                dyn.rat_checkpoint = list(rat)

            if instr.is_load:
                self.lq_count += 1
            elif instr.is_store:
                dyn.lsq_index = 0
                sq.append(dyn)

            dyn.deps = deps
            if deps == 0 and not dyn.hold:
                push(ready, (dyn.seq, dyn))
        if stalled:
            stats.alloc_stall_cycles += 1

    # ==================================================================
    # Fetch
    # ==================================================================
    def _functional_now(self) -> bool:
        if not self.on_correct_path:
            return False
        region = self.region
        return region is None or region.seg_is_true

    def _new_dyn(self, instr: Instruction) -> DynInst:
        dyn = DynInst(self._seq, instr, wrong_path=not self.on_correct_path)
        self._seq += 1
        dyn.fetch_cycle = self.cycle
        if self.trace is not None:
            self.trace.on_fetch(dyn)
        return dyn

    def _synth_addr(self, dyn: DynInst) -> int:
        h = (dyn.pc * 2654435761 ^ dyn.seq * 0x9E3779B1) & 0xFFFFFFFF
        return _WRONG_PATH_MEM_BASE + (h & _WRONG_PATH_MEM_MASK)

    def _fetch(self) -> None:
        stats = self.stats
        if self.fetch_halted or self.cycle < self.fetch_resume_cycle:
            stats.fetch_stall_cycles += 1
            region = self.region
            if (region is not None
                    and self.cycle - region.opened_cycle > region.plan.max_cycles):
                self._diverge_region(region)
            return
        budget = self._fetch_width
        fetch_queue = self._fetch_queue
        fetchq = self.fetchq
        instrs = self._instrs
        while budget > 0 and len(fetchq) < fetch_queue:
            region = self.region
            if region is not None:
                if self._region_boundary(region):
                    if self.fetch_halted:
                        return  # boundary check declared a divergence
                    continue  # region closed; re-examine the same PC
                if region.fetched > region.plan.max_fetch:
                    self._diverge_region(region)
                    return
            redirected = self._fetch_one(instrs[self.fetch_pc])
            budget -= 1
            stats.fetched += 1
            if redirected:
                break  # one taken-branch redirect per cycle
        if len(fetchq) >= fetch_queue:
            stats.fetch_stall_cycles += 1
        region = self.region
        if region is not None and self.cycle - region.opened_cycle > region.plan.max_cycles:
            self._diverge_region(region)

    def _tick_region_timeout(self) -> None:
        # inlined at both _fetch exits; kept for tests driving it directly
        region = self.region
        if region is not None and self.cycle - region.opened_cycle > region.plan.max_cycles:
            self._diverge_region(region)

    def _region_boundary(self, region: RegionRecord) -> bool:
        """Handle fetch arriving at the reconvergence point.

        On the final segment (or Type-1's single segment) the region closes.
        Reaching the reconvergence point during segment 1 *without* a Jumper
        (a fall-through arrival) ends the first path just the same, so fetch
        switches to the other path — this keeps complex shapes where one
        path falls into the reconvergence point from spuriously diverging.
        """
        if self.fetch_pc != region.plan.reconv_pc:
            return False
        if region.segment == 2 or region.plan.conv_type == 1:
            if self.on_correct_path and self.func.next_pc != self.fetch_pc:
                # The supposed reconvergence point is not where the true
                # path actually continues — the learned metadata is stale
                # or wrong.  Real convergence means the true path falls
                # into this PC; anything else must divergence-flush.
                self._diverge_region(region)
            else:
                self._close_region(region, diverged=False)
        else:
            self._switch_segment(region)
        return True

    def _switch_segment(self, region: RegionRecord) -> None:
        """First path done: redirect fetch to the start of the other path."""
        branch_instr = region.branch.instr
        if region.plan.first_taken:
            self.fetch_pc = branch_instr.fallthrough  # Type 3: now fetch NT
        else:
            self.fetch_pc = branch_instr.target       # Type 2: now fetch taken
        region.segment = 2
        region.seg_taken = not region.seg_taken

    def _close_region(self, region: RegionRecord, diverged: bool) -> None:
        branch = region.branch
        region.closed = True
        self.region = None
        if self.checker is not None:
            self.checker.on_region_close(region, diverged=diverged)
        if self.trace is not None:
            self.trace.acb(self.cycle, "region_close", branch.pc,
                           seq=branch.seq, fetched=region.fetched,
                           diverged=diverged)
        if not diverged:
            if region.plan.select_uops:
                self._inject_selects(region)
            if branch.hold:
                branch.hold = False
                if branch.deps == 0 and branch.state == ST_ALLOCATED:
                    heapq.heappush(self._ready, (branch.seq, branch))
        if self.scheme is not None:
            self.scheme.on_region_closed(region, diverged=diverged)

    def _diverge_region(self, region: RegionRecord) -> None:
        """Reconvergence not found: flag the instance; flush at resolution."""
        self._close_region(region, diverged=True)
        branch = region.branch
        branch.diverged = True
        branch.resume_pc = (
            branch.instr.target if region.true_taken else branch.instr.fallthrough
        )
        if region.true_taken is None:
            branch.resume_pc = branch.instr.fallthrough
        if branch.hold:
            branch.hold = False
            if branch.deps == 0 and branch.state == ST_ALLOCATED:
                heapq.heappush(self._ready, (branch.seq, branch))
        self.fetch_halted = True  # wait for the divergence flush

    def _inject_selects(self, region: RegionRecord) -> None:
        branch = region.branch
        for reg, wt, wnt in region_live_outs(region):
            instr = Instruction(pc=region.plan.reconv_pc, uop=UopClass.ALU, dst=reg)
            sel = self._new_dyn(instr)
            sel.acb_id = branch.seq
            sel.acb_role = ROLE_SELECT
            sel.forced_producers = [p for p in (branch, wt, wnt) if p is not None]
            self.fetchq.append(sel)
            self.stats.select_uops += 1

    # ------------------------------------------------------------------
    def _fetch_one(self, instr: Instruction) -> bool:
        """Fetch the instruction at ``self.fetch_pc``; returns True on a
        taken redirect (ends the fetch group).

        ``_new_dyn`` and ``_functional_now`` are inlined here (they remain
        as methods for the colder select-injection path).
        """
        on_correct = self.on_correct_path
        dyn = DynInst(self._seq, instr, wrong_path=not on_correct)
        self._seq += 1
        dyn.fetch_cycle = self.cycle
        if self.trace is not None:
            self.trace.on_fetch(dyn)
        region = self.region
        functional = on_correct and (region is None or region.seg_is_true)

        if region is not None:
            dyn.acb_id = region.branch.seq
            dyn.acb_role = ROLE_BODY
            dyn.body_dir = region.seg_taken
            region.fetched += 1
            region.body.append(dyn)
            if not region.plan.eager or instr.is_store:
                dyn.forced_producers = [region.branch]
            if instr.dst is not None:
                side = region.writers_taken if region.seg_taken else region.writers_nt
                side[instr.dst] = dyn

        redirect = False
        if instr.is_cond_branch:
            redirect = self._fetch_cond_branch(dyn, functional)
        elif instr.is_branch:
            redirect = self._fetch_jump(dyn, functional)
        else:
            if functional:
                dyn.mem_addr = self.func.step_fast(dyn.pc)[2]
            elif instr.is_mem:
                dyn.mem_addr = self._synth_addr(dyn)
            self.fetch_pc = instr.fallthrough

        self.fetchq.append(dyn)
        if self.scheme is not None:
            self.scheme.observe_fetch(dyn)
        return redirect

    def _fetch_jump(self, dyn: DynInst, functional: bool) -> bool:
        """Unconditional branch: always taken; may be a region Jumper."""
        instr = dyn.instr
        if functional:
            self.func.step_fast(dyn.pc)
        dyn.taken = True
        if self._maybe_jumper(dyn, instr.target):
            return True
        self.fetch_pc = instr.target
        self._btb_redirect(dyn)
        return True

    def _maybe_jumper(self, dyn: DynInst, target: int) -> bool:
        """Segment-1 taken branch to the reconvergence point: override its
        target to fetch the other path (Section III-C1)."""
        region = self.region
        if (
            region is None
            or region.segment != 1
            or region.plan.conv_type == 1
            or target != region.plan.reconv_pc
        ):
            return False
        dyn.acb_role = ROLE_JUMPER
        self._switch_segment(region)
        self._btb_redirect(dyn)
        return True

    def _btb_redirect(self, dyn: DynInst) -> None:
        """Taken control flow: a BTB miss costs a one-cycle fetch bubble."""
        if not self.btb.lookup(dyn.pc):
            self.btb.insert(dyn.pc, self.fetch_pc)
            self.fetch_resume_cycle = max(self.fetch_resume_cycle, self.cycle + 1)

    # ------------------------------------------------------------------
    def _fetch_cond_branch(self, dyn: DynInst, functional: bool) -> bool:
        instr = dyn.instr
        actual: Optional[bool] = None
        if functional:
            actual, next_pc, _ = self.func.step_fast(dyn.pc)
            dyn.taken = actual
            dyn.resume_pc = next_pc

        prediction = self.bp.predict(dyn.pc, actual)

        # -- predication decision (correct path, outside any region) ------
        if (
            self.scheme is not None
            and self.region is None
            and functional
            and dyn.acb_id < 0
        ):
            plan = self.scheme.consider(dyn, prediction)
            if plan is not None:
                self._open_region(dyn, plan, actual)
                # kept for saved-flush accounting and for table training at
                # resolution (the prediction is discarded architecturally).
                dyn.pred_taken = prediction.taken
                dyn.bp_meta = prediction.meta
                return True

        # -- normal prediction ---------------------------------------------
        dyn.predicted = True
        dyn.pred_taken = prediction.taken
        dyn.bp_meta = prediction.meta
        dyn.hist_checkpoint = self.bp.checkpoint()
        in_false_segment = self.region is not None and not functional
        if not in_false_segment:
            self.bp.spec_push(dyn.pc, prediction.taken)
        else:
            # false-path inner branches stay out of the history: the region
            # is squashed from the history's perspective.
            dyn.predicted = False

        if functional and prediction.taken != actual:
            self.on_correct_path = False

        if prediction.taken:
            if self._maybe_jumper(dyn, instr.target):
                return True
            self.fetch_pc = instr.target
            self._btb_redirect(dyn)
            return True
        self.fetch_pc = instr.fallthrough
        return False

    # ------------------------------------------------------------------
    def _open_region(self, dyn: DynInst, plan: PredicationPlan, actual: bool) -> None:
        """Begin dual-path fetch for a predicated branch instance."""
        instr = dyn.instr
        dyn.acb_role = ROLE_BRANCH
        dyn.acb_id = dyn.seq
        dyn.hold = not plan.eager
        dyn.hist_checkpoint = self.bp.checkpoint()
        dyn.resume_pc = instr.target if actual else instr.fallthrough
        region = RegionRecord(
            plan=plan,
            branch=dyn,
            true_taken=actual,
            func_snapshot=self.func.snapshot(),
            segment=1,
            seg_taken=plan.first_taken,
            opened_cycle=self.cycle,
        )
        dyn.region = region
        self.region = region
        self.unresolved_regions[dyn.seq] = region
        self.stats.predicated_instances += 1
        if self.checker is not None:
            self.checker.on_region_open(region)
        if self.trace is not None:
            # the provenance label rides along only for dynamically-learned
            # regions, keeping static-scheme trace exports byte-identical.
            extra = {} if plan.source == "static" else {"source": plan.source}
            self.trace.acb(
                self.cycle, "region_open", dyn.pc,
                seq=dyn.seq, reconv_pc=plan.reconv_pc, conv_type=plan.conv_type,
                first_taken=plan.first_taken, true_taken=actual, **extra,
            )
        if self.scheme.updates_history_on_predication:
            self.bp.push_outcome(dyn.pc, actual)
        self.fetch_pc = instr.target if plan.first_taken else instr.fallthrough

    # ==================================================================
    # Diagnostics
    # ==================================================================
    def _deadlock_report(self) -> str:
        head = self.rob[0] if self.rob else None
        return (
            f"no retirement for 20000 cycles at cycle={self.cycle}; "
            f"rob={len(self.rob)} iq={self.iq_count} fetchq={len(self.fetchq)} "
            f"head={head!r} head_deps={getattr(head, 'deps', None)} "
            f"head_hold={getattr(head, 'hold', None)} "
            f"region_open={self.region is not None} halted={self.fetch_halted}"
        )
