"""Batched structure-of-arrays engine lanes.

Every figure in the paper is a *matrix* of independent simulation cells,
and most of a matrix re-executes the same workloads: fig6 alone runs each
workload under several schemes.  The scalar driver pays the functional
execution of a workload — behaviour RNG draws, state-dict traffic, decode
— once per cell.  This module batches cells into *lane packs*: N cells
("lanes") over the same workload step together through one pass of the
driver loop, sharing a single memoized correct-path stream held in
structure-of-arrays form.

The key invariant that makes sharing sound: the correct-path functional
stream depends only on ``(workload, seed_offset)`` — never on the scheme,
predictor, or core configuration — because the timing simulator steps the
:class:`~repro.workloads.workload.FunctionalExecutor` exactly once per
correct-path fetch and rewinds divergent predicated regions to a snapshot
before replaying the very same steps.  So one *leader* executor can
materialize the stream once into flat ``array('q')`` columns
(:class:`FuncTrace`) while every lane consumes a :class:`LaneFunc` replay
view whose snapshot/restore state is a single integer cursor instead of a
dict-copying :class:`~repro.workloads.behaviors.WorkloadState` snapshot.

Per-lane SimStats are bit-identical to the scalar engine by construction:
each lane *is* a normal :class:`~repro.core.Core` running the normal
``run()`` loop — only sliced into bounded instruction quanta so the pack
round-robins between lanes — and the replay view returns exactly the
tuples the scalar executor produced.  The slicing preserves the scalar
cycle-cap semantics by carrying one absolute cap per window
(``cap = cycle + target * 80 + 200_000``, the ``run()`` default budget)
across slices via ``max_cycles``.

Straggler handling: lanes retire from the pack the moment their own
warmup+measure window completes; remaining lanes keep stepping without
them.  Enabled via ``run_matrix(..., lanes=N)`` or ``REPRO_LANES`` /
``repro --lanes`` (see :mod:`repro.harness.parallel`).
"""

from __future__ import annotations

import os
import time
from array import array
from typing import List, Optional, Sequence, Tuple

from repro.core.engine import Core
from repro.workloads.workload import FunctionalExecutor, StepResult, Workload

__all__ = [
    "DEFAULT_LANES",
    "SLICE_INSTRUCTIONS",
    "FuncTrace",
    "LaneFunc",
    "pack_key",
    "plan_packs",
    "resolve_lanes",
    "run_pack",
]

#: lane-pack width used when lanes are enabled without an explicit count.
DEFAULT_LANES = 8

#: instructions each lane advances per pass over the pack (the quantum of
#: the round-robin).  Purely a scheduling knob: any value yields the same
#: SimStats because slices only partition the scalar run loop.
SLICE_INSTRUCTIONS = 2048


def resolve_lanes(lanes: Optional[int] = None) -> int:
    """Effective lane width: explicit argument, else ``REPRO_LANES``.

    Returns ``0`` when the lane engine is off (the scalar dispatch path).
    ``REPRO_LANES`` accepts an integer width or ``on``/``off`` spellings;
    ``on`` means :data:`DEFAULT_LANES`.
    """
    if lanes is not None:
        return max(0, int(lanes))
    env = os.environ.get("REPRO_LANES", "").strip().lower()
    if not env or env in ("0", "off", "false", "no"):
        return 0
    if env in ("on", "true", "yes"):
        return DEFAULT_LANES
    try:
        return max(0, int(env))
    except ValueError:
        raise ValueError(
            f"REPRO_LANES must be an integer or on/off, got {env!r}"
        ) from None


# ----------------------------------------------------------------------
# shared functional stream
# ----------------------------------------------------------------------
class FuncTrace:
    """Memoized correct-path stream of one workload, structure-of-arrays.

    One *leader* :class:`FunctionalExecutor` advances the architectural
    stream on demand; each executed step is appended to flat columns:

    * ``pcs[i]`` / ``next_pcs[i]`` — ``array('q')`` program counters,
    * ``taken[i]`` — ``array('b')``: ``-1`` non-branch, else 0/1,
    * ``mem_addrs[i]`` — plain list of ``None`` or the functional address
      (tri-state, and addresses are unbounded ints).

    Lanes replay the columns through :class:`LaneFunc` cursors, so the
    behaviour RNG and state-dict work is paid once per workload per pack
    instead of once per lane.
    """

    __slots__ = ("workload", "leader", "pcs", "taken", "next_pcs",
                 "mem_addrs", "length")

    def __init__(self, workload: Workload, seed_offset: int = 0):
        self.workload = workload
        self.leader = FunctionalExecutor(workload, seed_offset)
        self.pcs = array("q")
        self.taken = array("b")
        self.next_pcs = array("q")
        self.mem_addrs: List[Optional[int]] = []
        self.length = 0

    def extend_to(self, n: int) -> None:
        """Materialize the stream through step *n* (exclusive)."""
        leader = self.leader
        pcs = self.pcs
        taken = self.taken
        next_pcs = self.next_pcs
        mem_addrs = self.mem_addrs
        length = self.length
        while length < n:
            pc = leader.next_pc
            t, nxt, addr = leader.step_fast(pc)
            pcs.append(pc)
            taken.append(-1 if t is None else (1 if t else 0))
            next_pcs.append(nxt)
            mem_addrs.append(addr)
            length += 1
        self.length = length


class LaneFunc:
    """Drop-in :class:`FunctionalExecutor` replaying a :class:`FuncTrace`.

    The engine's whole contract with its functional stream is
    ``step_fast`` / ``next_pc`` / ``snapshot`` / ``restore`` /
    ``instr_count``; this view serves all of them from the shared columns
    with an integer cursor.  Region rewind — a dict-copying state snapshot
    on the scalar path — becomes storing and reassigning one int.
    """

    __slots__ = ("trace", "idx", "_pcs", "_taken", "_next_pcs", "_mem")

    #: how far past the cursor the leader materializes on a miss.  The
    #: stream is deterministic, so running the leader ahead of every lane
    #: is unobservable; chunking amortizes the per-call overhead.
    EXTEND_CHUNK = 512

    def __init__(self, trace: FuncTrace):
        self.trace = trace
        self.idx = 0
        # the column objects are append-only and identity-stable, so the
        # per-step hot path can hold direct references.
        self._pcs = trace.pcs
        self._taken = trace.taken
        self._next_pcs = trace.next_pcs
        self._mem = trace.mem_addrs

    @property
    def workload(self) -> Workload:
        return self.trace.workload

    @property
    def program(self):
        return self.trace.workload.program

    @property
    def instr_count(self) -> int:
        return self.idx

    @property
    def next_pc(self) -> int:
        if self.idx >= self.trace.length:
            self.trace.extend_to(self.idx + self.EXTEND_CHUNK)
        return self._pcs[self.idx]

    def step(self, pc: int) -> StepResult:
        return StepResult(*self.step_fast(pc))

    def step_fast(self, pc: int) -> tuple:
        i = self.idx
        if i >= self.trace.length:
            self.trace.extend_to(i + self.EXTEND_CHUNK)
        if self._pcs[i] != pc:
            raise RuntimeError(
                f"functional stream out of sync: expected pc={self._pcs[i]}, "
                f"got {pc}"
            )
        t = self._taken[i]
        self.idx = i + 1
        return (None if t < 0 else t == 1, self._next_pcs[i], self._mem[i])

    # -- rewind support: one int instead of a WorkloadState snapshot ----
    def snapshot(self) -> int:
        return self.idx

    def restore(self, snap: int) -> None:
        self.idx = snap


# ----------------------------------------------------------------------
# pack planning
# ----------------------------------------------------------------------
def pack_key(request) -> tuple:
    """Grouping key for lane compatibility.

    Lanes share a functional stream, which depends only on the workload
    (the harness always runs ``seed_offset=0``), so cells pack together
    exactly when they name the same workload — the config/predictor axis
    is free to differ within a pack.  Ad-hoc :class:`Workload` objects key
    by identity: equal-looking objects could still carry distinct
    behaviour registries.
    """
    workload = request.workload
    if isinstance(workload, str):
        return ("name", workload)
    return ("obj", id(workload))


def plan_packs(ids: Sequence[int], requests, width: int) -> List[List[int]]:
    """Partition pending request indices into lane packs of ≤ *width*."""
    width = max(1, width)
    groups: dict = {}
    for i in ids:
        groups.setdefault(pack_key(requests[i]), []).append(i)
    packs: List[List[int]] = []
    for group in groups.values():
        for j in range(0, len(group), width):
            packs.append(group[j:j + width])
    return packs


# ----------------------------------------------------------------------
# pack execution
# ----------------------------------------------------------------------
class _Lane:
    """One cell stepping inside a pack: a normal Core, run in slices."""

    __slots__ = ("request", "workload_obj", "core", "warmup", "measure",
                 "phase", "cap", "start_cycle", "wall", "result")

    def __init__(self, request, workload_obj: Workload, core: Core,
                 warmup: int, measure: int):
        self.request = request
        self.workload_obj = workload_obj
        self.core = core
        self.warmup = warmup
        self.measure = measure
        self.wall = 0.0
        self.result = None
        self.start_cycle = 0
        # scalar run_window: run(warmup) computes an absolute cycle cap of
        # cycle + warmup*80 + 200_000 on entry; carry the same cap across
        # slices so DeadlockError fires on exactly the same cycle.
        self.phase = 0  # 0 = warmup, 1 = measure
        self.cap = core.cycle + warmup * 80 + 200_000
        if warmup <= 0:
            self._begin_measure()

    def _begin_measure(self) -> None:
        core = self.core
        self.start_cycle = core.cycle
        core.reset_stats()
        self.cap = core.cycle + self.measure * 80 + 200_000
        self.phase = 1

    def advance(self, slice_size: int) -> bool:
        """Step up to *slice_size* instructions; True when the lane is done."""
        core = self.core
        started = time.monotonic()
        try:
            if self.phase == 0:
                target = min(self.warmup,
                             core.stats.instructions + slice_size)
                core.run(target, max_cycles=self.cap - core.cycle)
                if core.stats.instructions >= self.warmup:
                    self._begin_measure()
                return False
            target = min(self.measure, core.stats.instructions + slice_size)
            core.run(target, max_cycles=self.cap - core.cycle)
            if core.stats.instructions >= self.measure:
                self._finish()
                return True
            return False
        finally:
            self.wall += time.monotonic() - started

    def _finish(self) -> None:
        from repro.harness.runner import RunResult

        core = self.core
        stats = core.stats
        stats.cycles = core.cycle - self.start_cycle
        workload_obj = self.workload_obj
        self.result = RunResult(
            workload=workload_obj.name,
            category=workload_obj.category,
            paper_tag=workload_obj.paper_tag,
            config=self.request.config,
            stats=stats,
        )


def run_pack(requests, slice_size: int = SLICE_INSTRUCTIONS):
    """Execute one lane pack; returns ``[(RunResult, wall_seconds), ...]``.

    All *requests* must share a :func:`pack_key` (the planner guarantees
    it).  Each lane is prepared exactly as ``run_workload`` prepares a
    scalar cell (same scheme/config/predictor resolution, via the shared
    :func:`repro.harness.runner.prepare_run`), then the pack round-robins
    ``slice_size``-instruction quanta over the live lanes until each has
    finished its warmup+measure window.
    """
    from repro.harness import runner as _runner

    first = requests[0].workload
    if isinstance(first, str):
        workload_obj = _runner.resolve_workload(first)
    else:
        workload_obj = first
    trace = FuncTrace(workload_obj)

    lanes: List[_Lane] = []
    for request in requests:
        started = time.monotonic()
        try:
            cfg, scheme, predictor = _runner.prepare_run(
                workload_obj,
                request.config,
                core_scale=request.core_scale,
                predictor=request.predictor,
                acb_config=request.acb_config,
                core_config=request.core_config,
            )
        except Exception as exc:
            raise RuntimeError(
                f"simulation cell {workload_obj.name!r} × "
                f"{request.config!r} failed: {type(exc).__name__}: {exc}"
            ) from exc
        warmup = (request.warmup if request.warmup is not None
                  else _runner.default_warmup())
        measure = (request.measure if request.measure is not None
                   else _runner.default_measure())
        core = Core(workload_obj, cfg, scheme=scheme, predictor=predictor,
                    func=LaneFunc(trace))
        lane = _Lane(request, workload_obj, core, warmup, measure)
        lane.wall = time.monotonic() - started
        lanes.append(lane)

    active = list(lanes)
    while active:
        # snapshot the pack each pass: stragglers drop out mid-iteration
        for lane in list(active):
            try:
                if lane.advance(slice_size):
                    active.remove(lane)
            except Exception as exc:
                request = lane.request
                name = (request.workload if isinstance(request.workload, str)
                        else request.workload.name)
                raise RuntimeError(
                    f"simulation cell {name!r} × {request.config!r} "
                    f"failed: {type(exc).__name__}: {exc}"
                ) from exc
    return [(lane.result, lane.wall) for lane in lanes]
