"""Simulation statistics.

``instructions`` counts *architectural* (correct-path, non-transparent)
instructions so IPC is comparable across baseline and predicated runs: a
predicated-false-path micro-op retires but performs no program work, exactly
as in the paper's accounting (its performance metric is IPC of the program,
while its power argument counts *allocations*, which we track separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class BranchPCStats:
    """Per-static-branch profile (drives characterization and DMP profiling)."""

    executed: int = 0
    mispredicted: int = 0
    predicated: int = 0

    @property
    def mispred_rate(self) -> float:
        return self.mispredicted / self.executed if self.executed else 0.0

    def to_dict(self) -> Dict[str, int]:
        return {
            "executed": self.executed,
            "mispredicted": self.mispredicted,
            "predicated": self.predicated,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "BranchPCStats":
        return cls(**data)


@dataclass
class SimStats:
    """Counters accumulated by one simulation run."""

    cycles: int = 0
    instructions: int = 0          # architectural instructions retired
    retired_uops: int = 0          # everything that retired (incl. false path)
    fetched: int = 0               # all fetches incl. wrong path
    allocated: int = 0             # all OOO allocations incl. wrong path
    wrong_path_allocated: int = 0

    select_uops: int = 0           # select micro-ops injected at the merge point
    branches: int = 0              # correct-path conditional branches resolved
    mispredicts: int = 0           # resolved wrong predictions (flushes)
    divergence_flushes: int = 0    # ACB instances that failed to reconverge
    predicated_instances: int = 0  # dynamic predications performed
    predicated_saved_flushes: int = 0  # predicated instances that would have flushed

    alloc_stall_cycles: int = 0    # allocation blocked by a full resource
    fetch_stall_cycles: int = 0    # fetch blocked (redirect wait / queue full)
    empty_rob_cycles: int = 0

    loads: int = 0
    stores: int = 0
    load_latency_total: int = 0

    per_branch: Dict[int, BranchPCStats] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def flushes(self) -> int:
        """Total pipeline flushes (mis-speculation + divergence)."""
        return self.mispredicts + self.divergence_flushes

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.mispredicts / self.instructions

    @property
    def avg_load_latency(self) -> float:
        return self.load_latency_total / self.loads if self.loads else 0.0

    def branch_pc(self, pc: int) -> BranchPCStats:
        if pc not in self.per_branch:
            self.per_branch[pc] = BranchPCStats()
        return self.per_branch[pc]

    # -- serialization (disk result cache, run manifests) ---------------
    def to_dict(self) -> Dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        out = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "per_branch"
        }
        # JSON object keys must be strings; PCs are ints.
        out["per_branch"] = {str(pc): s.to_dict() for pc, s in self.per_branch.items()}
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        data = dict(data)
        per_branch = {
            int(pc): BranchPCStats.from_dict(s)
            for pc, s in data.pop("per_branch", {}).items()
        }
        known = {f.name for f in fields(cls)}
        stats = cls(**{k: v for k, v in data.items() if k in known})
        stats.per_branch = per_branch
        return stats

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": round(self.ipc, 4),
            "mpki": round(self.mpki, 3),
            "flushes": self.flushes,
            "predicated": self.predicated_instances,
            "divergences": self.divergence_flushes,
            "allocated": self.allocated,
            "alloc_stalls": self.alloc_stall_cycles,
        }
