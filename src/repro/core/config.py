"""Core configuration — the paper's Table II parameters.

The default :class:`CoreConfig` mirrors the Skylake-like machine of the
paper's baseline; :func:`scaled` produces the wider/deeper machines used in
Figure 1 and Section V-D ("8-wide with twice the execution/fetch
resources" is ``scaled(2)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.memory.hierarchy import MemoryConfig
from repro.trace.config import TraceConfig


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of the simulated OOO core."""

    # front end
    fetch_width: int = 6          # instructions fetched per cycle
    fetch_queue: int = 64         # fetch -> allocate buffer depth
    flush_latency: int = 14       # redirect cycles after a resolved mispredict
    predictor: str = "tage"       # see repro.branch.PREDICTORS
    btb_sets: int = 512
    btb_ways: int = 4

    # out-of-order engine
    alloc_width: int = 4          # the alloc_width of Equation 1
    retire_width: int = 4
    rob_size: int = 224
    iq_size: int = 97
    lq_size: int = 72
    sq_size: int = 56
    ports: Dict[str, int] = field(
        default_factory=lambda: {"alu": 4, "load": 2, "store": 1}
    )

    # memory
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    store_forward_latency: int = 5

    # clock (reporting only; the paper's 3.2 GHz)
    freq_ghz: float = 3.2

    #: simulation speed: skip cycles in which the pipeline provably cannot
    #: make progress (everything waiting on in-flight completions).  Purely
    #: an execution-time optimization — results are bit-identical (see
    #: tests/test_engine_fastforward.py).
    fast_forward: bool = True

    #: attach the pipeline invariant checker (repro.validate.checker) and
    #: assert structural invariants every cycle, at every retirement, and at
    #: every flush.  Observation only — timing results are identical — but
    #: simulation slows down severalfold, so leave it off for benchmarks
    #: (docs/validation.md quantifies the overhead).
    debug_checks: bool = False

    #: attach a trace collector (repro.trace) recording per-uop lifecycle
    #: events and ACB decision events for the Konata/Chrome exporters and
    #: the decision log.  ``None`` (the default) keeps the simulation hot
    #: loop allocation-free; timing results are identical either way
    #: (tests/test_trace.py enforces both properties).  See
    #: docs/observability.md.
    trace: Optional[TraceConfig] = None

    def validate(self) -> None:
        positive = {
            "fetch_width": self.fetch_width,
            "fetch_queue": self.fetch_queue,
            "flush_latency": self.flush_latency,
            "alloc_width": self.alloc_width,
            "retire_width": self.retire_width,
            "rob_size": self.rob_size,
            "iq_size": self.iq_size,
            "lq_size": self.lq_size,
            "sq_size": self.sq_size,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if not self.ports or any(n <= 0 for n in self.ports.values()):
            raise ValueError("every port group needs at least one port")
        if self.trace is not None:
            self.trace.validate()

    def table(self) -> Dict[str, str]:
        """Human-readable parameter dump (the Table II bench)."""
        mem = self.memory
        return {
            "Frequency": f"{self.freq_ghz} GHz",
            "Fetch width": f"{self.fetch_width}/cycle",
            "Allocation width": f"{self.alloc_width}/cycle",
            "Retire width": f"{self.retire_width}/cycle",
            "ROB / IQ": f"{self.rob_size} / {self.iq_size}",
            "Load / Store queue": f"{self.lq_size} / {self.sq_size}",
            "Execution ports": ", ".join(f"{k}:{v}" for k, v in sorted(self.ports.items())),
            "Branch predictor": self.predictor.upper(),
            "Mispredict redirect": f"{self.flush_latency} cycles",
            "L1D": f"{mem.l1_size // 1024}KB/{mem.l1_ways}w, {mem.l1_latency}c",
            "L2": f"{mem.l2_size // 1024}KB/{mem.l2_ways}w, {mem.l2_latency}c",
            "LLC": f"{mem.llc_size // 1024}KB/{mem.llc_ways}w, {mem.llc_latency}c",
            "DRAM": f"{mem.dram_latency}c",
        }


#: The paper's baseline machine.
SKYLAKE_LIKE = CoreConfig()


def scaled(factor: int, base: CoreConfig = SKYLAKE_LIKE) -> CoreConfig:
    """Scale widths by *factor* and window depths by ``2**(factor-1)``-ish.

    Matches the paper's usage: ``scaled(2)`` is the Section V-D "8-wide with
    twice the execution/fetch resources" machine; Figure 1's continuum uses
    factors 1..3.
    """
    if factor < 1:
        raise ValueError("scale factor must be >= 1")
    if factor == 1:
        return base
    return replace(
        base,
        fetch_width=base.fetch_width * factor,
        fetch_queue=base.fetch_queue * factor,
        alloc_width=base.alloc_width * factor,
        retire_width=base.retire_width * factor,
        rob_size=base.rob_size * factor,
        iq_size=base.iq_size * factor,
        lq_size=base.lq_size * factor,
        sq_size=base.sq_size * factor,
        ports={k: v * factor for k, v in base.ports.items()},
    )
