"""Static program container.

A :class:`Program` is a flat list of :class:`~repro.isa.Instruction` objects
indexed by PC.  Generated workloads are structured as one big outer loop (the
last instruction jumps back toward the entry), so a program can supply an
unbounded dynamic instruction stream; simulations stop at an instruction
budget, the way trace-driven simulators stop at a trace-slice boundary.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.isa.instruction import Instruction


class Program:
    """An immutable sequence of instructions with branch-target validation."""

    def __init__(self, instructions: Sequence[Instruction], name: str = "program"):
        if not instructions:
            raise ValueError("a program needs at least one instruction")
        self.name = name
        self._instrs: Tuple[Instruction, ...] = tuple(instructions)
        for idx, instr in enumerate(self._instrs):
            if instr.pc != idx:
                raise ValueError(
                    f"instruction {idx} carries pc={instr.pc}; PCs must be dense"
                )
            if instr.is_branch and not 0 <= instr.target < len(self._instrs):
                raise ValueError(
                    f"branch at pc={idx} targets {instr.target}, outside program"
                )
        last = self._instrs[-1]
        if not last.is_branch or last.cond:
            raise ValueError(
                "the last instruction must be an unconditional branch so the "
                "program forms a closed loop"
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instrs)

    def __getitem__(self, pc: int) -> Instruction:
        return self._instrs[pc]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instrs)

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return self._instrs

    # ------------------------------------------------------------------
    def cond_branch_pcs(self) -> List[int]:
        """PCs of all conditional branches (the predication candidates)."""
        return [i.pc for i in self._instrs if i.is_cond_branch]

    def basic_block_leaders(self) -> List[int]:
        """PCs that start a basic block (entry, branch targets, fall-throughs)."""
        leaders = {0}
        for instr in self._instrs:
            if instr.is_branch:
                leaders.add(instr.target)
                if instr.fallthrough < len(self._instrs):
                    leaders.add(instr.fallthrough)
        return sorted(leaders)

    def basic_blocks(self) -> Dict[int, Tuple[int, int]]:
        """Return ``{leader_pc: (start, end_exclusive)}`` for every block."""
        leaders = self.basic_block_leaders()
        blocks: Dict[int, Tuple[int, int]] = {}
        for i, start in enumerate(leaders):
            end = leaders[i + 1] if i + 1 < len(leaders) else len(self._instrs)
            blocks[start] = (start, end)
        return blocks

    def disassemble(self) -> str:
        """Human-readable listing, used in examples and debugging."""
        return "\n".join(str(instr) for instr in self._instrs)
