"""A small assembly-like DSL for constructing programs.

Workload generators use :class:`ProgramBuilder` to emit synthetic kernels.
Forward branch targets are expressed as labels and patched when
:meth:`ProgramBuilder.build` runs, which keeps generator code readable::

    b = ProgramBuilder("demo")
    b.label("loop")
    b.alu(dst=1, srcs=(1,))
    b.cond_branch("skip", behavior="h2p", srcs=(1,))
    b.alu(dst=2, srcs=(1,))        # IF body
    b.label("skip")
    b.jump("loop")
    program = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa import FLAGS
from repro.isa.instruction import Instruction
from repro.isa.opcodes import UopClass
from repro.program.program import Program


@dataclass
class _Pending:
    """An instruction whose branch target may still be a label."""

    uop: UopClass
    dst: Optional[int]
    srcs: Tuple[int, ...]
    target_label: Optional[str]
    cond: bool
    behavior: Optional[str]
    label: str


class ProgramBuilder:
    """Incrementally assemble a :class:`~repro.program.Program`."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._pending: List[_Pending] = []
        self._labels: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Label handling
    # ------------------------------------------------------------------
    @property
    def next_pc(self) -> int:
        """PC the next emitted instruction will receive."""
        return len(self._pending)

    def label(self, name: str) -> int:
        """Bind *name* to the next PC; returns that PC."""
        if name in self._labels:
            raise ValueError(f"label defined twice: {name!r}")
        self._labels[name] = self.next_pc
        return self.next_pc

    # ------------------------------------------------------------------
    # Instruction emitters
    # ------------------------------------------------------------------
    def _emit(
        self,
        uop: UopClass,
        dst: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        target_label: Optional[str] = None,
        cond: bool = False,
        behavior: Optional[str] = None,
        note: str = "",
    ) -> int:
        pc = self.next_pc
        self._pending.append(
            _Pending(uop, dst, tuple(srcs), target_label, cond, behavior, note)
        )
        return pc

    def alu(self, dst: int, srcs: Tuple[int, ...] = (), note: str = "") -> int:
        return self._emit(UopClass.ALU, dst=dst, srcs=srcs, note=note)

    def mul(self, dst: int, srcs: Tuple[int, ...] = (), note: str = "") -> int:
        return self._emit(UopClass.MUL, dst=dst, srcs=srcs, note=note)

    def div(self, dst: int, srcs: Tuple[int, ...] = (), note: str = "") -> int:
        return self._emit(UopClass.DIV, dst=dst, srcs=srcs, note=note)

    def fp(self, dst: int, srcs: Tuple[int, ...] = (), note: str = "") -> int:
        return self._emit(UopClass.FP, dst=dst, srcs=srcs, note=note)

    def nop(self, note: str = "") -> int:
        return self._emit(UopClass.NOP, note=note)

    def load(
        self,
        dst: int,
        srcs: Tuple[int, ...] = (),
        behavior: Optional[str] = None,
        note: str = "",
    ) -> int:
        return self._emit(UopClass.LOAD, dst=dst, srcs=srcs, behavior=behavior, note=note)

    def store(
        self,
        srcs: Tuple[int, ...] = (),
        behavior: Optional[str] = None,
        note: str = "",
    ) -> int:
        return self._emit(UopClass.STORE, srcs=srcs, behavior=behavior, note=note)

    def compare(self, srcs: Tuple[int, ...], note: str = "") -> int:
        """ALU op writing FLAGS, the canonical branch-source producer."""
        return self._emit(UopClass.ALU, dst=FLAGS, srcs=srcs, note=note)

    def cond_branch(
        self,
        target: str,
        behavior: str,
        srcs: Tuple[int, ...] = (FLAGS,),
        note: str = "",
    ) -> int:
        """Conditional branch whose outcome is produced by *behavior*."""
        return self._emit(
            UopClass.BRANCH,
            srcs=srcs,
            target_label=target,
            cond=True,
            behavior=behavior,
            note=note,
        )

    def jump(self, target: str, note: str = "") -> int:
        """Unconditional direct jump."""
        return self._emit(UopClass.BRANCH, target_label=target, note=note)

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and produce the immutable program."""
        instrs: List[Instruction] = []
        for pc, p in enumerate(self._pending):
            target = None
            if p.target_label is not None:
                if p.target_label not in self._labels:
                    raise ValueError(f"undefined label: {p.target_label!r}")
                target = self._labels[p.target_label]
            instrs.append(
                Instruction(
                    pc=pc,
                    uop=p.uop,
                    dst=p.dst,
                    srcs=p.srcs,
                    target=target,
                    cond=p.cond,
                    behavior=p.behavior,
                    label=p.label,
                )
            )
        return Program(instrs, name=self.name)
