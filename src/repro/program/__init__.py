"""Static program representation, a builder DSL, and CFG analysis."""

from repro.program.builder import ProgramBuilder
from repro.program.cfg import (
    HammockInfo,
    classify_hammock,
    find_guaranteed_reconvergence,
    find_reconvergence,
    reachable_distances,
)
from repro.program.program import Program

__all__ = [
    "Program",
    "ProgramBuilder",
    "HammockInfo",
    "classify_hammock",
    "find_guaranteed_reconvergence",
    "find_reconvergence",
    "reachable_distances",
]
