"""Control-flow-graph analysis over programs.

This module plays the role of the *compiler* in the DMP and DHP baselines:
it owns the static-analysis knowledge (reconvergence points, hammock shape)
that those schemes obtain through compiler support and ISA hints.  ACB never
uses it at run time — ACB learns convergence in hardware — but the test
suite uses it as ground truth to validate ACB's learned reconvergence
points.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.program.program import Program


def reachable_distances(
    program: Program, start: int, max_dist: int, block_before: Optional[int] = None
) -> Dict[int, int]:
    """Breadth-first distances (in instructions) from *start*.

    Both outcomes of conditional branches are followed.  Exploration stops
    at *max_dist*, mirroring the bounded lookahead every realistic
    convergence analysis uses.  With *block_before* set, edges jumping to a
    PC at or before it are not followed — reconvergence analysis for a
    branch must stay within the enclosing loop body rather than wrapping
    around to the next iteration.
    """
    dist = {start: 0}
    frontier = deque([start])
    while frontier:
        pc = frontier.popleft()
        d = dist[pc]
        if d >= max_dist:
            continue
        for nxt in program[pc].successors():
            if block_before is not None and nxt <= block_before:
                continue
            if nxt < len(program) and nxt not in dist:
                dist[nxt] = d + 1
                frontier.append(nxt)
    return dist


def find_reconvergence(
    program: Program, branch_pc: int, max_dist: int = 64
) -> Optional[int]:
    """Static reconvergence point of the conditional branch at *branch_pc*.

    Returns the PC reachable from both the taken and not-taken successors
    that minimizes the larger of the two path distances (ties broken toward
    the smaller PC), or ``None`` if the paths do not meet within *max_dist*
    instructions.  For the structured hammocks our generators emit this
    coincides with the immediate post-dominator.
    """
    instr = program[branch_pc]
    if not instr.is_cond_branch:
        raise ValueError(f"pc={branch_pc} is not a conditional branch")
    taken = reachable_distances(program, instr.target, max_dist, block_before=branch_pc)
    fallthrough = reachable_distances(
        program, instr.fallthrough, max_dist, block_before=branch_pc
    )
    common = set(taken) & set(fallthrough)
    common.discard(branch_pc)
    if not common:
        return None
    return min(common, key=lambda pc: (max(taken[pc], fallthrough[pc]), pc))


def find_guaranteed_reconvergence(
    program: Program, branch_pc: int, max_dist: int = 64
) -> Optional[int]:
    """Reconvergence point that *every* region path passes through.

    This is the immediate-post-dominator-style point a profiling compiler
    (DMP [7], [15]) computes: unlike :func:`find_reconvergence`, a candidate
    is rejected if some path from either side can get *past* it without
    touching it (e.g. the multi-exit shapes of Fig. 8 category B1).
    Candidates are tried in order of increasing path distance.
    """
    instr = program[branch_pc]
    if not instr.is_cond_branch:
        raise ValueError(f"pc={branch_pc} is not a conditional branch")
    taken = reachable_distances(program, instr.target, max_dist, block_before=branch_pc)
    fallthrough = reachable_distances(
        program, instr.fallthrough, max_dist, block_before=branch_pc
    )
    common = sorted(
        (set(taken) & set(fallthrough)) - {branch_pc},
        key=lambda pc: (max(taken[pc], fallthrough[pc]), pc),
    )
    for candidate in common:
        if _all_paths_hit(program, instr.target, candidate, max_dist) and _all_paths_hit(
            program, instr.fallthrough, candidate, max_dist
        ):
            return candidate
    return None


def _all_paths_hit(program: Program, start: int, candidate: int, max_dist: int) -> bool:
    """True when every path from *start* reaches *candidate*.

    *candidate* is absorbing.  A path taking a backward edge anywhere other
    than into the candidate is treated as having escaped the region (it
    wrapped around an enclosing loop), as is a path still running after
    *max_dist* steps.  Loops nested strictly inside a hammock body are
    therefore conservatively rejected — the same simplification DMP's
    compiler applies when it refuses irregular regions.
    """
    if start == candidate:
        return True
    frontier = deque([(start, 0)])
    seen = {start}
    while frontier:
        pc, d = frontier.popleft()
        if d >= max_dist:
            return False  # never reached the candidate within the window
        for nxt in program[pc].successors():
            if nxt == candidate:
                continue
            if nxt >= len(program) or nxt < pc:
                return False  # fell off the program or wrapped a loop
            if nxt not in seen:
                seen.add(nxt)
                frontier.append((nxt, d + 1))
    return True


def _straightline_length(program: Program, start: int, stop: int) -> Optional[int]:
    """Instruction count from *start* to *stop* along fall-through only.

    Returns ``None`` if a branch (other than an unconditional jump landing
    exactly on *stop*) interrupts the straight line, or if *stop* is never
    reached within the program.
    """
    pc = start
    count = 0
    while pc != stop:
        if pc >= len(program) or count > len(program):
            return None
        instr = program[pc]
        if instr.is_branch:
            if not instr.cond and instr.target == stop:
                return count + 1
            return None
        pc += 1
        count += 1
    return count


@dataclass(frozen=True)
class HammockInfo:
    """Shape summary of a conditional branch's control-dependent region."""

    branch_pc: int
    reconvergence_pc: int
    taken_len: int          # instructions on the taken side
    not_taken_len: int      # instructions on the not-taken side
    simple: bool            # both sides straight-line (DHP's requirement)
    has_store: bool         # a store appears inside the region
    if_else: bool           # region has two non-empty sides

    @property
    def body_size(self) -> int:
        """T + N, the combined body size of Equation 1."""
        return self.taken_len + self.not_taken_len


def classify_hammock(
    program: Program, branch_pc: int, max_dist: int = 64
) -> Optional[HammockInfo]:
    """Classify the hammock rooted at *branch_pc*, or ``None`` if the branch
    does not reconverge within *max_dist*.

    A hammock is *simple* when both paths run straight-line into the
    reconvergence point — the only shape DHP can predicate.  Complex
    convergent shapes (nested branches, Type-3 back-edges) still return a
    :class:`HammockInfo` with ``simple=False`` and path lengths measured by
    BFS distance.
    """
    reconv = find_reconvergence(program, branch_pc, max_dist)
    if reconv is None:
        return None
    instr = program[branch_pc]

    nt_straight = _straightline_length(program, instr.fallthrough, reconv)
    tk_straight = _straightline_length(program, instr.target, reconv)
    simple = nt_straight is not None and tk_straight is not None

    taken = reachable_distances(program, instr.target, max_dist)
    fallthrough = reachable_distances(program, instr.fallthrough, max_dist)
    taken_len = tk_straight if tk_straight is not None else taken[reconv]
    nt_len = nt_straight if nt_straight is not None else fallthrough[reconv]

    region = _region_pcs(program, branch_pc, reconv, max_dist)
    has_store = any(program[pc].is_store for pc in region)
    return HammockInfo(
        branch_pc=branch_pc,
        reconvergence_pc=reconv,
        taken_len=taken_len,
        not_taken_len=nt_len,
        simple=simple,
        has_store=has_store,
        if_else=taken_len > 0 and nt_len > 0,
    )


def _region_pcs(program: Program, branch_pc: int, reconv: int, max_dist: int) -> List[int]:
    """PCs control-dependent on the branch (both paths, up to reconvergence)."""
    instr = program[branch_pc]
    pcs = set()
    for start in (instr.target, instr.fallthrough):
        frontier = deque([(start, 0)])
        seen = {start}
        while frontier:
            pc, d = frontier.popleft()
            if pc == reconv or d >= max_dist or pc >= len(program):
                continue
            pcs.add(pc)
            for nxt in program[pc].successors():
                if nxt <= branch_pc:
                    continue  # stay within the enclosing loop body
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, d + 1))
    return sorted(pcs)
