"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run WORKLOAD [--config acb] [--scale 1]``
    Simulate one workload under a named configuration and print the
    measurement-window statistics.  ``WORKLOAD`` is a suite name or a
    trace reference — ``trace:<mini-trace>`` (committed under
    ``tests/traces/``) or ``trace:<path>`` for any trace file on disk.
``compare WORKLOAD [CONFIG ...]``
    Run several configurations on one workload side by side.
``suite``
    List the 70 workloads by category (Table III).
``convert-trace INPUT [--window N] [--offset N] [--out FILE]``
    Ingest a branch trace (native ``.rbt.gz`` or CBP-style text), cut a
    replay window out of it with proportional ACB/Dynamo epoch scaling,
    print its summary statistics (static branches, taken rate, per-PC
    misprediction concentration under TAGE), and write the converted
    native trace (see docs/workloads.md, "Trace-driven workloads").
``experiment NAME``
    Run one figure/table driver (``fig6``, ``fig8``, ``table1`` ...) and
    print its structured result.
``validate [--seeds 50] [--budget 120s]``
    Differential fuzzing: cross-check golden vs. baseline vs. ACB
    retirement traces on seeded random programs, shrinking any failure to
    a minimal reproducer on disk (see docs/validation.md).
``trace WORKLOAD [--config acb] [--out DIR] [--formats ...]``
    Re-simulate one workload with the cycle-level trace collector enabled
    and export pipeline/decision artifacts: a Konata log, a Chrome
    trace-event JSON (Perfetto), the ACB decision log, and a per-branch
    timeline (see docs/observability.md).
``bench [--quick] [--compare BASELINE.json] [--profile]``
    Time the simulator itself on a pinned target matrix (the Figure 6
    smoke set, a per-scheme sweep, per-stage microbenchmarks) and emit a
    schema-versioned ``BENCH_<tag>.json``; ``--compare`` prints speedups
    against an earlier report and exits nonzero past the regression
    threshold (see docs/performance.md).
``serve [--port 8321] [--db FILE]``
    Run the simulation service: an HTTP API that accepts experiment
    matrices as JSON, executes them on a background job queue, and backs
    them with the SQLite experiment database (see docs/service.md).
``submit WORKLOAD [WORKLOAD ...] [--configs ...] [--url URL]``
    Client for a running service: submit a workload × config matrix over
    HTTP, stream progress, and print the fetched results.
``runs [--workload W] [--config C] [--url URL | --db FILE]``
    Query the experiment database — every run ever executed, keyed by
    config hash — over HTTP or directly from the SQLite file.
``worker [--url URL] [--id NAME] [--ttl S] [--max-idle S]``
    Run one distributed worker: pull leased matrix cells from a service,
    simulate them through the standard runner path, and post the stats
    back (lease → heartbeat → ack; see docs/distributed.md).
``dashboard [--db FILE] [--out FILE] [--bench-dir DIR]``
    Render the experiment database (and any ``BENCH_<tag>.json`` reports
    next to it) into one self-contained HTML file — no external assets,
    works from ``file://`` (see docs/dashboard.md).

Global options
--------------
``--jobs N``       fan simulation matrices out over N worker processes
                   (default: ``REPRO_JOBS`` env var, else all cores).
``--backend B``    matrix dispatch backend: ``serial``, ``pool``,
                   ``lanes``, or ``distributed`` (sets ``REPRO_BACKEND``;
                   default: the env var, else picked from --jobs/--lanes).
                   ``distributed`` shards cells across worker processes
                   via the service API (see docs/distributed.md).
``--lanes N``      batch matrix cells into lane packs of up to N cells
                   over the same workload (the SoA lane engine,
                   ``repro.core.lanes``); sets ``REPRO_LANES`` for the
                   invocation.  ``0`` forces scalar dispatch.  SimStats
                   are bit-identical either way.
``--cache-dir D``  persistent result cache location (default
                   ``.repro_cache``); repeated invocations of the same
                   matrix skip already-simulated cells.
``--no-cache``     disable the persistent cache for this invocation.
``--store FILE``   attach the durable experiment database as a second
                   cache level below ``.repro_cache/`` (the ``serve``
                   command always attaches its own).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.harness import experiments, format_table, pct
from repro.harness.cache import ResultCache, set_active_cache
from repro.harness.parallel import (
    BACKENDS,
    RunRequest,
    resolve_backend,
    run_matrix,
    session_manifests,
)
from repro.harness.reporting import summarize_manifests
from repro.harness.runner import SCHEME_FACTORIES, split_config
from repro.workloads import categories, suite_names
from repro.workloads.frontier import is_frontier_name
from repro.workloads.trace import is_trace_name, resolve_trace_path

EXPERIMENTS = {
    "fig1": experiments.fig1_scaling_potential,
    "sec2": experiments.sec2_characterization,
    "eq1": experiments.eq1_profitability,
    "fig6": experiments.fig6_acb_summary,
    "fig6-traces": experiments.fig6_traces_summary,
    "fig7": experiments.fig7_correlation,
    "fig8": experiments.fig8_vs_dmp,
    "fig8-frontier": experiments.fig8_frontier,
    "fig9": experiments.fig9_dmp_pbh,
    "fig10": experiments.fig10_alloc_stalls,
    "fig11": experiments.fig11_vs_dhp,
    "table1": experiments.table1_storage,
    "table2": experiments.table2_core_params,
    "table3": experiments.table3_workloads,
    "sec5d": experiments.sec5d_core_scaling,
    "sec5e": experiments.sec5e_power_proxies,
}


def _workload_ref(name: str) -> str:
    """argparse type: a suite workload name or ``trace:<name-or-path>``."""
    if is_trace_name(name):
        try:
            resolve_trace_path(name)
        except KeyError as exc:
            raise argparse.ArgumentTypeError(str(exc).strip("'\"")) from None
        return name
    if name in suite_names() or is_frontier_name(name):
        return name
    raise argparse.ArgumentTypeError(
        f"unknown workload {name!r}: not a suite workload (see `repro suite`), "
        f"not a frontier workload, and not a trace:<name-or-path> reference"
    )


def _config_ref(name: str) -> str:
    """argparse type: a configuration name, optionally ``@<predictor>``.

    ``choices=`` can't express the open ``scheme@predictor`` product, so
    ``run``/``trace``/``compare`` validate through the same
    :func:`split_config` convention the harness uses.
    """
    scheme, predictor = split_config(name)
    if scheme not in SCHEME_FACTORIES:
        raise argparse.ArgumentTypeError(
            f"unknown config {scheme!r}; choose from {sorted(SCHEME_FACTORIES)} "
            f"(optionally suffixed '@<predictor>', e.g. acb@bullseye)"
        )
    if predictor is not None:
        from repro.branch import PREDICTORS

        if predictor not in PREDICTORS:
            raise argparse.ArgumentTypeError(
                f"unknown predictor {predictor!r}; "
                f"choose from {sorted(PREDICTORS)}"
            )
    return name


def _cmd_run(args: argparse.Namespace) -> int:
    # one-cell matrix rather than a bare run_workload() call, so the
    # --backend / --jobs / --lanes plumbing applies to `run` too
    result = run_matrix(
        [RunRequest(args.workload, args.config, core_scale=args.scale)]
    )[0]
    print(f"{result.workload} [{result.category}] under {result.config}:")
    for key, value in result.stats.summary().items():
        print(f"  {key:14s} {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = run_matrix([
        RunRequest(args.workload, config, core_scale=args.scale)
        for config in args.configs
    ])
    base = results[0].stats.cycles if results else 0
    rows = []
    for config, result in zip(args.configs, results):
        rows.append([
            config,
            f"{result.stats.ipc:.3f}",
            str(result.stats.flushes),
            str(result.stats.predicated_instances),
            pct(base / result.stats.cycles),
        ])
    print(format_table(["config", "ipc", "flushes", "predicated", "vs first"], rows))
    return 0


def _cmd_suite(_args: argparse.Namespace) -> int:
    for category, names in categories().items():
        print(f"{category} ({len(names)}):")
        print("  " + ", ".join(sorted(names)))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS.get(args.name)
    if driver is None:
        print(f"unknown experiment {args.name!r}; choose from {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    result = driver()
    result.pop("results", None)  # strip non-serializable run objects
    print(json.dumps(result, indent=2, default=str))
    return 0


def _parse_budget(text: str) -> float:
    """Parse a wall-clock budget like ``120``, ``120s``, or ``2m``."""
    text = text.strip().lower()
    factor = 1.0
    if text.endswith("m"):
        factor, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid budget {text!r}; use e.g. 90, 120s, or 2m"
        ) from None
    return value * factor


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate.fuzz import replay_file, run_fuzz

    if args.replay:
        failure = replay_file(args.replay)
        if failure is None:
            print(f"{args.replay}: passes (no divergence, no violations)")
            return 0
        print(f"{args.replay}: still failing\n  {failure.describe()}")
        return 1

    configs = tuple(c.strip() for c in args.configs.split(",") if c.strip())
    report = run_fuzz(
        seeds=args.seeds,
        start_seed=args.start_seed,
        configs=configs,
        instructions=args.instructions,
        budget_s=args.budget,
        shrink=not args.no_shrink,
        repro_dir=args.repro_dir,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    status = "OK" if report.ok else "FAIL"
    tail = " (budget exhausted)" if report.budget_exhausted else ""
    print(
        f"validate: {status} — {report.completed}/{report.requested} seeds, "
        f"{len(report.failures)} failure(s), configs={','.join(configs)}, "
        f"{report.elapsed:.1f}s{tail}"
    )
    for fail in report.failures:
        print(f"  seed {fail.seed}: {fail.failure.describe()}")
        if fail.repro_path:
            print(f"    reproducer: {fail.repro_path}")
    return 0 if report.ok else 1


_TRACE_FORMATS = ("konata", "chrome", "log", "timeline")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.harness.parallel import record_artifacts
    from repro.trace.driver import run_traced

    try:
        traced = run_traced(
            args.workload, args.config,
            out_dir=args.out, formats=args.formats,
            warmup=args.warmup, measure=args.measure, scale=args.scale,
            pc=args.pc, uop_capacity=args.uop_capacity,
            acb_capacity=args.acb_capacity,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for artifact in traced.artifacts:
        print(f"  {artifact.path}: {artifact.detail}")
    record_artifacts(traced.paths, workload=args.workload, config=args.config,
                     wall_time=traced.wall_time)
    stats = traced.stats
    print(
        f"{args.workload} [{args.config}]: {stats.instructions} instructions, "
        f"{stats.cycles} cycles (IPC {stats.ipc:.3f}) — "
        f"{traced.trace_summary}"
    )
    if traced.truncated_uops or traced.truncated_acb:
        print(
            f"  warning: ring buffers wrapped "
            f"({traced.truncated_uops} uops, "
            f"{traced.truncated_acb} ACB events dropped); "
            f"raise --uop-capacity/--acb-capacity or shrink the window",
            file=sys.stderr,
        )
    return 0


def _cmd_convert_trace(args: argparse.Namespace) -> int:
    from repro.workloads.trace import (
        TraceFormatError,
        TraceMeta,
        downsample,
        load_branch_trace,
        recommended_acb_scale,
        summarize,
        trace_stem,
        write_trace,
    )

    try:
        meta, records = load_branch_trace(args.input)
        window, offset = downsample(records, args.window, args.offset)
    except (TraceFormatError, ValueError) as exc:
        print(f"convert-trace: {exc}", file=sys.stderr)
        return 2
    if not window:
        print(f"convert-trace: {args.input} holds no branch events",
              file=sys.stderr)
        return 2

    summary = summarize(window)
    scale = recommended_acb_scale(len(window))
    print(f"{args.input}: {len(records)} events"
          + (f", window [{offset}, {offset + len(window)})" if args.window else ""))
    print(summary.format())
    print(f"acb scale        {scale} (windows reduced 1/{scale})")
    if args.stats_only:
        return 0

    name = args.name or trace_stem(args.input)
    out = args.out or os.path.join(
        ".repro_traces", "converted", f"{name}.rbt.gz"
    )
    out_meta = TraceMeta(
        name=name,
        records=len(window),
        source=meta.source or args.input,
        source_records=meta.source_records or len(records),
        window_offset=meta.window_offset + offset,
        acb_scale=scale,
        notes=meta.notes,
    )
    write_trace(out, window, out_meta)
    print(f"wrote {out} ({os.path.getsize(out)} bytes, {len(window)} records)")
    print(f"replay with: python -m repro run trace:{out} --config acb")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import compare_reports, format_compare, run_bench, validate_report

    baseline = None
    if args.compare:
        try:
            with open(args.compare) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.compare}: {exc}", file=sys.stderr)
            return 2
        problems = validate_report(baseline)
        if problems:
            print(f"baseline {args.compare} is not a valid bench report:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 2

    report = run_bench(
        quick=args.quick,
        tag=args.tag,
        groups=args.groups,
        profile=args.profile,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )

    out_path = args.out or f"BENCH_{args.tag}.json"
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    total_wall = sum(r["wall_s"] for r in report["runs"])
    print(f"{out_path}: {len(report['runs'])} runs, {total_wall:.1f}s total "
          f"({'quick' if args.quick else 'full'} matrix)")
    from repro.bench.compare import lanes_speedup

    for prefix, ratio in sorted(lanes_speedup(report).items()):
        print(f"lanes vs scalar [{prefix}]: {ratio:.2f}x "
              f"(both sides of this run, noise-free)")
    if report["profile"] is not None:
        top = report["profile"]["functions"][:8]
        print("hottest simulator functions (tottime):")
        for row in top:
            print(f"  {row['tottime_s']:8.3f}s  {row['calls']:>10d}  "
                  f"{row['function']}")

    if baseline is None:
        return 0
    result = compare_reports(baseline, report)
    print(format_compare(result, baseline_tag=baseline.get("tag", "baseline")))
    if not result.rows:
        print("no comparable runs between the two reports", file=sys.stderr)
        return 2
    if result.regressed(args.threshold):
        print(
            f"REGRESSION: overall {result.overall:.2f}x is past the "
            f"1/{args.threshold:.2f} threshold", file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import ROUTES, Service, make_server
    from repro.service.store import StoreSchemaError

    try:
        # Service.create installs the store below the JSON cache, so
        # resubmitted matrices are served from the DB without re-simulation
        service = Service.create(
            db_path=args.db, artifact_dir=args.artifact_dir, jobs=args.jobs,
        )
    except StoreSchemaError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    server = make_server(service, host=args.host, port=args.port,
                         verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"repro service on http://{host}:{port}  "
          f"(db: {service.store.path}, {service.store.count_runs()} stored runs)")
    print(f"  {len(ROUTES)} routes under /api/v1 — see docs/service.md")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    # `repro --backend distributed submit ...` queues the matrix for
    # pull-based workers instead of the server's local job queue
    backend = resolve_backend(None)
    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        job = client.submit(
            workloads=args.workloads, configs=args.configs,
            warmup=args.warmup, measure=args.measure,
            core_scale=args.scale, lanes=args.lanes,
            backend="distributed" if backend == "distributed" else None,
        )
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    print(f"job {job['job_id']}: {job['total']} cells submitted "
          f"to {client.url}")
    if args.no_wait:
        print(f"poll with: python -m repro runs --url {client.url}  "
              f"(or GET /api/v1/jobs/{job['job_id']})")
        return 0

    def show(event):
        if event["event"] == "cell":
            print(f"  [{event['done']}/{event['total']}] "
                  f"{event['workload']} × {event['config']} "
                  f"({event['source']})", file=sys.stderr)

    try:
        status = client.wait(job["job_id"], timeout=args.timeout,
                             on_event=show)
        results = client.results(job["job_id"])
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    rows = []
    for result in results:
        stats = result["stats"]
        cycles = stats.get("cycles", 0)
        rows.append([
            result["workload"],
            result["config"],
            f"{stats.get('instructions', 0) / cycles:.3f}" if cycles else "-",
            str(stats.get("flushes", 0)),
            result["run_id"],
            result["source"],
        ])
    print(format_table(
        ["workload", "config", "ipc", "flushes", "run_id", "source"], rows
    ))
    print(f"job {status['job_id']}: {status['simulated']} simulated, "
          f"{status['cache_hits']} cache/store hits, "
          f"wall {status['wall_time']:.2f}s")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    if args.url is not None:
        from repro.service.client import ServiceClient, ServiceError

        try:
            rows = ServiceClient(args.url).runs(
                workload=args.workload, config=args.config, limit=args.limit
            )
        except ServiceError as exc:
            print(f"runs: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.service.store import ExperimentStore, StoreSchemaError

        store = ExperimentStore(args.db, strict=True)
        try:
            rows = store.query_runs(
                workload=args.workload, config=args.config, limit=args.limit
            )
        except StoreSchemaError as exc:
            print(f"runs: {exc}", file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    if not rows:
        print("no stored runs match")
        return 0
    print(format_table(
        ["run_id", "workload", "config", "window", "ipc", "created"],
        [[r["run_id"], r["workload"], r["config"],
          f"{r['warmup']}+{r['measure']}", f"{r['ipc']:.3f}", r["created"]]
         for r in rows],
    ))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.harness.distributed import run_worker
    from repro.service.client import ServiceError, service_url

    url = service_url(args.url)
    options = {}
    if args.ttl is not None:
        options["ttl"] = args.ttl
    if args.poll is not None:
        options["poll"] = args.poll
    try:
        completed = run_worker(
            url=url,
            worker_id=args.id,
            max_idle=args.max_idle,
            once=args.once,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr),
            **options,
        )
    except ServiceError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("worker: interrupted", file=sys.stderr)
        return 1
    print(f"worker done: {completed} cell(s) completed from {url}")
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.dashboard import generate

    try:
        report = generate(
            db_path=args.db,
            out_path=args.out,
            bench_dir=args.bench_dir,
            limit=args.limit,
            title=args.title,
        )
    except OSError as exc:
        print(f"dashboard: {exc}", file=sys.stderr)
        return 2
    print(f"{report.out_path}: {report.size_bytes} bytes — "
          f"{report.runs} stored runs, {report.jobs} jobs, "
          f"{report.bench_reports} bench report(s)")
    print("self-contained HTML; open it directly in a browser")
    return 0


def _report_manifests() -> None:
    manifests = session_manifests()
    if manifests:
        print(summarize_manifests(manifests), file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="ACB (ISCA 2020) reproduction harness"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for experiment matrices "
             "(default: REPRO_JOBS, else all cores)",
    )
    parser.add_argument(
        "--backend", default=None, choices=BACKENDS,
        help="matrix dispatch backend (sets REPRO_BACKEND; 'distributed' "
             "shards cells across worker processes via the service API, "
             "see docs/distributed.md)",
    )
    parser.add_argument(
        "--lanes", type=int, default=None, metavar="N",
        help="lane-pack width for matrix dispatch (sets REPRO_LANES; "
             "0 = scalar engine, default: REPRO_LANES env var, else scalar)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache directory (default: .repro_cache)",
    )
    parser.add_argument(
        "--store", default=None, metavar="FILE",
        help="attach the durable experiment database below the cache "
             "(see docs/service.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload", type=_workload_ref, metavar="WORKLOAD",
                       help="suite workload or trace:<name-or-path>")
    p_run.add_argument("--config", default="acb", type=_config_ref,
                       help="configuration name, optionally @<predictor> "
                            "(e.g. acb@bullseye)")
    p_run.add_argument("--scale", type=int, default=1)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare configurations")
    p_cmp.add_argument("workload", type=_workload_ref, metavar="WORKLOAD",
                       help="suite workload or trace:<name-or-path>")
    p_cmp.add_argument("configs", nargs="*",
                       default=["baseline", "acb", "dmp", "dhp"])
    p_cmp.add_argument("--scale", type=int, default=1)
    p_cmp.set_defaults(func=_cmd_compare)

    p_suite = sub.add_parser("suite", help="list the workload suite")
    p_suite.set_defaults(func=_cmd_suite)

    p_exp = sub.add_parser("experiment", help="run a figure/table driver")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.set_defaults(func=_cmd_experiment)

    p_val = sub.add_parser(
        "validate", help="differential fuzzing of the timing engine"
    )
    p_val.add_argument("--seeds", type=int, default=50,
                       help="number of random programs to cross-check")
    p_val.add_argument("--start-seed", type=int, default=0,
                       help="first seed of the campaign")
    p_val.add_argument("--budget", type=_parse_budget, default=None,
                       metavar="TIME", help="wall-clock budget, e.g. 120s or 2m")
    p_val.add_argument("--configs",
                       default="baseline,acb,acb-dmp-reconv,acb@bullseye,"
                               "acb+lanes",
                       help="comma-separated timing configurations to check "
                            "(scheme names, optionally @<predictor>, "
                            "optionally suffixed '+lanes' to drive the "
                            "lane-engine functional replay)")
    p_val.add_argument("--instructions", type=int, default=1200,
                       help="architectural instructions per program")
    p_val.add_argument("--repro-dir", default=".repro_failures",
                       help="directory for shrunk failure reproducers")
    p_val.add_argument("--no-shrink", action="store_true",
                       help="write failures without shrinking them first")
    p_val.add_argument("--replay", default=None, metavar="FILE",
                       help="re-run a written reproducer instead of fuzzing")
    p_val.set_defaults(func=_cmd_validate)

    p_trc = sub.add_parser(
        "trace", help="export cycle-level pipeline and ACB decision traces"
    )
    p_trc.add_argument("workload", type=_workload_ref, metavar="WORKLOAD",
                       help="suite workload or trace:<name-or-path>")
    p_trc.add_argument("--config", default="acb", type=_config_ref,
                       help="configuration name, optionally @<predictor>")
    p_trc.add_argument("--scale", type=int, default=1)
    p_trc.add_argument("--warmup", type=int, default=3000,
                       help="warm-up instructions before the traced window")
    p_trc.add_argument("--measure", type=int, default=2000,
                       help="instructions in the traced measurement window")
    p_trc.add_argument("--out", default=None, metavar="DIR",
                       help="output directory "
                            "(default: .repro_traces/WORKLOAD-CONFIG)")
    p_trc.add_argument("--formats", nargs="*", metavar="FMT",
                       help=f"subset of {_TRACE_FORMATS} (default: all)")
    p_trc.add_argument("--pc", type=int, default=None,
                       help="restrict the timeline to one branch PC")
    p_trc.add_argument("--uop-capacity", type=int, default=1 << 16,
                       help="uop ring-buffer capacity (oldest dropped)")
    p_trc.add_argument("--acb-capacity", type=int, default=1 << 14,
                       help="ACB event ring-buffer capacity")
    p_trc.set_defaults(func=_cmd_trace)

    p_cvt = sub.add_parser(
        "convert-trace",
        help="ingest a branch trace: downsample, characterize, write native",
    )
    p_cvt.add_argument("input", metavar="INPUT",
                       help="trace file (.rbt[.gz] native, .cbp/.txt[.gz] text)")
    p_cvt.add_argument("--window", type=int, default=None, metavar="N",
                       help="keep only N events (default: the whole trace)")
    p_cvt.add_argument("--offset", type=int, default=0, metavar="N",
                       help="start the window N events in (default 0)")
    p_cvt.add_argument("--out", default=None, metavar="FILE",
                       help="output path (default: "
                            ".repro_traces/converted/<name>.rbt.gz)")
    p_cvt.add_argument("--name", default=None,
                       help="trace name recorded in the header "
                            "(default: input stem)")
    p_cvt.add_argument("--stats-only", action="store_true",
                       help="characterize without writing a converted trace")
    p_cvt.set_defaults(func=_cmd_convert_trace)

    p_bench = sub.add_parser(
        "bench", help="time the simulator on the pinned target matrix"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-sized matrix: fewer workloads, small windows")
    p_bench.add_argument("--tag", default="local",
                         help="report label; default output is BENCH_<tag>.json")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="report path (default: BENCH_<tag>.json)")
    p_bench.add_argument("--groups", nargs="*", metavar="GROUP",
                         help="subset of target groups "
                              "(fig6, scheme, trace, frontier, micro)")
    p_bench.add_argument("--compare", default=None, metavar="BASELINE",
                         help="earlier BENCH_*.json to compare against")
    p_bench.add_argument("--threshold", type=float, default=1.5,
                         help="--compare fails past this overall slowdown "
                              "factor (default 1.5)")
    p_bench.add_argument("--profile", action="store_true",
                         help="attach a cProfile per-function breakdown")
    p_bench.set_defaults(func=_cmd_bench)

    p_srv = sub.add_parser(
        "serve", help="run the simulation service (HTTP API + job queue)"
    )
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8321,
                       help="TCP port (default 8321; 0 = ephemeral)")
    p_srv.add_argument("--db", default=None, metavar="FILE",
                       help="experiment database "
                            "(default .repro_store/experiments.sqlite)")
    p_srv.add_argument("--artifact-dir", default=None, metavar="DIR",
                       help="trace artifact directory "
                            "(default: <db dir>/artifacts)")
    p_srv.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    p_srv.set_defaults(func=_cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit a matrix to a running service over HTTP"
    )
    p_sub.add_argument("workloads", nargs="+", type=_workload_ref,
                       metavar="WORKLOAD",
                       help="suite workloads or trace:<name-or-path> refs")
    p_sub.add_argument("--configs", nargs="+", type=_config_ref,
                       default=["baseline", "acb"],
                       help="configuration names, optionally @<predictor>")
    p_sub.add_argument("--url", default=None,
                       help="service base URL (default: REPRO_SERVICE_URL, "
                            "else http://127.0.0.1:8321)")
    p_sub.add_argument("--warmup", type=int, default=None)
    p_sub.add_argument("--measure", type=int, default=None)
    p_sub.add_argument("--scale", type=int, default=None,
                       help="core scale factor for every cell")
    p_sub.add_argument("--lanes", type=int, default=None, metavar="N",
                       help="lane-pack width the service should simulate "
                            "the matrix under (0 = scalar engine)")
    p_sub.add_argument("--timeout", type=float, default=600.0,
                       help="seconds to wait for completion (default 600)")
    p_sub.add_argument("--no-wait", action="store_true",
                       help="print the job id and return without waiting")
    p_sub.set_defaults(func=_cmd_submit)

    p_runs = sub.add_parser(
        "runs", help="query the experiment database (HTTP or local file)"
    )
    p_runs.add_argument("--url", default=None,
                        help="query a running service instead of a local DB")
    p_runs.add_argument("--db", default=None, metavar="FILE",
                        help="experiment database file "
                             "(default .repro_store/experiments.sqlite)")
    p_runs.add_argument("--workload", default=None)
    p_runs.add_argument("--config", default=None)
    p_runs.add_argument("--limit", type=int, default=50)
    p_runs.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of a table")
    p_runs.set_defaults(func=_cmd_runs)

    p_wrk = sub.add_parser(
        "worker", help="pull and execute distributed matrix cells"
    )
    p_wrk.add_argument("--url", default=None,
                       help="service base URL (default: REPRO_SERVICE_URL, "
                            "else http://127.0.0.1:8321)")
    p_wrk.add_argument("--id", default=None, metavar="NAME",
                       help="worker identity reported in leases "
                            "(default: <hostname>-<pid>)")
    p_wrk.add_argument("--ttl", type=float, default=None, metavar="S",
                       help="lease deadline the worker asks for; renewed by "
                            "heartbeat at ttl/3 (default 15)")
    p_wrk.add_argument("--poll", type=float, default=None, metavar="S",
                       help="sleep between empty lease polls (default 0.25)")
    p_wrk.add_argument("--max-idle", type=float, default=None, metavar="S",
                       help="exit after the queue stays empty this long "
                            "(0 = drain and stop; default: poll forever)")
    p_wrk.add_argument("--once", action="store_true",
                       help="exit after completing a single cell")
    p_wrk.set_defaults(func=_cmd_worker)

    p_dash = sub.add_parser(
        "dashboard", help="render the experiment DB to one HTML file"
    )
    p_dash.add_argument("--db", default=None, metavar="FILE",
                        help="experiment database "
                             "(default .repro_store/experiments.sqlite)")
    p_dash.add_argument("--out", default="repro_dashboard.html",
                        metavar="FILE", help="output HTML path")
    p_dash.add_argument("--bench-dir", default=".", metavar="DIR",
                        help="directory scanned for BENCH_<tag>.json "
                             "trajectory reports (default: cwd)")
    p_dash.add_argument("--limit", type=int, default=500,
                        help="most recent stored runs to include (default 500)")
    p_dash.add_argument("--title", default=None,
                        help="dashboard page title")
    p_dash.set_defaults(func=_cmd_dashboard)

    args = parser.parse_args(argv)
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    if args.backend is not None:
        os.environ["REPRO_BACKEND"] = args.backend
    if args.lanes is not None:
        os.environ["REPRO_LANES"] = str(max(0, args.lanes))
    if args.no_cache:
        cache = None
    elif args.cache_dir is not None:
        cache = ResultCache(args.cache_dir, enabled=True)
    else:
        cache = ResultCache.from_env()
    previous = set_active_cache(cache)
    previous_store = None
    if args.store is not None and args.command != "serve":
        from repro.harness.cache import set_active_store
        from repro.service.store import ExperimentStore

        # tolerant attach: a broken store degrades to warnings, it must
        # never fail a CLI run that would otherwise simulate fine
        previous_store = set_active_store(
            ExperimentStore(args.store, strict=False)
        )
    try:
        return args.func(args)
    finally:
        set_active_cache(previous)
        if args.store is not None and args.command != "serve":
            from repro.harness.cache import set_active_store

            set_active_store(previous_store)
        _report_manifests()


if __name__ == "__main__":
    raise SystemExit(main())
