"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run WORKLOAD [--config acb] [--scale 1]``
    Simulate one workload under a named configuration and print the
    measurement-window statistics.  ``WORKLOAD`` is a suite name or a
    trace reference — ``trace:<mini-trace>`` (committed under
    ``tests/traces/``) or ``trace:<path>`` for any trace file on disk.
``compare WORKLOAD [CONFIG ...]``
    Run several configurations on one workload side by side.
``suite``
    List the 70 workloads by category (Table III).
``convert-trace INPUT [--window N] [--offset N] [--out FILE]``
    Ingest a branch trace (native ``.rbt.gz`` or CBP-style text), cut a
    replay window out of it with proportional ACB/Dynamo epoch scaling,
    print its summary statistics (static branches, taken rate, per-PC
    misprediction concentration under TAGE), and write the converted
    native trace (see docs/workloads.md, "Trace-driven workloads").
``experiment NAME``
    Run one figure/table driver (``fig6``, ``fig8``, ``table1`` ...) and
    print its structured result.
``validate [--seeds 50] [--budget 120s]``
    Differential fuzzing: cross-check golden vs. baseline vs. ACB
    retirement traces on seeded random programs, shrinking any failure to
    a minimal reproducer on disk (see docs/validation.md).
``trace WORKLOAD [--config acb] [--out DIR] [--formats ...]``
    Re-simulate one workload with the cycle-level trace collector enabled
    and export pipeline/decision artifacts: a Konata log, a Chrome
    trace-event JSON (Perfetto), the ACB decision log, and a per-branch
    timeline (see docs/observability.md).
``bench [--quick] [--compare BASELINE.json] [--profile]``
    Time the simulator itself on a pinned target matrix (the Figure 6
    smoke set, a per-scheme sweep, per-stage microbenchmarks) and emit a
    schema-versioned ``BENCH_<tag>.json``; ``--compare`` prints speedups
    against an earlier report and exits nonzero past the regression
    threshold (see docs/performance.md).

Global options
--------------
``--jobs N``       fan simulation matrices out over N worker processes
                   (default: ``REPRO_JOBS`` env var, else all cores).
``--cache-dir D``  persistent result cache location (default
                   ``.repro_cache``); repeated invocations of the same
                   matrix skip already-simulated cells.
``--no-cache``     disable the persistent cache for this invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.harness import experiments, format_table, pct
from repro.harness.cache import ResultCache, set_active_cache
from repro.harness.parallel import session_manifests
from repro.harness.reporting import summarize_manifests
from repro.harness.runner import SCHEME_FACTORIES, run_workload, split_config
from repro.workloads import categories, suite_names
from repro.workloads.frontier import is_frontier_name
from repro.workloads.trace import is_trace_name, resolve_trace_path

EXPERIMENTS = {
    "fig1": experiments.fig1_scaling_potential,
    "sec2": experiments.sec2_characterization,
    "eq1": experiments.eq1_profitability,
    "fig6": experiments.fig6_acb_summary,
    "fig6-traces": experiments.fig6_traces_summary,
    "fig7": experiments.fig7_correlation,
    "fig8": experiments.fig8_vs_dmp,
    "fig8-frontier": experiments.fig8_frontier,
    "fig9": experiments.fig9_dmp_pbh,
    "fig10": experiments.fig10_alloc_stalls,
    "fig11": experiments.fig11_vs_dhp,
    "table1": experiments.table1_storage,
    "table2": experiments.table2_core_params,
    "table3": experiments.table3_workloads,
    "sec5d": experiments.sec5d_core_scaling,
    "sec5e": experiments.sec5e_power_proxies,
}


def _workload_ref(name: str) -> str:
    """argparse type: a suite workload name or ``trace:<name-or-path>``."""
    if is_trace_name(name):
        try:
            resolve_trace_path(name)
        except KeyError as exc:
            raise argparse.ArgumentTypeError(str(exc).strip("'\"")) from None
        return name
    if name in suite_names() or is_frontier_name(name):
        return name
    raise argparse.ArgumentTypeError(
        f"unknown workload {name!r}: not a suite workload (see `repro suite`), "
        f"not a frontier workload, and not a trace:<name-or-path> reference"
    )


def _config_ref(name: str) -> str:
    """argparse type: a configuration name, optionally ``@<predictor>``.

    ``choices=`` can't express the open ``scheme@predictor`` product, so
    ``run``/``trace``/``compare`` validate through the same
    :func:`split_config` convention the harness uses.
    """
    scheme, predictor = split_config(name)
    if scheme not in SCHEME_FACTORIES:
        raise argparse.ArgumentTypeError(
            f"unknown config {scheme!r}; choose from {sorted(SCHEME_FACTORIES)} "
            f"(optionally suffixed '@<predictor>', e.g. acb@bullseye)"
        )
    if predictor is not None:
        from repro.branch import PREDICTORS

        if predictor not in PREDICTORS:
            raise argparse.ArgumentTypeError(
                f"unknown predictor {predictor!r}; "
                f"choose from {sorted(PREDICTORS)}"
            )
    return name


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_workload(args.workload, args.config, core_scale=args.scale)
    print(f"{result.workload} [{result.category}] under {result.config}:")
    for key, value in result.stats.summary().items():
        print(f"  {key:14s} {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    base = None
    for config in args.configs:
        result = run_workload(args.workload, config, core_scale=args.scale)
        if base is None:
            base = result.stats.cycles
        rows.append([
            config,
            f"{result.stats.ipc:.3f}",
            str(result.stats.flushes),
            str(result.stats.predicated_instances),
            pct(base / result.stats.cycles),
        ])
    print(format_table(["config", "ipc", "flushes", "predicated", "vs first"], rows))
    return 0


def _cmd_suite(_args: argparse.Namespace) -> int:
    for category, names in categories().items():
        print(f"{category} ({len(names)}):")
        print("  " + ", ".join(sorted(names)))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS.get(args.name)
    if driver is None:
        print(f"unknown experiment {args.name!r}; choose from {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    result = driver()
    result.pop("results", None)  # strip non-serializable run objects
    print(json.dumps(result, indent=2, default=str))
    return 0


def _parse_budget(text: str) -> float:
    """Parse a wall-clock budget like ``120``, ``120s``, or ``2m``."""
    text = text.strip().lower()
    factor = 1.0
    if text.endswith("m"):
        factor, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid budget {text!r}; use e.g. 90, 120s, or 2m"
        ) from None
    return value * factor


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate.fuzz import replay_file, run_fuzz

    if args.replay:
        failure = replay_file(args.replay)
        if failure is None:
            print(f"{args.replay}: passes (no divergence, no violations)")
            return 0
        print(f"{args.replay}: still failing\n  {failure.describe()}")
        return 1

    configs = tuple(c.strip() for c in args.configs.split(",") if c.strip())
    report = run_fuzz(
        seeds=args.seeds,
        start_seed=args.start_seed,
        configs=configs,
        instructions=args.instructions,
        budget_s=args.budget,
        shrink=not args.no_shrink,
        repro_dir=args.repro_dir,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    status = "OK" if report.ok else "FAIL"
    tail = " (budget exhausted)" if report.budget_exhausted else ""
    print(
        f"validate: {status} — {report.completed}/{report.requested} seeds, "
        f"{len(report.failures)} failure(s), configs={','.join(configs)}, "
        f"{report.elapsed:.1f}s{tail}"
    )
    for fail in report.failures:
        print(f"  seed {fail.seed}: {fail.failure.describe()}")
        if fail.repro_path:
            print(f"    reproducer: {fail.repro_path}")
    return 0 if report.ok else 1


_TRACE_FORMATS = ("konata", "chrome", "log", "timeline")


def _cmd_trace(args: argparse.Namespace) -> int:
    import time
    from dataclasses import replace as dc_replace

    from repro.core.config import SKYLAKE_LIKE, scaled
    from repro.core.engine import Core
    from repro.harness.parallel import record_artifacts
    from repro.harness.runner import resolve_workload, scheme_for
    from repro.trace import (
        TraceConfig,
        export_chrome,
        export_konata,
        format_acb_log,
        format_branch_timeline,
    )

    formats = list(dict.fromkeys(args.formats)) if args.formats else list(_TRACE_FORMATS)
    for fmt in formats:
        if fmt not in _TRACE_FORMATS:
            print(f"unknown format {fmt!r}; choose from {_TRACE_FORMATS}",
                  file=sys.stderr)
            return 2

    workload = resolve_workload(args.workload)
    trace_cfg = TraceConfig(
        uop_capacity=args.uop_capacity, acb_capacity=args.acb_capacity
    )
    core_cfg = dc_replace(scaled(args.scale, SKYLAKE_LIKE), trace=trace_cfg)
    scheme = scheme_for(workload, args.config)
    scheme_name, predictor = split_config(args.config)
    if scheme_name == "oracle-bp":
        predictor = "oracle"
    started = time.perf_counter()
    core = Core(workload, core_cfg, scheme=scheme, predictor=predictor)
    stats = core.run_window(args.warmup, args.measure)
    core.trace.finish(core.cycle)
    elapsed = time.perf_counter() - started

    slug = args.workload.replace(":", "_").replace("/", "_")
    out_dir = args.out or os.path.join(".repro_traces", f"{slug}-{args.config}")
    os.makedirs(out_dir, exist_ok=True)
    written = []
    if "konata" in formats:
        path = os.path.join(out_dir, "trace.konata")
        count = export_konata(core.trace, path)
        written.append(path)
        print(f"  {path}: {count} uops (open with the Konata pipeline viewer)")
    if "chrome" in formats:
        path = os.path.join(out_dir, "trace.json")
        count = export_chrome(core.trace, path)
        written.append(path)
        print(f"  {path}: {count} events (load at https://ui.perfetto.dev)")
    if "log" in formats:
        path = os.path.join(out_dir, "acb_log.txt")
        with open(path, "w") as handle:
            handle.write(format_acb_log(core.trace))
        written.append(path)
        print(f"  {path}: {core.trace.acb_seen} ACB decision events")
    if "timeline" in formats:
        path = os.path.join(out_dir, "timeline.txt")
        with open(path, "w") as handle:
            handle.write(format_branch_timeline(core.trace, pc=args.pc))
        written.append(path)
        print(f"  {path}: per-branch timeline")
    record_artifacts(written, workload=args.workload, config=args.config,
                     wall_time=elapsed)
    print(
        f"{args.workload} [{args.config}]: {stats.instructions} instructions, "
        f"{stats.cycles} cycles (IPC {stats.ipc:.3f}) — "
        f"{core.trace.summary()}"
    )
    if core.trace.truncated_uops or core.trace.truncated_acb:
        print(
            f"  warning: ring buffers wrapped "
            f"({core.trace.truncated_uops} uops, "
            f"{core.trace.truncated_acb} ACB events dropped); "
            f"raise --uop-capacity/--acb-capacity or shrink the window",
            file=sys.stderr,
        )
    return 0


def _cmd_convert_trace(args: argparse.Namespace) -> int:
    from repro.workloads.trace import (
        TraceFormatError,
        TraceMeta,
        downsample,
        load_branch_trace,
        recommended_acb_scale,
        summarize,
        trace_stem,
        write_trace,
    )

    try:
        meta, records = load_branch_trace(args.input)
        window, offset = downsample(records, args.window, args.offset)
    except (TraceFormatError, ValueError) as exc:
        print(f"convert-trace: {exc}", file=sys.stderr)
        return 2
    if not window:
        print(f"convert-trace: {args.input} holds no branch events",
              file=sys.stderr)
        return 2

    summary = summarize(window)
    scale = recommended_acb_scale(len(window))
    print(f"{args.input}: {len(records)} events"
          + (f", window [{offset}, {offset + len(window)})" if args.window else ""))
    print(summary.format())
    print(f"acb scale        {scale} (windows reduced 1/{scale})")
    if args.stats_only:
        return 0

    name = args.name or trace_stem(args.input)
    out = args.out or os.path.join(
        ".repro_traces", "converted", f"{name}.rbt.gz"
    )
    out_meta = TraceMeta(
        name=name,
        records=len(window),
        source=meta.source or args.input,
        source_records=meta.source_records or len(records),
        window_offset=meta.window_offset + offset,
        acb_scale=scale,
        notes=meta.notes,
    )
    write_trace(out, window, out_meta)
    print(f"wrote {out} ({os.path.getsize(out)} bytes, {len(window)} records)")
    print(f"replay with: python -m repro run trace:{out} --config acb")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import compare_reports, format_compare, run_bench, validate_report

    baseline = None
    if args.compare:
        try:
            with open(args.compare) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.compare}: {exc}", file=sys.stderr)
            return 2
        problems = validate_report(baseline)
        if problems:
            print(f"baseline {args.compare} is not a valid bench report:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 2

    report = run_bench(
        quick=args.quick,
        tag=args.tag,
        groups=args.groups,
        profile=args.profile,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )

    out_path = args.out or f"BENCH_{args.tag}.json"
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    total_wall = sum(r["wall_s"] for r in report["runs"])
    print(f"{out_path}: {len(report['runs'])} runs, {total_wall:.1f}s total "
          f"({'quick' if args.quick else 'full'} matrix)")
    if report["profile"] is not None:
        top = report["profile"]["functions"][:8]
        print("hottest simulator functions (tottime):")
        for row in top:
            print(f"  {row['tottime_s']:8.3f}s  {row['calls']:>10d}  "
                  f"{row['function']}")

    if baseline is None:
        return 0
    result = compare_reports(baseline, report)
    print(format_compare(result, baseline_tag=baseline.get("tag", "baseline")))
    if not result.rows:
        print("no comparable runs between the two reports", file=sys.stderr)
        return 2
    if result.regressed(args.threshold):
        print(
            f"REGRESSION: overall {result.overall:.2f}x is past the "
            f"1/{args.threshold:.2f} threshold", file=sys.stderr,
        )
        return 1
    return 0


def _report_manifests() -> None:
    manifests = session_manifests()
    if manifests:
        print(summarize_manifests(manifests), file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="ACB (ISCA 2020) reproduction harness"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for experiment matrices "
             "(default: REPRO_JOBS, else all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache directory (default: .repro_cache)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload", type=_workload_ref, metavar="WORKLOAD",
                       help="suite workload or trace:<name-or-path>")
    p_run.add_argument("--config", default="acb", type=_config_ref,
                       help="configuration name, optionally @<predictor> "
                            "(e.g. acb@bullseye)")
    p_run.add_argument("--scale", type=int, default=1)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare configurations")
    p_cmp.add_argument("workload", type=_workload_ref, metavar="WORKLOAD",
                       help="suite workload or trace:<name-or-path>")
    p_cmp.add_argument("configs", nargs="*",
                       default=["baseline", "acb", "dmp", "dhp"])
    p_cmp.add_argument("--scale", type=int, default=1)
    p_cmp.set_defaults(func=_cmd_compare)

    p_suite = sub.add_parser("suite", help="list the workload suite")
    p_suite.set_defaults(func=_cmd_suite)

    p_exp = sub.add_parser("experiment", help="run a figure/table driver")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.set_defaults(func=_cmd_experiment)

    p_val = sub.add_parser(
        "validate", help="differential fuzzing of the timing engine"
    )
    p_val.add_argument("--seeds", type=int, default=50,
                       help="number of random programs to cross-check")
    p_val.add_argument("--start-seed", type=int, default=0,
                       help="first seed of the campaign")
    p_val.add_argument("--budget", type=_parse_budget, default=None,
                       metavar="TIME", help="wall-clock budget, e.g. 120s or 2m")
    p_val.add_argument("--configs",
                       default="baseline,acb,acb-dmp-reconv,acb@bullseye",
                       help="comma-separated timing configurations to check "
                            "(scheme names, optionally @<predictor>)")
    p_val.add_argument("--instructions", type=int, default=1200,
                       help="architectural instructions per program")
    p_val.add_argument("--repro-dir", default=".repro_failures",
                       help="directory for shrunk failure reproducers")
    p_val.add_argument("--no-shrink", action="store_true",
                       help="write failures without shrinking them first")
    p_val.add_argument("--replay", default=None, metavar="FILE",
                       help="re-run a written reproducer instead of fuzzing")
    p_val.set_defaults(func=_cmd_validate)

    p_trc = sub.add_parser(
        "trace", help="export cycle-level pipeline and ACB decision traces"
    )
    p_trc.add_argument("workload", type=_workload_ref, metavar="WORKLOAD",
                       help="suite workload or trace:<name-or-path>")
    p_trc.add_argument("--config", default="acb", type=_config_ref,
                       help="configuration name, optionally @<predictor>")
    p_trc.add_argument("--scale", type=int, default=1)
    p_trc.add_argument("--warmup", type=int, default=3000,
                       help="warm-up instructions before the traced window")
    p_trc.add_argument("--measure", type=int, default=2000,
                       help="instructions in the traced measurement window")
    p_trc.add_argument("--out", default=None, metavar="DIR",
                       help="output directory "
                            "(default: .repro_traces/WORKLOAD-CONFIG)")
    p_trc.add_argument("--formats", nargs="*", metavar="FMT",
                       help=f"subset of {_TRACE_FORMATS} (default: all)")
    p_trc.add_argument("--pc", type=int, default=None,
                       help="restrict the timeline to one branch PC")
    p_trc.add_argument("--uop-capacity", type=int, default=1 << 16,
                       help="uop ring-buffer capacity (oldest dropped)")
    p_trc.add_argument("--acb-capacity", type=int, default=1 << 14,
                       help="ACB event ring-buffer capacity")
    p_trc.set_defaults(func=_cmd_trace)

    p_cvt = sub.add_parser(
        "convert-trace",
        help="ingest a branch trace: downsample, characterize, write native",
    )
    p_cvt.add_argument("input", metavar="INPUT",
                       help="trace file (.rbt[.gz] native, .cbp/.txt[.gz] text)")
    p_cvt.add_argument("--window", type=int, default=None, metavar="N",
                       help="keep only N events (default: the whole trace)")
    p_cvt.add_argument("--offset", type=int, default=0, metavar="N",
                       help="start the window N events in (default 0)")
    p_cvt.add_argument("--out", default=None, metavar="FILE",
                       help="output path (default: "
                            ".repro_traces/converted/<name>.rbt.gz)")
    p_cvt.add_argument("--name", default=None,
                       help="trace name recorded in the header "
                            "(default: input stem)")
    p_cvt.add_argument("--stats-only", action="store_true",
                       help="characterize without writing a converted trace")
    p_cvt.set_defaults(func=_cmd_convert_trace)

    p_bench = sub.add_parser(
        "bench", help="time the simulator on the pinned target matrix"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-sized matrix: fewer workloads, small windows")
    p_bench.add_argument("--tag", default="local",
                         help="report label; default output is BENCH_<tag>.json")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="report path (default: BENCH_<tag>.json)")
    p_bench.add_argument("--groups", nargs="*", metavar="GROUP",
                         help="subset of target groups "
                              "(fig6, scheme, trace, frontier, micro)")
    p_bench.add_argument("--compare", default=None, metavar="BASELINE",
                         help="earlier BENCH_*.json to compare against")
    p_bench.add_argument("--threshold", type=float, default=1.5,
                         help="--compare fails past this overall slowdown "
                              "factor (default 1.5)")
    p_bench.add_argument("--profile", action="store_true",
                         help="attach a cProfile per-function breakdown")
    p_bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    if args.no_cache:
        cache = None
    elif args.cache_dir is not None:
        cache = ResultCache(args.cache_dir, enabled=True)
    else:
        cache = ResultCache.from_env()
    previous = set_active_cache(cache)
    try:
        return args.func(args)
    finally:
        set_active_cache(previous)
        _report_manifests()


if __name__ == "__main__":
    raise SystemExit(main())
