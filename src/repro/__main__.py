"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run WORKLOAD [--config acb] [--scale 1]``
    Simulate one suite workload under a named configuration and print the
    measurement-window statistics.
``compare WORKLOAD [CONFIG ...]``
    Run several configurations on one workload side by side.
``suite``
    List the 70 workloads by category (Table III).
``experiment NAME``
    Run one figure/table driver (``fig6``, ``fig8``, ``table1`` ...) and
    print its structured result.

Global options
--------------
``--jobs N``       fan simulation matrices out over N worker processes
                   (default: ``REPRO_JOBS`` env var, else all cores).
``--cache-dir D``  persistent result cache location (default
                   ``.repro_cache``); repeated invocations of the same
                   matrix skip already-simulated cells.
``--no-cache``     disable the persistent cache for this invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.harness import experiments, format_table, pct
from repro.harness.cache import ResultCache, set_active_cache
from repro.harness.parallel import session_manifests
from repro.harness.reporting import summarize_manifests
from repro.harness.runner import SCHEME_FACTORIES, run_workload
from repro.workloads import categories, suite_names

EXPERIMENTS = {
    "fig1": experiments.fig1_scaling_potential,
    "sec2": experiments.sec2_characterization,
    "eq1": experiments.eq1_profitability,
    "fig6": experiments.fig6_acb_summary,
    "fig7": experiments.fig7_correlation,
    "fig8": experiments.fig8_vs_dmp,
    "fig9": experiments.fig9_dmp_pbh,
    "fig10": experiments.fig10_alloc_stalls,
    "fig11": experiments.fig11_vs_dhp,
    "table1": experiments.table1_storage,
    "table2": experiments.table2_core_params,
    "table3": experiments.table3_workloads,
    "sec5d": experiments.sec5d_core_scaling,
    "sec5e": experiments.sec5e_power_proxies,
}


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_workload(args.workload, args.config, core_scale=args.scale)
    print(f"{result.workload} [{result.category}] under {result.config}:")
    for key, value in result.stats.summary().items():
        print(f"  {key:14s} {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    base = None
    for config in args.configs:
        result = run_workload(args.workload, config, core_scale=args.scale)
        if base is None:
            base = result.stats.cycles
        rows.append([
            config,
            f"{result.stats.ipc:.3f}",
            str(result.stats.flushes),
            str(result.stats.predicated_instances),
            pct(base / result.stats.cycles),
        ])
    print(format_table(["config", "ipc", "flushes", "predicated", "vs first"], rows))
    return 0


def _cmd_suite(_args: argparse.Namespace) -> int:
    for category, names in categories().items():
        print(f"{category} ({len(names)}):")
        print("  " + ", ".join(sorted(names)))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS.get(args.name)
    if driver is None:
        print(f"unknown experiment {args.name!r}; choose from {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    result = driver()
    result.pop("results", None)  # strip non-serializable run objects
    print(json.dumps(result, indent=2, default=str))
    return 0


def _report_manifests() -> None:
    manifests = session_manifests()
    if manifests:
        print(summarize_manifests(manifests), file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="ACB (ISCA 2020) reproduction harness"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for experiment matrices "
             "(default: REPRO_JOBS, else all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache directory (default: .repro_cache)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload", choices=suite_names(), metavar="WORKLOAD")
    p_run.add_argument("--config", default="acb", choices=sorted(SCHEME_FACTORIES))
    p_run.add_argument("--scale", type=int, default=1)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare configurations")
    p_cmp.add_argument("workload", choices=suite_names(), metavar="WORKLOAD")
    p_cmp.add_argument("configs", nargs="*",
                       default=["baseline", "acb", "dmp", "dhp"])
    p_cmp.add_argument("--scale", type=int, default=1)
    p_cmp.set_defaults(func=_cmd_compare)

    p_suite = sub.add_parser("suite", help="list the workload suite")
    p_suite.set_defaults(func=_cmd_suite)

    p_exp = sub.add_parser("experiment", help="run a figure/table driver")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.set_defaults(func=_cmd_experiment)

    args = parser.parse_args(argv)
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    if args.no_cache:
        cache = None
    elif args.cache_dir is not None:
        cache = ResultCache(args.cache_dir, enabled=True)
    else:
        cache = ResultCache.from_env()
    previous = set_active_cache(cache)
    try:
        return args.func(args)
    finally:
        set_active_cache(previous)
        _report_manifests()


if __name__ == "__main__":
    raise SystemExit(main())
