"""Perceptron branch predictor (Jiménez & Lin [5]).

Included because the paper positions ACB as "applicable on top of any
baseline branch predictor": the predictor-sensitivity bench runs ACB over
bimodal/gshare/perceptron/TAGE baselines.

Each branch hashes to a weight vector; the prediction is the sign of the
dot product of the weights with the recent global history (±1 encoded plus
a bias term), and training runs on mispredictions or low-magnitude outputs
(the θ threshold), per the original algorithm.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.base import Prediction, Predictor
from repro.branch.history import GlobalHistory


class PerceptronPredictor(Predictor):
    """Global-history perceptron with speculative-history recovery."""

    name = "perceptron"

    def __init__(self, entries: int = 512, history: int = 24,
                 weight_bits: int = 8):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.history = history
        self.wmax = (1 << (weight_bits - 1)) - 1
        self.wmin = -(1 << (weight_bits - 1))
        # weights[i][0] is the bias; [1..history] pair with history bits
        self.weights: List[List[int]] = [
            [0] * (history + 1) for _ in range(entries)
        ]
        # per-entry sum of the non-bias weights, maintained by update():
        # with T = sum(w[1:]) and S = sum of weights at set history bits,
        # the dot product is w[0] + S - (T - S) = w[0] - T + 2*S, so the
        # prediction loop only touches the *set* bits of the history
        # instead of all `history` positions.  Exact integer algebra — the
        # output is bit-identical to the full loop.
        self._totals: List[int] = [0] * entries
        self.hist = GlobalHistory(history)
        # the published training threshold
        self.theta = int(1.93 * history + 14)

    def _index(self, pc: int) -> int:
        return (pc ^ (pc >> 9)) & (self.entries - 1)

    def _output(self, pc: int) -> int:
        idx = self._index(pc)
        w = self.weights[idx]
        bits = self.hist.bits
        y = w[0] - self._totals[idx]
        while bits:
            low = bits & (bits - 1)          # clear lowest set bit
            y += 2 * w[(bits ^ low).bit_length()]  # bit k pairs with w[k+1]
            bits = low
        return y

    def predict(self, pc: int, actual: Optional[bool] = None) -> Prediction:
        y = self._output(pc)
        conf = min(1.0, abs(y) / max(1, self.theta))
        return Prediction(taken=y >= 0, meta=(y, self.hist.bits), confidence=conf)

    def spec_push(self, pc: int, taken: bool) -> None:
        self.hist.push(taken)

    def checkpoint(self) -> int:
        return self.hist.checkpoint()

    def restore(self, cp: int, pc: int, actual) -> None:
        self.hist.restore(cp)
        if actual is not None:
            self.hist.push(actual)

    def update(self, pc: int, taken: bool, meta, mispredicted: bool) -> None:
        if meta is None:
            return
        y, hist_bits = meta
        if not mispredicted and abs(y) > self.theta:
            return
        idx = self._index(pc)
        w = self.weights[idx]
        t = 1 if taken else -1
        w[0] = max(self.wmin, min(self.wmax, w[0] + t))
        for i in range(1, self.history + 1):
            x = 1 if (hist_bits >> (i - 1)) & 1 else -1
            w[i] = max(self.wmin, min(self.wmax, w[i] + t * x))
        self._totals[idx] = sum(w) - w[0]

    def storage_bits(self) -> int:
        return self.entries * (self.history + 1) * 8 + self.history
