"""Branch prediction substrate: TAGE, simpler baselines, the Figure 1
oracle, a JRS confidence estimator (for the DMP/DHP baselines), and a BTB.

Module map (configuration name → class):

* ``bimodal``/``gshare``/``perceptron`` — :class:`BimodalPredictor`,
  :class:`GSharePredictor`, :class:`PerceptronPredictor`: the simple
  baselines the predictor-sensitivity sweep compares against.
* ``tage`` — :class:`TagePredictor`: the default front end (the paper's
  "TAGE-like" baseline).
* ``bullseye`` — :class:`BullseyePredictor` (``repro.branch.bullseye``):
  TAGE plus an H2P identification table and a per-H2P long-history
  component that overrides only when its counter is confident — the
  Bullseye-style backend the frontier experiments run ACB on top of
  (``acb@bullseye`` config spellings; see docs/frontier.md).
* ``oracle`` — :class:`OraclePredictor`: perfect conditional-branch
  prediction, the Figure 1 potential study.

Every predictor shares the :class:`Predictor` checkpoint/restore protocol
so speculative history stays recoverable across flushes.
"""

from repro.branch.base import Prediction, Predictor
from repro.branch.bimodal import BimodalPredictor, BimodalTable
from repro.branch.btb import BranchTargetBuffer
from repro.branch.bullseye import BullseyePredictor
from repro.branch.confidence import ConfidenceEstimator
from repro.branch.gshare import GSharePredictor
from repro.branch.history import GlobalHistory
from repro.branch.oracle import OraclePredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.tage import TagePredictor

PREDICTORS = {
    "bimodal": BimodalPredictor,
    "gshare": GSharePredictor,
    "perceptron": PerceptronPredictor,
    "tage": TagePredictor,
    "bullseye": BullseyePredictor,
    "oracle": OraclePredictor,
}


def make_predictor(name: str, **kwargs) -> Predictor:
    """Instantiate a predictor by configuration name."""
    try:
        cls = PREDICTORS[name]
    except KeyError:
        raise ValueError(f"unknown predictor {name!r}; choose from {sorted(PREDICTORS)}")
    return cls(**kwargs)


__all__ = [
    "Prediction",
    "Predictor",
    "GlobalHistory",
    "BimodalPredictor",
    "BimodalTable",
    "GSharePredictor",
    "PerceptronPredictor",
    "TagePredictor",
    "BullseyePredictor",
    "OraclePredictor",
    "ConfidenceEstimator",
    "BranchTargetBuffer",
    "PREDICTORS",
    "make_predictor",
]
