"""Branch prediction substrate: TAGE, simpler baselines, the Figure 1
oracle, a JRS confidence estimator (for the DMP/DHP baselines), and a BTB.
"""

from repro.branch.base import Prediction, Predictor
from repro.branch.bimodal import BimodalPredictor, BimodalTable
from repro.branch.btb import BranchTargetBuffer
from repro.branch.confidence import ConfidenceEstimator
from repro.branch.gshare import GSharePredictor
from repro.branch.history import GlobalHistory
from repro.branch.oracle import OraclePredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.tage import TagePredictor

PREDICTORS = {
    "bimodal": BimodalPredictor,
    "gshare": GSharePredictor,
    "perceptron": PerceptronPredictor,
    "tage": TagePredictor,
    "oracle": OraclePredictor,
}


def make_predictor(name: str, **kwargs) -> Predictor:
    """Instantiate a predictor by configuration name."""
    try:
        cls = PREDICTORS[name]
    except KeyError:
        raise ValueError(f"unknown predictor {name!r}; choose from {sorted(PREDICTORS)}")
    return cls(**kwargs)


__all__ = [
    "Prediction",
    "Predictor",
    "GlobalHistory",
    "BimodalPredictor",
    "BimodalTable",
    "GSharePredictor",
    "PerceptronPredictor",
    "TagePredictor",
    "OraclePredictor",
    "ConfidenceEstimator",
    "BranchTargetBuffer",
    "PREDICTORS",
    "make_predictor",
]
