"""PC-indexed 2-bit bimodal predictor.

Serves both as a standalone baseline and as the base component of TAGE.
"""

from __future__ import annotations

from typing import Optional

from repro.branch.base import Prediction, Predictor


class BimodalTable:
    """An array of 2-bit saturating counters indexed by PC."""

    def __init__(self, size: int = 4096):
        if size & (size - 1):
            raise ValueError("size must be a power of two")
        self.size = size
        self.ctrs = [2] * size  # weakly taken

    def index(self, pc: int) -> int:
        return pc & (self.size - 1)

    def lookup(self, pc: int) -> int:
        return self.ctrs[self.index(pc)]

    def train(self, pc: int, taken: bool) -> None:
        i = self.index(pc)
        c = self.ctrs[i]
        if taken:
            if c < 3:
                self.ctrs[i] = c + 1
        elif c > 0:
            self.ctrs[i] = c - 1

    def storage_bits(self) -> int:
        return 2 * self.size


class BimodalPredictor(Predictor):
    """History-free predictor; the weakest realizable baseline."""

    name = "bimodal"

    def __init__(self, size: int = 4096):
        self.table = BimodalTable(size)

    def predict(self, pc: int, actual: Optional[bool] = None) -> Prediction:
        c = self.table.lookup(pc)
        return Prediction(taken=c >= 2, meta=None, confidence=abs(c - 1.5) / 1.5)

    def update(self, pc: int, taken: bool, meta, mispredicted: bool) -> None:
        self.table.train(pc, taken)

    def storage_bits(self) -> int:
        return self.table.storage_bits()
