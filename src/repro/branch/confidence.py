"""JRS-style branch-confidence estimator.

Diverge-Merge and DHP predicate a branch instance only when the prediction
has *low confidence*.  The classic estimator (Jacobsen, Rotenberg, Smith) is
a table of resetting counters: correct predictions increment, a
misprediction resets.  A saturated-enough counter means "confident".
"""

from __future__ import annotations


class ConfidenceEstimator:
    """Table of 4-bit resetting confidence counters indexed by branch PC."""

    def __init__(self, size: int = 1024, threshold: int = 12, max_value: int = 15):
        if size & (size - 1):
            raise ValueError("size must be a power of two")
        if not 0 < threshold <= max_value:
            raise ValueError("threshold must lie in (0, max_value]")
        self.size = size
        self.threshold = threshold
        self.max_value = max_value
        self.ctrs = [0] * size

    def _index(self, pc: int) -> int:
        return (pc ^ (pc >> 10)) & (self.size - 1)

    def is_confident(self, pc: int) -> bool:
        """``True`` when recent predictions for *pc* have been reliable."""
        return self.ctrs[self._index(pc)] >= self.threshold

    def train(self, pc: int, correct: bool) -> None:
        i = self._index(pc)
        if correct:
            if self.ctrs[i] < self.max_value:
                self.ctrs[i] += 1
        else:
            self.ctrs[i] = 0

    def storage_bits(self) -> int:
        return 4 * self.size
