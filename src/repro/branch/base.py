"""Common predictor interface.

All predictors share a speculative global-history discipline: the *predicted*
outcome of every conditional branch is pushed into the history at prediction
time (speculative update, [30] in the paper), a checkpoint is attached to the
in-flight branch, and a misprediction flush restores the checkpoint and
pushes the actual outcome.  Dynamic predication interacts with exactly this
machinery: predicated instances are withheld from the history entirely
(Section V-C), which is what perturbs correlated branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass
class Prediction:
    """Result of one branch lookup."""

    taken: bool
    meta: Any = None       # provider info threaded back into update()
    confidence: float = 1.0  # [0, 1]; used by confidence-gated schemes


class Predictor:
    """Abstract conditional-branch direction predictor."""

    name = "abstract"

    def predict(self, pc: int, actual: Optional[bool] = None) -> Prediction:
        """Predict the branch at *pc*.

        *actual* is supplied by the simulator for oracle predictors only;
        realizable predictors must ignore it.
        """
        raise NotImplementedError

    def spec_push(self, pc: int, taken: bool) -> None:
        """Speculatively insert an outcome into the global history."""

    def push_outcome(self, pc: int, taken: bool) -> None:
        """Non-speculative history insert (used by oracle-history variants)."""
        self.spec_push(pc, taken)

    def checkpoint(self) -> Any:
        """Opaque history checkpoint to attach to an in-flight branch."""
        return None

    def restore(self, cp: Any, pc: int, actual: bool) -> None:
        """Recover from a misprediction: restore *cp*, then insert *actual*."""

    def update(self, pc: int, taken: bool, meta: Any, mispredicted: bool) -> None:
        """Train tables when the branch resolves on the correct path."""

    def storage_bits(self) -> int:
        """Approximate table storage, for reporting."""
        return 0
