"""Bullseye: an H2P-targeting predictor layered over TAGE.

Models the structure of "Taming Wild Branches" (see PAPERS.md): a stock
TAGE makes every prediction, while a small identification table watches
TAGE's own mispredictions to find the handful of hard-to-predict (H2P)
static branches that concentrate most of the misprediction mass.  Promoted
H2Ps get a dedicated second-level component — counters indexed by a much
longer folded global history than TAGE's longest table — which overrides
TAGE only when its counter is confident.

The interesting interaction for this reproduction is with ACB: dynamic
predication feeds on exactly the branches Bullseye targets, so layering
ACB over Bullseye (``acb@bullseye`` in the harness) probes how much of the
paper's headroom survives a stronger front end — the Section V-C question
asked from the other side.

All speculative-history discipline (checkpoint / restore / speculative
push) is forwarded to the wrapped TAGE plus the long history register, so
the engine drives a Bullseye exactly like any other predictor.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.branch.base import Prediction, Predictor
from repro.branch.history import GlobalHistory
from repro.branch.tage import TagePredictor, _fold


class _H2PEntry:
    """Identification-table record for one static branch."""

    __slots__ = ("seen", "mispredicts", "promoted")

    def __init__(self):
        self.seen = 0
        self.mispredicts = 0
        self.promoted = False


class BullseyePredictor(Predictor):
    """TAGE + H2P identification + per-H2P long-history override."""

    name = "bullseye"

    def __init__(
        self,
        long_history: int = 192,
        pht_size_log2: int = 12,
        h2p_entries: int = 64,
        promote_mispredicts: int = 8,
        promote_rate: float = 0.05,
        **tage_kwargs,
    ):
        self.tage = TagePredictor(**tage_kwargs)
        self.long_history = long_history
        self.long = GlobalHistory(long_history)
        self.pht_size_log2 = pht_size_log2
        self._pht_mask = (1 << pht_size_log2) - 1
        #: 3-bit counters, taken when >= 4; start at the weak boundary.
        self.pht = [3] * (1 << pht_size_log2)
        self.h2p: Dict[int, _H2PEntry] = {}
        self.h2p_entries = h2p_entries
        self.promote_mispredicts = promote_mispredicts
        self.promote_rate = promote_rate
        # incrementally-folded long history (same rotate+XOR discipline as
        # TAGE's folded-history registers; see repro.branch.tage).
        self._flong = 0
        self._evict_shift = long_history - 1
        self._out_pos = long_history % pht_size_log2
        # diagnostics
        self.promotions = 0
        self.overrides = 0
        self.override_correct = 0

    # ------------------------------------------------------------------
    def predict(self, pc: int, actual: Optional[bool] = None) -> Prediction:
        base = self.tage.predict(pc, actual)
        entry = self.h2p.get(pc)
        idx = -1
        taken = base.taken
        confidence = base.confidence
        if entry is not None and entry.promoted:
            idx = (pc ^ (pc >> self.pht_size_log2) ^ self._flong) & self._pht_mask
            ctr = self.pht[idx]
            if ctr <= 1 or ctr >= 6:
                taken = ctr >= 4
                confidence = abs(ctr - 3.5) / 3.5
        meta = (base.meta, idx, taken)
        return Prediction(taken=taken, meta=meta, confidence=confidence)

    # ------------------------------------------------------------------
    def _push_long(self, taken: bool) -> None:
        old = self.long.bits
        self.long.push(taken)
        evicted = (old >> self._evict_shift) & 1
        g = (self._flong << 1) | (1 if taken else 0)
        w = self.pht_size_log2
        self._flong = ((g ^ (g >> w)) & self._pht_mask) ^ (evicted << self._out_pos)

    def spec_push(self, pc: int, taken: bool) -> None:
        self.tage.spec_push(pc, taken)
        self._push_long(taken)

    def checkpoint(self):
        return (self.tage.checkpoint(), self.long.checkpoint())

    def restore(self, cp, pc: int, actual) -> None:
        tage_cp, long_cp = cp
        self.tage.restore(tage_cp, pc, actual)
        self.long.restore(long_cp)
        self._flong = _fold(self.long.bits, self.pht_size_log2)
        if actual is not None:
            self._push_long(actual)

    # ------------------------------------------------------------------
    def update(self, pc: int, taken: bool, meta, mispredicted: bool) -> None:
        if meta is None:
            return
        tage_meta, idx, final_pred = meta
        # Train TAGE on *its own* outcome, not the composite one: TAGE's
        # allocation-on-misprediction must fire iff TAGE itself was wrong,
        # or the override layer would starve it of training signal.
        tage_pred = tage_meta[6] if tage_meta is not None else taken
        tage_mis = tage_pred != taken
        self.tage.update(pc, taken, tage_meta, tage_mis)

        entry = self.h2p.get(pc)
        if entry is None:
            if tage_mis:
                if len(self.h2p) >= self.h2p_entries:
                    victim = min(
                        self.h2p,
                        key=lambda b: (
                            self.h2p[b].promoted,
                            self.h2p[b].mispredicts,
                            b,
                        ),
                    )
                    del self.h2p[victim]
                self.h2p[pc] = entry = _H2PEntry()
            else:
                return
        entry.seen += 1
        if tage_mis:
            entry.mispredicts += 1
        if (
            not entry.promoted
            and entry.mispredicts >= self.promote_mispredicts
            and entry.mispredicts >= entry.seen * self.promote_rate
        ):
            entry.promoted = True
            self.promotions += 1

        if idx >= 0:
            ctr = self.pht[idx]
            was_confident = ctr <= 1 or ctr >= 6
            if was_confident:
                self.overrides += 1
                if final_pred == taken:
                    self.override_correct += 1
            if taken and ctr < 7:
                self.pht[idx] = ctr + 1
            elif not taken and ctr > 0:
                self.pht[idx] = ctr - 1

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        ident = self.h2p_entries * (30 + 10 + 12 + 1)  # tag, seen, mispredicts, bit
        return (
            self.tage.storage_bits()
            + self.long_history
            + len(self.pht) * 3
            + ident
        )
