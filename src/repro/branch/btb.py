"""Branch target buffer.

Our static programs carry targets in the instruction encoding, so target
*values* are always available at decode; the BTB models the *timing* cost of
discovering at fetch that an instruction is a taken branch.  A BTB miss on a
taken branch inserts a one-cycle fetch bubble (decode redirect).  The default
configuration sizes the BTB large enough that generated kernels fit, matching
the paper's implicit assumption that H2P direction prediction — not target
prediction — is the bottleneck.
"""

from __future__ import annotations

from collections import OrderedDict


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, sets: int = 512, ways: int = 4):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self.sets = sets
        self.ways = ways
        self._data = [OrderedDict() for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def _set(self, pc: int) -> OrderedDict:
        return self._data[pc & (self.sets - 1)]

    def lookup(self, pc: int) -> bool:
        """``True`` on hit; trains LRU."""
        entry_set = self._set(pc)
        if pc in entry_set:
            entry_set.move_to_end(pc)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, pc: int, target: int) -> None:
        entry_set = self._set(pc)
        if pc in entry_set:
            entry_set.move_to_end(pc)
        else:
            if len(entry_set) >= self.ways:
                entry_set.popitem(last=False)
        entry_set[pc] = target

    def storage_bits(self) -> int:
        # tag (~20b) + target (~32b) per way
        return self.sets * self.ways * 52
