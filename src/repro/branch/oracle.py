"""Perfect branch predictor (the Figure 1 oracle)."""

from __future__ import annotations

from typing import Optional

from repro.branch.base import Prediction, Predictor


class OraclePredictor(Predictor):
    """Always predicts the actual outcome the simulator supplies.

    Wrong-path branches (which have no architectural outcome) fall back to
    not-taken — with an oracle there is no wrong path to begin with, so the
    fallback never influences results.
    """

    name = "oracle"

    def predict(self, pc: int, actual: Optional[bool] = None) -> Prediction:
        return Prediction(taken=bool(actual), meta=None, confidence=1.0)

    def storage_bits(self) -> int:
        return 0
