"""Global branch history register with O(1) checkpointing.

The history is a Python integer treated as a bit vector (bit 0 = most recent
outcome).  Checkpoint/restore is a plain integer copy, so attaching a
checkpoint to every in-flight conditional branch is cheap — the property the
whole speculative-update/recovery discipline relies on.
"""

from __future__ import annotations


class GlobalHistory:
    """Fixed-length speculative global history."""

    def __init__(self, length: int = 256):
        if length < 1:
            raise ValueError("history length must be positive")
        self.length = length
        self._mask = (1 << length) - 1
        self.bits = 0

    def push(self, taken: bool) -> None:
        self.bits = ((self.bits << 1) | (1 if taken else 0)) & self._mask

    def recent(self, n: int) -> int:
        """The *n* most recent outcomes as an integer."""
        return self.bits & ((1 << n) - 1)

    def checkpoint(self) -> int:
        return self.bits

    def restore(self, cp: int) -> None:
        self.bits = cp

    def __len__(self) -> int:
        return self.length
