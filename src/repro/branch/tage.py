"""TAGE branch predictor (Seznec [2]).

A bimodal base table plus several partially-tagged tables indexed by
geometrically increasing global-history lengths.  The implementation keeps
the elements the paper's analysis depends on:

* speculative global-history update with checkpoint/repair on flush;
* allocation of longer-history entries on mispredictions — the mechanism
  that *thrashes* when dynamic predication makes branch histories unstable
  (Section V-C);
* usefulness counters and weak-entry/alt-prediction handling.

Indices and tags are derived by deterministic folding so simulations are
reproducible across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.branch.base import Prediction, Predictor
from repro.branch.bimodal import BimodalTable
from repro.branch.history import GlobalHistory

_MASK64 = (1 << 64) - 1


def _fold(value: int, bits: int) -> int:
    """XOR-fold an arbitrarily long integer down to *bits* bits."""
    mask = (1 << bits) - 1
    out = 0
    while value:
        out ^= value & mask
        value >>= bits
    return out


@dataclass
class _TaggedEntry:
    __slots__ = ("tag", "ctr", "useful")
    tag: int
    ctr: int      # 3-bit: 0..7, taken when >= 4
    useful: int   # 2-bit


class _TaggedTable:
    """One tagged component with its own history length."""

    def __init__(self, size_log2: int, tag_bits: int, hist_len: int):
        self.size = 1 << size_log2
        self.size_log2 = size_log2
        self.tag_bits = tag_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.hist_len = hist_len
        self.hist_mask = (1 << hist_len) - 1
        self.entries: List[Optional[_TaggedEntry]] = [None] * self.size

    def index(self, pc: int, hist: int) -> int:
        h = _fold(hist & self.hist_mask, self.size_log2)
        return (pc ^ (pc >> self.size_log2) ^ h) & (self.size - 1)

    def tag(self, pc: int, hist: int) -> int:
        h = _fold(hist & self.hist_mask, self.tag_bits)
        return (pc ^ (pc >> 3) ^ (h << 1)) & self.tag_mask

    def storage_bits(self) -> int:
        return self.size * (self.tag_bits + 3 + 2)


class TagePredictor(Predictor):
    """TAGE with 5 tagged tables over an up-to-128-bit global history."""

    name = "tage"

    HIST_LENGTHS = (5, 11, 24, 54, 120)

    def __init__(
        self,
        table_size_log2: int = 10,
        tag_bits: int = 10,
        bimodal_size: int = 8192,
        seed: int = 0xACB,
    ):
        self.base = BimodalTable(bimodal_size)
        self.tables = [
            _TaggedTable(table_size_log2, tag_bits, hl) for hl in self.HIST_LENGTHS
        ]
        self.hist = GlobalHistory(max(self.HIST_LENGTHS) + 8)
        self.use_alt_on_weak = 8  # 4-bit counter, midpoint 8
        self._rng = seed & _MASK64 or 1
        # Folded histories maintained incrementally, the way hardware TAGE
        # keeps folded-history shift registers: pushing one outcome rotates
        # each fold and XORs in the inserted and evicted history bits,
        # which is algebraically identical to re-folding the whole masked
        # history (``_fold``) but O(1) per table instead of O(hist_len).
        # Every mutation of ``self.hist`` goes through :meth:`spec_push` or
        # :meth:`restore` below, which keep these registers in sync.
        self._fidx: List[int] = [0] * len(self.tables)
        self._ftag: List[int] = [0] * len(self.tables)
        # flat per-table constants for the push loop: (evict_shift,
        # idx_width, idx_mask, idx_out_pos, tag_width, tag_mask, tag_out_pos)
        self._push_params = tuple(
            (
                t.hist_len - 1,
                t.size_log2,
                t.size - 1,
                t.hist_len % t.size_log2,
                t.tag_bits,
                t.tag_mask,
                t.hist_len % t.tag_bits,
            )
            for t in self.tables
        )

    # ------------------------------------------------------------------
    def _rand(self, n: int) -> int:
        s = self._rng
        s ^= (s << 13) & _MASK64
        s ^= s >> 7
        s ^= (s << 17) & _MASK64
        self._rng = s & _MASK64
        return self._rng % n

    # ------------------------------------------------------------------
    def predict(self, pc: int, actual: Optional[bool] = None) -> Prediction:
        fidx = self._fidx
        ftag = self._ftag
        indices: List[int] = []
        tags: List[int] = []
        hits: List[int] = []  # table numbers with a tag match, shortest first
        for t, table in enumerate(self.tables):
            idx = (pc ^ (pc >> table.size_log2) ^ fidx[t]) & (table.size - 1)
            tg = (pc ^ (pc >> 3) ^ (ftag[t] << 1)) & table.tag_mask
            indices.append(idx)
            tags.append(tg)
            entry = table.entries[idx]
            if entry is not None and entry.tag == tg:
                hits.append(t)

        base_ctr = self.base.lookup(pc)
        base_pred = base_ctr >= 2

        provider = hits[-1] if hits else -1
        alt = hits[-2] if len(hits) >= 2 else -1
        alt_pred = (
            self.tables[alt].entries[indices[alt]].ctr >= 4 if alt >= 0 else base_pred
        )

        if provider >= 0:
            entry = self.tables[provider].entries[indices[provider]]
            provider_pred = entry.ctr >= 4
            weak = entry.ctr in (3, 4) and entry.useful == 0
            if weak and self.use_alt_on_weak >= 8:
                taken = alt_pred
            else:
                taken = provider_pred
            confidence = abs(entry.ctr - 3.5) / 3.5
        else:
            provider_pred = base_pred
            taken = base_pred
            confidence = abs(base_ctr - 1.5) / 1.5

        meta = (provider, alt, tuple(indices), tuple(tags), provider_pred, alt_pred, taken)
        return Prediction(taken=taken, meta=meta, confidence=confidence)

    # ------------------------------------------------------------------
    def spec_push(self, pc: int, taken: bool) -> None:
        old = self.hist.bits
        self.hist.push(taken)
        b = 1 if taken else 0
        fidx = self._fidx
        ftag = self._ftag
        t = 0
        for ev_sh, iw, imask, ipos, tw, tmask, tpos in self._push_params:
            evicted = (old >> ev_sh) & 1
            g = (fidx[t] << 1) | b
            fidx[t] = ((g ^ (g >> iw)) & imask) ^ (evicted << ipos)
            g = (ftag[t] << 1) | b
            ftag[t] = ((g ^ (g >> tw)) & tmask) ^ (evicted << tpos)
            t += 1

    def _recompute_folds(self) -> None:
        bits = self.hist.bits
        for t, table in enumerate(self.tables):
            masked = bits & table.hist_mask
            self._fidx[t] = _fold(masked, table.size_log2)
            self._ftag[t] = _fold(masked, table.tag_bits)

    def checkpoint(self) -> int:
        return self.hist.checkpoint()

    def restore(self, cp: int, pc: int, actual) -> None:
        self.hist.restore(cp)
        self._recompute_folds()
        if actual is not None:
            self.spec_push(pc, actual)

    # ------------------------------------------------------------------
    def update(self, pc: int, taken: bool, meta, mispredicted: bool) -> None:
        if meta is None:
            return
        provider, alt, indices, tags, provider_pred, alt_pred, final_pred = meta

        # use_alt_on_weak bookkeeping: when provider entry was weak and the
        # two predictions disagreed, learn which source to trust.
        if provider >= 0:
            entry = self.tables[provider].entries[indices[provider]]
            if entry is not None and entry.tag == tags[provider]:
                if provider_pred != alt_pred and entry.ctr in (3, 4) and entry.useful == 0:
                    if alt_pred == taken and self.use_alt_on_weak < 15:
                        self.use_alt_on_weak += 1
                    elif provider_pred == taken and self.use_alt_on_weak > 0:
                        self.use_alt_on_weak -= 1
                # train the provider counter
                if taken and entry.ctr < 7:
                    entry.ctr += 1
                elif not taken and entry.ctr > 0:
                    entry.ctr -= 1
                # usefulness: provider differed from alternate and was right/wrong
                if provider_pred != alt_pred:
                    if provider_pred == taken and entry.useful < 3:
                        entry.useful += 1
                    elif provider_pred != taken and entry.useful > 0:
                        entry.useful -= 1
        else:
            self.base.train(pc, taken)
        if provider == 0 or (provider < 0):
            # keep the base table warm even when a short table provides
            self.base.train(pc, taken)

        # allocation on misprediction into a longer-history table — TAGE's
        # learning mechanism, and its thrashing vector under unstable
        # histories (Section V-C).
        if mispredicted and provider < len(self.tables) - 1:
            start = provider + 1
            candidates = [
                t
                for t in range(start, len(self.tables))
                if self.tables[t].entries[indices[t]] is None
                or self.tables[t].entries[indices[t]].useful == 0
            ]
            if candidates:
                # prefer shorter histories, with a 1/2 chance to skip ahead
                pick = candidates[0]
                if len(candidates) > 1 and self._rand(2):
                    pick = candidates[1]
                self.tables[pick].entries[indices[pick]] = _TaggedEntry(
                    tag=tags[pick], ctr=4 if taken else 3, useful=0
                )
            else:
                for t in range(start, len(self.tables)):
                    entry = self.tables[t].entries[indices[t]]
                    if entry is not None and entry.useful > 0:
                        entry.useful -= 1

    def storage_bits(self) -> int:
        return self.base.storage_bits() + sum(t.storage_bits() for t in self.tables)

    # -- introspection for tests ---------------------------------------
    def tagged_occupancy(self) -> Tuple[int, ...]:
        """Number of live entries per tagged table (thrashing diagnostics)."""
        return tuple(
            sum(1 for e in table.entries if e is not None) for table in self.tables
        )
