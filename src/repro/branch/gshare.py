"""Gshare predictor: PC xor global-history indexed 2-bit counters."""

from __future__ import annotations

from typing import Optional

from repro.branch.base import Prediction, Predictor
from repro.branch.history import GlobalHistory


class GSharePredictor(Predictor):
    """Classic gshare with speculative history update and recovery."""

    name = "gshare"

    def __init__(self, size: int = 8192, hist_len: int = 13):
        if size & (size - 1):
            raise ValueError("size must be a power of two")
        self.size = size
        self.ctrs = [2] * size
        self.hist = GlobalHistory(hist_len)

    def _index(self, pc: int) -> int:
        # hist.bits is already masked to the history length, so this is
        # exactly hist.recent(hist.length) without the shift-and-mask call.
        return (pc ^ self.hist.bits) & (self.size - 1)

    def predict(self, pc: int, actual: Optional[bool] = None) -> Prediction:
        i = self._index(pc)
        c = self.ctrs[i]
        return Prediction(taken=c >= 2, meta=i, confidence=abs(c - 1.5) / 1.5)

    def spec_push(self, pc: int, taken: bool) -> None:
        self.hist.push(taken)

    def checkpoint(self) -> int:
        return self.hist.checkpoint()

    def restore(self, cp: int, pc: int, actual) -> None:
        self.hist.restore(cp)
        if actual is not None:
            self.hist.push(actual)

    def update(self, pc: int, taken: bool, meta, mispredicted: bool) -> None:
        i = meta if meta is not None else self._index(pc)
        c = self.ctrs[i]
        if taken:
            if c < 3:
                self.ctrs[i] = c + 1
        elif c > 0:
            self.ctrs[i] = c - 1

    def storage_bits(self) -> int:
        return 2 * self.size + self.hist.length
