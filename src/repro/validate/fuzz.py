"""Differential fuzzing: seeded random programs, cross-checked and shrunk.

Each seed deterministically expands to a :class:`WorkloadSpec` drawn from the
full generator vocabulary — every hammock shape (including the irregular
``nested``/``nested_else``/``multi_exit`` regions), stores inside predicated
arms, shared store streams, loop-carried dependences through the arms, slow
branch sources, follower branches, inner loops and every memory pattern.
:func:`run_fuzz` fans the seeds out over the harness worker pool, runs the
golden/baseline/ACB cross-check on each (:func:`repro.validate.differential.
check_workload`), and greedily shrinks any failing spec to a minimal
reproducer that it writes to disk as JSON (replayable with
:func:`replay_file` or ``python -m repro validate --replay``).
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.harness.parallel import default_jobs, run_tasks
from repro.validate.differential import (
    DEFAULT_CONFIGS,
    ValidationFailure,
    check_workload,
)
from repro.workloads import Workload
from repro.workloads.generator import build_workload
from repro.workloads.specs import HammockSpec, WorkloadSpec

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "fuzz_seed",
    "random_spec",
    "replay_file",
    "run_fuzz",
    "shrink_failure",
    "spec_from_dict",
    "spec_to_dict",
]

_SHAPES = ("if", "if_else", "type3", "nested", "nested_else", "multi_exit")
_KINDS = ("bernoulli", "bernoulli", "bernoulli", "periodic", "phased", "markov")
_MEMORIES = ("none", "strided", "strided", "random", "chase")


# ----------------------------------------------------------------------
# seed -> spec
# ----------------------------------------------------------------------
def _random_hammock(rng: random.Random) -> HammockSpec:
    shape = rng.choice(_SHAPES)
    kind = rng.choice(_KINDS)
    store = rng.random() < 0.45
    return HammockSpec(
        shape=shape,
        taken_len=rng.randint(0, 5),
        nt_len=rng.randint(1, 7),
        p=round(rng.uniform(0.05, 0.95), 3),
        kind=kind,
        pattern=tuple(rng.random() < 0.5 for _ in range(rng.randint(2, 5))),
        phases=((rng.randint(300, 900), round(rng.uniform(0.05, 0.9), 2)),
                (rng.randint(300, 900), round(rng.uniform(0.05, 0.9), 2))),
        p_stay=round(rng.uniform(0.5, 0.95), 2),
        followers=rng.choice((0, 0, 0, 1, 2)),
        follower_slow_kb=rng.choice((64, 256)),
        body_feeds_load=rng.random() < 0.2,
        store_in_body=store,
        shared_store=store and rng.random() < 0.6,
        carry_in_body=rng.random() < 0.4,
        slow_source=rng.random() < 0.25,
        slow_span_kb=rng.choice((256, 1024, 4096)),
        join_feeds_chain=rng.random() < 0.25,
        body_op=rng.choice(("alu", "alu", "mul")),
        escape_p=round(rng.uniform(0.05, 0.4), 2),
        live_outs=rng.randint(1, 3),
    )


def random_spec(seed: int) -> WorkloadSpec:
    """Deterministically expand *seed* into a randomized workload spec."""
    rng = random.Random(0x5EED0 + seed * 2654435761)
    n_hammocks = rng.choice((1, 1, 2, 2, 3))
    return WorkloadSpec(
        name=f"fuzz{seed:05d}",
        category="fuzz",
        seed=rng.randint(1, 1 << 30),
        hammocks=tuple(_random_hammock(rng) for _ in range(n_hammocks)),
        ilp=rng.randint(0, 6),
        chain=rng.randint(1, 3),
        memory=rng.choice(_MEMORIES),
        mem_span_kb=rng.choice((4, 16, 64)),
        mem_ops=rng.randint(1, 2),
        inner_loop=rng.choice((None, None, (rng.randint(2, 6), rng.randint(0, 2)))),
        description=f"fuzz-generated spec, seed {seed}",
    )


# ----------------------------------------------------------------------
# spec <-> JSON
# ----------------------------------------------------------------------
def spec_to_dict(spec: WorkloadSpec) -> dict:
    """JSON-serialisable dict round-trippable via :func:`spec_from_dict`."""
    return asdict(spec)


def spec_from_dict(data: dict) -> WorkloadSpec:
    data = dict(data)
    hammocks = []
    for h in data.pop("hammocks"):
        h = dict(h)
        h["pattern"] = tuple(bool(x) for x in h.get("pattern", ()))
        h["phases"] = tuple(tuple(p) for p in h.get("phases", ()))
        hammocks.append(HammockSpec(**h))
    if data.get("inner_loop") is not None:
        data["inner_loop"] = tuple(data["inner_loop"])
    return WorkloadSpec(hammocks=tuple(hammocks), **data)


def _build(spec: WorkloadSpec) -> Workload:
    return build_workload(spec)


# ----------------------------------------------------------------------
# one seed
# ----------------------------------------------------------------------
def fuzz_seed(
    seed: int,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    instructions: int = 1200,
) -> Optional[ValidationFailure]:
    """Cross-check the random program for *seed*; ``None`` means it passed."""
    spec = random_spec(seed)
    try:
        return check_workload(_build(spec), instructions=instructions, configs=configs)
    except Exception as exc:  # driver bug or unpicklable engine error
        return ValidationFailure(
            kind="error",
            config="*",
            detail=f"{type(exc).__name__}: {exc}",
            workload=spec.name,
        )


def _fuzz_cell(args: Tuple[int, Tuple[str, ...], int]):
    """Pool worker: one seed → (seed, failure-or-None).  Must stay top-level
    and must never raise, so results always pickle back to the parent."""
    seed, configs, instructions = args
    return seed, fuzz_seed(seed, configs=configs, instructions=instructions)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
_HAMMOCK_BOOLS = (
    "body_feeds_load", "store_in_body", "shared_store", "carry_in_body",
    "slow_source", "join_feeds_chain",
)


def _candidates(spec: WorkloadSpec):
    """Yield progressively simpler variants of *spec*, boldest first."""
    hs = spec.hammocks
    if len(hs) > 1:
        for i in range(len(hs)):
            yield replace(spec, hammocks=hs[:i] + hs[i + 1:])
    if spec.inner_loop is not None:
        yield replace(spec, inner_loop=None)
    if spec.memory != "none":
        yield replace(spec, memory="none")
    if spec.ilp > 0:
        yield replace(spec, ilp=spec.ilp // 2)
    if spec.chain > 1:
        yield replace(spec, chain=1)
    for i, h in enumerate(hs):
        def with_h(new_h, i=i):
            return replace(spec, hammocks=hs[:i] + (new_h,) + hs[i + 1:])

        for name in _HAMMOCK_BOOLS:
            if getattr(h, name):
                yield with_h(replace(h, **{name: False}))
        if h.followers:
            yield with_h(replace(h, followers=0))
        if h.live_outs > 1:
            yield with_h(replace(h, live_outs=1))
        if h.nt_len > 1:
            yield with_h(replace(h, nt_len=h.nt_len // 2))
        if h.taken_len > 1:
            yield with_h(replace(h, taken_len=h.taken_len // 2))
        if h.kind != "bernoulli":
            yield with_h(replace(h, kind="bernoulli"))


def _spec_size(spec: WorkloadSpec) -> int:
    size = spec.ilp + spec.chain + 2 * len(spec.hammocks)
    size += 2 if spec.inner_loop else 0
    size += 1 if spec.memory != "none" else 0
    for h in spec.hammocks:
        size += h.taken_len + h.nt_len + h.followers + h.live_outs
        size += sum(1 for name in _HAMMOCK_BOOLS if getattr(h, name))
    return size


def shrink_failure(
    spec: WorkloadSpec,
    failure: ValidationFailure,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    instructions: int = 1200,
    max_checks: int = 60,
) -> Tuple[WorkloadSpec, ValidationFailure]:
    """Greedily simplify *spec* while it still fails validation.

    Accepts any failure (not only the original kind): a simpler spec that
    trips a different check is still a better reproducer.  Bounded by
    *max_checks* cross-check runs.
    """
    checks = 0
    current, current_failure = spec, failure
    improved = True
    while improved and checks < max_checks:
        improved = False
        for cand in _candidates(current):
            if checks >= max_checks:
                break
            checks += 1
            try:
                f = check_workload(
                    _build(cand), instructions=instructions, configs=configs
                )
            except Exception:
                continue  # shrink candidate broke the generator; skip it
            if f is not None:
                current, current_failure = cand, f
                improved = True
                break
    return current, current_failure


# ----------------------------------------------------------------------
# the campaign driver
# ----------------------------------------------------------------------
@dataclass
class FuzzFailure:
    """One failing seed, with its shrunk reproducer."""

    seed: int
    failure: ValidationFailure
    spec: WorkloadSpec
    shrunk_spec: Optional[WorkloadSpec] = None
    shrunk_failure: Optional[ValidationFailure] = None
    repro_path: str = ""


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    requested: int
    completed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures


def _write_repro(
    fail: FuzzFailure, repro_dir: str, configs: Sequence[str], instructions: int
) -> str:
    os.makedirs(repro_dir, exist_ok=True)
    path = os.path.join(repro_dir, f"seed{fail.seed:05d}.json")
    shrunk = fail.shrunk_spec if fail.shrunk_spec is not None else fail.spec
    shrunk_failure = (
        fail.shrunk_failure if fail.shrunk_failure is not None else fail.failure
    )
    payload = {
        "seed": fail.seed,
        "configs": list(configs),
        "instructions": instructions,
        "failure": asdict(fail.failure),
        "shrunk_failure": asdict(shrunk_failure),
        "spec": spec_to_dict(fail.spec),
        "shrunk_spec": spec_to_dict(shrunk),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    return path


def replay_file(path: str, shrunk: bool = True) -> Optional[ValidationFailure]:
    """Re-run a written reproducer; ``None`` means it no longer fails."""
    with open(path) as fh:
        payload = json.load(fh)
    key = "shrunk_spec" if shrunk and payload.get("shrunk_spec") else "spec"
    spec = spec_from_dict(payload[key])
    return check_workload(
        _build(spec),
        instructions=payload.get("instructions", 1200),
        configs=tuple(payload.get("configs", DEFAULT_CONFIGS)),
    )


def run_fuzz(
    seeds: int = 50,
    start_seed: int = 0,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    instructions: int = 1200,
    budget_s: Optional[float] = None,
    jobs: Optional[int] = None,
    shrink: bool = True,
    repro_dir: str = ".repro_failures",
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run a differential fuzzing campaign over ``seeds`` random programs.

    Seeds are submitted to the worker pool in chunks so a wall-clock
    ``budget_s`` can stop the campaign between chunks; completed seeds are
    never abandoned mid-run, so results are deterministic per seed.
    """
    say = progress or (lambda _msg: None)
    jobs = default_jobs() if jobs is None else max(1, jobs)
    configs = tuple(configs)
    report = FuzzReport(requested=seeds)
    started = time.monotonic()
    todo = list(range(start_seed, start_seed + seeds))
    chunk = max(jobs * 2, 4)
    while todo:
        if budget_s is not None and time.monotonic() - started > budget_s:
            report.budget_exhausted = True
            say(
                f"budget exhausted after {report.completed}/{seeds} seeds "
                f"({time.monotonic() - started:.0f}s)"
            )
            break
        batch, todo = todo[:chunk], todo[chunk:]
        outcomes = run_tasks(
            _fuzz_cell, [(s, configs, instructions) for s in batch], jobs=jobs
        )
        for seed, failure in outcomes:
            report.completed += 1
            if failure is None:
                continue
            say(f"seed {seed}: {failure.describe()}")
            fail = FuzzFailure(seed=seed, failure=failure, spec=random_spec(seed))
            report.failures.append(fail)
    for fail in report.failures:
        if shrink and fail.failure.kind != "error":
            say(f"shrinking seed {fail.seed} …")
            fail.shrunk_spec, fail.shrunk_failure = shrink_failure(
                fail.spec, fail.failure,
                configs=configs, instructions=instructions,
            )
            say(
                f"seed {fail.seed} shrunk: size {_spec_size(fail.spec)} -> "
                f"{_spec_size(fail.shrunk_spec)}"
            )
        fail.repro_path = _write_repro(fail, repro_dir, configs, instructions)
        say(f"reproducer written to {fail.repro_path}")
    report.elapsed = time.monotonic() - started
    return report
