"""Differential validation subsystem.

Three layers prove that a timing simulation retires the same architectural
state as an in-order functional execution of the same program:

* :mod:`repro.validate.golden` — golden in-order architectural executor
  emitting the canonical retirement trace;
* :mod:`repro.validate.checker` — per-cycle pipeline invariant checker,
  attached to a core via ``CoreConfig.debug_checks``;
* :mod:`repro.validate.differential` / :mod:`repro.validate.fuzz` — the
  cross-checking drivers: golden vs. OOO-baseline vs. OOO+predication
  retirement traces over hand-built or seeded random programs, with failure
  shrinking (``python -m repro validate``).

Only the dependency-light layers are imported eagerly so the core engine can
import :mod:`repro.validate.events` without a cycle; the drivers (which pull
in the engine and the harness) load on first attribute access.
"""

from repro.validate.checker import InvariantChecker, InvariantViolation
from repro.validate.events import ArchState, RetireEvent, TraceMismatch, diff_traces
from repro.validate.golden import GoldenExecutor, golden_state, golden_trace

__all__ = [
    "ArchState",
    "GoldenExecutor",
    "InvariantChecker",
    "InvariantViolation",
    "RetireEvent",
    "TraceMismatch",
    "diff_traces",
    "golden_state",
    "golden_trace",
    # lazy (see __getattr__): differential / fuzz drivers
    "ValidationFailure",
    "check_workload",
    "run_config_trace",
    "fuzz_seed",
    "random_spec",
    "replay_file",
    "run_fuzz",
    "shrink_failure",
]

_LAZY = {
    "ValidationFailure": "repro.validate.differential",
    "check_workload": "repro.validate.differential",
    "run_config_trace": "repro.validate.differential",
    "fuzz_seed": "repro.validate.fuzz",
    "random_spec": "repro.validate.fuzz",
    "replay_file": "repro.validate.fuzz",
    "run_fuzz": "repro.validate.fuzz",
    "shrink_failure": "repro.validate.fuzz",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
