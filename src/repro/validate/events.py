"""Canonical retirement-trace vocabulary shared by the golden model and the
timing engine.

Architectural state in this simulator has no register *values* — branch
outcomes and memory addresses come from behaviour processes, and ALU results
are never materialized.  What *is* architecturally observable, and what every
correct execution must therefore agree on, is the retirement stream itself:
which PCs retire, in what order, which logical register each one writes,
which direction every branch went, and which address every load reads and
every store writes.  :class:`RetireEvent` captures exactly that tuple, and
:class:`ArchState` folds a stream of them into a final register/memory image
(registers and memory locations are identified by the PC of their last
architectural writer).

This module is deliberately dependency-free so the core engine can import it
without pulling the rest of the validation subsystem into its import graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional


@dataclass(frozen=True)
class RetireEvent:
    """One architecturally-retired instruction.

    Predicated-false micro-ops, select micro-ops, and wrong-path work never
    produce an event: they are microarchitectural artifacts, invisible to the
    architectural state.
    """

    pc: int
    dst: Optional[int] = None      # logical register written (None: no write)
    taken: Optional[bool] = None   # branch direction (None: not a branch)
    addr: Optional[int] = None     # byte address (loads/stores only)
    store: bool = False            # True when *addr* is a store address

    def brief(self) -> str:
        parts = [f"pc={self.pc}"]
        if self.dst is not None:
            parts.append(f"dst=r{self.dst}")
        if self.taken is not None:
            parts.append(f"taken={self.taken}")
        if self.addr is not None:
            parts.append(f"{'st' if self.store else 'ld'}@{self.addr:#x}")
        return " ".join(parts)


class ArchState:
    """Final architectural image reconstructed from a retirement trace.

    ``regs[r]`` is the PC of the last instruction that wrote logical register
    *r*; ``mem[addr]`` is the PC of the last store to byte address *addr*.
    Two executions that retire the same trace necessarily converge to the
    same image, so comparing images is a compressed (order-insensitive)
    differential check useful in unit tests with hand-computed expectations.
    """

    def __init__(self) -> None:
        self.regs: Dict[int, int] = {}
        self.mem: Dict[int, int] = {}
        self.retired = 0

    def apply(self, event: RetireEvent) -> None:
        self.retired += 1
        if event.dst is not None:
            self.regs[event.dst] = event.pc
        if event.store and event.addr is not None:
            self.mem[event.addr] = event.pc

    def apply_all(self, events: Iterable[RetireEvent]) -> "ArchState":
        for event in events:
            self.apply(event)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchState):
            return NotImplemented
        return self.regs == other.regs and self.mem == other.mem

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ArchState retired={self.retired} regs={self.regs} "
            f"mem={len(self.mem)} lines>"
        )


@dataclass(frozen=True)
class TraceMismatch:
    """First point of divergence between two retirement traces."""

    index: int                     # position of the first differing event
    left_name: str
    right_name: str
    left: Optional[RetireEvent]    # None: that trace ended early
    right: Optional[RetireEvent]
    context: str = ""              # few events of surrounding context

    def describe(self) -> str:
        left = self.left.brief() if self.left is not None else "<end of trace>"
        right = self.right.brief() if self.right is not None else "<end of trace>"
        msg = (
            f"retirement traces diverge at index {self.index}: "
            f"{self.left_name}: {left}  !=  {self.right_name}: {right}"
        )
        if self.context:
            msg += f"\n{self.context}"
        return msg


def diff_traces(
    left: Iterable[RetireEvent],
    right: Iterable[RetireEvent],
    left_name: str = "left",
    right_name: str = "right",
    context: int = 3,
) -> Optional[TraceMismatch]:
    """Compare two traces event by event; ``None`` means they agree.

    The shorter trace is treated as a prefix: a missing tail only mismatches
    when the other side still has events (simulations stop mid-retire-group,
    so drivers should pre-truncate to a common length when a length
    difference is expected).
    """
    left_list = list(left)
    right_list = list(right)
    n = max(len(left_list), len(right_list))
    for i in range(n):
        a = left_list[i] if i < len(left_list) else None
        b = right_list[i] if i < len(right_list) else None
        if a == b:
            continue
        lo = max(0, i - context)
        lines = []
        for j in range(lo, min(n, i + context + 1)):
            aj = left_list[j].brief() if j < len(left_list) else "<end>"
            bj = right_list[j].brief() if j < len(right_list) else "<end>"
            marker = ">>" if j == i else "  "
            lines.append(f"{marker} [{j}] {left_name}: {aj:40s} {right_name}: {bj}")
        return TraceMismatch(
            index=i,
            left_name=left_name,
            right_name=right_name,
            left=a,
            right=b,
            context="\n".join(lines),
        )
    return None
