"""Pipeline invariant checker, attached to a core via ``debug_checks``.

The engine calls into the checker at the points where its delicate state
transitions happen — every cycle, every retirement, every flush, and every
predicated-region lifecycle event — and the checker asserts the invariants
the rest of the repository's results silently depend on:

* the ROB retires in ``seq`` order, and only ``ST_DONE`` micro-ops;
* no squashed or wrong-path micro-op ever retires;
* predicated-false micro-ops retire only as transparent moves, never as
  architectural work (they are excluded from the instruction count and the
  retirement trace; stores on the false path never reach memory);
* the RAT never maps a logical register to a squashed micro-op — in
  particular right after a flush restores a checkpoint;
* ROB/IQ/LQ/SQ occupancy accounting matches the ROB's actual contents, and
  the store queue stays a program-ordered subsequence of the ROB that drains
  strictly in order;
* every opened predicated region is eventually closed (reconverged or
  diverged) or cancelled by an older flush — none leak.

A violated invariant raises :class:`InvariantViolation` immediately with a
cycle-stamped description; the differential fuzz driver treats it exactly
like a retirement-trace mismatch and shrinks the offending program.

The checker is pure observation: it never mutates core state, so a run with
``debug_checks=True`` is cycle-for-cycle identical to one without (just
slower — see docs/validation.md for the overhead note).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.isa.dyninst import (
    ROLE_BODY,
    ROLE_JUMPER,
    ST_ALLOCATED,
    ST_DONE,
    ST_RETIRED,
    ST_SQUASHED,
    DynInst,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import Core
    from repro.core.predication import RegionRecord


class InvariantViolation(AssertionError):
    """A pipeline invariant failed; the message carries full context."""


# Region lifecycle states tracked by the checker.
_OPEN = "open"
_CLOSED = "closed"        # front end reconverged
_DIVERGED = "diverged"    # declared divergent; resolves via flush
_CANCELLED = "cancelled"  # squashed by an older flush


class InvariantChecker:
    """Asserts pipeline invariants for one :class:`Core` instance."""

    def __init__(self, core: "Core"):
        self.core = core
        self.checks = 0                 # total invariant evaluations
        self.last_retired_seq = -1
        self.retired_pred_false = 0
        self.regions_opened = 0
        self._region_state: Dict[int, str] = {}   # branch seq -> lifecycle
        self._open_seq = None                     # seq of the open region

    # ------------------------------------------------------------------
    def _fail(self, message: str, dyn: DynInst = None) -> None:
        core = self.core
        detail = f" inst={dyn!r}" if dyn is not None else ""
        raise InvariantViolation(
            f"[cycle {core.cycle}] {message}{detail} "
            f"(rob={len(core.rob)} sq={len(core.sq)} iq={core.iq_count} "
            f"lq={core.lq_count} region_open={core.region is not None})"
        )

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def on_retire(self, dyn: DynInst) -> None:
        """Called for every micro-op the moment it leaves the ROB head."""
        self.checks += 1
        if dyn.state != ST_DONE:
            self._fail(f"retiring micro-op in state {dyn.state}, not DONE", dyn)
        if dyn.wrong_path:
            self._fail("wrong-path micro-op reached retirement", dyn)
        if dyn.seq <= self.last_retired_seq:
            self._fail(
                f"out-of-order retirement: seq {dyn.seq} after "
                f"{self.last_retired_seq}",
                dyn,
            )
        self.last_retired_seq = dyn.seq
        if dyn.pred_false:
            self.retired_pred_false += 1
            if not dyn.transparent:
                self._fail("predicated-false micro-op retired opaque", dyn)
            if dyn.acb_role not in (ROLE_BODY, ROLE_JUMPER):
                self._fail(
                    f"predicated-false micro-op with role {dyn.acb_role}", dyn
                )
            if dyn.acb_id < 0:
                self._fail("predicated-false micro-op outside any region", dyn)
        if dyn.instr.is_store:
            sq = self.core.sq
            if not sq or sq[0] is not dyn:
                self._fail("store retiring out of store-queue order", dyn)

    # ------------------------------------------------------------------
    # Per-cycle structural scan
    # ------------------------------------------------------------------
    def on_cycle(self) -> None:
        """Full structural consistency scan, run after every cycle."""
        self.checks += 1
        core = self.core
        prev_seq = -1
        allocated = loads = stores = 0
        for dyn in core.rob:
            if dyn.seq <= prev_seq:
                self._fail("ROB not in program (seq) order", dyn)
            prev_seq = dyn.seq
            if dyn.state in (ST_SQUASHED, ST_RETIRED):
                self._fail(f"ROB holds a state-{dyn.state} micro-op", dyn)
            if dyn.state == ST_ALLOCATED:
                allocated += 1
            if dyn.instr.is_load:
                loads += 1
            elif dyn.instr.is_store:
                stores += 1
        if core.iq_count != allocated:
            self._fail(
                f"iq_count drift: counter={core.iq_count} "
                f"actual allocated-in-ROB={allocated}"
            )
        if core.lq_count != loads:
            self._fail(
                f"lq_count drift: counter={core.lq_count} actual loads={loads}"
            )
        if len(core.sq) != stores:
            self._fail(
                f"store queue size {len(core.sq)} != stores in ROB {stores}"
            )
        prev_seq = -1
        for store in core.sq:
            if store.seq <= prev_seq:
                self._fail("store queue not in program order", store)
            prev_seq = store.seq
            if store.state in (ST_SQUASHED, ST_RETIRED):
                self._fail(
                    f"store queue holds a state-{store.state} micro-op", store
                )
        self._check_rat()

    def _check_rat(self) -> None:
        for reg, entry in enumerate(self.core.rat):
            if entry is not None and entry.state == ST_SQUASHED:
                self._fail(f"RAT maps r{reg} to a squashed micro-op", entry)

    # ------------------------------------------------------------------
    # Flush recovery
    # ------------------------------------------------------------------
    def on_flush(self, branch: DynInst) -> None:
        """Called at the end of every flush, after recovery completed."""
        self.checks += 1
        core = self.core
        if core.fetchq:
            self._fail("fetch queue not emptied by flush")
        if core.rob and core.rob[-1].seq > branch.seq:
            self._fail(
                f"ROB still holds seq {core.rob[-1].seq} younger than "
                f"flushed branch {branch.seq}"
            )
        for reg, entry in enumerate(core.rat):
            if entry is None:
                continue
            if entry.state == ST_SQUASHED:
                self._fail(
                    f"post-flush RAT maps r{reg} to a squashed micro-op", entry
                )
            if entry.seq > branch.seq:
                self._fail(
                    f"post-flush RAT maps r{reg} to seq {entry.seq}, younger "
                    f"than flushed branch {branch.seq}",
                    entry,
                )
        for store in core.sq:
            if store.seq > branch.seq:
                self._fail(
                    "post-flush store queue holds a squashed-range store", store
                )
        if core.region is not None:
            self._fail("predicated region left open across a flush")
        for seq in core.unresolved_regions:
            if seq > branch.seq:
                self._fail(
                    f"unresolved region {seq} younger than flushed branch "
                    f"{branch.seq} survived the flush"
                )

    # ------------------------------------------------------------------
    # Predicated-region lifecycle
    # ------------------------------------------------------------------
    def on_region_open(self, region: "RegionRecord") -> None:
        self.checks += 1
        seq = region.branch.seq
        if seq in self._region_state:
            self._fail(f"region {seq} opened twice", region.branch)
        if self._open_seq is not None:
            self._fail("second region opened while one is already open")
        self._region_state[seq] = _OPEN
        self._open_seq = seq
        self.regions_opened += 1

    def on_region_close(self, region: "RegionRecord", diverged: bool) -> None:
        self.checks += 1
        seq = region.branch.seq
        state = self._region_state.get(seq)
        if state is None:
            self._fail(f"region {seq} closed but never opened", region.branch)
        if state == _OPEN:
            self._region_state[seq] = _DIVERGED if diverged else _CLOSED
            self._open_seq = None
        elif diverged and state == _CLOSED:
            # a closed region torn by a later flush diverges at resolution
            self._region_state[seq] = _DIVERGED

    def on_region_cancel(self, region: "RegionRecord") -> None:
        """Region squashed wholesale by a flush older than its branch."""
        self.checks += 1
        seq = region.branch.seq
        self._region_state[seq] = _CANCELLED
        if self._open_seq == seq:
            self._open_seq = None

    # ------------------------------------------------------------------
    def final_check(self) -> None:
        """End-of-run audit: no region leaked, counters consistent.

        Call after the simulation finishes (the fuzz driver and tests do).
        The single region still open at the stop cycle — if any — is fine;
        anything else must have reached a terminal state.
        """
        self.checks += 1
        core = self.core
        open_seq = core.region.branch.seq if core.region is not None else None
        for seq, state in self._region_state.items():
            if state == _OPEN and seq != open_seq:
                self._fail(
                    f"region {seq} was opened but never closed, diverged, "
                    f"or cancelled"
                )
        for seq in core.unresolved_regions:
            if seq not in self._region_state:
                self._fail(f"unresolved region {seq} was never tracked as opened")
        self.on_cycle()

    def summary(self) -> Dict[str, int]:
        return {
            "checks": self.checks,
            "regions_opened": self.regions_opened,
            "retired_pred_false": self.retired_pred_false,
        }
