"""Golden in-order architectural executor.

Runs any workload *functionally* — no pipeline, no speculation, no
predication — by stepping a fresh :class:`~repro.workloads.workload.
FunctionalExecutor` one instruction at a time, and emits the canonical
retirement trace (:class:`~repro.validate.events.RetireEvent` stream) that
every timing configuration must reproduce.  Because the timing engine drives
the *same* functional substrate from fetch, any divergence between a timing
run's architectural retirement stream and the golden trace indicates a bug
in the pipeline mechanics (rename checkpoints, flush recovery, predication
transparency, region rewind), not in the workload.
"""

from __future__ import annotations

from typing import List

from repro.validate.events import ArchState, RetireEvent
from repro.workloads.workload import FunctionalExecutor, Workload


class GoldenExecutor:
    """In-order, one-instruction-at-a-time architectural reference model."""

    def __init__(self, workload: Workload, seed_offset: int = 0):
        self.workload = workload
        self.program = workload.program
        self.func = FunctionalExecutor(workload, seed_offset)
        self.state = ArchState()
        self.trace: List[RetireEvent] = []

    @property
    def retired(self) -> int:
        return self.state.retired

    def step(self) -> RetireEvent:
        """Execute and 'retire' the next architectural instruction."""
        pc = self.func.next_pc
        instr = self.program[pc]
        result = self.func.step(pc)
        event = RetireEvent(
            pc=pc,
            dst=instr.dst,
            taken=result.taken if instr.is_branch else None,
            addr=result.mem_addr if instr.is_mem else None,
            store=instr.is_store,
        )
        self.state.apply(event)
        self.trace.append(event)
        return event

    def run(self, count: int) -> List[RetireEvent]:
        """Retire *count* more instructions; returns the full trace so far."""
        for _ in range(count):
            self.step()
        return self.trace


def golden_trace(
    workload: Workload, count: int, seed_offset: int = 0
) -> List[RetireEvent]:
    """The first *count* events of the workload's canonical trace."""
    return GoldenExecutor(workload, seed_offset).run(count)


def golden_state(
    workload: Workload, count: int, seed_offset: int = 0
) -> ArchState:
    """Final architectural image after *count* instructions."""
    gold = GoldenExecutor(workload, seed_offset)
    gold.run(count)
    return gold.state
