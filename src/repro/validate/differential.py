"""Differential cross-check: golden vs. timing-engine retirement traces.

One :func:`check_workload` call runs a workload through the golden in-order
model and through any number of timing configurations (baseline OOO,
OOO+ACB, …) with the invariant checker armed, then verifies that every
configuration retired the identical architectural trace.  Any discrepancy —
a trace mismatch, an invariant violation, or a pipeline deadlock — comes
back as a structured :class:`ValidationFailure` the fuzz driver can shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core import SKYLAKE_LIKE, Core, CoreConfig, DeadlockError
from repro.harness.runner import SCHEME_FACTORIES, split_config
from repro.validate.checker import InvariantViolation
from repro.validate.events import RetireEvent, diff_traces
from repro.validate.golden import GoldenExecutor
from repro.workloads import Workload

#: configurations the validator exercises by default: the plain OOO machine,
#: the full ACB mechanism (the paper's headline configuration), ACB over the
#: dynamic merge-point learner, ACB over the Bullseye H2P predictor, and ACB
#: through the lane engine's replayed functional stream (``+lanes``) — the
#: whole scheme/engine space has to retire the identical architectural trace.
DEFAULT_CONFIGS = ("baseline", "acb", "acb-dmp-reconv", "acb@bullseye",
                   "acb+lanes")

#: config suffix that runs the cell over a :class:`repro.core.lanes.LaneFunc`
#: replay view instead of a live functional executor — the engine-side
#: machinery the batched lane packs are built on.
LANES_SUFFIX = "+lanes"


@dataclass
class ValidationFailure:
    """One reproducible validation discrepancy."""

    kind: str          # "mismatch" | "invariant" | "deadlock" | "error"
    config: str        # timing configuration that failed
    detail: str        # human-readable description
    workload: str = ""

    def describe(self) -> str:
        return f"[{self.kind}] {self.workload} × {self.config}: {self.detail}"


@dataclass
class ConfigTrace:
    """Retirement trace plus bookkeeping from one timing run."""

    config: str
    trace: List[RetireEvent]
    checker_summary: Dict[str, int]
    predicated_instances: int = 0
    failure: Optional[ValidationFailure] = None


def _scheme_and_predictor(config: str):
    """``(scheme, predictor_or_None)`` for a ``name[@predictor]`` config.

    The differential checker accepts the same ``@<predictor>`` spellings as
    the harness, so the fuzzer can cross-check e.g. ``acb@bullseye``: the
    architectural trace must stay identical no matter which predictor is
    steering speculation.
    """
    scheme_name, predictor = split_config(config)
    if scheme_name not in SCHEME_FACTORIES:
        raise ValueError(
            f"unknown config {scheme_name!r}; "
            f"choose from {sorted(SCHEME_FACTORIES)} "
            f"(optionally suffixed '@<predictor>')"
        )
    if scheme_name == "oracle-bp":
        predictor = "oracle"
    return SCHEME_FACTORIES[scheme_name](), predictor


def run_config_trace(
    workload: Workload,
    config: str,
    instructions: int,
    core_config: Optional[CoreConfig] = None,
    debug_checks: bool = True,
) -> ConfigTrace:
    """Run *workload* under *config* and capture its architectural trace."""
    cfg = core_config if core_config is not None else SKYLAKE_LIKE
    if debug_checks and not cfg.debug_checks:
        cfg = replace(cfg, debug_checks=True)
    engine_config = config
    func = None
    if engine_config.endswith(LANES_SUFFIX):
        from repro.core.lanes import FuncTrace, LaneFunc

        engine_config = engine_config[: -len(LANES_SUFFIX)]
        func = LaneFunc(FuncTrace(workload))
    scheme, predictor = _scheme_and_predictor(engine_config)
    core = Core(workload, cfg, scheme=scheme, predictor=predictor, func=func)
    trace = core.enable_arch_trace()
    out = ConfigTrace(config=config, trace=trace, checker_summary={})
    try:
        core.run(instructions)
        if core.checker is not None:
            core.checker.final_check()
    except InvariantViolation as exc:
        out.failure = ValidationFailure(
            kind="invariant", config=config, detail=str(exc), workload=workload.name
        )
    except DeadlockError as exc:
        out.failure = ValidationFailure(
            kind="deadlock", config=config, detail=str(exc), workload=workload.name
        )
    if core.checker is not None:
        out.checker_summary = core.checker.summary()
    out.predicated_instances = core.stats.predicated_instances
    return out


def check_workload(
    workload: Workload,
    instructions: int = 1200,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    core_config: Optional[CoreConfig] = None,
    debug_checks: bool = True,
) -> Optional[ValidationFailure]:
    """Cross-check golden vs. every timing configuration on one workload.

    Returns ``None`` when everything agrees, else the first failure found.
    Each configuration's trace is compared against the golden trace truncated
    to the same length (runs stop mid-retire-group, so a config may retire a
    handful of events past the instruction budget).
    """
    golden = GoldenExecutor(workload)
    for config in configs:
        run = run_config_trace(
            workload, config, instructions,
            core_config=core_config, debug_checks=debug_checks,
        )
        if run.failure is not None:
            return run.failure
        if len(run.trace) < instructions:
            return ValidationFailure(
                kind="mismatch",
                config=config,
                detail=(
                    f"engine retired only {len(run.trace)} architectural "
                    f"instructions of the {instructions} requested"
                ),
                workload=workload.name,
            )
        if len(golden.trace) < len(run.trace):
            golden.run(len(run.trace) - len(golden.trace))
        mismatch = diff_traces(
            golden.trace[: len(run.trace)], run.trace,
            left_name="golden", right_name=config,
        )
        if mismatch is not None:
            return ValidationFailure(
                kind="mismatch",
                config=config,
                detail=mismatch.describe(),
                workload=workload.name,
            )
    return None
