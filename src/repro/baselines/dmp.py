"""Diverge-Merge Processor baseline (Kim et al. [7], enhanced [15]).

DMP predicates compiler-selected branches whose *dynamic* prediction has
low confidence.  Key modelled properties, each load-bearing for the paper's
Section V-C comparison:

* **Compiler selection** — candidates come from a profiling pass over the
  *training* input plus exact CFG convergence analysis (guaranteed
  reconvergence points, covering the multi-exit shapes ACB cannot learn —
  the category B1 advantage).
* **Eager execution with select micro-ops** — the predicated body executes
  before the branch resolves; select micro-ops injected at the merge point
  reconcile live-outs (the category B2 advantage, and the category E
  allocation-stall liability).
* **Confidence gating** — a JRS-style estimator decides per instance.
* **Branch-history corruption** — predicated instances vanish from the
  global history; because gating is per-instance, the same static branch
  sometimes appears in the history and sometimes not, thrashing TAGE
  (categories D/E).  The ``DmpPbhScheme`` oracle variant (Fig. 9) instead
  inserts the true outcome.
* **No run-time performance monitor** — nothing like Dynamo exists, so
  harmful candidates keep predicating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.profiles import BranchProfile, profile_workload
from repro.branch.base import Prediction
from repro.branch.confidence import ConfidenceEstimator
from repro.core.predication import PredicationPlan, PredicationScheme
from repro.isa.dyninst import DynInst


@dataclass(frozen=True)
class DmpConfig:
    """Tunables of the DMP baseline."""

    profile_instructions: int = 20_000
    min_mispred_rate: float = 0.03   # compiler's H2P selection threshold
    max_body_size: int = 40
    confidence_size: int = 1024
    confidence_threshold: int = 12   # below this counter value = low confidence
    max_fetch_slack: int = 40
    max_cycles: int = 400


class DmpScheme(PredicationScheme):
    """Confidence-gated dynamic predication with compiler support."""

    name = "dmp"

    def __init__(self, config: DmpConfig = DmpConfig()):
        self.config = config
        self.confidence = ConfidenceEstimator(
            size=config.confidence_size, threshold=config.confidence_threshold
        )
        self.candidates: Dict[int, BranchProfile] = {}
        self.instances = 0
        self.divergences = 0

    # ------------------------------------------------------------------
    def attach(self, core) -> None:
        super().attach(core)
        self._compile(core.workload)

    def _compile(self, workload) -> None:
        """The compiler pass: profile the training input, select targets."""
        profiles = profile_workload(workload, self.config.profile_instructions)
        self.candidates = {
            p.pc: p
            for p in profiles.values()
            if (
                p.mispred_rate >= self.config.min_mispred_rate
                and p.conv_type is not None
                and p.reconv_pc is not None
                and 0 < p.body_size <= self.config.max_body_size
                and self._extra_filter(p)
            )
        }

    def _extra_filter(self, profile: BranchProfile) -> bool:
        """Hook for subclasses (DHP restricts shape)."""
        return True

    # ------------------------------------------------------------------
    def consider(self, dyn: DynInst, prediction: Prediction) -> Optional[PredicationPlan]:
        profile = self.candidates.get(dyn.pc)
        if profile is None:
            return None
        if self.confidence.is_confident(dyn.pc):
            return None  # prediction trusted: speculate normally
        self.instances += 1
        return PredicationPlan(
            branch_pc=dyn.pc,
            reconv_pc=profile.reconv_pc,
            conv_type=profile.conv_type,
            first_taken=profile.conv_type == 3,
            eager=True,
            select_uops=True,
            max_fetch=profile.body_size + self.config.max_fetch_slack,
            max_cycles=self.config.max_cycles,
        )

    def on_branch_resolved(
        self, dyn: DynInst, mispredicted: bool, predicated: bool
    ) -> None:
        if predicated:
            if dyn.diverged:
                self.divergences += 1
            # train confidence with the outcome the predictor would have had
            if dyn.pred_taken is not None and dyn.taken is not None:
                self.confidence.train(dyn.pc, dyn.pred_taken == dyn.taken)
            return
        self.confidence.train(dyn.pc, not mispredicted)

    def storage_bytes(self) -> float:
        # the confidence estimator is DMP's only dedicated table; the rest
        # lives in the compiled binary and ISA (the paper's adoption
        # criticism).
        return self.confidence.storage_bits() / 8


class DmpPbhScheme(DmpScheme):
    """DMP with oracle Perfect Branch History (Fig. 9's DMP-PBH).

    Identical policy, but every predicated instance's *true* outcome is
    inserted into the global history at fetch, isolating how much of DMP's
    loss comes from history corruption.
    """

    name = "dmp-pbh"
    updates_history_on_predication = True
