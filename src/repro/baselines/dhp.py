"""Dynamic Hammock Predication baseline (Klauser et al. [11]).

DHP predicates only *simple, short* hammocks — straight-line bodies with no
stores, identified by the compiler — on low-confidence predictions.  Its
limitation is coverage: complex convergent control flow (Types 2/3, nested
shapes, bodies with stores) is out of reach, which is why the paper finds
it captures roughly half of ACB's gain (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.dmp import DmpConfig, DmpScheme
from repro.baselines.profiles import BranchProfile


@dataclass(frozen=True)
class DhpConfig(DmpConfig):
    """DHP restricts the predicable shape far more than DMP."""

    max_body_size: int = 8


class DhpScheme(DmpScheme):
    """Short-simple-hammock-only dynamic predication."""

    name = "dhp"

    def __init__(self, config: DhpConfig = DhpConfig()):
        super().__init__(config)

    def _extra_filter(self, profile: BranchProfile) -> bool:
        return profile.simple and not profile.has_store and profile.conv_type in (1, 2)
