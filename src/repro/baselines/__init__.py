"""Prior-work baselines: DMP, DMP-PBH (oracle history), and DHP."""

from repro.baselines.dhp import DhpConfig, DhpScheme
from repro.baselines.dmp import DmpConfig, DmpPbhScheme, DmpScheme
from repro.baselines.profiles import BranchProfile, profile_workload
from repro.baselines.wish import WishConfig, WishScheme

__all__ = [
    "BranchProfile",
    "profile_workload",
    "DmpConfig",
    "DmpScheme",
    "DmpPbhScheme",
    "DhpConfig",
    "DhpScheme",
    "WishConfig",
    "WishScheme",
]
