"""Compiler profiling pass for the DMP and DHP baselines.

DMP [7], [15] relies on the compiler to (a) profile a *training input* and
mark frequently mispredicting branches, and (b) supply convergence
information (diverge/merge points) through the ISA.  We own the program
representation, so this module plays the compiler: it runs a fast
functional profile of the training workload through a predictor and
combines it with exact CFG analysis.

Because it profiles the *training* input (``Workload.train``), its branch
selection inherits the train/test mismatch the paper highlights in
Section II-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.branch import TagePredictor
from repro.program.cfg import classify_hammock, find_guaranteed_reconvergence
from repro.workloads.workload import FunctionalExecutor, Workload


@dataclass(frozen=True)
class BranchProfile:
    """Compiler knowledge about one conditional branch."""

    pc: int
    executed: int
    mispredicted: int
    reconv_pc: Optional[int]        # guaranteed (post-dominator style) point
    conv_type: Optional[int]        # 1/2/3 per Figure 3, None if unsupported
    body_size: int
    simple: bool                    # straight-line hammock (DHP's requirement)
    has_store: bool

    @property
    def mispred_rate(self) -> float:
        return self.mispredicted / self.executed if self.executed else 0.0


def _conv_type(branch_pc: int, target: int, reconv: int) -> Optional[int]:
    """Map a reconvergence point onto the Figure 3 type taxonomy."""
    if target <= branch_pc:
        return None  # backward branches are not predicated (see AcbScheme)
    if reconv == target:
        return 1
    if reconv > target:
        return 2
    if branch_pc < reconv < target:
        return 3
    return None


def profile_workload(
    workload: Workload,
    instructions: int = 20_000,
    max_dist: int = 64,
) -> Dict[int, BranchProfile]:
    """Profile the *training* input of *workload*.

    Runs a functional (timing-free) execution with an in-order TAGE model to
    estimate per-branch misprediction rates, then attaches CFG-derived
    convergence facts.  The returned map is the "compiled binary metadata"
    the DMP/DHP hardware consumes.
    """
    train = workload.train if workload.train is not None else workload
    program = train.program
    executor = FunctionalExecutor(train)
    bp = TagePredictor()
    executed: Dict[int, int] = {}
    missed: Dict[int, int] = {}

    pc = 0
    for _ in range(instructions):
        instr = program[pc]
        if instr.is_cond_branch:
            pred = bp.predict(pc)
            result = executor.step(pc)
            taken = result.taken
            executed[pc] = executed.get(pc, 0) + 1
            if pred.taken != taken:
                missed[pc] = missed.get(pc, 0) + 1
            bp.spec_push(pc, taken)  # profiler sees perfect history
            bp.update(pc, taken, pred.meta, pred.taken != taken)
            pc = result.next_pc
        else:
            pc = executor.step(pc).next_pc

    profiles: Dict[int, BranchProfile] = {}
    for bpc, count in executed.items():
        instr = program[bpc]
        reconv = find_guaranteed_reconvergence(program, bpc, max_dist)
        conv_type = (
            _conv_type(bpc, instr.target, reconv) if reconv is not None else None
        )
        info = classify_hammock(program, bpc, max_dist)
        profiles[bpc] = BranchProfile(
            pc=bpc,
            executed=count,
            mispredicted=missed.get(bpc, 0),
            reconv_pc=reconv,
            conv_type=conv_type,
            body_size=info.body_size if info is not None else 0,
            simple=info.simple if info is not None else False,
            has_store=info.has_store if info is not None else False,
        )
    return profiles
