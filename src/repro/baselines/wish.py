"""Wish Branches baseline (Kim et al. [12]).

Wish branches have the compiler emit *predicated code for every branch*
that can be predicated; at run time, low-confidence instances execute the
predicated version (no flush, data-dependent on the predicate) while
high-confidence instances branch normally.  Two properties distinguish it
from DMP, both noted in the paper's Section II-B:

* **No hard-to-predict selection** — any convergent branch is a candidate,
  so cold confidence predicates easy branches too and the predication
  overhead is paid far more broadly than under DMP's profile-driven
  selection (DMP "improves upon Wish Branches and DHP").
* **Predicated-code semantics** — the region executes as data-dependent
  predicated code rather than DMP's eagerly executed dual path with select
  micro-ops, i.e. the body waits on the predicate (modelled as the
  stall-until-resolve mechanics, without select micro-ops).

The increased compiled-code footprint the paper also criticizes has no
timing analogue in this model and is not represented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.dmp import DmpConfig, DmpScheme
from repro.branch.base import Prediction
from repro.core.predication import PredicationPlan
from repro.isa.dyninst import DynInst


@dataclass(frozen=True)
class WishConfig(DmpConfig):
    """Any convergent branch qualifies — there is no H2P profiling gate."""

    min_mispred_rate: float = 0.0


class WishScheme(DmpScheme):
    """Confidence-gated predicated code on every convergent branch."""

    name = "wish"

    def __init__(self, config: WishConfig = WishConfig()):
        super().__init__(config)

    def consider(self, dyn: DynInst, prediction: Prediction) -> Optional[PredicationPlan]:
        plan = super().consider(dyn, prediction)
        if plan is None:
            return None
        # predicated-code semantics: the region is data-dependent on the
        # predicate, not eagerly executed and merged.
        plan.eager = False
        plan.select_uops = False
        return plan
