"""ACB Table: learned targets with criticality confidence (Section III-B).

A 32-entry, 2-way set-associative table indexed by branch PC.  Each entry
stores the learned convergence metadata (type, reconvergence point, body
size class) plus a 6-bit probabilistic confidence counter and the per-entry
Dynamo state (3-bit FSM + 4-bit involvement counter).

The confidence discipline implements Equation 1's trade-off: the counter is
incremented on every misprediction-triggered flush of the branch and
decremented *probabilistically* by ``1/M`` on every correct prediction,
where ``M = 1/m - 1`` and ``m`` is the required misprediction rate for the
entry's body-size class.  The counter therefore drifts upward exactly when
the observed misprediction rate exceeds ``m``; predication starts once it
exceeds half of its saturated value (32).
"""

from __future__ import annotations

from typing import List, Optional

from repro.acb.config import AcbConfig

# Dynamo FSM states (Figure 5)
BAD = 0
LIKELY_BAD = 1
NEUTRAL = 2
LIKELY_GOOD = 3
GOOD = 4

STATE_NAMES = {BAD: "BAD", LIKELY_BAD: "LIKELY_BAD", NEUTRAL: "NEUTRAL",
               LIKELY_GOOD: "LIKELY_GOOD", GOOD: "GOOD"}


class AcbEntry:
    """One learned critical convergent branch."""

    __slots__ = (
        "pc",
        "tag",
        "conv_type",
        "reconv_pc",
        "body_size",
        "body_class",
        "required_m",
        "conf",
        "util",
        "fsm",
        "involvement",
    )

    def __init__(self, pc: int, tag: int, conv_type: int, reconv_pc: int,
                 body_size: int, body_class: int, required_m: float):
        self.pc = pc
        self.tag = tag
        self.conv_type = conv_type
        self.reconv_pc = reconv_pc
        self.body_size = body_size
        self.body_class = body_class
        self.required_m = required_m
        self.conf = 0
        self.util = 1
        self.fsm = NEUTRAL
        self.involvement = 0

    @property
    def first_taken(self) -> bool:
        """Types 1/2 fetch the not-taken path first; Type 3 the taken path."""
        return self.conv_type == 3

    def reset_confidence(self) -> None:
        """Divergence observed: force the branch to re-train (Section III-C)."""
        self.conf = 0
        self.util = 0


class AcbTable:
    """Set-associative store of learned ACB candidates."""

    def __init__(self, config: AcbConfig = AcbConfig(), seed: int = 0xD1CE):
        self.config = config
        self.sets = config.acb_sets
        self.ways = config.acb_ways
        if self.sets & (self.sets - 1):
            raise ValueError("acb_sets must be a power of two")
        self._table: List[List[Optional[AcbEntry]]] = [
            [None] * self.ways for _ in range(self.sets)
        ]
        self.conf_max = (1 << config.confidence_bits) - 1
        self._rng = seed or 1

    # ------------------------------------------------------------------
    def _rand01(self) -> float:
        s = self._rng
        s ^= (s << 13) & 0xFFFFFFFFFFFFFFFF
        s ^= s >> 7
        s ^= (s << 17) & 0xFFFFFFFFFFFFFFFF
        self._rng = s & 0xFFFFFFFFFFFFFFFF
        return self._rng / float(1 << 64)

    def _index(self, pc: int) -> int:
        return pc & (self.sets - 1)

    def _tag(self, pc: int) -> int:
        return (pc >> self.sets.bit_length() - 1) & 0x7FF

    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Optional[AcbEntry]:
        tag = self._tag(pc)
        for entry in self._table[self._index(pc)]:
            if entry is not None and entry.tag == tag and entry.pc == pc:
                return entry
        return None

    def allocate(self, pc: int, conv_type: int, reconv_pc: int, body_size: int) -> AcbEntry:
        """Install a freshly learned branch, evicting the weakest way."""
        entry = AcbEntry(
            pc=pc,
            tag=self._tag(pc),
            conv_type=conv_type,
            reconv_pc=reconv_pc,
            body_size=body_size,
            body_class=self.config.body_size_class(body_size),
            required_m=self.config.required_mispred_rate(body_size),
        )
        ways = self._table[self._index(pc)]
        victim = 0
        for w, existing in enumerate(ways):
            if existing is None:
                victim = w
                break
            if existing.conf < ways[victim].conf:
                victim = w
        ways[victim] = entry
        return entry

    # ------------------------------------------------------------------
    def train(self, pc: int, mispredicted: bool) -> Optional[AcbEntry]:
        """Criticality-confidence update on a resolved, non-predicated
        instance of a tracked branch."""
        entry = self.lookup(pc)
        if entry is None:
            return None
        if mispredicted:
            if entry.conf < self.conf_max:
                entry.conf += 1
        else:
            m = entry.required_m
            big_m = max(1.0, 1.0 / m - 1.0)
            if entry.conf > 0 and self._rand01() < 1.0 / big_m:
                entry.conf -= 1
        return entry

    def confident(self, entry: AcbEntry) -> bool:
        return entry.conf > self.config.confidence_threshold

    # ------------------------------------------------------------------
    def entries(self) -> List[AcbEntry]:
        return [e for ways in self._table for e in ways if e is not None]

    def storage_bits(self) -> int:
        # tag(11) + type(2) + reconv offset(16) + body class(2) + conf(6) +
        # util(2) + FSM(3) + involvement(4) + valid(1) + first-dir(1) +
        # spare(2) = 50 bits per entry.
        return self.sets * self.ways * 50
