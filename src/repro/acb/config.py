"""ACB configuration knobs.

Defaults are the paper's published parameters (Section III, Table I).  The
paper simulates 10M+ instruction trace slices; pure-Python simulation uses
reduced traces (see DESIGN.md §6), so :meth:`AcbConfig.reduced` scales the
instruction-count-based windows proportionally while keeping every
structural parameter identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class AcbConfig:
    """All tunables of the ACB mechanism."""

    # --- critical-branch learning (Section III-A) -----------------------
    critical_entries: int = 64
    critical_tag_bits: int = 11
    critical_counter_bits: int = 4
    criticality_window: int = 200_000   # retired instructions per filter window
    #: optional refinement the paper experimented with (Section III-A):
    #: count only mispredictions resolving near the ROB head.  The shipped
    #: scheme is the plain frequency filter, so this defaults to off; the
    #: ablation bench turns it on.
    use_rob_proximity: bool = False
    rob_proximity_fraction: float = 0.25

    # --- convergence learning (Section III-B) ---------------------------
    learning_limit: int = 40            # N: instruction scan limit
    #: which convergence learner feeds the ACB Table: ``"fetch"`` is the
    #: paper's single-entry fetch-stream scanner
    #: (:class:`~repro.acb.learning.LearningTable`); ``"dmp"`` is the
    #: DMP-style merge-point table trained from the retired stream
    #: (:class:`~repro.acb.reconv.MergePointTable`), able to learn Type-3+
    #: shapes the static scanner rejects.
    learning_backend: str = "fetch"

    # --- dynamic merge-point learning (``learning_backend="dmp"``) -------
    merge_entries: int = 16             # branches learned concurrently
    merge_path_limit: int = 96          # retired PCs recorded per path
    merge_confidence: int = 4           # consecutive confirmations to promote
    merge_max_fails: int = 4            # misses before the branch is dropped
    merge_stack_depth: int = 8          # concurrent recording frames

    # --- ACB table / criticality confidence -----------------------------
    acb_sets: int = 16
    acb_ways: int = 2
    confidence_bits: int = 6
    confidence_threshold: int = 32      # apply when counter exceeds half-max
    #: (max combined body size, required misprediction rate) per 2-bit class,
    #: derived from Equation 1 with alloc_width=4 and ~24-cycle penalty.
    body_size_classes: Tuple[Tuple[int, float], ...] = (
        (8, 0.06),
        (16, 0.12),
        (24, 0.20),
        (40, 0.30),
    )

    # --- run-time application (Section III-C) ---------------------------
    divergence_slack: int = 40          # extra fetches allowed past N
    divergence_cycles: int = 400        # hard cycle timeout per region
    select_uops: bool = False           # ACB's optional select-uop variant
    #: ablation: insert the true outcome of predicated instances into the
    #: global history (oracle).  ACB proper removes them (Section V-C).
    oracle_history: bool = False

    # --- extensions ------------------------------------------------------
    #: the paper's proposed B1 enhancement: on divergence, re-learn a
    #: farther (guaranteed) reconvergence point and adopt it.
    multi_reconv: bool = False

    # --- run-time throttling (Section III-C / V-B) -----------------------
    dynamo_enabled: bool = True
    #: "dynamo" (the paper's monitor) or "stalls" (the rejected local
    #: stall-count heuristic of Section V-B, kept for the ablation).
    throttle: str = "dynamo"
    stall_threshold: float = 10.0
    epoch_length: int = 16_000          # retired instructions per epoch
    cycle_change_factor: float = 0.125  # the 1/8 threshold
    involvement_bits: int = 4
    dynamo_reset_interval: int = 10_000_000

    def __post_init__(self):
        if self.throttle not in ("dynamo", "stalls"):
            raise ValueError(f"unknown throttle {self.throttle!r}")
        if self.learning_backend not in ("fetch", "dmp"):
            raise ValueError(
                f"unknown learning backend {self.learning_backend!r}"
            )

    def reduced(self, scale: int = 10) -> "AcbConfig":
        """Shrink instruction-count windows by *scale* for short traces."""
        if scale < 1:
            raise ValueError("scale must be >= 1")
        return replace(
            self,
            criticality_window=max(2_000, self.criticality_window // scale),
            # epochs shrink twice as fast as the other windows so Dynamo
            # reaches its verdict within a reduced trace slice.
            epoch_length=max(400, self.epoch_length // (2 * scale)),
            # shorter epochs see fewer dynamic instances, so the 4-bit
            # involvement saturation is scaled down alongside.
            involvement_bits=3,
            dynamo_reset_interval=max(50_000, self.dynamo_reset_interval // scale),
        )

    def required_mispred_rate(self, body_size: int) -> float:
        """Body-Size-to-Misprediction-Rate mapping (Section III-B)."""
        for limit, rate in self.body_size_classes:
            if body_size <= limit:
                return rate
        return self.body_size_classes[-1][1]

    def body_size_class(self, body_size: int) -> int:
        for i, (limit, _) in enumerate(self.body_size_classes):
            if body_size <= limit:
                return i
        return len(self.body_size_classes) - 1


#: Paper-default configuration.
PAPER_DEFAULT = AcbConfig()

#: Configuration scaled for the reduced traces this reproduction runs.
REDUCED_DEFAULT = AcbConfig().reduced(10)
