"""Learning Table: convergence detection in hardware (Section III-B).

A single-entry structure that watches the fetch PC stream and classifies
one critical branch at a time into the three generic convergence types of
Figure 3:

* **Type-1** — the reconvergence point is the branch target itself
  (IF-only hammocks): scanning the not-taken path reaches the target
  within N instructions.
* **Type-2** — the not-taken path contains a Jumper whose target is
  *ahead of* the branch target (IF-ELSE): that target is the candidate
  reconvergence point, validated on a later taken-direction instance.
* **Type-3** — the taken path contains a Jumper whose target lies
  *between* the branch and its target, so the not-taken path falls through
  into it; validated on a later not-taken instance.

Backward branches are handled through the commutative transform of
Figure 4: the branch is viewed as a forward branch located at its own
target, targeting its own PC, with the direction sense inverted — the
classification then proceeds identically.  The scan works on the raw fetch
stream (including wrong-path fetches), as the hardware does.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.isa.dyninst import DynInst

# phases
IDLE = 0
WAIT_FIRST = 1     # wait for an instance fetching the first inspected path
SCAN_FIRST = 2
WAIT_SECOND = 3    # wait for an instance fetching the validation path
SCAN_SECOND = 4

# stages
STAGE_T12 = 0
STAGE_T3 = 1


def effective_taken(dyn: DynInst) -> bool:
    """Direction the front end followed for a fetched branch."""
    if not dyn.instr.is_branch:
        return False
    if not dyn.instr.cond:
        return True
    if dyn.predicted and dyn.pred_taken is not None:
        return dyn.pred_taken
    return bool(dyn.taken)


class ConvergenceResult:
    """Outcome of one learning episode."""

    __slots__ = ("branch_pc", "conv_type", "reconv_pc", "backward", "body_size")

    def __init__(
        self,
        branch_pc: int,
        conv_type: int,
        reconv_pc: int,
        backward: bool,
        body_size: int,
    ):
        self.branch_pc = branch_pc
        self.conv_type = conv_type
        self.reconv_pc = reconv_pc
        self.backward = backward
        #: combined T + N body size observed during learning (Section III-B
        #: records it in 2 bits to set the required misprediction rate).
        self.body_size = body_size

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ConvergenceResult(pc={self.branch_pc}, type={self.conv_type}, "
            f"reconv={self.reconv_pc}, backward={self.backward}, "
            f"body={self.body_size})"
        )


class LearningTable:
    """Single-entry convergence learner over the fetch stream."""

    def __init__(
        self,
        limit: int = 40,
        on_converged: Optional[Callable[[ConvergenceResult], None]] = None,
        on_failed: Optional[Callable[[int], None]] = None,
    ):
        self.limit = limit
        self.on_converged = on_converged
        self.on_failed = on_failed
        #: why the most recent episode failed (diagnostics; survives reset):
        #: ``"wrapped"`` — the scanned path hit a new instance of the branch
        #: without converging; ``"t3_scan_exhausted"`` — the Type-3 taken
        #: path ran out of scan budget with no back-Jumper;
        #: ``"validate_exhausted"`` — a Type-3 candidate was never reached
        #: on the validation path.
        self.last_fail_reason = ""
        self.reset()

    def reset(self) -> None:
        self.phase = IDLE
        self.stage = STAGE_T12
        self.branch_pc = -1
        self.vpc = -1        # virtual branch PC (Figure 4 transform)
        self.vtarget = -1    # virtual branch target
        self.backward = False
        self.candidate = -1
        self.count = 0
        self.size_first = 0  # body length observed on the first path
        self.skip_type1 = False  # far-mode: look past the branch target

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.phase != IDLE

    def load(self, branch_pc: int, target: int, skip_type1: bool = False) -> None:
        """Begin learning the conditional branch at *branch_pc* → *target*.

        With *skip_type1* the scan ignores Type-1 arrivals at the branch
        target and hunts for a Jumper to a *farther* point — the re-learning
        pass of the multiple-reconvergence-point enhancement (Fig. 8 B1).
        """
        if self.busy:
            raise RuntimeError("learning table is single-entry and occupied")
        self.branch_pc = branch_pc
        self.skip_type1 = skip_type1
        self.backward = target <= branch_pc
        if self.backward:
            # Figure 4: view the back-branch as a forward branch sitting at
            # its own target, targeting its own PC, with inverted sense.
            self.vpc = target
            self.vtarget = branch_pc
        else:
            self.vpc = branch_pc
            self.vtarget = target
        self.stage = STAGE_T12
        self.phase = WAIT_FIRST
        self.candidate = -1
        self.count = 0

    # ------------------------------------------------------------------
    def _virtual_dir(self, dyn: DynInst) -> bool:
        """Virtual taken-direction of a fetched instance of our branch."""
        real = effective_taken(dyn)
        return (not real) if self.backward else real

    def _first_dir(self) -> bool:
        """Direction whose path is inspected first in the current stage."""
        return self.stage == STAGE_T3  # T12 inspects not-taken, T3 taken

    def observe(self, dyn: DynInst) -> None:
        """Feed one fetched instruction (called for the whole fetch stream)."""
        if self.phase == IDLE:
            return
        if dyn.pc == self.branch_pc and dyn.instr.is_cond_branch:
            self._observe_own_branch(dyn)
            return
        if self.phase in (SCAN_FIRST, SCAN_SECOND):
            self._scan(dyn)

    def abort_scan(self) -> None:
        """A pipeline flush invalidated the fetch stream mid-scan: back off
        to waiting for a fresh instance (the learned branch stays loaded)."""
        if self.phase == SCAN_FIRST:
            self.phase = WAIT_FIRST
        elif self.phase == SCAN_SECOND:
            self.phase = WAIT_SECOND
        self.count = 0

    def _observe_own_branch(self, dyn: DynInst) -> None:
        vdir = self._virtual_dir(dyn)
        if self.phase == WAIT_FIRST and vdir == self._first_dir():
            self.phase = SCAN_FIRST
            self.count = 0
        elif self.phase == WAIT_SECOND and vdir == (not self._first_dir()):
            self.phase = SCAN_SECOND
            self.count = 0
        elif self.phase in (SCAN_FIRST, SCAN_SECOND):
            # For a backward branch the virtual target IS the branch PC, so
            # arriving back at it on the inspected path is the Type-1
            # convergence of the Figure 4 transform.
            if (
                self.backward
                and self.phase == SCAN_FIRST
                and self.stage == STAGE_T12
                and dyn.pc == self.vtarget
            ):
                self.size_first = self.count
                self._confirm(conv_type=1, reconv=self.vtarget)
                return
            # Otherwise the scanned path wrapped around to a new instance
            # without converging: that path attempt failed, exactly as if
            # the N-instruction limit had been exhausted.
            if self.stage == STAGE_T12:
                self._advance_stage()
            else:
                self._fail("wrapped")

    # ------------------------------------------------------------------
    def _scan(self, dyn: DynInst) -> None:
        self.count += 1
        if self.phase == SCAN_FIRST:
            if self.stage == STAGE_T12:
                self._scan_not_taken(dyn)
            else:
                self._scan_taken_t3(dyn)
        else:
            self._scan_validate(dyn)

    def _scan_not_taken(self, dyn: DynInst) -> None:
        """Stage T12, scanning the (virtual) not-taken path."""
        if dyn.pc == self.vtarget and not self.skip_type1:
            self.size_first = self.count - 1
            self._confirm(conv_type=1, reconv=self.vtarget)
            return
        if (
            dyn.instr.is_branch
            and effective_taken(dyn)
            and dyn.instr.target > self.vtarget
        ):
            self.candidate = dyn.instr.target
            self.size_first = self.count
            self.phase = WAIT_SECOND
            return
        if self.count >= self.limit:
            self._advance_stage()

    def _scan_taken_t3(self, dyn: DynInst) -> None:
        """Stage T3, scanning the (virtual) taken path for a back-jumper."""
        if (
            dyn.instr.is_branch
            and effective_taken(dyn)
            and self.vpc < dyn.instr.target < self.vtarget
        ):
            self.candidate = dyn.instr.target
            self.size_first = self.count
            self.phase = WAIT_SECOND
            return
        if self.count >= self.limit:
            self._fail("t3_scan_exhausted")

    def _scan_validate(self, dyn: DynInst) -> None:
        """Confirm the candidate reconvergence point on the other path."""
        if dyn.pc == self.candidate:
            self._confirm(conv_type=2 if self.stage == STAGE_T12 else 3,
                          reconv=self.candidate)
            return
        if self.count >= self.limit:
            if self.stage == STAGE_T12:
                self._advance_stage()
            else:
                self._fail("validate_exhausted")

    # ------------------------------------------------------------------
    def _advance_stage(self) -> None:
        if self.stage == STAGE_T12:
            self.stage = STAGE_T3
            self.phase = WAIT_FIRST
            self.candidate = -1
            self.count = 0
        else:
            self._fail()

    def _confirm(self, conv_type: int, reconv: int) -> None:
        size_second = self.count - 1 if self.phase == SCAN_SECOND else 0
        result = ConvergenceResult(
            self.branch_pc,
            conv_type,
            reconv,
            self.backward,
            body_size=max(1, self.size_first + size_second),
        )
        callback = self.on_converged
        self.reset()
        if callback is not None:
            callback(result)

    def _fail(self, reason: str = "exhausted") -> None:
        pc = self.branch_pc
        self.last_fail_reason = reason
        callback = self.on_failed
        self.reset()
        if callback is not None:
            callback(pc)

    # ------------------------------------------------------------------
    @staticmethod
    def storage_bits() -> int:
        """The paper budgets 20 bytes for this structure (Section III-B)."""
        return 20 * 8
