"""Stall-count throttling — the local heuristic the paper rejected.

Section V-B: before Dynamo, the authors "experimented with execution stalls
(i.e. waiting for dispatch at issue queue) counting based simpler metric,
since predication primarily creates additional data-dependencies.  But in a
few cases, despite high stall counts, performing predication was favorable
as saved pipeline flushes outweighed the additional stalls incurred.  This
was also vulnerable to bad tuning."

This module implements that rejected alternative so the claim is testable:
per predicated branch, it accumulates the issue-queue waiting time of the
predicated body and disables the branch when the average stall per dynamic
instance crosses a threshold.  The ablation bench shows exactly the failure
mode the paper describes — it throttles profitable predications (whose
bodies *do* stall, by design) along with harmful ones.
"""

from __future__ import annotations

from typing import Dict

from repro.acb.acb_table import BAD, GOOD, NEUTRAL, AcbEntry, AcbTable
from repro.acb.config import AcbConfig


class StallThrottle:
    """Per-branch issue-stall accounting with a disable threshold."""

    def __init__(self, config: AcbConfig, table: AcbTable,
                 stall_threshold: float = 10.0):
        self.config = config
        self.table = table
        #: average body-stall cycles per predicated instance above which the
        #: branch is disabled — the "bad tuning" knob.
        self.stall_threshold = stall_threshold
        self.instr_in_epoch = 0
        self.retired_total = 0
        self._stalls: Dict[int, int] = {}     # branch pc -> stall cycles
        self._instances: Dict[int, int] = {}  # branch pc -> predications
        self.evaluations = 0
        self.disabled = 0

    # -- the same driving interface as Dynamo ---------------------------
    def enabled(self, entry: AcbEntry) -> bool:
        return entry.fsm != BAD

    def note_instance(self, entry: AcbEntry) -> None:
        self._instances[entry.pc] = self._instances.get(entry.pc, 0) + 1

    def note_body_stall(self, branch_pc: int, stall_cycles: int) -> None:
        """Charge one predicated-body micro-op's issue-queue wait."""
        if stall_cycles > 0:
            self._stalls[branch_pc] = self._stalls.get(branch_pc, 0) + stall_cycles

    def on_retire(self, cycle: int) -> None:
        self.retired_total += 1
        self.instr_in_epoch += 1
        if self.instr_in_epoch >= self.config.epoch_length:
            self._evaluate()
            self.instr_in_epoch = 0
        if (
            self.config.dynamo_reset_interval
            and self.retired_total % self.config.dynamo_reset_interval == 0
        ):
            self.reset_states()

    def _evaluate(self) -> None:
        self.evaluations += 1
        for pc, instances in self._instances.items():
            if not instances:
                continue
            entry = self.table.lookup(pc)
            if entry is None or entry.fsm == BAD:
                continue
            avg_stall = self._stalls.get(pc, 0) / instances
            if avg_stall > self.stall_threshold:
                entry.fsm = BAD
                self.disabled += 1
            else:
                entry.fsm = GOOD
        self._stalls.clear()
        self._instances.clear()

    def reset_states(self) -> None:
        for entry in self.table.entries():
            entry.fsm = NEUTRAL
        self._stalls.clear()
        self._instances.clear()

    @staticmethod
    def storage_bits() -> int:
        # comparable counters to Dynamo's budget
        return 16 * 8
