"""Merge-Point Table: dynamic reconvergence detection from the retired stream.

An alternative ``repro.acb.learning`` backend modelled on Dynamic Merge
Point Prediction (Pruett & Patt, see PAPERS.md): instead of scanning the
*fetch* stream for the compiler-idiom convergence types of Figure 3, the
table records the *retired* control-flow paths that follow each direction
of a candidate branch and picks the earliest program counter common to
both — the dynamic merge point.  Because the retired stream is
architectural, the detector is immune to wrong-path pollution and needs no
:meth:`abort_scan` on flushes, and because it makes no assumption about
branch/Jumper idioms it can learn merge points for region shapes the
static hammock learner must reject (loop-bodied arms, far multi-exit
joins — the Type-3+ space the paper defers to future work).

The structure is a small multi-entry table (the static learner is
single-entry):

* **Learning** — a bounded stack of *recording frames* opens one frame per
  retired instance of a tracked branch and appends every subsequently
  retired PC (up to ``path_limit``).  A frame finalizes when it fills or
  when its branch retires again.  Once one path per direction is recorded,
  the candidate merge point is the common PC minimizing the later of its
  two path positions (ties broken toward the smaller PC).
* **Verifying** — subsequent frames must contain the candidate;
  ``confidence`` consecutive confirmations promote it (the entry converges
  and reports through the same :class:`ConvergenceResult` callback as the
  fetch-stream learner), a single miss restarts learning, and
  ``max_fails`` total misses evict the branch as unlearnable.

The convergence type reported back re-uses the paper's Figure 3
vocabulary so the downstream ACB Table/engine mechanics are unchanged:
merge == target → Type 1, past the target → Type 2, between branch and
target → Type 3 (fetch the taken side first).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.acb.learning import IDLE, ConvergenceResult

#: entry states
LEARN = 0
VERIFY = 1

#: bits budgeted per stored program counter (storage model only).
_PC_BITS = 30


class _MergeEntry:
    """Per-branch learning state."""

    __slots__ = (
        "pc", "target", "skip_far", "state",
        "taken_path", "nt_path", "candidate", "body_size",
        "conf", "fails",
    )

    def __init__(self, pc: int, target: int, skip_far: bool):
        self.pc = pc
        self.target = target
        self.skip_far = skip_far
        self.state = LEARN
        self.taken_path: Optional[tuple] = None
        self.nt_path: Optional[tuple] = None
        self.candidate = -1
        self.body_size = 0
        self.conf = 0
        self.fails = 0


class _Frame:
    """One in-flight recording of the retired path after a branch instance."""

    __slots__ = ("pc", "taken", "path")

    def __init__(self, pc: int, taken: bool):
        self.pc = pc
        self.taken = taken
        self.path: List[int] = []


class MergePointTable:
    """Multi-entry dynamic merge-point learner over the retired stream.

    Drop-in replacement for :class:`~repro.acb.learning.LearningTable` from
    the scheme's point of view: same ``load``/``busy``/``abort_scan``
    surface and the same ``on_converged``/``on_failed`` callbacks, but fed
    by :meth:`observe_retire` instead of fetch-stream ``observe``.  The
    constant :attr:`phase` (= IDLE) keeps the scheme's per-fetch fast path
    from calling into it at all.
    """

    #: never scans the fetch stream — the scheme's ``observe_fetch`` gate
    #: (``phase != IDLE``) therefore skips this backend for free.
    phase = IDLE

    def __init__(
        self,
        entries: int = 16,
        path_limit: int = 96,
        confidence: int = 4,
        max_fails: int = 4,
        stack_depth: int = 8,
        on_converged: Optional[Callable[[ConvergenceResult], None]] = None,
        on_failed: Optional[Callable[[int], None]] = None,
    ):
        self.entries = entries
        self.path_limit = path_limit
        self.confidence = confidence
        self.max_fails = max_fails
        self.stack_depth = stack_depth
        self.on_converged = on_converged
        self.on_failed = on_failed
        self.table: Dict[int, _MergeEntry] = {}
        self.frames: List[_Frame] = []
        # diagnostics
        self.evictions = 0
        self.frames_recorded = 0

    def reset(self) -> None:
        self.table.clear()
        self.frames.clear()

    # ------------------------------------------------------------------
    # LearningTable-compatible surface
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """The table is multi-entry: it can always accept a new branch."""
        return False

    def load(self, branch_pc: int, target: int, skip_type1: bool = False) -> None:
        """Begin (or continue) learning the branch at *branch_pc* → *target*.

        With *skip_type1* the candidate must lie strictly past the branch
        target — the far-reconvergence re-learning mode of the B1
        enhancement, mapped onto dynamic merge points.
        """
        if target <= branch_pc:
            # Backward branches reconverge at the loop exit, which the
            # region mechanics cannot predicate anyway (the paper learns
            # them only via the Figure 4 transform, for table reuse).
            # Reject immediately rather than occupying an entry.
            if self.on_failed is not None:
                self.on_failed(branch_pc)
            return
        entry = self.table.get(branch_pc)
        if entry is not None:
            if skip_type1 and not entry.skip_far:
                # restart in far mode: the old candidate is the point that
                # just diverged, so everything learned so far is stale.
                self.table[branch_pc] = _MergeEntry(branch_pc, target, True)
            return
        if len(self.table) >= self.entries:
            # evict the oldest entry (insertion order): bounded hardware.
            victim = next(iter(self.table))
            del self.table[victim]
            self.frames = [f for f in self.frames if f.pc != victim]
            self.evictions += 1
        self.table[branch_pc] = _MergeEntry(branch_pc, target, skip_type1)

    def abort_scan(self) -> None:
        """Flush hook: the retired stream is architectural — nothing to do."""

    # ------------------------------------------------------------------
    # Training feed: the retired instruction stream
    # ------------------------------------------------------------------
    def observe_retire(self, pc: int, is_cond_branch: bool, taken: bool) -> None:
        """Feed one retired instruction (architectural order)."""
        frames = self.frames
        if frames:
            done: List[_Frame] = []
            for frame in frames:
                if is_cond_branch and pc == frame.pc:
                    # a new instance of the same branch: the recorded path
                    # wrapped without revisiting the merge point candidate
                    done.append(frame)
                    continue
                frame.path.append(pc)
                if len(frame.path) >= self.path_limit:
                    done.append(frame)
            if done:
                self.frames = [f for f in frames if f not in done]
                for frame in done:
                    self._finalize(frame)
        if (
            is_cond_branch
            and pc in self.table
            and len(self.frames) < self.stack_depth
        ):
            self.frames.append(_Frame(pc, taken))

    # ------------------------------------------------------------------
    def _finalize(self, frame: _Frame) -> None:
        entry = self.table.get(frame.pc)
        if entry is None:
            return
        self.frames_recorded += 1
        if entry.state == LEARN:
            if frame.taken:
                if entry.taken_path is None:
                    entry.taken_path = tuple(frame.path)
            elif entry.nt_path is None:
                entry.nt_path = tuple(frame.path)
            if entry.taken_path is not None and entry.nt_path is not None:
                self._pick_candidate(entry)
        else:
            self._verify(entry, frame)

    def _pick_candidate(self, entry: _MergeEntry) -> None:
        """Earliest common PC of the two recorded paths (min-max position)."""
        taken_pos: Dict[int, int] = {}
        for i, pc in enumerate(entry.taken_path):
            if pc not in taken_pos:
                taken_pos[pc] = i
        floor = entry.target if entry.skip_far else entry.pc
        best_pc = -1
        best_key = None
        seen = set()
        for j, pc in enumerate(entry.nt_path):
            if pc in seen:
                continue
            seen.add(pc)
            i = taken_pos.get(pc)
            if i is None or pc <= floor:
                continue
            key = (max(i, j), pc)
            if best_key is None or key < best_key:
                best_key = key
                best_pc = pc
        if best_pc < 0:
            self._miss(entry)
            return
        i, j = taken_pos[best_pc], entry.nt_path.index(best_pc)
        entry.candidate = best_pc
        entry.body_size = max(1, i + j)
        entry.conf = 0
        entry.state = VERIFY

    def _verify(self, entry: _MergeEntry, frame: _Frame) -> None:
        if entry.candidate in frame.path:
            entry.conf += 1
            if entry.conf >= self.confidence:
                self._converged(entry)
        else:
            self._miss(entry)

    def _miss(self, entry: _MergeEntry) -> None:
        entry.fails += 1
        if entry.fails >= self.max_fails:
            del self.table[entry.pc]
            self.frames = [f for f in self.frames if f.pc != entry.pc]
            if self.on_failed is not None:
                self.on_failed(entry.pc)
            return
        entry.state = LEARN
        entry.taken_path = None
        entry.nt_path = None
        entry.candidate = -1
        entry.conf = 0

    def _converged(self, entry: _MergeEntry) -> None:
        reconv = entry.candidate
        if reconv == entry.target:
            conv_type = 1
        elif reconv > entry.target:
            conv_type = 2
        else:
            conv_type = 3
        result = ConvergenceResult(
            entry.pc,
            conv_type,
            reconv,
            backward=False,
            body_size=entry.body_size,
        )
        del self.table[entry.pc]
        self.frames = [f for f in self.frames if f.pc != entry.pc]
        if self.on_converged is not None:
            self.on_converged(result)

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Entry metadata plus the recording-frame path buffers."""
        per_entry = 2 * _PC_BITS + 4 + 3 + 2 + 1  # pc, target, conf, fails, state, far
        per_frame = _PC_BITS + 1 + self.path_limit * _PC_BITS
        learn_paths = 2 * self.path_limit * _PC_BITS  # per-entry direction paths
        return (
            self.entries * (per_entry + learn_paths)
            + self.stack_depth * per_frame
        )
