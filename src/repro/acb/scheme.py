"""ACB: the end-to-end hardware predication scheme (Section III).

Wires the Critical Table (criticality filter), Learning Table (convergence
detection), ACB Table (criticality confidence + learned metadata), Tracking
Table (convergence confidence) and Dynamo (run-time throttling) into a
:class:`~repro.core.predication.PredicationScheme` that the core drives.

The scheme is pure hardware: it never consults the program's CFG — all
convergence knowledge comes from watching the fetch stream.
"""

from __future__ import annotations

from typing import Optional

from repro.acb.acb_table import AcbTable
from repro.acb.config import REDUCED_DEFAULT, AcbConfig
from repro.acb.critical_table import CriticalTable
from repro.acb.dynamo import Dynamo
from repro.acb.learning import ConvergenceResult, LearningTable
from repro.acb.learning import IDLE as LEARNING_IDLE
from repro.acb.storage import storage_report
from repro.acb.tracking import TrackingTable
from repro.branch.base import Prediction
from repro.core.predication import PredicationPlan, PredicationScheme, RegionRecord
from repro.isa.dyninst import ROLE_SELECT, DynInst


class AcbScheme(PredicationScheme):
    """Auto-Predication of Critical Branches (the paper's Section III).

    The pipeline of tables mirrors the paper's Figure 2 block diagram:

    * :class:`~repro.acb.critical_table.CriticalTable` — Section III-A's
      frequency-based criticality filter over mispredicting branch PCs;
    * :class:`~repro.acb.learning.LearningTable` — Section III-B's
      single-entry convergence detector (Figure 3 types, Figure 4
      backward-branch transform);
    * :class:`~repro.acb.acb_table.AcbTable` — Section III-B's learned
      metadata store with the Equation 1 criticality-confidence
      discipline;
    * :class:`~repro.acb.tracking.TrackingTable` — Section III-B's
      passive reconvergence verifier (convergence confidence);
    * :class:`~repro.acb.dynamo.Dynamo` — Section III-C's run-time A/B
      performance monitor (Figure 5 FSM).
    """

    name = "acb"

    def __init__(self, config: AcbConfig = REDUCED_DEFAULT):
        self.config = config
        self.updates_history_on_predication = config.oracle_history
        self.critical = CriticalTable(
            config.critical_entries,
            config.critical_tag_bits,
            config.critical_counter_bits,
        )
        # convergence learner backend: the paper's fetch-stream scanner, or
        # the DMP-style merge-point table over the retired stream (see
        # repro.acb.reconv), selected by ``config.learning_backend``.
        if config.learning_backend == "dmp":
            from repro.acb.reconv import MergePointTable

            self.learning = MergePointTable(
                entries=config.merge_entries,
                path_limit=config.merge_path_limit,
                confidence=config.merge_confidence,
                max_fails=config.merge_max_fails,
                stack_depth=config.merge_stack_depth,
                on_converged=self._on_converged,
                on_failed=self._on_learning_failed,
            )
            self._retire_learning = True
            scan_limit = config.merge_path_limit
        else:
            self.learning = LearningTable(
                limit=config.learning_limit,
                on_converged=self._on_converged,
                on_failed=self._on_learning_failed,
            )
            self._retire_learning = False
            scan_limit = config.learning_limit
        #: region fetch budget: the learner's scan reach plus slack.
        self._fetch_limit = scan_limit + config.divergence_slack
        self._plan_source = "dmp" if self._retire_learning else "static"
        self.table = AcbTable(config)
        self.tracking = TrackingTable(
            limit=self._fetch_limit,
            on_diverged=self._on_tracking_diverged,
        )
        # run-time monitor: Dynamo by default, the rejected stall-count
        # heuristic for the Section V-B ablation, or nothing.
        self.dynamo: Optional[Dynamo] = None
        self.monitor = None
        if config.dynamo_enabled:
            if config.throttle == "dynamo":
                self.dynamo = Dynamo(config, self.table)
                self.monitor = self.dynamo
            else:
                from repro.acb.throttle import StallThrottle

                self.monitor = StallThrottle(config, self.table,
                                             config.stall_threshold)
        self._retired_since_decay = 0
        self._branch_pc_by_seq = {}
        self._far_pending = -1
        #: optional trace collector, wired at :meth:`attach`.
        self.trace = None
        # diagnostics
        self.learned = 0
        self.learning_failures = 0
        self.instances = 0
        self.divergences = 0
        self.far_relearned = 0

    def attach(self, core) -> None:
        """Bind to the core and, when it traces, wire the ACB machinery's
        decision points (learning/tracking transitions, Dynamo epochs) to
        the core's :class:`~repro.trace.collector.TraceCollector`."""
        super().attach(core)
        self.trace = getattr(core, "trace", None)
        if self.dynamo is not None:
            self.dynamo.trace = self.trace

    def _trace_event(self, kind: str, pc: int = -1, **data) -> None:
        if self.trace is not None:
            self.trace.acb(self.core.cycle, kind, pc, **data)

    # ==================================================================
    # Policy: decide whether to predicate this dynamic instance
    # ==================================================================
    def consider(self, dyn: DynInst, prediction: Prediction) -> Optional[PredicationPlan]:
        entry = self.table.lookup(dyn.pc)
        if entry is None:
            return None
        if not dyn.instr.is_forward_branch:
            # Backward (loop) branches are learned through the Figure 4
            # transform but not predicated: predicating a loop iteration
            # re-encounters the branch itself at the reconvergence point.
            return None
        if not self.table.confident(entry):
            # convergence confidence: passively verify the learned
            # reconvergence point while criticality confidence builds up
            if not self.tracking.busy:
                self.tracking.arm(dyn.pc, entry.reconv_pc)
            return None
        if self.monitor is not None and not self.monitor.enabled(entry):
            return None
        self.instances += 1
        if self.monitor is not None:
            self.monitor.note_instance(entry)
        if len(self._branch_pc_by_seq) > 8192:
            self._branch_pc_by_seq.clear()
        self._branch_pc_by_seq[dyn.seq] = dyn.pc
        return PredicationPlan(
            branch_pc=dyn.pc,
            reconv_pc=entry.reconv_pc,
            conv_type=entry.conv_type,
            first_taken=entry.first_taken,
            eager=False,
            select_uops=self.config.select_uops,
            max_fetch=self._fetch_limit,
            max_cycles=self.config.divergence_cycles,
            source=self._plan_source,
        )

    # ==================================================================
    # Learning feeds
    # ==================================================================
    def observe_fetch(self, dyn: DynInst) -> None:
        # called once per fetched micro-op: test the state attributes
        # directly instead of going through the ``busy`` properties.
        learning = self.learning
        if learning.phase != LEARNING_IDLE:
            learning.observe(dyn)
        tracking = self.tracking
        if tracking.active:
            tracking.observe(dyn)

    def on_branch_resolved(
        self, dyn: DynInst, mispredicted: bool, predicated: bool
    ) -> None:
        if predicated:
            if dyn.diverged:
                self.divergences += 1
                entry = self.table.lookup(dyn.pc)
                if entry is not None:
                    if self.config.multi_reconv and dyn.instr.is_forward_branch:
                        # B1 enhancement: hunt for a farther reconvergence
                        # point instead of giving up on the branch.
                        if not self.learning.busy and self._far_pending < 0:
                            self.learning.load(
                                dyn.pc, dyn.instr.target, skip_type1=True
                            )
                            self._far_pending = dyn.pc
                            self._trace_event(
                                "learning_load", dyn.pc,
                                target=dyn.instr.target, far=True,
                            )
                        entry.conf //= 2
                    else:
                        entry.reset_confidence()
            return
        # criticality confidence for already-learned branches
        self.table.train(dyn.pc, mispredicted)
        if not mispredicted:
            return
        if not self._is_critical_event(dyn):
            return
        saturated = self.critical.record_mispredict(dyn.pc)
        if saturated and not self.learning.busy and self.table.lookup(dyn.pc) is None:
            self.learning.load(dyn.pc, dyn.instr.target)
            self._trace_event(
                "learning_load", dyn.pc, target=dyn.instr.target, far=False
            )

    def _is_critical_event(self, dyn: DynInst) -> bool:
        """ROB-proximity criticality heuristic (Section III-A).

        A misprediction counts as critical when the branch sits within a
        quarter of the ROB from the head at resolution time — those flush
        the most control-independent work.
        """
        if not self.config.use_rob_proximity:
            return True
        rob = self.core.rob
        limit = int(self.core.config.rob_size * self.config.rob_proximity_fraction)
        if len(rob) <= limit:
            return True
        # ROB is seq-ordered: the branch is within the first `limit` slots
        # iff the entry at that depth is at least as young.
        return rob[limit - 1].seq >= dyn.seq

    # ==================================================================
    # Learning-table callbacks
    # ==================================================================
    def _on_converged(self, result: ConvergenceResult) -> None:
        if result.branch_pc == self._far_pending:
            # multi-reconvergence re-learning: adopt the farther point
            self._far_pending = -1
            self._trace_event(
                "learning_converged", result.branch_pc,
                reconv_pc=result.reconv_pc, conv_type=result.conv_type,
                body_size=result.body_size, far=True,
            )
            entry = self.table.lookup(result.branch_pc)
            if entry is not None and result.reconv_pc > entry.reconv_pc:
                self.far_relearned += 1
                entry.conv_type = result.conv_type
                entry.reconv_pc = result.reconv_pc
                entry.body_size = result.body_size
                entry.body_class = self.config.body_size_class(result.body_size)
                entry.required_m = self.config.required_mispred_rate(result.body_size)
            return
        self.learned += 1
        self._trace_event(
            "learning_converged", result.branch_pc,
            reconv_pc=result.reconv_pc, conv_type=result.conv_type,
            body_size=result.body_size, far=False,
        )
        self.table.allocate(
            pc=result.branch_pc,
            conv_type=result.conv_type,
            reconv_pc=result.reconv_pc,
            body_size=result.body_size,
        )
        self.critical.vacate(result.branch_pc)

    def _on_learning_failed(self, branch_pc: int) -> None:
        if branch_pc == self._far_pending:
            self._far_pending = -1  # retry on a later divergence
            self._trace_event("learning_failed", branch_pc, far=True)
            return
        self.learning_failures += 1
        self._trace_event("learning_failed", branch_pc, far=False)
        self.critical.penalize(branch_pc)

    def _on_tracking_diverged(self, branch_pc: int) -> None:
        self._trace_event("tracking_diverged", branch_pc)
        entry = self.table.lookup(branch_pc)
        if entry is not None:
            entry.reset_confidence()

    # ==================================================================
    # Retirement: Dynamo epochs + criticality windows
    # ==================================================================
    def on_retire(self, dyn: DynInst) -> None:
        if self.monitor is not None and self.monitor is not self.dynamo:
            # stall-count throttle: charge predicated-body issue-queue waits
            if (dyn.acb_id >= 0 and dyn.acb_role != ROLE_SELECT
                    and not dyn.instr.is_cond_branch):
                branch_pc = self._branch_pc_by_seq.get(dyn.acb_id)
                if branch_pc is not None and dyn.issue_cycle > dyn.alloc_cycle:
                    self.monitor.note_body_stall(
                        branch_pc, dyn.issue_cycle - dyn.alloc_cycle
                    )
        if dyn.pred_false or dyn.acb_role == ROLE_SELECT:
            return
        if self._retire_learning:
            # the merge-point backend trains on the architectural stream:
            # every retired PC except predicated-false/select artifacts.
            self.learning.observe_retire(
                dyn.pc, dyn.instr.is_cond_branch, bool(dyn.taken)
            )
        if self.monitor is not None:
            self.monitor.on_retire(self.core.cycle)
        self._retired_since_decay += 1
        if self._retired_since_decay >= self.config.criticality_window:
            self._retired_since_decay = 0
            self.critical.decay_window()

    # ==================================================================
    def on_region_closed(self, region: RegionRecord, diverged: bool) -> None:
        # per-instance divergence accounting happens at branch resolution
        pass

    def on_flush(self) -> None:
        self.learning.abort_scan()
        self.tracking.abort()

    def storage_bytes(self) -> float:
        return storage_report(self)["total_bytes"]
