"""Auto-Predication of Critical Branches — the paper's contribution.

Public API map (paper section → class):

* Section III-A, criticality filtering — :class:`CriticalTable`
* Section III-B, convergence learning — :class:`LearningTable`
  (:class:`ConvergenceResult`, the Figure 3 types, the Figure 4
  backward-branch transform via :func:`effective_taken`)
* beyond the paper, dynamic merge-point learning — :class:`MergePointTable`
  (``repro.acb.reconv``): a DMP-style retired-stream reconvergence
  detector selectable as the scheme's learning backend
  (``AcbConfig(learning_backend="dmp")``, the harness's
  ``acb-dmp-reconv`` variant); accepts Type-3+ region shapes the static
  fetch-stream learner must reject — see docs/frontier.md
* Section III-B, learned metadata + Equation 1 confidence —
  :class:`AcbTable` / :class:`AcbEntry`
* Section III-B, convergence confidence — :class:`TrackingTable`
* Section III-C, run-time monitoring — :class:`Dynamo` (FSM states
  ``BAD``..``GOOD``) and the rejected Section V-B alternative
  :class:`StallThrottle`
* Table I storage accounting — :func:`storage_report`,
  :data:`PAPER_TOTAL_BYTES`
* the assembled scheme the core drives — :class:`AcbScheme`, with
  knobs in :class:`AcbConfig` (:data:`PAPER_DEFAULT` for the paper's
  windows, :data:`REDUCED_DEFAULT` scaled to this repo's reduced
  traces).

With tracing enabled (``CoreConfig.trace``; see docs/observability.md)
the scheme and Dynamo emit decision events — learning transitions,
region lifecycles, epoch verdicts — through the core's trace collector.
"""

from repro.acb.acb_table import (
    BAD,
    GOOD,
    LIKELY_BAD,
    LIKELY_GOOD,
    NEUTRAL,
    AcbEntry,
    AcbTable,
)
from repro.acb.config import PAPER_DEFAULT, REDUCED_DEFAULT, AcbConfig
from repro.acb.critical_table import CriticalTable
from repro.acb.dynamo import Dynamo
from repro.acb.learning import ConvergenceResult, LearningTable, effective_taken
from repro.acb.reconv import MergePointTable
from repro.acb.scheme import AcbScheme
from repro.acb.storage import PAPER_TOTAL_BYTES, storage_report
from repro.acb.throttle import StallThrottle
from repro.acb.tracking import TrackingTable

__all__ = [
    "AcbConfig",
    "PAPER_DEFAULT",
    "REDUCED_DEFAULT",
    "CriticalTable",
    "ConvergenceResult",
    "LearningTable",
    "MergePointTable",
    "effective_taken",
    "AcbEntry",
    "AcbTable",
    "BAD",
    "GOOD",
    "LIKELY_BAD",
    "LIKELY_GOOD",
    "NEUTRAL",
    "TrackingTable",
    "Dynamo",
    "StallThrottle",
    "AcbScheme",
    "PAPER_TOTAL_BYTES",
    "storage_report",
]
