"""Auto-Predication of Critical Branches — the paper's contribution."""

from repro.acb.config import AcbConfig, PAPER_DEFAULT, REDUCED_DEFAULT
from repro.acb.critical_table import CriticalTable
from repro.acb.learning import ConvergenceResult, LearningTable, effective_taken
from repro.acb.acb_table import (
    AcbEntry,
    AcbTable,
    BAD,
    GOOD,
    LIKELY_BAD,
    LIKELY_GOOD,
    NEUTRAL,
)
from repro.acb.tracking import TrackingTable
from repro.acb.dynamo import Dynamo
from repro.acb.throttle import StallThrottle
from repro.acb.scheme import AcbScheme
from repro.acb.storage import PAPER_TOTAL_BYTES, storage_report

__all__ = [
    "AcbConfig",
    "PAPER_DEFAULT",
    "REDUCED_DEFAULT",
    "CriticalTable",
    "ConvergenceResult",
    "LearningTable",
    "effective_taken",
    "AcbEntry",
    "AcbTable",
    "BAD",
    "GOOD",
    "LIKELY_BAD",
    "LIKELY_GOOD",
    "NEUTRAL",
    "TrackingTable",
    "Dynamo",
    "StallThrottle",
    "AcbScheme",
    "PAPER_TOTAL_BYTES",
    "storage_report",
]
