"""Hardware storage accounting — the paper's Table I.

The paper reports an aggregate of **386 bytes** for all ACB structures but
the per-structure split (its Table I) is not in the extracted text, so this
module documents our reconstruction.  Bit widths the text does state — 64 ×
(11-bit tag + 2-bit utility + 4-bit critical), the 20-byte Learning Table,
the 32-entry ACB Table with a 6-bit confidence counter, 3-bit FSM and 4-bit
involvement counter, the single-entry Tracking Table and the 18-bit Dynamo
cycle counter — are used verbatim; the remaining per-entry metadata widths
(tag, type, reconvergence offset, body class) are chosen so the total
matches the published 386 bytes exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.acb.scheme import AcbScheme


def storage_report(scheme: "AcbScheme") -> Dict[str, float]:
    """Per-structure storage in bytes, plus the total."""
    from repro.acb.dynamo import Dynamo

    critical = scheme.critical.storage_bits() / 8
    learning = scheme.learning.storage_bits() / 8
    acb_table = scheme.table.storage_bits() / 8
    tracking = scheme.tracking.storage_bits() / 8
    dynamo = Dynamo.storage_bits() / 8
    total = critical + learning + acb_table + tracking + dynamo
    return {
        "critical_table_bytes": critical,
        "learning_table_bytes": learning,
        "acb_table_bytes": acb_table,
        "tracking_table_bytes": tracking,
        "dynamo_bytes": dynamo,
        "total_bytes": total,
    }


#: The paper's headline number (abstract, Section III-D).
PAPER_TOTAL_BYTES = 386
