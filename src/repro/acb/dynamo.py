"""Dynamo: run-time performance monitoring and throttling (Section III-C).

Dynamo is the paper's key robustness mechanism: rather than inferring
predication's cost from local heuristics (stall counts, confidence), it
*measures delivered performance directly* with an A/B discipline over
epochs of W retired instructions:

* **odd epochs** disable ACB for every branch except those already
  confirmed GOOD — measuring (approximately) baseline performance;
* **even epochs** enable ACB for every branch except those confirmed BAD.

At each odd/even pair boundary the two cycle counts are compared.  A change
beyond the ``1/8`` cycle-change factor moves the 3-bit FSM state of every
*involved* branch (4-bit involvement counter saturated) one step toward
GOOD or BAD; the final states are absorbing.  All state is periodically
reset (every ~10M retired instructions) so that phase changes give blocked
candidates a chance to re-learn.
"""

from __future__ import annotations

from typing import List

from repro.acb.acb_table import (
    BAD,
    GOOD,
    LIKELY_BAD,
    LIKELY_GOOD,
    NEUTRAL,
    AcbEntry,
    AcbTable,
)
from repro.acb.config import AcbConfig

_CYCLE_COUNTER_MAX = (1 << 18) - 1  # 18-bit saturating epoch cycle counter


class Dynamo:
    """Epoch-based performance monitor over the ACB Table."""

    def __init__(self, config: AcbConfig, table: AcbTable):
        self.config = config
        self.table = table
        self.epoch_index = 1            # epoch 1 is odd: ACB mostly off
        self.instr_in_epoch = 0
        self.epoch_start_cycle = 0
        self.cycles_off = -1            # cycles of the last odd epoch
        self.retired_total = 0
        self.pairs_evaluated = 0
        self.transitions = 0
        #: optional :class:`repro.trace.collector.TraceCollector`, wired by
        #: :meth:`repro.acb.scheme.AcbScheme.attach` when the core traces.
        self.trace = None

    # ------------------------------------------------------------------
    @property
    def measuring_off(self) -> bool:
        """Odd epoch: ACB disabled except for confirmed-GOOD branches."""
        return self.epoch_index % 2 == 1

    def enabled(self, entry: AcbEntry) -> bool:
        """May *entry* predicate in the current epoch?"""
        if not self.config.dynamo_enabled:
            return True
        if self.measuring_off:
            return entry.fsm == GOOD
        return entry.fsm != BAD

    def note_instance(self, entry: AcbEntry) -> None:
        """A dynamic predication happened: bump the involvement counter."""
        cap = (1 << self.config.involvement_bits) - 1
        if entry.involvement < cap:
            entry.involvement += 1

    # ------------------------------------------------------------------
    def on_retire(self, cycle: int) -> None:
        """Account one retired architectural instruction."""
        self.retired_total += 1
        self.instr_in_epoch += 1
        if self.instr_in_epoch >= self.config.epoch_length:
            self._epoch_boundary(cycle)
        if (
            self.config.dynamo_reset_interval
            and self.retired_total % self.config.dynamo_reset_interval == 0
        ):
            self.reset_states(cycle)

    def _epoch_boundary(self, cycle: int) -> None:
        epoch_cycles = min(cycle - self.epoch_start_cycle, _CYCLE_COUNTER_MAX)
        if self.trace is not None:
            self.trace.acb(
                cycle, "dynamo_epoch", epoch=self.epoch_index,
                measuring_off=self.measuring_off, cycles=epoch_cycles,
                instructions=self.instr_in_epoch,
            )
        if self.measuring_off:
            self.cycles_off = epoch_cycles
        else:
            if self.cycles_off >= 0:
                self._evaluate_pair(self.cycles_off, epoch_cycles, cycle)
            self.cycles_off = -1
        self.epoch_index += 1
        self.instr_in_epoch = 0
        self.epoch_start_cycle = cycle

    def _evaluate_pair(self, cycles_off: int, cycles_on: int, cycle: int = -1) -> None:
        """Compare the ACB-on epoch against its ACB-off sibling.

        This is the enable/disable decision of Figure 5: when traced, the
        emitted ``dynamo_pair`` event carries both epoch cycle counts (the
        per-epoch instruction count is the fixed epoch length, so these are
        the IPC measurements) and every FSM transition they caused.
        """
        self.pairs_evaluated += 1
        threshold = cycles_off * self.config.cycle_change_factor
        if cycles_on > cycles_off + threshold:
            direction = -1  # predication made things worse
        elif cycles_on < cycles_off - threshold:
            direction = +1  # predication helped
        else:
            direction = 0
        involvement_cap = (1 << self.config.involvement_bits) - 1
        moved = [] if self.trace is not None else None
        for entry in self.table.entries():
            if direction and entry.involvement >= involvement_cap:
                if entry.fsm not in (GOOD, BAD):  # final states are absorbing
                    old = entry.fsm
                    entry.fsm = max(BAD, min(GOOD, entry.fsm + direction))
                    self.transitions += 1
                    if moved is not None:
                        moved.append((entry.pc, old, entry.fsm))
            entry.involvement = 0
        if moved is not None:
            self.trace.acb(
                cycle, "dynamo_pair", cycles_off=cycles_off, cycles_on=cycles_on,
                instructions=self.config.epoch_length, direction=direction,
                transitions=moved,
            )

    # ------------------------------------------------------------------
    def reset_states(self, cycle: int = -1) -> None:
        """Periodic re-learning reset (phase changes, Section III-C)."""
        for entry in self.table.entries():
            entry.fsm = NEUTRAL
            entry.involvement = 0
        if self.trace is not None:
            self.trace.acb(cycle, "dynamo_reset")

    def state_histogram(self) -> List[int]:
        hist = [0] * 5
        for entry in self.table.entries():
            hist[entry.fsm] += 1
        return hist

    @staticmethod
    def storage_bits() -> int:
        # two 18-bit epoch cycle counters, epoch instruction counter,
        # parity, and the global reset counter: budgeted at 16 bytes.
        return 16 * 8


__all__ = [
    "Dynamo",
    "BAD",
    "LIKELY_BAD",
    "NEUTRAL",
    "LIKELY_GOOD",
    "GOOD",
]
