"""Critical Table: frequency-based criticality filter (Section III-A).

A 64-entry direct-mapped table indexed by the PCs of mispredicting
conditional branches.  Each entry holds an 11-bit tag, a 2-bit utility
counter for conflict management, and a 4-bit saturating critical counter.
A branch whose critical counter saturates within the criticality window is
handed to the Learning Table for convergence detection.

The optional ROB-proximity heuristic (also Section III-A) counts a
misprediction only when the branch resolved within a quarter of the ROB
from the head — mispredictions near retirement flush more work and are more
likely on the critical path.
"""

from __future__ import annotations

from typing import List, Optional


class _CriticalEntry:
    __slots__ = ("tag", "pc", "utility", "critical")

    def __init__(self, tag: int, pc: int):
        self.tag = tag
        self.pc = pc
        self.utility = 1
        self.critical = 1


class CriticalTable:
    """Direct-mapped table of frequently mispredicting branch PCs."""

    def __init__(self, entries: int = 64, tag_bits: int = 11, counter_bits: int = 4):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.tag_bits = tag_bits
        self.counter_max = (1 << counter_bits) - 1
        self._index_bits = entries.bit_length() - 1
        self._table: List[Optional[_CriticalEntry]] = [None] * entries

    # ------------------------------------------------------------------
    def _index(self, pc: int) -> int:
        return pc & (self.entries - 1)

    def _tag(self, pc: int) -> int:
        return (pc >> self._index_bits) & ((1 << self.tag_bits) - 1)

    # ------------------------------------------------------------------
    def record_mispredict(self, pc: int) -> bool:
        """Account one critical misprediction; ``True`` when the entry's
        critical counter just saturated (candidate for convergence
        learning)."""
        idx = self._index(pc)
        tag = self._tag(pc)
        entry = self._table[idx]
        if entry is None:
            self._table[idx] = _CriticalEntry(tag, pc)
            return False
        if entry.tag == tag:
            if entry.critical < self.counter_max:
                entry.critical += 1
            if entry.utility < 3:
                entry.utility += 1
            return entry.critical >= self.counter_max
        # conflict: age the incumbent; replace only when its utility is spent
        entry.utility -= 1
        if entry.utility <= 0:
            self._table[idx] = _CriticalEntry(tag, pc)
        return False

    def lookup(self, pc: int) -> Optional[int]:
        """Critical count for *pc*, or ``None`` if absent."""
        entry = self._table[self._index(pc)]
        if entry is not None and entry.tag == self._tag(pc):
            return entry.critical
        return None

    def vacate(self, pc: int) -> None:
        """Free the entry (convergence confirmed: moved to the ACB Table)."""
        idx = self._index(pc)
        entry = self._table[idx]
        if entry is not None and entry.tag == self._tag(pc):
            self._table[idx] = None

    def penalize(self, pc: int) -> None:
        """Non-convergent branch: zero its counter so it must re-earn entry."""
        entry = self._table[self._index(pc)]
        if entry is not None and entry.tag == self._tag(pc):
            entry.critical = 0

    def decay_window(self) -> None:
        """Criticality-window boundary: halve counters (≈ periodic reset)."""
        for entry in self._table:
            if entry is not None:
                entry.critical >>= 1

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        # tag + utility + critical per entry
        return self.entries * (self.tag_bits + 2 + self.counter_max.bit_length())

    def occupancy(self) -> int:
        return sum(1 for e in self._table if e is not None)
