"""Tracking Table: convergence confidence (Section III-B).

While a learned branch's criticality confidence is still below the
activation threshold, a single-entry tracker monitors fetched instances of
the branch and verifies that the learned reconvergence point actually shows
up in the fetch stream within the allowed distance.  Instances that diverge
reset the branch's confidence so frequently diverging branches never
activate.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.isa.dyninst import DynInst


class TrackingTable:
    """Single-entry reconvergence monitor."""

    def __init__(self, limit: int, on_diverged: Optional[Callable[[int], None]] = None):
        self.limit = limit
        self.on_diverged = on_diverged
        self.active = False
        self.branch_pc = -1
        self.reconv_pc = -1
        self.count = 0
        self.validations = 0
        self.divergences = 0

    @property
    def busy(self) -> bool:
        return self.active

    def arm(self, branch_pc: int, reconv_pc: int) -> None:
        """Start watching one fetched instance of *branch_pc*."""
        if self.active:
            return
        self.active = True
        self.branch_pc = branch_pc
        self.reconv_pc = reconv_pc
        self.count = 0

    def abort(self) -> None:
        """A pipeline flush invalidated the monitored stream: disarm without
        charging a divergence."""
        self.active = False

    def observe(self, dyn: DynInst) -> None:
        """Feed one fetched instruction from the stream."""
        if not self.active:
            return
        if dyn.pc == self.reconv_pc:
            self.validations += 1
            self.active = False
            return
        self.count += 1
        if self.count > self.limit:
            self.divergences += 1
            pc = self.branch_pc
            self.active = False
            if self.on_diverged is not None:
                self.on_diverged(pc)

    @staticmethod
    def storage_bits() -> int:
        # branch PC (48) + reconvergence PC (48) + count (8) + valid/dir bits
        return 14 * 8
