"""Instruction-set model: micro-op classes, registers, static and dynamic
instructions.

This is the lowest substrate layer; everything else (programs, the OOO
core, ACB) is built on top of it.
"""

from repro.isa.dyninst import (
    ROLE_BODY,
    ROLE_BRANCH,
    ROLE_JUMPER,
    ROLE_NONE,
    ROLE_RECONV,
    ROLE_SELECT,
    ST_ALLOCATED,
    ST_DONE,
    ST_FETCHED,
    ST_ISSUED,
    ST_RETIRED,
    ST_SQUASHED,
    DynInst,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import UopClass, latency_of, port_group_of
from repro.isa.registers import ALL_REGS, FLAGS, NUM_GPR, NUM_LOGICAL, reg_name

__all__ = [
    "UopClass",
    "latency_of",
    "port_group_of",
    "ALL_REGS",
    "FLAGS",
    "NUM_GPR",
    "NUM_LOGICAL",
    "reg_name",
    "Instruction",
    "DynInst",
    "ROLE_NONE",
    "ROLE_BRANCH",
    "ROLE_BODY",
    "ROLE_JUMPER",
    "ROLE_RECONV",
    "ROLE_SELECT",
    "ST_FETCHED",
    "ST_ALLOCATED",
    "ST_ISSUED",
    "ST_DONE",
    "ST_RETIRED",
    "ST_SQUASHED",
]
