"""Logical register file definition.

The simulated ISA has 16 integer registers (``R0``–``R15``) plus an
architectural flags register (``FLAGS``) written by compares and consumed by
conditional branches — mirroring the x86 pattern the paper's register
transparency mechanism (Section III-C2) has to handle.
"""

from __future__ import annotations

from typing import Tuple

#: Number of general-purpose logical registers.
NUM_GPR = 16

#: Register number used for the flags register.
FLAGS = NUM_GPR

#: Total number of logical registers the RAT tracks (GPRs + flags).
NUM_LOGICAL = NUM_GPR + 1

#: All register indices, useful for iteration and property-based tests.
ALL_REGS: Tuple[int, ...] = tuple(range(NUM_LOGICAL))


def reg_name(reg: int) -> str:
    """Return a human-readable name for logical register *reg*."""
    if reg == FLAGS:
        return "FLAGS"
    if 0 <= reg < NUM_GPR:
        return f"R{reg}"
    raise ValueError(f"not a logical register: {reg!r}")


def is_valid(reg: int) -> bool:
    """Return ``True`` when *reg* names a logical register."""
    return 0 <= reg < NUM_LOGICAL
