"""Micro-operation classes and their execution characteristics.

The simulator models a generic x86-like core at the micro-op level.  Every
static instruction carries a :class:`UopClass` which determines its execution
latency and which execution-port group it competes for.  Latencies follow the
Skylake-era numbers used by the paper's Table II configuration.
"""

from __future__ import annotations

import enum


class UopClass(enum.IntEnum):
    """Execution class of a micro-op."""

    ALU = 0       # simple integer: add, sub, logic, compare, move
    MUL = 1       # integer multiply
    DIV = 2       # integer divide
    FP = 3        # floating point arithmetic
    LOAD = 4      # memory read
    STORE = 5     # memory write (address generation + data)
    BRANCH = 6    # conditional or unconditional control transfer
    NOP = 7       # no architectural effect


#: Base execution latency (cycles) per class.  LOAD latency here is the
#: address-generation component; the cache hierarchy adds access latency.
LATENCY = {
    UopClass.ALU: 1,
    UopClass.MUL: 3,
    UopClass.DIV: 18,
    UopClass.FP: 4,
    UopClass.LOAD: 1,
    UopClass.STORE: 1,
    UopClass.BRANCH: 1,
    UopClass.NOP: 1,
}

#: Port group each class issues to.  Groups are sized in
#: :class:`repro.core.config.CoreConfig.ports`.
PORT_GROUP = {
    UopClass.ALU: "alu",
    UopClass.MUL: "alu",
    UopClass.DIV: "alu",
    UopClass.FP: "alu",
    UopClass.LOAD: "load",
    UopClass.STORE: "store",
    UopClass.BRANCH: "alu",
    UopClass.NOP: "alu",
}


def latency_of(uop: UopClass) -> int:
    """Return the base execution latency of *uop* in cycles."""
    return LATENCY[uop]


def port_group_of(uop: UopClass) -> str:
    """Return the name of the execution-port group *uop* issues to."""
    return PORT_GROUP[uop]
