"""Static instruction representation.

A :class:`Instruction` is one slot of a :class:`repro.program.Program`.  PCs
are small integers indexing the program's instruction list; the fall-through
successor of any non-taken control transfer is ``pc + 1``.  This "word
addressed" encoding keeps the fetch and convergence-detection logic exact
while staying cheap to simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import UopClass
from repro.isa import registers


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Parameters
    ----------
    pc:
        Index of this instruction in its program.
    uop:
        Execution class.
    dst:
        Logical destination register, or ``None`` for instructions that do
        not produce a register value (stores, branches, nops).
    srcs:
        Logical source registers.
    target:
        Branch target PC (branches only).
    cond:
        ``True`` for conditional branches; unconditional branches always
        jump to ``target``.
    behavior:
        Key into the workload's behaviour registry.  For conditional
        branches it names the outcome process; for loads/stores it names the
        address process.  ``None`` selects the workload default.
    label:
        Optional human-readable annotation used in disassembly and tests.
    """

    pc: int
    uop: UopClass
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    target: Optional[int] = None
    cond: bool = False
    behavior: Optional[str] = None
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError(f"negative pc: {self.pc}")
        if self.dst is not None and not registers.is_valid(self.dst):
            raise ValueError(f"invalid destination register: {self.dst}")
        for src in self.srcs:
            if not registers.is_valid(src):
                raise ValueError(f"invalid source register: {src}")
        if self.is_branch:
            if self.target is None:
                raise ValueError(f"branch at pc={self.pc} lacks a target")
            if self.target < 0:
                raise ValueError(f"branch at pc={self.pc} targets {self.target}")
        elif self.cond:
            raise ValueError(f"non-branch at pc={self.pc} cannot be conditional")
        elif self.target is not None:
            raise ValueError(f"non-branch at pc={self.pc} cannot have a target")

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def is_branch(self) -> bool:
        """``True`` for any control-transfer instruction."""
        return self.uop is UopClass.BRANCH

    @property
    def is_cond_branch(self) -> bool:
        """``True`` for conditional branches (the ACB candidates)."""
        return self.is_branch and self.cond

    @property
    def is_mem(self) -> bool:
        """``True`` for loads and stores."""
        return self.uop in (UopClass.LOAD, UopClass.STORE)

    @property
    def is_load(self) -> bool:
        return self.uop is UopClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.uop is UopClass.STORE

    @property
    def writes_register(self) -> bool:
        """``True`` when the instruction produces a register or flags value.

        The paper's register-transparency scheme (Section III-C2) only needs
        to track such producers; stores and branches on the predicated-false
        path simply release their resources.
        """
        return self.dst is not None

    @property
    def fallthrough(self) -> int:
        """PC of the sequential successor."""
        return self.pc + 1

    def successors(self) -> Tuple[int, ...]:
        """Possible next PCs (used by CFG construction)."""
        if self.is_cond_branch:
            assert self.target is not None
            return (self.fallthrough, self.target)
        if self.is_branch:
            assert self.target is not None
            return (self.target,)
        return (self.fallthrough,)

    @property
    def is_forward_branch(self) -> bool:
        """``True`` when the branch target lies after the branch itself.

        The convergence-learning algorithm (Section III-B) distinguishes
        forward from backward branches and rewrites the latter using the
        commutative transform of Figure 4.
        """
        if not self.is_branch:
            return False
        assert self.target is not None
        return self.target > self.pc

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        core = f"{self.pc:5d}: {self.uop.name}"
        if self.dst is not None:
            core += f" {registers.reg_name(self.dst)}"
        if self.srcs:
            core += " <- " + ",".join(registers.reg_name(s) for s in self.srcs)
        if self.is_branch:
            kind = "cond" if self.cond else "jmp"
            core += f" [{kind} -> {self.target}]"
        if self.label:
            core += f"  ; {self.label}"
        return core
