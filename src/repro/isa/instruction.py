"""Static instruction representation.

A :class:`Instruction` is one slot of a :class:`repro.program.Program`.  PCs
are small integers indexing the program's instruction list; the fall-through
successor of any non-taken control transfer is ``pc + 1``.  This "word
addressed" encoding keeps the fetch and convergence-detection logic exact
while staying cheap to simulate.

Classification flags (``is_branch``, ``is_load``, ``writes_register``, …)
are **precomputed plain attributes**, not properties: the cycle engine reads
them on every fetch/rename/issue/retire of every micro-op, and at simulation
scale the descriptor-call overhead of a property is one of the largest
single costs in the hot loop (measured in docs/performance.md).  They are
decode outputs — fixed functions of the fields — so computing them once in
``__post_init__`` is semantically identical.  The execution ``latency`` and
``port_group`` of the micro-op class are materialized the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa import registers
from repro.isa.opcodes import LATENCY, PORT_GROUP, UopClass

_SET = object.__setattr__  # the only writer of a frozen instruction's slots


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Parameters
    ----------
    pc:
        Index of this instruction in its program.
    uop:
        Execution class.
    dst:
        Logical destination register, or ``None`` for instructions that do
        not produce a register value (stores, branches, nops).
    srcs:
        Logical source registers.
    target:
        Branch target PC (branches only).
    cond:
        ``True`` for conditional branches; unconditional branches always
        jump to ``target``.
    behavior:
        Key into the workload's behaviour registry.  For conditional
        branches it names the outcome process; for loads/stores it names the
        address process.  ``None`` selects the workload default.
    label:
        Optional human-readable annotation used in disassembly and tests.

    Derived (decode) attributes — set once, never part of equality/hash:

    ``is_branch``
        ``True`` for any control-transfer instruction.
    ``is_cond_branch``
        ``True`` for conditional branches (the ACB candidates).
    ``is_mem`` / ``is_load`` / ``is_store``
        Memory classification.
    ``writes_register``
        ``True`` when the instruction produces a register or flags value.
        The paper's register-transparency scheme (Section III-C2) only
        needs to track such producers; stores and branches on the
        predicated-false path simply release their resources.
    ``fallthrough``
        PC of the sequential successor (``pc + 1``).
    ``latency``
        Base execution latency of the micro-op class (loads add cache
        hierarchy latency on top).
    ``port_group``
        Execution-port group the micro-op competes for.
    """

    pc: int
    uop: UopClass
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    target: Optional[int] = None
    cond: bool = False
    behavior: Optional[str] = None
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        uop = self.uop
        is_branch = uop is UopClass.BRANCH
        is_load = uop is UopClass.LOAD
        is_store = uop is UopClass.STORE
        _SET(self, "is_branch", is_branch)
        _SET(self, "is_cond_branch", is_branch and self.cond)
        _SET(self, "is_load", is_load)
        _SET(self, "is_store", is_store)
        _SET(self, "is_mem", is_load or is_store)
        _SET(self, "writes_register", self.dst is not None)
        _SET(self, "fallthrough", self.pc + 1)
        _SET(self, "latency", LATENCY[uop])
        _SET(self, "port_group", PORT_GROUP[uop])

        if self.pc < 0:
            raise ValueError(f"negative pc: {self.pc}")
        if self.dst is not None and not registers.is_valid(self.dst):
            raise ValueError(f"invalid destination register: {self.dst}")
        for src in self.srcs:
            if not registers.is_valid(src):
                raise ValueError(f"invalid source register: {src}")
        if is_branch:
            if self.target is None:
                raise ValueError(f"branch at pc={self.pc} lacks a target")
            if self.target < 0:
                raise ValueError(f"branch at pc={self.pc} targets {self.target}")
        elif self.cond:
            raise ValueError(f"non-branch at pc={self.pc} cannot be conditional")
        elif self.target is not None:
            raise ValueError(f"non-branch at pc={self.pc} cannot have a target")

    # ------------------------------------------------------------------
    # Classification helpers that stay computed (cold paths only)
    # ------------------------------------------------------------------
    def successors(self) -> Tuple[int, ...]:
        """Possible next PCs (used by CFG construction)."""
        if self.is_cond_branch:
            assert self.target is not None
            return (self.fallthrough, self.target)
        if self.is_branch:
            assert self.target is not None
            return (self.target,)
        return (self.fallthrough,)

    @property
    def is_forward_branch(self) -> bool:
        """``True`` when the branch target lies after the branch itself.

        The convergence-learning algorithm (Section III-B) distinguishes
        forward from backward branches and rewrites the latter using the
        commutative transform of Figure 4.
        """
        if not self.is_branch:
            return False
        assert self.target is not None
        return self.target > self.pc

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        core = f"{self.pc:5d}: {self.uop.name}"
        if self.dst is not None:
            core += f" {registers.reg_name(self.dst)}"
        if self.srcs:
            core += " <- " + ",".join(registers.reg_name(s) for s in self.srcs)
        if self.is_branch:
            kind = "cond" if self.cond else "jmp"
            core += f" [{kind} -> {self.target}]"
        if self.label:
            core += f"  ; {self.label}"
        return core
