"""Dynamic instruction (in-flight micro-op) representation.

A :class:`DynInst` is created at fetch for every instruction entering the
pipeline — including wrong-path instructions, which the simulator fetches,
renames and executes for timing fidelity exactly as the paper's simulator
does ("accurately models the wrong path", Section IV).

The class uses ``__slots__`` because the core allocates one instance per
fetched micro-op and simulations run for tens of thousands of instructions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.isa.instruction import Instruction

# Roles inside a predicated (ACB / DMP / DHP) region.
ROLE_NONE = 0      # not part of any predicated region
ROLE_BRANCH = 1    # the predicated branch itself
ROLE_BODY = 2      # instruction inside the predicated body
ROLE_JUMPER = 3    # the Jumper branch whose target is overridden
ROLE_RECONV = 4    # first instruction at the reconvergence point
ROLE_SELECT = 5    # select micro-op injected by DMP-style predication

# Pipeline states.
ST_FETCHED = 0
ST_ALLOCATED = 1
ST_ISSUED = 2
ST_DONE = 3
ST_RETIRED = 4
ST_SQUASHED = 5


class DynInst:
    """One in-flight dynamic micro-op."""

    __slots__ = (
        "seq",
        "instr",
        "pc",
        "wrong_path",
        # --- branch semantics -------------------------------------------------
        "pred_taken",
        "taken",
        "predicted",        # True when a real branch prediction was made
        "hist_checkpoint",  # predictor history checkpoint for recovery
        "rat_checkpoint",   # RAT snapshot for flush recovery
        # --- memory semantics -------------------------------------------------
        "mem_addr",
        # --- predication ------------------------------------------------------
        "acb_id",        # id of the predicated context, or -1
        "acb_role",      # ROLE_* constant
        "body_dir",      # True if on the taken-path side of the region
        "pred_false",    # resolved: instruction sits on the predicated-false path
        "diverged",      # context failed to reconverge; forces a flush
        "eager",         # DMP-style: body may execute before branch resolves
        # --- renaming / scheduling -------------------------------------------
        "deps",          # number of outstanding producers
        "consumers",     # DynInsts waiting on this one
        "forced_producers",  # extra producers added by predication machinery
        "hold",          # may not issue until the front-end releases it
        "resume_pc",     # correct-path PC to refetch after a flush at this branch
        "prev_writer",   # last writer of dst before this inst (transparency)
        "rewired",       # false-path inst rewired to (branch, prev_writer) deps
        "transparent",   # executes as a 1-cycle move (predicated-false path)
        "bp_meta",       # predictor metadata threaded into update()
        "region",        # predicated-region record (ROLE_BRANCH only)
        "state",
        "fetch_cycle",
        "alloc_cycle",
        "issue_cycle",
        "done_cycle",
        "retire_cycle",
        "squash_cycle",
        "lsq_index",
    )

    def __init__(self, seq: int, instr: "Instruction", wrong_path: bool = False):
        # one instance per fetched micro-op: defaults with a shared value
        # are chained so each constant is loaded once (types are documented
        # on ``__slots__`` above).
        self.seq = seq
        self.instr = instr
        self.pc = instr.pc
        self.wrong_path = wrong_path

        self.pred_taken = self.taken = None
        self.hist_checkpoint = self.rat_checkpoint = self.mem_addr = None
        self.forced_producers = self.resume_pc = self.prev_writer = None
        self.bp_meta = self.region = None
        self.predicted = self.body_dir = self.pred_false = False
        self.diverged = self.eager = self.hold = False
        self.rewired = self.transparent = False

        self.acb_id = -1
        self.acb_role = ROLE_NONE
        self.deps = 0
        self.consumers: List["DynInst"] = []
        self.state = ST_FETCHED
        self.fetch_cycle = self.alloc_cycle = self.issue_cycle = -1
        self.done_cycle = self.retire_cycle = self.squash_cycle = -1
        self.lsq_index = -1

    # ------------------------------------------------------------------
    @property
    def is_predicated(self) -> bool:
        """``True`` when this micro-op belongs to a predicated region."""
        return self.acb_id >= 0

    @property
    def mispredicted(self) -> bool:
        """``True`` when a prediction was made and turned out wrong.

        Predicated branch instances never count: no real prediction was
        consumed, which is also why they are withheld from the global
        history (Section V-C).
        """
        return (
            self.predicted
            and self.taken is not None
            and self.pred_taken is not None
            and self.taken != self.pred_taken
        )

    @property
    def squashed(self) -> bool:
        return self.state == ST_SQUASHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.wrong_path:
            flags.append("WP")
        if self.is_predicated:
            flags.append(f"acb={self.acb_id}:{self.acb_role}")
        return f"<DynInst #{self.seq} pc={self.pc} {self.instr.uop.name} {' '.join(flags)}>"
