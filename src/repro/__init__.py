"""repro — reproduction of *Auto-Predication of Critical Branches*
(Chauhan et al., ISCA 2020).

Public API tour
---------------
* :mod:`repro.core` — the cycle-level out-of-order core (``Core``,
  ``CoreConfig``, ``scaled``).
* :mod:`repro.acb` — the paper's contribution (``AcbScheme``,
  ``AcbConfig``, ``Dynamo``).
* :mod:`repro.baselines` — DMP, DMP-PBH, DHP.
* :mod:`repro.branch` — TAGE and friends.
* :mod:`repro.workloads` — the synthetic 70-workload suite.
* :mod:`repro.criticality` — Fields-style critical-path analysis.
* :mod:`repro.harness` — one driver per figure/table of the paper.

Quickstart::

    from repro import Core, SKYLAKE_LIKE, AcbScheme, load_suite
    (workload,) = load_suite(["lammps"])
    core = Core(workload, SKYLAKE_LIKE, scheme=AcbScheme())
    stats = core.run_window(warmup=10_000, measure=12_000)
    print(stats.ipc, stats.flushes)
"""

from repro.acb import AcbConfig, AcbScheme
from repro.baselines import DhpScheme, DmpPbhScheme, DmpScheme
from repro.core import SKYLAKE_LIKE, Core, CoreConfig, SimStats, scaled
from repro.harness import compare_configs, run_workload
from repro.workloads import REPRESENTATIVE, Workload, build_workload, load_suite

__version__ = "1.0.0"

__all__ = [
    "AcbConfig",
    "AcbScheme",
    "DhpScheme",
    "DmpPbhScheme",
    "DmpScheme",
    "Core",
    "CoreConfig",
    "SKYLAKE_LIKE",
    "SimStats",
    "scaled",
    "compare_configs",
    "run_workload",
    "REPRESENTATIVE",
    "Workload",
    "build_workload",
    "load_suite",
    "__version__",
]
