"""Persistent on-disk cache of simulation results.

Simulation runs are deterministic, so a (workload, configuration, scale,
predictor, window) cell always produces the same :class:`SimStats`.  The
in-memory memo in :mod:`repro.harness.runner` exploits that within one
process; this module extends it across processes and invocations by
persisting each :class:`~repro.harness.runner.RunResult` as a small JSON
file under ``.repro_cache/``.

Files are keyed by a SHA-256 digest of the *normalized* run key (see
:func:`repro.harness.runner.normalized_run_key`) plus
:data:`CACHE_SCHEMA_VERSION`; bumping the version orphans every existing
entry, which is the invalidation story for simulator-visible changes.
Corrupted or schema-stale files are ignored (with a warning) and simply
re-simulated, so the cache can never poison a run.

The cache is *opt-in*: nothing touches disk until a cache is installed
with :func:`set_active_cache` (the CLI and the benchmark harness do this;
the unit-test suite does not).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Optional, Tuple
from warnings import warn

from repro.core.stats import SimStats

#: Bump whenever simulator behaviour or the serialized layout changes in a
#: way that invalidates previously cached stats.
CACHE_SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment switches honoured by :meth:`ResultCache.from_env`.
ENV_CACHE = "REPRO_CACHE"          # "0"/"off"/"no"/"false" disables
ENV_CACHE_DIR = "REPRO_CACHE_DIR"  # overrides the directory

#: Normalized run key: (workload, scheme, core_scale, predictor, warmup,
#: measure) — always built by ``normalized_run_key``, never by hand.
RunKey = Tuple[str, str, int, Optional[str], int, int]


def key_digest(key: RunKey) -> str:
    """Stable digest of a normalized run key (cache file basename)."""
    payload = json.dumps([CACHE_SCHEMA_VERSION, *key], sort_keys=False)
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


@dataclass
class CacheCounters:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0


class ResultCache:
    """JSON-file result cache rooted at *cache_dir*.

    ``get``/``put`` are safe under concurrent writers: entries are written
    to a temporary file and atomically renamed into place, and identical
    keys always serialize identical payloads.
    """

    def __init__(self, cache_dir: Optional[str] = None, enabled: bool = True):
        self.cache_dir = pathlib.Path(cache_dir or DEFAULT_CACHE_DIR)
        self.enabled = enabled
        self.counters = CacheCounters()

    @classmethod
    def from_env(cls) -> "ResultCache":
        """Cache configured from ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``."""
        enabled = os.environ.get(ENV_CACHE, "1").lower() not in (
            "0", "off", "no", "false",
        )
        return cls(os.environ.get(ENV_CACHE_DIR), enabled=enabled)

    # ------------------------------------------------------------------
    def path_for(self, key: RunKey) -> pathlib.Path:
        return self.cache_dir / f"{key_digest(key)}.json"

    def get(self, key: RunKey):
        """Cached ``RunResult`` for *key*, or ``None`` on any kind of miss."""
        from repro.harness.runner import RunResult  # circular at import time

        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError) as exc:
            warn(f"ignoring corrupted cache file {path}: {exc}", RuntimeWarning)
            self.counters.errors += 1
            return None
        try:
            if payload["schema"] != CACHE_SCHEMA_VERSION:
                self.counters.misses += 1
                return None
            entry = payload["result"]
            result = RunResult(
                workload=entry["workload"],
                category=entry["category"],
                paper_tag=entry["paper_tag"],
                config=entry["config"],
                stats=SimStats.from_dict(entry["stats"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            warn(f"ignoring corrupted cache file {path}: {exc}", RuntimeWarning)
            self.counters.errors += 1
            return None
        self.counters.hits += 1
        return result

    def put(self, key: RunKey, result) -> None:
        """Persist *result* under *key* (atomic write; no-op when disabled).

        Write failures (read-only directory, disk full) degrade to a
        warning — a broken cache must never fail a run that simulated
        successfully.
        """
        if not self.enabled:
            return
        try:
            self._write(key, result)
        except OSError as exc:
            warn(f"could not write cache file for {key}: {exc}", RuntimeWarning)
            self.counters.errors += 1
            return
        self.counters.stores += 1

    def _write(self, key: RunKey, result) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": list(key),
            "result": {
                "workload": result.workload,
                "category": result.category,
                "paper_tag": result.paper_tag,
                "config": result.config,
                "stats": result.stats.to_dict(),
            },
        }
        fd, tmp = tempfile.mkstemp(dir=str(self.cache_dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
# process-wide active cache
# ----------------------------------------------------------------------
_ACTIVE: Optional[ResultCache] = None


def set_active_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Install *cache* as the process-wide result cache; returns the old one."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, cache
    return previous


def get_active_cache() -> Optional[ResultCache]:
    return _ACTIVE


# ----------------------------------------------------------------------
# process-wide durable store (the L2 behind this cache)
# ----------------------------------------------------------------------
#: Anything with ``get(key) -> RunResult|None`` and ``put(key, result)``
#: keyed by the same normalized run keys — in practice
#: :class:`repro.service.store.ExperimentStore`.  Registered here (rather
#: than imported) so the harness stays ignorant of the service layer.
_ACTIVE_STORE = None


def set_active_store(store):
    """Install *store* as the durable result backend; returns the old one.

    The lookup chain becomes memo → this cache (L1) → *store* (L2); store
    hits are promoted into both upper layers, and completed runs write
    through to all three (:func:`repro.harness.runner.store_result`).
    """
    global _ACTIVE_STORE
    previous, _ACTIVE_STORE = _ACTIVE_STORE, store
    return previous


def get_active_store():
    return _ACTIVE_STORE
